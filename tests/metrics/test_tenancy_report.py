"""Per-tenant outcome metrics: attainment slicing, Jain index, revenue."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics.records import RejectionRecord, RequestRecord
from repro.metrics.tenancy import jain_index, tenancy_report
from repro.tenancy import Tenant, TenantSet


def record(tenant, *, met=True, strict=True, latency=0.1):
    deadline = 1.0 if strict else None
    completion = (0.5 if met else 2.0) if strict else latency
    return RequestRecord(
        model="resnet50",
        strict=strict,
        arrival=0.0,
        completion=completion,
        deadline=deadline,
        batch_wait=0.0,
        cold_start=0.0,
        queue_delay=0.0,
        exec_min=completion,
        deficiency=0.0,
        interference=0.0,
        tenant=tenant,
    )


class TestJainIndex:
    def test_degenerate_inputs_are_perfectly_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_equal_allocations_score_one(self):
        assert jain_index([0.9, 0.9, 0.9]) == pytest.approx(1.0)

    def test_monopoly_tends_to_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


class TestTenancyReport:
    def tenants(self):
        return TenantSet(
            (Tenant("gold", billing_rate=4.0), Tenant("bronze"))
        )

    def test_slices_attainment_per_tenant(self):
        records = [
            record("gold", met=True),
            record("gold", met=True),
            record("bronze", met=True),
            record("bronze", met=False),
        ]
        report = tenancy_report(self.tenants(), records)
        assert report.attainment_by_tenant() == {
            "gold": pytest.approx(1.0),
            "bronze": pytest.approx(0.5),
        }
        assert report.fairness_index == pytest.approx(
            jain_index([1.0, 0.5])
        )

    def test_revenue_and_revenue_weighted_cost(self):
        records = [record("gold"), record("gold"), record("bronze")]
        report = tenancy_report(self.tenants(), records, total_cost=3.0)
        assert report.outcome("gold").revenue == 8.0
        assert report.total_revenue == 9.0
        assert report.revenue_weighted_cost == pytest.approx(3.0 / 9.0)

    def test_zero_revenue_yields_nan_cost(self):
        report = tenancy_report(self.tenants(), [], total_cost=3.0)
        assert math.isnan(report.revenue_weighted_cost)

    def test_rejections_counted_per_tenant(self):
        rejections = (
            RejectionRecord("gold", "resnet50", True, 1.0),
            RejectionRecord("gold", "resnet50", True, 2.0),
        )
        report = tenancy_report(self.tenants(), [], rejections)
        assert report.outcome("gold").rejections == 2
        assert report.outcome("bronze").rejections == 0

    def test_tenant_with_no_strict_load_is_excluded_from_fairness(self):
        records = [
            record("gold", met=False),
            record("bronze", strict=False),
        ]
        report = tenancy_report(self.tenants(), records)
        assert math.isnan(report.outcome("bronze").slo_attainment)
        # Fairness over [0.0] alone, and all-zero input reads as fair.
        assert report.fairness_index == 1.0

    def test_unknown_tenant_outcome_raises(self):
        report = tenancy_report(self.tenants(), [])
        with pytest.raises(ConfigurationError):
            report.outcome("ghost")

    def test_to_dict_is_json_safe(self):
        records = [record("gold"), record("bronze", met=False)]
        report = tenancy_report(self.tenants(), records, total_cost=1.0)
        payload = json.loads(json.dumps(report.to_dict()))
        assert {o["tenant_id"] for o in payload["outcomes"]} == {
            "gold",
            "bronze",
        }
        assert "revenue_weighted_cost" in payload
