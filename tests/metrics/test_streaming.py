"""Quantile digest and streaming collector: exactness, bounds, parity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import (
    QuantileDigest,
    RecordCollector,
    StreamingCollector,
    slo_compliance,
    slo_compliance_from_counts,
    tail_breakdown,
    throughput_per_gpu_from_counts,
)
from repro.metrics.records import RejectionRecord, RequestRecord


def record(
    *,
    strict=True,
    arrival=50.0,
    latency=0.1,
    slo_ok=True,
    tenant="default",
    model="resnet50",
):
    completion = arrival + latency
    deadline = None
    if strict:
        deadline = completion + (0.01 if slo_ok else -0.01)
    return RequestRecord(
        model=model,
        strict=strict,
        arrival=arrival,
        completion=completion,
        deadline=deadline,
        batch_wait=0.2 * latency,
        cold_start=0.0,
        queue_delay=0.3 * latency,
        exec_min=0.5 * latency,
        deficiency=0.0,
        interference=0.0,
        tenant=tenant,
    )


class TestQuantileDigest:
    def test_exact_below_capacity(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(size=500)
        digest = QuantileDigest(max_centroids=1024)
        digest.add_many(values)
        ordered = np.sort(values)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            # Inverted CDF: the first order statistic whose cumulative
            # weight reaches q*n.
            index = min(max(int(np.ceil(q * values.size)) - 1, 0), values.size - 1)
            assert digest.quantile(q) == pytest.approx(ordered[index])

    def test_quantile_error_bound_above_capacity(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=100_000)
        digest = QuantileDigest(max_centroids=1024)
        digest.add_many(values)
        ordered = np.sort(values)
        for q in (0.01, 0.5, 0.9, 0.99):
            estimate = digest.quantile(q)
            # Quantile-space error <= ~2/max_centroids for unit weights.
            rank = np.searchsorted(ordered, estimate) / values.size
            assert abs(rank - q) <= 2.0 / 1024

    def test_deterministic_state_digest(self):
        # Same insertion sequence (same call batching) -> same state,
        # whether values arrive one by one or in one batch.
        values = np.random.default_rng(2).uniform(size=20_000)
        a, b = QuantileDigest(64), QuantileDigest(64)
        a.add_many(values)
        b.add_many(values)
        assert a.state_digest() == b.state_digest()
        c, d = QuantileDigest(64), QuantileDigest(64)
        for v in values:
            c.add(v)
            d.add(v)
        assert c.state_digest() == d.state_digest()
        assert a.quantile(0.5) == pytest.approx(c.quantile(0.5), rel=0.05)

    def test_node_order_merge_reproduces_serial(self):
        rng = np.random.default_rng(3)
        per_node = [rng.gamma(2.0, size=5_000) for _ in range(8)]
        serial = QuantileDigest(128)
        shards = []
        for values in per_node:
            serial_part = QuantileDigest(128)
            serial_part.add_many(values)
            shards.append(serial_part.to_arrays())
        for means, weights in shards:
            serial.absorb(means, weights)
        merged = QuantileDigest(128)
        for means, weights in shards:
            merged.absorb(means, weights)
        assert merged.state_digest() == serial.state_digest()

    def test_weighted_and_zero_weight_inserts(self):
        digest = QuantileDigest(64)
        digest.add(1.0, weight=3.0)
        digest.add(2.0, weight=0.0)  # skipped
        digest.add_many([5.0], [1.0])
        assert digest.total_weight == pytest.approx(4.0)
        assert digest.quantile(0.5) == pytest.approx(1.0)
        assert digest.quantile(1.0) == pytest.approx(5.0)
        with pytest.raises(ConfigurationError):
            digest.add(1.0, weight=-1.0)

    def test_empty_digest(self):
        digest = QuantileDigest(16)
        assert np.isnan(digest.quantile(0.5))
        assert digest.total_weight == 0.0
        assert len(digest) == 0


class TestStreamingCollector:
    def _populate(self, collector):
        rng = np.random.default_rng(7)
        records = []
        for i in range(2_000):
            records.append(
                record(
                    strict=i % 2 == 0,
                    arrival=float(rng.uniform(0, 100)),
                    latency=float(rng.exponential(0.1)),
                    slo_ok=i % 10 != 0,
                    tenant="t0" if i % 3 else "t1",
                )
            )
        for r in records:
            collector.add(r)
        return records

    def test_counters_match_record_collector_exactly(self):
        streaming = StreamingCollector(window_start=10.0, window_end=90.0)
        reference = RecordCollector()
        records = self._populate(streaming)
        for r in records:
            reference.add(r)
        measured = [r for r in records if 10.0 <= r.arrival < 90.0]
        strict = [r for r in measured if r.strict]
        assert streaming.total_seen == len(records)
        assert streaming.measured_count == len(measured)
        assert streaming.strict_count == len(strict)
        assert streaming.be_count == len(measured) - len(strict)
        assert streaming.slo_met_count == sum(1 for r in strict if r.slo_met)
        assert streaming.completed_in_window == sum(
            1 for r in measured if r.completion < 90.0
        )
        assert streaming.slo_compliance() == pytest.approx(
            slo_compliance(strict)
        )

    def test_percentiles_track_exact_values(self):
        streaming = StreamingCollector(window_start=0.0, window_end=200.0)
        records = self._populate(streaming)
        strict_latencies = np.sort(
            [r.latency for r in records if r.strict]
        )
        p99 = streaming.strict_percentile(99.0)
        rank = np.searchsorted(strict_latencies, p99) / strict_latencies.size
        assert abs(rank - 0.99) <= 0.01

    def test_tail_breakdown_matches_exact_when_tail_retained(self):
        streaming = StreamingCollector(window_start=0.0, window_end=200.0)
        records = self._populate(streaming)
        strict = [r for r in records if r.strict]
        exact = tail_breakdown(strict, q=99)
        approx = streaming.tail_breakdown(q=99)
        # tail_keep (4096) far exceeds the 1% tail of 1000 records, so
        # every tail candidate is retained; the only slack left is the
        # threshold convention (digest order statistic vs interpolated
        # percentile), which can move one boundary record in or out.
        assert approx.total == pytest.approx(exact.total, rel=0.05)
        for name, value in exact.as_dict().items():
            assert approx.as_dict()[name] == pytest.approx(
                value, rel=0.05, abs=1e-9
            )

    def test_records_views_stay_empty(self):
        streaming = StreamingCollector()
        self._populate(streaming)
        assert len(streaming) == 0
        assert streaming.strict() == []

    def test_rejections_counted_per_tenant(self):
        streaming = StreamingCollector()
        streaming.add_rejection(
            RejectionRecord(model="m", strict=True, arrival=1.0, tenant="t9")
        )
        assert streaming.tenant_counters()["t9"]["rejections"] == 1

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingCollector(window_start=5.0, window_end=5.0)


def test_count_based_helpers():
    assert slo_compliance_from_counts(99, 100) == pytest.approx(0.99)
    # No strict traffic: nan, matching the record-based slo_compliance.
    assert np.isnan(slo_compliance_from_counts(0, 0))
    assert slo_compliance_from_counts(
        99, 100, dropped_strict=100
    ) == pytest.approx(0.495)
    assert throughput_per_gpu_from_counts(800, 8, 100.0) == pytest.approx(1.0)
