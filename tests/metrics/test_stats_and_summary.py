"""Tests for statistics helpers, throughput, and table rendering."""

import math

import numpy as np
import pytest

from repro.metrics.breakdown import LatencyBreakdown
from repro.metrics.records import RequestRecord
from repro.metrics.stats import (
    cohens_d,
    confidence_interval,
    welch_t_test,
)
from repro.metrics.summary import RunSummary, filter_window, format_table
from repro.metrics.throughput import (
    strict_throughput_per_gpu,
    total_throughput_per_gpu,
)


def record(arrival, completion, strict=True):
    return RequestRecord(
        model="m",
        strict=strict,
        arrival=arrival,
        completion=completion,
        deadline=arrival + 1.0 if strict else None,
        batch_wait=0.0,
        cold_start=0.0,
        queue_delay=0.0,
        exec_min=completion - arrival,
        deficiency=0.0,
        interference=0.0,
    )


class TestStats:
    def test_confidence_interval_contains_mean(self):
        samples = np.random.default_rng(0).normal(10.0, 1.0, 100)
        ci = confidence_interval(samples)
        assert ci.lower < ci.mean < ci.upper
        assert ci.mean == pytest.approx(10.0, abs=0.5)
        assert ci.half_width == pytest.approx((ci.upper - ci.lower) / 2)

    def test_ci_narrows_with_samples(self):
        rng = np.random.default_rng(1)
        small = confidence_interval(rng.normal(0, 1, 10))
        large = confidence_interval(rng.normal(0, 1, 1000))
        assert large.half_width < small.half_width

    def test_ci_needs_two_samples(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])

    def test_cohens_d_known_value(self):
        a = [1.0, 2.0, 3.0]
        b = [3.0, 4.0, 5.0]
        assert cohens_d(a, b) == pytest.approx(-2.0)

    def test_cohens_d_zero_variance(self):
        assert cohens_d([1.0, 1.0], [1.0, 1.0]) == 0.0
        assert math.isinf(cohens_d([1.0, 1.0], [2.0, 2.0]))

    def test_large_effects_like_paper(self):
        # Section 7: deterministic schemes with tiny per-seed noise give
        # very large Cohen's d (the paper reports up to 304).
        rng = np.random.default_rng(2)
        protean = 99.5 + rng.normal(0, 0.05, 5)
        molecule = 45.0 + rng.normal(0, 0.5, 5)
        assert cohens_d(protean, molecule) > 7.8

    def test_welch_distinguishes_different_means(self):
        rng = np.random.default_rng(3)
        t, p = welch_t_test(rng.normal(0, 1, 50), rng.normal(5, 1, 50))
        assert p < 1e-6
        assert t < 0

    def test_welch_same_distribution(self):
        rng = np.random.default_rng(4)
        _t, p = welch_t_test(rng.normal(0, 1, 50), rng.normal(0, 1, 50))
        assert p > 0.01

    def test_welch_identical_constant_samples(self):
        t, p = welch_t_test([2.0, 2.0], [2.0, 2.0])
        assert t == 0.0 and p == 1.0


class TestThroughput:
    def test_strict_throughput(self):
        records = [record(0, 0.1) for _ in range(80)]
        records += [record(0, 0.1, strict=False) for _ in range(40)]
        assert strict_throughput_per_gpu(records, 8, 10.0) == pytest.approx(1.0)
        assert total_throughput_per_gpu(records, 8, 10.0) == pytest.approx(1.5)

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            strict_throughput_per_gpu([], 0, 10.0)
        with pytest.raises(ValueError):
            total_throughput_per_gpu([], 8, 0.0)


class TestSummaryHelpers:
    def test_filter_window(self):
        records = [record(t, t + 0.1) for t in [0.0, 5.0, 10.0, 15.0]]
        inside = filter_window(records, 5.0, 15.0)
        assert [r.arrival for r in inside] == [5.0, 10.0]
        open_ended = filter_window(records, 5.0)
        assert len(open_ended) == 3

    def test_format_table(self):
        rows = [
            {"scheme": "protean", "slo_%": 99.9},
            {"scheme": "molecule", "slo_%": 45.1},
        ]
        text = format_table(rows, title="Figure X")
        assert "Figure X" in text
        assert "protean" in text and "molecule" in text
        assert text.splitlines()[1].startswith("scheme")

    def test_format_empty_table(self):
        assert "(no rows)" in format_table([])

    def test_run_summary_row(self):
        summary = RunSummary(
            scheme="protean",
            strict_model="resnet50",
            requests_served=100,
            strict_requests=50,
            slo_compliance=0.995,
            strict_p50=0.05,
            strict_p99=0.1,
            be_p50=0.06,
            be_p99=0.15,
            tail_breakdown=LatencyBreakdown(0.05, 0.0, 0.0, 0.0, 0.0, 0.0),
            strict_throughput_per_gpu=10.0,
            total_throughput_per_gpu=20.0,
            gpu_busy_fraction=0.5,
            gpu_any_busy_fraction=0.9,
            memory_fraction=0.39,
            reconfigurations=3,
            total_cost=1.23,
            cost_savings_fraction=0.7,
        )
        row = summary.row()
        assert row["slo_%"] == 99.5
        assert row["gpu_util_%"] == 90.0
        assert row["mem_util_%"] == 39.0
        assert summary.slo_percent == pytest.approx(99.5)
