"""Tests for the time-series metric helpers."""

import pytest

from repro.metrics.records import RequestRecord
from repro.metrics.timeline import (
    arrival_rate_series,
    latency_series,
    slo_compliance_series,
)


def record(arrival, latency, strict=True, met=True):
    completion = arrival + latency
    deadline = completion + (0.0 if met else -1e-6) if strict else None
    return RequestRecord(
        model="m",
        strict=strict,
        arrival=arrival,
        completion=completion,
        deadline=deadline,
        batch_wait=0.0,
        cold_start=0.0,
        queue_delay=0.0,
        exec_min=latency,
        deficiency=0.0,
        interference=0.0,
    )


class TestLatencySeries:
    def test_bucketing_and_percentile(self):
        records = [record(0.1, 0.1), record(0.5, 0.3), record(1.2, 0.2)]
        series = latency_series(records, bucket_seconds=1.0, percentile=100.0)
        assert series == [(0.0, pytest.approx(0.3)), (1.0, pytest.approx(0.2))]

    def test_empty_buckets_skipped(self):
        records = [record(0.5, 0.1), record(5.5, 0.1)]
        series = latency_series(records, bucket_seconds=1.0)
        assert [t for t, _v in series] == [0.0, 5.0]

    def test_window_filtering(self):
        records = [record(t, 0.1) for t in (0.5, 2.5, 9.5)]
        series = latency_series(records, start=1.0, end=5.0)
        assert [t for t, _v in series] == [2.0]

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            latency_series([], bucket_seconds=0.0)


class TestArrivalRateSeries:
    def test_counts_per_second(self):
        records = [record(0.1, 0.1), record(0.2, 0.1), record(1.9, 0.1)]
        series = arrival_rate_series(records, bucket_seconds=1.0)
        assert series == [(0.0, 2.0), (1.0, 1.0)]

    def test_rate_normalized_by_bucket(self):
        records = [record(t / 10, 0.1) for t in range(20)]  # 0..1.9s
        series = arrival_rate_series(records, bucket_seconds=2.0)
        assert series == [(0.0, 10.0)]


class TestSloComplianceSeries:
    def test_windowed_compliance(self):
        records = [
            record(0.0, 0.1, met=True),
            record(1.0, 0.1, met=False),
            record(6.0, 0.1, met=True),
        ]
        series = slo_compliance_series(records, bucket_seconds=5.0)
        assert series[0] == (0.0, pytest.approx(0.5))
        assert series[1] == (5.0, pytest.approx(1.0))

    def test_best_effort_ignored(self):
        records = [record(0.0, 0.1, strict=False)]
        assert slo_compliance_series(records) == []
