"""Tests for the terminal plotting helpers."""

from repro.metrics.ascii_plots import ascii_cdf, ascii_series, ascii_stacked_bars


class TestAsciiCdf:
    def test_renders_curves_and_legend(self):
        curves = {
            "protean": ([10, 20, 30], [0.1, 0.6, 1.0]),
            "molecule": ([15, 40, 90], [0.2, 0.7, 1.0]),
        }
        text = ascii_cdf(curves, title="CDF", slo=50.0)
        assert "CDF" in text
        assert "p=protean" in text and "m=molecule" in text
        assert "|" in text  # SLO marker
        assert "1.0" in text and "0.0" in text

    def test_empty(self):
        assert "(no data)" in ascii_cdf({}, title="x")

    def test_markers_present(self):
        text = ascii_cdf({"a": ([1, 2], [0.5, 1.0])})
        assert "a" in text


class TestAsciiSeries:
    def test_renders_points_and_threshold(self):
        series = [(float(t), float(t % 7)) for t in range(60)]
        text = ascii_series(series, threshold=5.0, title="latency")
        assert "latency" in text
        assert "*" in text
        assert "-" in text  # threshold line
        assert "t=0" in text

    def test_empty(self):
        assert "(no data)" in ascii_series([])


class TestAsciiStackedBars:
    def test_renders_bars_with_legend_and_totals(self):
        bars = {
            "protean": {"exec": 0.1, "queue": 0.05},
            "molecule": {"exec": 0.1, "queue": 0.6},
        }
        text = ascii_stacked_bars(bars, title="P99 breakdown")
        assert "P99 breakdown" in text
        assert "protean" in text and "molecule" in text
        assert "█=exec" in text
        assert "0.7" in text  # molecule total

    def test_bars_scale_to_max(self):
        bars = {"a": {"x": 1.0}, "b": {"x": 0.5}}
        text = ascii_stacked_bars(bars, width=20)
        lines = [l for l in text.splitlines() if "│" in l]
        a_fill = lines[0].count("█")
        b_fill = lines[1].count("█")
        assert a_fill == 20
        assert b_fill == 10

    def test_empty(self):
        assert "(no data)" in ascii_stacked_bars({})
