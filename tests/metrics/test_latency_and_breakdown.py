"""Tests for latency percentiles, CDF, and the tail breakdown."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.breakdown import (
    COMPONENT_ORDER,
    breakdown,
    p99_stacked_breakdown,
    tail_breakdown,
)
from repro.metrics.latency import latency_cdf, mean_latency, p50, p99, percentile, tail_records
from repro.metrics.records import RequestRecord


def record(latency, *, strict=True, queue=0.0, interference=0.0):
    exec_min = latency - queue - interference
    return RequestRecord(
        model="m",
        strict=strict,
        arrival=0.0,
        completion=latency,
        deadline=1.0 if strict else None,
        batch_wait=0.0,
        cold_start=0.0,
        queue_delay=queue,
        exec_min=exec_min,
        deficiency=0.0,
        interference=interference,
    )


class TestPercentiles:
    def test_percentile_of_known_values(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 99) == pytest.approx(99.01)

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 99))
        assert math.isnan(p99([]))
        assert math.isnan(mean_latency([]))

    def test_p50_p99_over_records(self):
        records = [record(l) for l in np.linspace(0.01, 1.0, 100)]
        assert p50(records) == pytest.approx(0.505, rel=0.02)
        assert p99(records) < 1.0
        assert p99(records) > 0.98

    def test_mean(self):
        records = [record(0.1), record(0.3)]
        assert mean_latency(records) == pytest.approx(0.2)


class TestCdf:
    def test_cdf_monotone_and_bounded(self):
        records = [record(l) for l in np.random.default_rng(0).random(500)]
        values, fractions = latency_cdf(records)
        assert (np.diff(values) >= 0).all()
        assert fractions[0] > 0.0 and fractions[-1] == 1.0

    def test_cdf_empty(self):
        values, fractions = latency_cdf([])
        assert values.size == 0 and fractions.size == 0

    def test_cdf_single_sample_terminates_at_one(self):
        # Regression: one record produced fraction [0.0] — a CDF that
        # never reached cumulative 1.0.
        values, fractions = latency_cdf([record(0.25)])
        assert fractions.tolist() == [1.0]
        assert values.tolist() == [0.25]

    def test_cdf_minimum_has_mass_one_over_n(self):
        # Regression: the fraction grid used linspace(0, 1, n), assigning
        # cumulative fraction 0.0 to the sample minimum. An empirical CDF
        # starts at 1/n — the smallest sample accounts for 1/N of the mass.
        records = [record(l) for l in np.linspace(0.1, 1.0, 10)]
        values, fractions = latency_cdf(records)
        assert fractions[0] == pytest.approx(0.1)
        assert values[0] == pytest.approx(0.1)

    def test_cdf_two_samples(self):
        values, fractions = latency_cdf([record(0.1), record(0.3)])
        assert fractions.tolist() == [0.5, 1.0]
        assert values.tolist() == [0.1, 0.3]

    def test_cdf_points_lie_on_empirical_cdf(self):
        # Every returned (value, fraction) pair must satisfy
        # fraction == #{latency <= value} / N exactly, including when the
        # curve is subsampled (points < N).
        latencies = np.random.default_rng(3).random(257)
        records = [record(l) for l in latencies]
        for points in (257, 64, 10, 3):
            values, fractions = latency_cdf(records, points=points)
            assert len(values) == min(points, len(records))
            for value, fraction in zip(values, fractions):
                empirical = np.sum(latencies <= value) / latencies.size
                assert fraction == pytest.approx(empirical)

    def test_cdf_median_matches_percentile(self):
        records = [record(l) for l in np.linspace(0.0, 1.0, 101)]
        values, fractions = latency_cdf(records, points=101)
        median_index = np.argmin(np.abs(fractions - 0.5))
        assert values[median_index] == pytest.approx(0.5, abs=0.02)


class TestTailRecords:
    def test_tail_selects_top_percent(self):
        records = [record(l) for l in np.linspace(0.01, 1.0, 100)]
        tail = tail_records(records, 99)
        assert len(tail) <= 2
        assert all(r.latency >= 0.99 for r in tail)

    def test_tail_of_empty(self):
        assert tail_records([], 99) == []


class TestBreakdown:
    def test_components_sum_to_mean_latency(self):
        records = [
            record(0.3, queue=0.1, interference=0.05),
            record(0.5, queue=0.2, interference=0.1),
        ]
        result = breakdown(records)
        assert result.total == pytest.approx(0.4)
        assert result.queue_delay == pytest.approx(0.15)
        assert result.interference == pytest.approx(0.075)

    def test_empty_breakdown_is_zero(self):
        result = breakdown([])
        assert result.total == 0.0
        assert result.fractions() == {name: 0.0 for name in COMPONENT_ORDER}

    def test_fractions_sum_to_one(self):
        records = [record(0.3, queue=0.1, interference=0.05)]
        fractions = breakdown(records).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_as_dict_order(self):
        result = breakdown([record(0.2)])
        assert tuple(result.as_dict().keys()) == COMPONENT_ORDER

    def test_tail_breakdown_reflects_tail_only(self):
        fast = [record(0.1) for _ in range(99)]
        slow = [record(1.0, queue=0.9)]
        result = tail_breakdown(fast + slow, 99)
        assert result.queue_delay == pytest.approx(0.9)

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=50))
    def test_breakdown_total_equals_mean_latency(self, latencies):
        records = [record(l) for l in latencies]
        result = breakdown(records)
        assert result.total == pytest.approx(float(np.mean(latencies)), rel=1e-9)


class TestP99StackedBreakdown:
    def test_components_sum_to_p99(self):
        records = [record(l, queue=l / 2) for l in np.linspace(0.01, 1.0, 200)]
        stacked = p99_stacked_breakdown(records)
        expected = float(np.percentile([r.latency for r in records], 99))
        assert stacked.total == pytest.approx(expected)

    def test_proportions_match_tail_means(self):
        records = [record(1.0, queue=0.25, interference=0.25)]
        stacked = p99_stacked_breakdown(records)
        fractions = stacked.fractions()
        assert fractions["queue_delay"] == pytest.approx(0.25)
        assert fractions["interference"] == pytest.approx(0.25)
        assert fractions["exec_min"] == pytest.approx(0.5)

    def test_empty_records(self):
        assert p99_stacked_breakdown([]).total == 0.0
