"""Tests for request records, collection, and SLO compliance."""

import pytest

from repro.metrics.records import RecordCollector, RequestRecord
from repro.metrics.slo import (
    collector_compliance,
    slo_compliance,
    slo_compliance_percent,
    violations,
)


def record(
    *,
    strict=True,
    arrival=0.0,
    completion=0.1,
    deadline=0.15,
    batch_wait=0.01,
    cold=0.0,
    queue=0.02,
    exec_min=0.05,
    deficiency=0.01,
    interference=0.01,
    model="resnet50",
):
    if not strict:
        deadline = None
    return RequestRecord(
        model=model,
        strict=strict,
        arrival=arrival,
        completion=completion,
        deadline=deadline,
        batch_wait=batch_wait,
        cold_start=cold,
        queue_delay=queue,
        exec_min=exec_min,
        deficiency=deficiency,
        interference=interference,
    )


class TestRequestRecord:
    def test_latency(self):
        assert record(arrival=1.0, completion=1.25).latency == pytest.approx(0.25)

    def test_components_sum_to_latency(self):
        r = record()
        assert sum(r.components().values()) == pytest.approx(r.latency)

    def test_slo_met_boundaries(self):
        assert record(completion=0.15, deadline=0.15).slo_met is True
        assert record(completion=0.150001, deadline=0.15).slo_met is False
        assert record(strict=False).slo_met is None


class TestCollector:
    def test_filters(self):
        collector = RecordCollector()
        collector.add(record(strict=True, model="a"))
        collector.add(record(strict=False, model="b"))
        collector.add(record(strict=True, model="b"))
        assert len(collector) == 3
        assert len(collector.strict()) == 2
        assert len(collector.best_effort()) == 1
        assert len(collector.for_model("b")) == 2

    def test_latencies_array(self):
        collector = RecordCollector()
        collector.add(record(arrival=0.0, completion=0.1))
        collector.add(record(arrival=0.0, completion=0.3))
        assert collector.latencies().tolist() == pytest.approx([0.1, 0.3])

    def test_dropped_counter(self):
        collector = RecordCollector()
        collector.mark_dropped(3)
        collector.mark_dropped()
        assert collector.dropped_requests == 4


class TestSloCompliance:
    def test_all_met(self):
        records = [record() for _ in range(10)]
        assert slo_compliance(records) == 1.0
        assert slo_compliance_percent(records) == 100.0

    def test_partial(self):
        records = [record(), record(completion=0.5)]
        assert slo_compliance(records) == pytest.approx(0.5)

    def test_ignores_best_effort(self):
        records = [record(), record(strict=False, completion=99.0)]
        assert slo_compliance(records) == 1.0

    def test_nan_without_strict_requests(self):
        import math

        assert math.isnan(slo_compliance([record(strict=False)]))

    def test_dropped_count_as_violations(self):
        records = [record() for _ in range(3)]
        assert slo_compliance(records, dropped_strict=1) == pytest.approx(0.75)

    def test_collector_compliance_includes_drops(self):
        collector = RecordCollector()
        collector.add(record())
        collector.mark_dropped(1)
        assert collector_compliance(collector) == pytest.approx(0.5)

    def test_violations_listing(self):
        good = record()
        bad = record(completion=9.9)
        assert violations([good, bad, record(strict=False)]) == [bad]
