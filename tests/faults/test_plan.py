"""Tests for the fault plan data model and its JSON round-trip."""

import pytest

from repro.errors import FaultPlanError
from repro.faults import EMPTY_PLAN, FaultKind, FaultPlan, FaultSpec, demo_plan


class TestFaultSpec:
    def test_string_kind_coerces(self):
        spec = FaultSpec("node_crash", at=5.0)
        assert spec.kind is FaultKind.NODE_CRASH

    def test_windowed_kinds_need_duration(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.SLOW_SLICE, at=1.0)
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.NETWORK_DELAY, at=1.0, delay_seconds=0.1)

    def test_crash_needs_no_duration(self):
        assert FaultSpec(FaultKind.NODE_CRASH, at=1.0).duration == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.NODE_CRASH, at=-1.0)

    def test_slow_slice_multiplier_must_exceed_one(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(
                FaultKind.SLOW_SLICE, at=0.0, duration=1.0, multiplier=1.0
            )

    def test_failure_probability_bounds(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(
                FaultKind.CONTAINER_START_FAILURE,
                at=0.0,
                duration=1.0,
                failure_probability=0.0,
            )
        with pytest.raises(FaultPlanError):
            FaultSpec(
                FaultKind.CONTAINER_START_FAILURE,
                at=0.0,
                duration=1.0,
                failure_probability=1.5,
            )

    def test_network_delay_needs_positive_sum(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.NETWORK_DELAY, at=0.0, duration=1.0)

    def test_negative_retry_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(
                FaultKind.CONTAINER_START_FAILURE,
                at=0.0,
                duration=1.0,
                retry_seconds=-1.0,
            )

    def test_until(self):
        spec = FaultSpec(FaultKind.SLOW_SLICE, at=2.0, duration=3.0)
        assert spec.until == 5.0
        assert FaultSpec(FaultKind.NODE_CRASH, at=2.0).until == 2.0

    def test_dict_round_trip_elides_defaults(self):
        spec = FaultSpec(FaultKind.NODE_CRASH, at=4.0)
        payload = spec.to_dict()
        assert payload == {"kind": "node_crash", "at": 4.0}
        assert FaultSpec.from_dict(payload) == spec

    def test_from_dict_rejects_bad_entries(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"kind": "node_crash", "at": 1.0, "bogus": 2})
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"kind": "meteor_strike", "at": 1.0})
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"kind": "node_crash"})


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not EMPTY_PLAN
        assert len(EMPTY_PLAN) == 0

    def test_list_input_becomes_tuple(self):
        plan = FaultPlan([FaultSpec(FaultKind.NODE_CRASH, at=1.0)])
        assert isinstance(plan.faults, tuple)
        assert bool(plan)

    def test_ordered_sorts_by_time(self):
        plan = FaultPlan(
            (
                FaultSpec(FaultKind.NODE_CRASH, at=9.0),
                FaultSpec(FaultKind.NODE_CRASH, at=3.0),
            )
        )
        assert [s.at for s in plan.ordered()] == [3.0, 9.0]

    def test_json_round_trip(self, tmp_path):
        plan = demo_plan(100.0)
        path = tmp_path / "plan.json"
        plan.to_json(path)
        assert FaultPlan.from_json(path) == plan

    def test_from_dict_accepts_bare_list(self):
        plan = FaultPlan.from_dict([{"kind": "node_crash", "at": 1.0}])
        assert len(plan) == 1

    def test_from_dict_rejects_bad_shapes(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"nope": []})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"faults": "nope"})

    def test_from_json_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json(path)

    def test_demo_plan_covers_every_kind(self):
        plan = demo_plan(60.0)
        assert {s.kind for s in plan.faults} == set(FaultKind)
        assert all(s.until <= 60.0 for s in plan.faults)
