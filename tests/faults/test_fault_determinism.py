"""Fault-injection determinism regression.

Two promises are pinned here (both acceptance criteria of the fault
subsystem):

1. an *empty* fault plan is bit-identical to faults disabled — threading
   the fault layer through the runner must not perturb any RNG stream or
   event ordering when no fault is scheduled; and
2. the same seed and the same plan reproduce the same faulty run
   bit-for-bit, so failure experiments are replayable.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.faults import EMPTY_PLAN, FaultKind, FaultPlan, FaultSpec

CONFIG = ExperimentConfig(
    duration=25.0,
    warmup=5.0,
    drain=50.0,
    n_nodes=2,
    seed=11,
    procurement="hybrid",
    spot_availability="high",
)

PLAN = FaultPlan(
    (
        FaultSpec(
            FaultKind.CONTAINER_START_FAILURE,
            at=4.0,
            duration=6.0,
            failure_probability=0.5,
            retry_seconds=1.0,
        ),
        FaultSpec(FaultKind.NODE_CRASH, at=8.0),
        FaultSpec(
            FaultKind.SLOW_SLICE, at=10.0, duration=6.0, multiplier=2.0
        ),
        FaultSpec(
            FaultKind.NETWORK_DELAY,
            at=12.0,
            duration=6.0,
            delay_seconds=0.02,
            jitter_seconds=0.03,
        ),
    )
)


def _rows(config: ExperimentConfig):
    result = run_scheme("protean", config)
    return result.summary.row(), dict(result.extras)


def test_empty_plan_is_bit_identical_to_disabled():
    disabled_row, disabled_extras = _rows(CONFIG)
    empty_row, empty_extras = _rows(CONFIG.with_overrides(fault_plan=EMPTY_PLAN))
    assert disabled_row == empty_row  # dict equality on floats == bitwise
    assert disabled_extras == empty_extras


def test_same_plan_twice_is_bit_identical():
    config = CONFIG.with_overrides(fault_plan=PLAN)
    first_row, first_extras = _rows(config)
    second_row, second_extras = _rows(config)
    assert first_row == second_row
    assert first_extras == second_extras


@pytest.mark.parametrize("tracing", [False, True])
def test_tracing_stays_a_pure_observer_under_faults(tracing):
    # Guarded by the bit-identity of the traced and untraced faulty runs.
    base_row, base_extras = _rows(CONFIG.with_overrides(fault_plan=PLAN))
    traced_row, traced_extras = _rows(
        CONFIG.with_overrides(fault_plan=PLAN, tracing=tracing)
    )
    assert base_row == traced_row
    assert base_extras == traced_extras


def test_fault_plan_changes_outcomes():
    # Guard the guard: faults must actually perturb the run.
    clean_row, clean_extras = _rows(CONFIG)
    faulty_row, faulty_extras = _rows(CONFIG.with_overrides(fault_plan=PLAN))
    assert faulty_extras["fault_crashes"] == 1
    assert faulty_extras["crashes_handled"] == 1
    assert "fault_crashes" not in clean_extras
    assert clean_row != faulty_row
