"""End-to-end recovery: spot lifecycle and crash healing, on state + spans.

The acceptance invariant for the fault subsystem: every injected capacity
loss (``fault.node_crash`` instant, ``spot.drain`` interval) is followed
by a ``procure.node_built`` span within the provisioning SLA — asserted
here on the recorded span log via :func:`repro.faults.check_recovery`,
alongside direct platform-state assertions (drain, eviction, stranded
batch resubmission, replacement).
"""

import pytest

from repro.cluster.spot import HIGH_AVAILABILITY, SpotAvailability, SpotMarket
from repro.core.procurement import (
    Procurement,
    ProcurementConfig,
    ProcurementMode,
)
from repro.core.protean import ProteanScheme
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    assert_recovery,
    check_recovery,
)
from repro.observability.tracer import SimTracer
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("resnet50"), 8 / 128)

PROVISION_SECONDS = 5.0
SLA = PROVISION_SECONDS + 0.5


def make_rig(sim, tracer, *, n_nodes=1):
    scheme = ProteanScheme(
        enable_reconfigurator=False, enable_autoscaler=False
    )
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=n_nodes, cold_start_seconds=1.0),
        tracer=tracer,
    )
    market = SpotMarket(
        sim,
        sim.rng.stream("spot"),
        HIGH_AVAILABILITY,
        notice_seconds=10.0,
        check_interval=20.0,
        tracer=tracer,
    )
    procurement = Procurement(
        platform,
        market,
        ProcurementConfig(
            mode=ProcurementMode.HYBRID, provision_seconds=PROVISION_SECONDS
        ),
    )
    procurement.provision_initial()
    return platform, market, procurement


def admit(platform, arrival, count=1):
    def _go():
        for _ in range(count):
            spec = RequestSpec(arrival=arrival, model=MODEL, strict=True)
            platform.gateway.admit(Request.from_spec(spec))

    platform.sim.at(arrival, _go)


class TestSpotLifecycle:
    def test_notice_drain_evict_replace_within_sla(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        platform, market, procurement = make_rig(sim, tracer)
        node = platform.cluster.nodes[0]
        assert node.vm.tier.value == "spot"
        # Flip the market so the first revocation draw (t=20) fires.
        market.availability = SpotAvailability("certain", 1.0)

        sim.run(until=21.0)  # notice at t=20
        assert market.notices_issued == 1
        assert not node.accepting  # draining
        assert node.state.value == "draining"

        sim.run(until=26.0)  # replacement lands at t=25 (on-demand: the
        assert len(platform.cluster) == 2  # dry market rejects spot)

        sim.run(until=31.0)  # eviction at t=30
        assert market.evictions == 1
        assert node.state.value == "retired"
        assert len(platform.cluster) == 1
        assert platform.cluster.nodes[0] is not node

        # The platform still serves traffic on the replacement.
        admit(platform, 32.0, count=8)
        sim.run(until=60.0)
        assert len(platform.collector.records) == 8

        # Span log: notice -> drain interval -> eviction, and the drain is
        # healed by a node_built within the provisioning SLA.
        names = [s.name for s in tracer.spans]
        for expected in (
            "spot.notice",
            "spot.drain",
            "spot.eviction",
            "node.retire",
        ):
            assert expected in names
        (drain,) = [s for s in tracer.spans if s.name == "spot.drain"]
        assert drain.start == pytest.approx(20.0)
        assert drain.end == pytest.approx(30.0)
        report = assert_recovery(tracer.spans, sla_seconds=SLA)
        assert len(report.matches) == 1
        assert report.max_delay == pytest.approx(PROVISION_SECONDS)

    def test_crash_strands_work_then_resubmits_on_replacement(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        platform, market, procurement = make_rig(sim, tracer)
        node = platform.cluster.nodes[0]
        # A batch is admitted at t=2: it forms, pays a 1 s cold start, and
        # is executing (or queued) when the node crashes at t=2.5.
        admit(platform, 2.0, count=8)
        plan = FaultPlan(
            (FaultSpec(FaultKind.NODE_CRASH, at=2.5, target=node.name),)
        )
        injector = FaultInjector(
            platform,
            procurement,
            plan,
            rng=sim.rng.stream("faults"),
            tracer=tracer,
        )
        injector.arm()
        sim.run(until=60.0)

        # Crash path: no notice, no eviction, watcher cancelled.
        assert market.notices_issued == 0
        assert market.evictions == 0
        assert procurement.crashes_handled == 1
        assert node.state.value == "retired"
        # The stranded batch was resubmitted and completed on the
        # replacement node.
        assert platform.dispatcher.resubmissions >= 1
        assert len(platform.collector.records) == 8
        assert len(platform.cluster) == 1
        assert platform.cluster.nodes[0] is not node

        report = assert_recovery(tracer.spans, sla_seconds=SLA)
        assert len(report.matches) == 1
        (crash,) = [s for s in tracer.spans if s.name == "fault.node_crash"]
        assert crash.attrs["node"] == node.name


class TestRunnerRecovery:
    def test_runner_crash_recovers_within_provisioning_sla(self):
        plan = FaultPlan((FaultSpec(FaultKind.NODE_CRASH, at=10.0),))
        config = ExperimentConfig(
            duration=30.0,
            warmup=5.0,
            drain=60.0,
            n_nodes=2,
            seed=3,
            tracing=True,
            procurement="hybrid",
            spot_availability="high",
            fault_plan=plan,
        )
        result = run_scheme("protean", config)
        assert result.extras["fault_crashes"] == 1
        assert result.extras["crashes_handled"] == 1
        report = check_recovery(
            result.tracer.spans,
            sla_seconds=config.provision_seconds + 0.5,
        )
        assert report.ok
        assert len(report.matches) == 1
        assert report.max_delay <= config.provision_seconds + 0.5
        assert result.extras["nodes_at_end"] == 2

    def test_runner_full_demo_plan_recovers(self):
        # Every fault kind at once, via the same demo plan the CLI uses.
        from repro.faults import demo_plan

        config = ExperimentConfig(
            duration=40.0,
            warmup=5.0,
            drain=60.0,
            n_nodes=2,
            seed=7,
            tracing=True,
            procurement="hybrid",
            spot_availability="high",
            fault_plan=demo_plan(40.0),
        )
        result = run_scheme("protean", config)
        assert result.extras["faults_injected"] == 4
        report = check_recovery(
            result.tracer.spans,
            sla_seconds=config.provision_seconds + 0.5,
        )
        assert report.ok
