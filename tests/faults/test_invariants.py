"""Tests for the recovery invariants over synthetic span logs."""

import pytest

from repro.errors import FaultRecoveryError
from repro.faults import assert_recovery, check_recovery
from repro.observability.span import Span


def span(name, start, end=None):
    return Span(name=name, start=start, end=start if end is None else end)


class TestCheckRecovery:
    def test_fault_matched_within_sla(self):
        spans = [span("fault.node_crash", 10.0), span("procure.node_built", 35.0)]
        report = check_recovery(spans, sla_seconds=30.0)
        assert report.ok
        assert report.max_delay == pytest.approx(25.0)
        assert len(report.matches) == 1

    def test_late_recovery_is_a_violation(self):
        spans = [span("fault.node_crash", 10.0), span("procure.node_built", 45.0)]
        report = check_recovery(spans, sla_seconds=30.0)
        assert not report.ok
        assert len(report.violations) == 1
        assert report.violations[0].name == "fault.node_crash"

    def test_matching_is_one_to_one(self):
        # Two crashes, one rebuild: a single recovery cannot heal both.
        spans = [
            span("fault.node_crash", 10.0),
            span("fault.node_crash", 12.0),
            span("procure.node_built", 20.0),
        ]
        report = check_recovery(spans, sla_seconds=30.0)
        assert len(report.matches) == 1
        assert len(report.violations) == 1
        assert report.violations[0].start == 12.0

    def test_recovery_before_fault_does_not_count(self):
        spans = [span("procure.node_built", 5.0), span("fault.node_crash", 10.0)]
        report = check_recovery(spans, sla_seconds=30.0)
        assert not report.ok

    def test_drain_spans_count_as_faults(self):
        spans = [
            span("spot.drain", 20.0, end=50.0),
            span("procure.node_built", 45.0),
        ]
        report = check_recovery(spans, sla_seconds=30.0)
        assert report.ok
        assert report.max_delay == pytest.approx(25.0)

    def test_no_faults_is_trivially_ok(self):
        report = check_recovery(
            [span("procure.node_built", 1.0)], sla_seconds=30.0
        )
        assert report.ok
        assert report.max_delay == 0.0
        assert report.matches == ()

    def test_exact_sla_boundary_is_inclusive(self):
        spans = [span("fault.node_crash", 0.0), span("procure.node_built", 30.0)]
        assert check_recovery(spans, sla_seconds=30.0).ok

    def test_custom_names(self):
        spans = [span("my.fault", 1.0), span("my.fix", 2.0)]
        report = check_recovery(
            spans,
            sla_seconds=5.0,
            fault_names=("my.fault",),
            recovery_name="my.fix",
        )
        assert report.ok

    def test_describe_mentions_violations(self):
        spans = [span("fault.node_crash", 10.0)]
        report = check_recovery(spans, sla_seconds=30.0)
        assert "VIOLATION" in report.describe()


class TestAssertRecovery:
    def test_raises_on_violation(self):
        with pytest.raises(FaultRecoveryError, match="VIOLATION"):
            assert_recovery(
                [span("fault.node_crash", 10.0)], sla_seconds=30.0
            )

    def test_returns_clean_report(self):
        spans = [span("fault.node_crash", 10.0), span("procure.node_built", 15.0)]
        report = assert_recovery(spans, sla_seconds=30.0)
        assert report.ok
