"""Behavioural tests for the fault injector against a live platform."""

import pytest

from repro.cluster.spot import HIGH_AVAILABILITY, SpotAvailability, SpotMarket
from repro.core.procurement import (
    Procurement,
    ProcurementConfig,
    ProcurementMode,
)
from repro.core.protean import ProteanScheme
from repro.errors import FaultError
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.observability.tracer import NULL_TRACER, SimTracer
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("resnet50"), 8 / 128)


def make_rig(
    sim,
    *,
    n_nodes=2,
    mode=ProcurementMode.HYBRID,
    availability=HIGH_AVAILABILITY,
    tracer=NULL_TRACER,
):
    scheme = ProteanScheme(
        enable_reconfigurator=False, enable_autoscaler=False
    )
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=n_nodes, cold_start_seconds=1.0),
        tracer=tracer,
    )
    market = SpotMarket(
        sim,
        sim.rng.stream("spot"),
        availability,
        notice_seconds=10.0,
        check_interval=20.0,
        tracer=tracer,
    )
    procurement = Procurement(
        platform,
        market,
        ProcurementConfig(mode=mode, provision_seconds=5.0),
    )
    procurement.provision_initial()
    return platform, market, procurement


def inject(platform, procurement, plan, *, tracer=NULL_TRACER):
    injector = FaultInjector(
        platform,
        procurement,
        plan,
        rng=platform.sim.rng.stream("faults"),
        tracer=tracer,
    )
    injector.arm()
    return injector


class TestNodeCrash:
    def test_crash_retires_node_and_builds_replacement(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        platform, _market, procurement = make_rig(sim, tracer=tracer)
        victim = platform.cluster.nodes[0]
        plan = FaultPlan(
            (FaultSpec(FaultKind.NODE_CRASH, at=5.0, target=victim.name),)
        )
        injector = inject(platform, procurement, plan, tracer=tracer)
        sim.run(until=5.1)
        assert victim.state.value == "retired"
        assert victim.vm.crashed
        assert len(platform.cluster) == 1
        assert procurement.crashes_handled == 1
        sim.run(until=10.1)  # replacement after provision_seconds=5
        assert len(platform.cluster) == 2
        names = [s.name for s in tracer.spans]
        assert names.count("fault.node_crash") == 1
        assert names.count("procure.node_built") == 3  # 2 initial + 1
        assert injector.stats()["fault_crashes"] == 1

    def test_crash_on_spot_node_cancels_market_machinery(self):
        sim = Simulator()
        platform, market, procurement = make_rig(sim, n_nodes=1)
        node = platform.cluster.nodes[0]
        assert node.vm.tier.value == "spot"
        # Force a revocation notice at the first check (t=20), then crash
        # the node mid-drain (t=26): the pending eviction at t=30 must be
        # cancelled and no second replacement requested.
        market.availability = SpotAvailability("certain", 1.0)
        plan = FaultPlan(
            (FaultSpec(FaultKind.NODE_CRASH, at=26.0, target=node.name),)
        )
        inject(platform, procurement, plan)
        sim.run(until=60.0)
        assert market.notices_issued == 1
        assert market.evictions == 0
        assert procurement.crashes_handled == 1
        # The notice's replacement (built at t=25) is the only one.
        assert procurement.replacements_requested == 1
        assert len(platform.cluster) == 1

    def test_unknown_target_is_skipped(self):
        sim = Simulator()
        platform, _market, procurement = make_rig(sim)
        plan = FaultPlan(
            (FaultSpec(FaultKind.NODE_CRASH, at=1.0, target="no-such-node"),)
        )
        injector = inject(platform, procurement, plan)
        sim.run(until=2.0)
        assert injector.skipped_no_target == 1
        assert injector.crashes_injected == 0
        assert len(platform.cluster) == 2


class TestSlowSlice:
    def test_slowdown_applied_then_lifted(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        platform, _market, procurement = make_rig(
            sim, n_nodes=1, tracer=tracer
        )
        node = platform.cluster.nodes[0]
        plan = FaultPlan(
            (
                FaultSpec(
                    FaultKind.SLOW_SLICE,
                    at=2.0,
                    duration=3.0,
                    multiplier=2.5,
                    target=node.name,
                ),
            )
        )
        injector = inject(platform, procurement, plan, tracer=tracer)
        sim.run(until=2.1)
        assert node.gpu.slowdown == 2.5
        assert all(s.slowdown == 2.5 for s in node.gpu.slices)
        sim.run(until=5.1)
        assert node.gpu.slowdown == 1.0
        assert all(s.slowdown == 1.0 for s in node.gpu.slices)
        assert injector.slow_slice_windows == 1
        (span,) = [s for s in tracer.spans if s.name == "fault.slow_slice"]
        assert span.closed
        assert span.start == pytest.approx(2.0)
        assert span.duration == pytest.approx(3.0)
        assert span.attrs["multiplier"] == 2.5


class TestContainerStartFailure:
    def test_failed_starts_delay_boot_then_window_closes(self):
        sim = Simulator()
        tracer = SimTracer(sim)
        platform, _market, procurement = make_rig(
            sim, n_nodes=1, tracer=tracer
        )
        node = platform.cluster.nodes[0]
        pool = platform.pool_for(node)
        plan = FaultPlan(
            (
                FaultSpec(
                    FaultKind.CONTAINER_START_FAILURE,
                    at=1.0,
                    duration=5.0,
                    failure_probability=1.0,
                    retry_seconds=2.0,
                ),
            )
        )
        injector = inject(platform, procurement, plan, tracer=tracer)
        sim.at(2.0, lambda: pool.prewarm(MODEL.name))
        # p=1 hits the retry cap: 5 failures x 2 s + 1 s cold start = 11 s.
        sim.run(until=12.9)
        assert pool.idle_count(MODEL.name) == 0
        sim.run(until=13.1)
        assert pool.idle_count(MODEL.name) == 1
        assert injector.start_failures_injected == 5
        # The window closed at t=6: later spawns boot normally.
        assert platform.container_start_interceptor is None
        sim.at(20.0, lambda: pool.prewarm(MODEL.name))
        sim.run(until=21.1)
        assert pool.idle_count(MODEL.name) == 2
        (window,) = [
            s for s in tracer.spans if s.name == "fault.container_start_window"
        ]
        assert window.closed and window.attrs["failures"] == 5
        fails = [
            s for s in tracer.spans if s.name == "fault.container_start_fail"
        ]
        assert len(fails) == 5

    def test_nodes_built_mid_window_inherit_the_fault(self):
        sim = Simulator()
        platform, _market, procurement = make_rig(sim, n_nodes=1)
        plan = FaultPlan(
            (
                FaultSpec(
                    FaultKind.CONTAINER_START_FAILURE,
                    at=1.0,
                    duration=20.0,
                    failure_probability=1.0,
                    retry_seconds=1.0,
                ),
            )
        )
        inject(platform, procurement, plan)
        sim.run(until=2.0)
        from repro.cluster.pricing import VMTier

        node = platform.build_node(VMTier.ON_DEMAND)
        assert platform.pool_for(node).start_interceptor is not None


class TestNetworkDelay:
    def test_admissions_delayed_inside_window_only(self):
        sim = Simulator()
        platform, _market, procurement = make_rig(sim, n_nodes=1)
        plan = FaultPlan(
            (
                FaultSpec(
                    FaultKind.NETWORK_DELAY,
                    at=1.0,
                    duration=4.0,
                    delay_seconds=0.5,
                ),
            )
        )
        injector = inject(platform, procurement, plan)
        seen = []
        platform.request_observers.append(lambda r: seen.append(sim.now))

        def admit(arrival):
            spec = RequestSpec(arrival=arrival, model=MODEL, strict=True)
            platform.gateway.admit(Request.from_spec(spec))

        sim.at(2.0, lambda: admit(2.0))
        sim.at(6.0, lambda: admit(6.0))
        sim.run(until=10.0)
        assert seen == [pytest.approx(2.5), pytest.approx(6.0)]
        assert injector.delayed_admissions == 1
        assert platform.gateway.delayed_admissions == 1
        assert platform.gateway.delay_provider is None


class TestValidationAndArming:
    def test_overlapping_single_slot_windows_rejected(self):
        sim = Simulator()
        platform, _market, procurement = make_rig(sim)
        for kind, extra in (
            (FaultKind.NETWORK_DELAY, {"delay_seconds": 0.1}),
            (FaultKind.CONTAINER_START_FAILURE, {}),
        ):
            plan = FaultPlan(
                (
                    FaultSpec(kind, at=1.0, duration=5.0, **extra),
                    FaultSpec(kind, at=4.0, duration=5.0, **extra),
                )
            )
            with pytest.raises(FaultError):
                FaultInjector(
                    platform,
                    procurement,
                    plan,
                    rng=sim.rng.stream("faults"),
                )

    def test_back_to_back_windows_allowed(self):
        sim = Simulator()
        platform, _market, procurement = make_rig(sim)
        plan = FaultPlan(
            (
                FaultSpec(
                    FaultKind.NETWORK_DELAY,
                    at=1.0,
                    duration=2.0,
                    delay_seconds=0.1,
                ),
                FaultSpec(
                    FaultKind.NETWORK_DELAY,
                    at=3.0,
                    duration=2.0,
                    delay_seconds=0.1,
                ),
            )
        )
        FaultInjector(
            platform, procurement, plan, rng=sim.rng.stream("faults")
        )

    def test_double_arm_rejected(self):
        sim = Simulator()
        platform, _market, procurement = make_rig(sim)
        plan = FaultPlan((FaultSpec(FaultKind.NODE_CRASH, at=1.0),))
        injector = inject(platform, procurement, plan)
        with pytest.raises(FaultError):
            injector.arm()

    def test_stats_keys_are_stable(self):
        sim = Simulator()
        platform, _market, procurement = make_rig(sim)
        injector = FaultInjector(
            platform,
            procurement,
            FaultPlan(),
            rng=sim.rng.stream("faults"),
        )
        assert set(injector.stats()) == {
            "faults_injected",
            "fault_crashes",
            "fault_slow_slice_windows",
            "fault_start_failures",
            "fault_delayed_admissions",
            "fault_skipped_no_target",
        }
