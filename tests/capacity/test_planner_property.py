"""Property tests: the planner never loses the simulated optimum.

The planner's admissibility guarantee (ISSUE 5's acceptance bar): over
seeded grids, the two-stage planner (screen, simulate survivors,
escalate where the screen's dominator fails validation) must recommend
exactly the configuration that exhaustively simulating *every* candidate
declares optimal — while the pre-screen still prunes at least half of
the grid.
"""

import dataclasses

import pytest

from repro.capacity import (
    CandidateGrid,
    PLAN_PRESETS,
    plan,
    screen_candidates,
    simulated_optimum,
)

#: Seeded what-if scenarios: (workload overrides, grid). Small spaces so
#: exhaustive simulation stays cheap, but spanning n_nodes × procurement
#: × scheme the way the planner is used.
SCENARIOS = [
    pytest.param(
        {"seed": seed},
        CandidateGrid(
            n_nodes=(2, 4, 6, 8, 12),
            procurement=("on_demand_only", "hybrid", "spot_only"),
            schemes=("protean",),
        ),
        id=f"protean-seed{seed}",
    )
    for seed in (0, 1, 2)
] + [
    pytest.param(
        {"seed": 3},
        CandidateGrid(
            n_nodes=(2, 4, 6, 8, 12),
            procurement=("on_demand_only",),
            schemes=("protean", "molecule"),
        ),
        id="two-schemes-seed3",
    ),
    pytest.param(
        # Heavier demand pushes the conservative dominator up to n6, so
        # the grid carries a deeper dominated tail above it.
        {"seed": 4, "offered_load": 0.6},
        CandidateGrid(
            n_nodes=(2, 4, 6, 8, 12, 16),
            procurement=("on_demand_only", "spot_only"),
            schemes=("protean",),
        ),
        id="heavier-load-seed4",
    ),
]


@pytest.mark.parametrize("overrides, grid", SCENARIOS)
def test_planner_never_loses_the_simulated_optimum(overrides, grid):
    workload = dataclasses.replace(PLAN_PRESETS["smoke"], **overrides)
    staged = plan(workload, grid=grid, target=0.99, jobs=1)
    exhaustive = plan(
        workload, grid=grid, target=0.99, jobs=1, exhaustive=True
    )

    # Ground truth: cheapest candidate that full simulation validates.
    optimum = simulated_optimum(exhaustive.outcomes, exhaustive.target)
    assert staged.recommended == optimum, (
        f"staged planner recommended {staged.recommended}, exhaustive "
        f"ground truth is {optimum}"
    )

    # The analytic pre-screen must still earn its keep: its initial
    # verdicts prune at least half of the grid (escalation may later buy
    # some back where a dominator fails validation).
    screened = screen_candidates(grid.candidates(workload), target=0.99)
    pruned = sum(1 for decision in screened if not decision.admitted)
    assert pruned / len(screened) >= 0.5, (
        f"pre-screen pruned only {pruned}/{len(screened)} candidates"
    )
    # And stage two never simulates the full grid.
    assert staged.simulated_count < len(staged.outcomes)


def test_escalation_recovers_from_an_overconfident_dominator():
    # Seed 2's rotation pattern makes the n4 dominator miss the target
    # under simulation even though its conservative bound clears it; the
    # planner must walk up the group and land on the true optimum rather
    # than trusting the screen.
    workload = dataclasses.replace(PLAN_PRESETS["smoke"], seed=2)
    grid = CandidateGrid(
        n_nodes=(2, 4, 6, 8, 12),
        procurement=("hybrid",),
        schemes=("protean",),
    )
    staged = plan(workload, grid=grid, target=0.99, jobs=1)
    exhaustive = plan(
        workload, grid=grid, target=0.99, jobs=1, exhaustive=True
    )
    optimum = simulated_optimum(exhaustive.outcomes, exhaustive.target)
    assert staged.recommended == optimum
    # The recommendation was originally dominated-pruned and re-admitted.
    outcome = staged.outcome(staged.recommended)
    assert outcome.decision.admitted
    assert "re-admitted" in outcome.decision.detail
    # Escalation stops as soon as the group validates: the largest size
    # is never simulated.
    assert staged.outcome("protean/hybrid/n12").simulated is None


def test_staged_simulates_no_more_than_exhaustive():
    grid = CandidateGrid(
        n_nodes=(2, 4, 6), procurement=("on_demand_only", "hybrid")
    )
    staged = plan("smoke", grid=grid, target=0.99, jobs=1)
    exhaustive = plan("smoke", grid=grid, target=0.99, jobs=1, exhaustive=True)
    assert staged.recommended == exhaustive.recommended
    assert staged.simulated_count <= exhaustive.simulated_count
