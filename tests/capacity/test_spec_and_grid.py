"""Tests for WorkloadSpec and CandidateGrid (the planner's inputs)."""

import dataclasses

import pytest

from repro.capacity import (
    DEFAULT_NODE_COUNTS,
    PLAN_PRESETS,
    PROCUREMENT_MODES,
    CandidateGrid,
    WorkloadSpec,
    resolve_workload,
    sweepable_knobs,
)
from repro.errors import ConfigurationError


class TestWorkloadSpec:
    def test_rate_is_fixed_across_cluster_sizes(self):
        # The planner's core premise: one workload, many clusters. The
        # absolute request rate must not change with n_nodes the way
        # offered_load-driven configs do.
        spec = PLAN_PRESETS["smoke"]
        rates = {
            spec.to_config(n_nodes=n).request_rate() for n in (1, 2, 4, 8)
        }
        assert len(rates) == 1

    def test_rate_matches_offered_load_at_reference_nodes(self):
        spec = PLAN_PRESETS["smoke"]
        reference = dataclasses.replace(spec, rate=None)
        config = reference.to_config(n_nodes=spec.reference_nodes)
        assert config.request_rate() == pytest.approx(
            spec.resolved_rate() * spec.scale
        )

    def test_explicit_rate_wins(self):
        spec = WorkloadSpec(rate=500.0)
        assert spec.resolved_rate() == 500.0
        assert spec.to_config(n_nodes=3).rate == 500.0

    def test_round_trips_through_dict(self):
        spec = PLAN_PRESETS["twitter"]
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        payload = PLAN_PRESETS["smoke"].to_dict()
        payload["gpu_flavor"] = "b200"
        with pytest.raises(ConfigurationError, match="unknown workload field"):
            WorkloadSpec.from_dict(payload)

    def test_invalid_strict_fraction_rejected(self):
        with pytest.raises(ConfigurationError, match="strict_fraction"):
            WorkloadSpec(strict_fraction=0.0)

    def test_invalid_model_rejected_at_construction(self):
        # WorkloadSpec delegates model validation to ExperimentConfig,
        # which surfaces the registry's own error type.
        from repro.errors import UnknownModelError

        with pytest.raises(UnknownModelError):
            WorkloadSpec(strict_model="not_a_model")

    def test_resolve_workload_accepts_preset_dict_and_spec(self):
        spec = PLAN_PRESETS["wiki"]
        assert resolve_workload("wiki") == spec
        assert resolve_workload(spec) is spec
        assert resolve_workload(spec.to_dict()) == spec

    def test_resolve_workload_rejects_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="unknown workload preset"):
            resolve_workload("narnia")

    def test_resolve_workload_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError, match="must be a WorkloadSpec"):
            resolve_workload(42)


class TestCandidateGrid:
    def test_default_grid_shape(self):
        grid = CandidateGrid()
        assert grid.n_nodes == DEFAULT_NODE_COUNTS
        assert grid.procurement == PROCUREMENT_MODES
        assert len(grid) == len(DEFAULT_NODE_COUNTS) * len(PROCUREMENT_MODES)

    def test_candidates_cross_product_and_stable_keys(self):
        grid = CandidateGrid(
            n_nodes=(2, 4),
            procurement=("on_demand_only",),
            schemes=("protean", "molecule"),
        )
        candidates = grid.candidates(PLAN_PRESETS["smoke"])
        assert [c.key for c in candidates] == [
            "protean/on_demand_only/n2",
            "protean/on_demand_only/n4",
            "molecule/on_demand_only/n2",
            "molecule/on_demand_only/n4",
        ]
        assert all(c.config.n_nodes == c.n_nodes for c in candidates)
        assert len(candidates) == len(grid)

    def test_knobs_expand_and_reach_the_config(self):
        grid = CandidateGrid(
            n_nodes=(2,),
            procurement=("on_demand_only",),
            knobs={"prewarm_containers": (0, 2)},
        )
        candidates = grid.candidates(PLAN_PRESETS["smoke"])
        assert [c.key for c in candidates] == [
            "protean/on_demand_only/n2/prewarm_containers=0",
            "protean/on_demand_only/n2/prewarm_containers=2",
        ]
        assert [c.config.prewarm_containers for c in candidates] == [0, 2]

    def test_scheme_aliases_canonicalise(self):
        grid = CandidateGrid(schemes=("infless",))
        assert grid.schemes == ("infless_llama",)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            CandidateGrid(schemes=("skynet",))

    def test_oracle_rejected_as_unplannable(self):
        with pytest.raises(ConfigurationError, match="oracle"):
            CandidateGrid(schemes=("oracle",))

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown planner knob"):
            CandidateGrid(knobs={"warp_factor": (9,)})

    def test_reserved_fields_are_not_sweepable(self):
        knobs = sweepable_knobs()
        for reserved in ("n_nodes", "trace", "rate", "seed", "procurement"):
            assert reserved not in knobs
        assert "prewarm_containers" in knobs

    def test_unknown_procurement_rejected(self):
        with pytest.raises(ConfigurationError, match="procurement"):
            CandidateGrid(procurement=("barter",))

    def test_bad_node_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            CandidateGrid(n_nodes=())
        with pytest.raises(ConfigurationError):
            CandidateGrid(n_nodes=(0,))
        with pytest.raises(ConfigurationError, match="duplicate"):
            CandidateGrid(n_nodes=(2, 2))

    def test_round_trips_through_dict(self):
        grid = CandidateGrid(
            n_nodes=(2, 4),
            schemes=("protean", "molecule"),
            knobs={"prewarm_containers": (0, 1)},
        )
        assert CandidateGrid.from_dict(grid.to_dict()) == grid

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown grid field"):
            CandidateGrid.from_dict({"n_nodes": [2], "warp": 9})
