"""Tests for the content-addressed simulation cache."""

import pytest

from repro.capacity import (
    CandidateGrid,
    PLAN_PRESETS,
    SimulationCache,
    config_digest,
    plan,
)


class TestConfigDigest:
    def test_digest_is_deterministic_and_content_addressed(self):
        config = PLAN_PRESETS["smoke"].to_config(n_nodes=2)
        assert config_digest("protean", config) == config_digest(
            "protean", config
        )

    def test_digest_distinguishes_scheme_and_config(self):
        config = PLAN_PRESETS["smoke"].to_config(n_nodes=2)
        other = PLAN_PRESETS["smoke"].to_config(n_nodes=4)
        assert config_digest("protean", config) != config_digest(
            "molecule", config
        )
        assert config_digest("protean", config) != config_digest(
            "protean", other
        )


class TestSimulationCache:
    def test_lookup_counts_hits_and_misses(self):
        cache = SimulationCache()
        assert cache.lookup("d1") is None
        cache.store("d1", "result")
        assert cache.lookup("d1") == "result"
        assert "d1" in cache
        assert len(cache) == 1
        stats = cache.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "entries": 1,
            "hit_rate": 0.5,
        }

    def test_pending_digests_count_as_hits(self):
        # A digest already queued in the current batch is a dedup hit
        # even though its result has not landed yet.
        cache = SimulationCache()
        assert cache.lookup("d1", pending={"d1"}) is None
        assert cache.stats()["hits"] == 1

    def test_peek_does_not_count(self):
        cache = SimulationCache()
        cache.store("d1", "result")
        assert cache.peek("d1") == "result"
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_empty_cache_hit_rate_is_zero(self):
        assert SimulationCache().stats()["hit_rate"] == 0.0


class TestPlanCacheIntegration:
    def test_no_duplicate_simulations_across_escalation_rounds(
        self, monkeypatch
    ):
        # The escalation scenario from the planner property tests: seed 2
        # re-admits dominated candidates round by round. Every simulated
        # config must reach the executor exactly once.
        import dataclasses

        import repro.parallel

        real = repro.parallel.execute_keyed
        submitted = []

        def spy(requests, **kwargs):
            submitted.extend(
                config_digest(r.scheme, r.config) for r in requests
            )
            return real(requests, **kwargs)

        monkeypatch.setattr(repro.parallel, "execute_keyed", spy)
        workload = dataclasses.replace(PLAN_PRESETS["smoke"], seed=2)
        grid = CandidateGrid(
            n_nodes=(2, 4, 6, 8, 12),
            procurement=("hybrid",),
            schemes=("protean",),
        )
        report = plan(workload, grid=grid, target=0.99, jobs=1)
        assert len(submitted) == len(set(submitted)), (
            "a config digest was simulated twice"
        )
        assert report.cache_stats["misses"] == len(submitted)

    def test_shared_cache_makes_the_second_plan_free(self, monkeypatch):
        import repro.parallel

        real = repro.parallel.execute_keyed
        calls = []

        def spy(requests, **kwargs):
            calls.append(len(requests))
            return real(requests, **kwargs)

        monkeypatch.setattr(repro.parallel, "execute_keyed", spy)
        cache = SimulationCache()
        grid = CandidateGrid(
            n_nodes=(2, 4), procurement=("on_demand_only",)
        )
        first = plan("smoke", grid=grid, target=0.99, jobs=1, cache=cache)
        first_calls = len(calls)
        second = plan("smoke", grid=grid, target=0.99, jobs=1, cache=cache)
        assert len(calls) == first_calls, (
            "a warm cache must not re-simulate anything"
        )
        assert second.recommended == first.recommended
        assert second.cache_stats["hits"] > first.cache_stats["hits"]

    def test_exhaustive_rerun_reuses_every_staged_simulation(self):
        # The property tests compare staged against exhaustive plans; a
        # shared cache means the exhaustive pass only pays for what the
        # staged pass pruned.
        cache = SimulationCache()
        staged = plan("hetero-smoke", grid="hetero-smoke", jobs=1, cache=cache)
        staged_misses = staged.cache_stats["misses"]
        exhaustive = plan(
            "hetero-smoke",
            grid="hetero-smoke",
            jobs=1,
            exhaustive=True,
            cache=cache,
        )
        assert exhaustive.cache_stats["hits"] >= staged_misses
        assert staged.recommended == exhaustive.recommended
        assert (
            exhaustive.cache_stats["entries"]
            == exhaustive.cache_stats["misses"]
        )

    def test_cache_stats_survive_to_dict(self):
        grid = CandidateGrid(n_nodes=(2,), procurement=("on_demand_only",))
        report = plan("smoke", grid=grid, target=0.99, jobs=1)
        payload = report.to_dict()
        assert payload["cache"]["misses"] >= 1
        assert set(payload["cache"]) == {
            "hits",
            "misses",
            "entries",
            "hit_rate",
        }
