"""Heterogeneous-fleet planning: grids, bit-identical batch screening,
the staged==exhaustive property on mixed grids, and the pinned
mixed-beats-homogeneous recommendation."""

import dataclasses

import pytest

from repro.capacity import (
    CandidateGrid,
    GRID_PRESETS,
    PLAN_PRESETS,
    SimulationCache,
    analytic_bound,
    analytic_bounds_batch,
    plan,
    resolve_grid,
    simulated_optimum,
)
from repro.errors import ConfigurationError


class TestHeterogeneousGrid:
    def test_fleet_keys_and_counts(self):
        grid = CandidateGrid(
            procurement=("on_demand_only",),
            schemes=("protean",),
            gpu_classes=("a100", "t4"),
            class_counts=(0, 1, 2),
        )
        candidates = grid.candidates(PLAN_PRESETS["hetero-smoke"])
        keys = [c.key.split("/", 2)[2] for c in candidates]
        # 3^2 - 1 fleets (the empty fleet is skipped).
        assert len(candidates) == len(grid) == 8
        assert "a100:1+t4:2" in keys
        assert all(":" in key for key in keys)

    def test_single_class_grids_keep_legacy_keys(self):
        grid = CandidateGrid(
            n_nodes=(2,), procurement=("on_demand_only",)
        )
        (candidate,) = grid.candidates(PLAN_PRESETS["smoke"])
        assert candidate.key == "protean/on_demand_only/n2"

    def test_round_trips_through_dict_with_gpu_axes(self):
        grid = GRID_PRESETS["hetero-wide"]
        payload = grid.to_dict()
        assert payload["gpu_classes"] == ["a100", "h100", "t4"]
        assert CandidateGrid.from_dict(payload) == grid

    def test_homogeneous_to_dict_omits_gpu_axes(self):
        payload = CandidateGrid().to_dict()
        assert "gpu_classes" not in payload
        assert "class_counts" not in payload

    def test_class_counts_rejected_on_single_class_grids(self):
        with pytest.raises(ConfigurationError, match="class_counts"):
            CandidateGrid(class_counts=(0, 2))

    def test_resolve_grid_accepts_preset_names(self):
        assert resolve_grid("hetero-smoke") is GRID_PRESETS["hetero-smoke"]
        with pytest.raises(ConfigurationError, match="unknown grid preset"):
            resolve_grid("hetero-galaxy")

    def test_hetero_wide_candidate_space_dwarfs_the_default(self):
        # The perf target: the vectorised screen must make grids two
        # orders of magnitude past the old planner's routine.
        assert len(GRID_PRESETS["hetero-wide"]) >= 50 * len(CandidateGrid())

    def test_mixed_candidate_has_no_single_config(self):
        grid = GRID_PRESETS["hetero-smoke"]
        mixed = [
            c
            for c in grid.candidates(PLAN_PRESETS["hetero-smoke"])
            if not c.homogeneous
        ]
        assert mixed
        with pytest.raises(ConfigurationError, match="mixed fleet"):
            _ = mixed[0].config
        subruns = mixed[0].subruns()
        assert len(subruns) == len(mixed[0].fleet)
        assert sum(s.config.n_nodes for s in subruns) == mixed[0].n_nodes


class TestBatchScreenBitIdentity:
    @pytest.mark.parametrize(
        "grid_name, workload, seed",
        [
            ("hetero-smoke", "hetero-smoke", 0),
            ("hetero-smoke", "hetero-smoke", 7),
            ("hetero-wide", "wiki", 0),
            ("hetero-wide", "twitter", 3),
        ],
    )
    def test_batch_bounds_equal_scalar_bounds_bitwise(
        self, grid_name, workload, seed
    ):
        # Not approx — the vectorised screen must reproduce the scalar
        # reference bit for bit, or verdicts could differ between the
        # benchmark path and the planner path.
        spec = dataclasses.replace(PLAN_PRESETS[workload], seed=seed)
        candidates = GRID_PRESETS[grid_name].candidates(spec)
        batch = analytic_bounds_batch(candidates)
        for candidate, batched in zip(candidates, batch):
            scalar = analytic_bound(candidate)
            assert scalar.utilization == batched.utilization
            assert scalar.attainment_upper == batched.attainment_upper
            assert scalar.attainment_lower == batched.attainment_lower
            assert scalar.est_hourly_cost == batched.est_hourly_cost


class TestHeterogeneousPlanProperty:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_staged_equals_exhaustive_on_mixed_grids(self, seed):
        workload = dataclasses.replace(PLAN_PRESETS["hetero-smoke"], seed=seed)
        grid = GRID_PRESETS["hetero-smoke"]
        cache = SimulationCache()
        staged = plan(workload, grid=grid, target=0.99, jobs=1, cache=cache)
        exhaustive = plan(
            workload,
            grid=grid,
            target=0.99,
            jobs=1,
            exhaustive=True,
            cache=cache,
        )
        optimum = simulated_optimum(exhaustive.outcomes, exhaustive.target)
        assert staged.recommended == optimum


class TestMixedBeatsHomogeneous:
    """The tentpole's pinned acceptance regression."""

    @pytest.fixture(scope="class")
    def report(self):
        return plan("hetero-smoke", grid="hetero-smoke", target=0.99, jobs=1)

    def test_recommended_fleet_is_mixed(self, report):
        assert report.recommended == "protean/on_demand_only/a100:1+t4:2"
        candidate = report.recommended_outcome.decision.candidate
        assert candidate.fleet == (("a100", 1), ("t4", 2))
        assert not candidate.homogeneous

    def test_mixed_beats_best_homogeneous_on_cost_per_1k(self, report):
        recommended = report.recommended_outcome.simulated
        assert recommended.attainment >= report.target
        feasible_homogeneous = [
            o
            for o in report.outcomes
            if o.decision.candidate.homogeneous and o.feasible(report.target)
        ]
        # At least one homogeneous candidate meets the SLO — the mixed
        # fleet wins on price, not by default.
        assert feasible_homogeneous
        for outcome in feasible_homogeneous:
            assert (
                recommended.cost_per_1k_requests
                < outcome.simulated.cost_per_1k_requests
            )

    def test_solver_proposal_is_recorded(self, report):
        proposals = report.extra["solver"]
        assert "protean/on_demand_only" in proposals

    def test_report_payload_carries_fleet_and_cache(self, report):
        payload = report.to_dict()
        assert payload["recommended"]["fleet"] == {"a100": 1, "t4": 2}
        # Mixed fleets have no single config in the payload.
        assert payload["recommended"]["config"] is None
        assert payload["cache"]["misses"] > 0
