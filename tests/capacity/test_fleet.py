"""Tests for the fleet model: GPU classes, fleets, stream splitting."""

import pytest

from repro.capacity import (
    GPU_CLASSES,
    PLAN_PRESETS,
    canonical_fleet,
    fleet_hourly_cost,
    fleet_key,
    fleet_nodes,
    fleet_subset,
    split_streams,
    stream_stats,
)
from repro.capacity.fleet import gpu_class
from repro.cluster.pricing import DEFAULT_PRICING, VMTier
from repro.errors import ConfigurationError


class TestGpuClasses:
    def test_catalogue_entries_are_simulatable_and_priced(self):
        from repro.cluster.pricing import gpu_class_for_device
        from repro.gpu.device_models import get_device_model

        for name, entry in GPU_CLASSES.items():
            assert entry.name == name
            assert entry.device is get_device_model(name)
            assert gpu_class_for_device(name) == name

    def test_a100_is_the_reference_class(self):
        entry = gpu_class("a100")
        assert entry.speed == 1.0
        assert entry.efficiency == 1.0
        assert entry.partitionable

    def test_time_sliced_classes_pay_an_efficiency_tax(self):
        # The T4 and A10 cannot partition via MIG; their calibrated
        # time-slicing efficiency must be strictly below the MIG parts'.
        for name in ("t4", "a10"):
            entry = gpu_class(name)
            assert not entry.partitionable
            assert entry.efficiency < 1.0

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown GPU class"):
            gpu_class("b200")


class TestFleets:
    def test_canonical_fleet_sorts_merges_and_drops_zeros(self):
        fleet = canonical_fleet({"t4": 2, "a100": 1, "h100": 0})
        assert fleet == (("a100", 1), ("t4", 2))
        assert canonical_fleet([("t4", 1), ("t4", 1)]) == (("t4", 2),)

    def test_fleet_key_and_nodes(self):
        fleet = canonical_fleet({"a100": 2, "t4": 4})
        assert fleet_key(fleet) == "a100:2+t4:4"
        assert fleet_nodes(fleet) == 6

    def test_fleet_subset_is_componentwise_and_strict(self):
        small = canonical_fleet({"a100": 1})
        mixed = canonical_fleet({"a100": 1, "t4": 2})
        large = canonical_fleet({"a100": 2, "t4": 2})
        assert fleet_subset(small, mixed)
        assert fleet_subset(mixed, large)
        assert not fleet_subset(large, mixed)
        # A fleet is not a subset of itself: domination needs a
        # *strictly* cheaper configuration.
        assert not fleet_subset(mixed, mixed)
        # Incomparable fleets (extra class on each side) are not subsets.
        assert not fleet_subset(
            canonical_fleet({"t4": 1}), canonical_fleet({"a100": 4})
        )

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_fleet({"a100": -1})


class TestSplitStreams:
    @pytest.fixture(scope="class")
    def stats(self):
        config = PLAN_PRESETS["hetero-smoke"].to_config(n_nodes=1)
        return stream_stats(config)

    def _split(self, fleet, stats):
        return split_streams(
            fleet,
            strict_latency=stats.strict_latency,
            slo=stats.slo,
            strict_work_rate=stats.strict_work_rate,
        )

    def test_homogeneous_fleet_takes_everything(self, stats):
        strict, best_effort = self._split(canonical_fleet({"a100": 4}), stats)
        # Bit-exact ones keep single-class bounds identical to the
        # scalar formulas they generalise.
        assert strict == (1.0,)
        assert best_effort == (1.0,)

    def test_strict_traffic_avoids_incapable_classes(self, stats):
        # The T4 cannot meet the strict SLO even idle (speed 0.25 vs an
        # SLO multiplier of 3), so the strict stream lands entirely on
        # the A100s while the T4s still soak best-effort work.
        fleet = canonical_fleet({"a100": 1, "t4": 2})
        strict, best_effort = self._split(fleet, stats)
        shares = dict(zip([name for name, _ in fleet], strict))
        assert shares["t4"] == 0.0
        assert shares["a100"] == pytest.approx(1.0)
        be_shares = dict(zip([name for name, _ in fleet], best_effort))
        assert be_shares["t4"] > 0.0

    def test_shares_sum_to_one(self, stats):
        for spec in ({"a100": 2, "t4": 3}, {"a100": 1, "h100": 1, "t4": 1}):
            strict, best_effort = self._split(canonical_fleet(spec), stats)
            assert sum(strict) == pytest.approx(1.0)
            assert sum(best_effort) == pytest.approx(1.0)


class TestFleetHourlyCost:
    def test_single_a100_matches_default_pricing(self):
        expected = DEFAULT_PRICING.per_gpu_hourly(VMTier.ON_DEMAND)
        cost = fleet_hourly_cost(
            canonical_fleet({"a100": 1}), "on_demand_only", "moderate"
        )
        assert cost == expected

    def test_mixed_fleet_cost_is_the_sum_of_classes(self):
        kwargs = ("on_demand_only", "moderate")
        mixed = fleet_hourly_cost(
            canonical_fleet({"a100": 2, "t4": 4}), *kwargs
        )
        a100 = fleet_hourly_cost(canonical_fleet({"a100": 2}), *kwargs)
        t4 = fleet_hourly_cost(canonical_fleet({"t4": 4}), *kwargs)
        assert mixed == pytest.approx(a100 + t4)

    def test_t4_is_cheaper_than_a100(self):
        kwargs = ("on_demand_only", "moderate")
        assert fleet_hourly_cost(
            canonical_fleet({"t4": 1}), *kwargs
        ) < fleet_hourly_cost(canonical_fleet({"a100": 1}), *kwargs)

    def test_spot_procurement_discounts(self):
        fleet = canonical_fleet({"a100": 1, "t4": 1})
        on_demand = fleet_hourly_cost(fleet, "on_demand_only", "moderate")
        hybrid = fleet_hourly_cost(fleet, "hybrid", "moderate")
        spot = fleet_hourly_cost(fleet, "spot_only", "moderate")
        assert spot < hybrid < on_demand
