"""End-to-end tests for plan() and the PlanReport surface."""

import json

import pytest

from repro.capacity import (
    CandidateGrid,
    PLAN_PRESETS,
    PLAN_SCHEMA_VERSION,
    pareto_frontier,
    plan,
)
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig

SMALL_GRID = CandidateGrid(
    n_nodes=(2, 4), procurement=("on_demand_only", "hybrid")
)


@pytest.fixture(scope="module")
def smoke_report():
    return plan("smoke", grid=SMALL_GRID, target=0.99, jobs=1)


class TestPlan:
    def test_recommended_meets_target_under_simulation(self, smoke_report):
        outcome = smoke_report.recommended_outcome
        assert outcome is not None
        assert outcome.simulated.attainment >= smoke_report.target

    def test_recommended_is_cheapest_feasible(self, smoke_report):
        recommended = smoke_report.recommended_outcome
        for outcome in smoke_report.outcomes:
            if outcome.feasible(smoke_report.target):
                assert (
                    recommended.simulated.total_cost
                    <= outcome.simulated.total_cost
                )

    def test_every_candidate_has_an_outcome(self, smoke_report):
        assert len(smoke_report.outcomes) == len(SMALL_GRID)
        for outcome in smoke_report.outcomes:
            assert outcome.decision.bound is not None
            if outcome.decision.admitted:
                assert outcome.simulated is not None
            else:
                assert outcome.decision.prune_reason is not None

    def test_frontier_is_simulated_and_non_dominated(self, smoke_report):
        evidence = {
            o.key: o.simulated
            for o in smoke_report.outcomes
            if o.simulated is not None
        }
        for key in smoke_report.frontier:
            assert key in evidence
        for key in smoke_report.frontier:
            for other_key, other in evidence.items():
                if other_key == key:
                    continue
                mine = evidence[key]
                strictly_better = (
                    other.total_cost <= mine.total_cost
                    and other.attainment >= mine.attainment
                    and (
                        other.total_cost < mine.total_cost
                        or other.attainment > mine.attainment
                    )
                )
                assert not strictly_better

    def test_recommended_config_serialises_versioned(self, smoke_report):
        payload = smoke_report.to_dict()
        assert payload["version"] == PLAN_SCHEMA_VERSION
        config_payload = payload["recommended"]["config"]
        config = ExperimentConfig.from_dict(config_payload)
        assert config.n_nodes == (
            smoke_report.recommended_outcome.decision.candidate.n_nodes
        )

    def test_report_json_round_trips(self, smoke_report):
        payload = json.loads(json.dumps(smoke_report.to_dict()))
        assert payload["simulated"] == smoke_report.simulated_count
        assert payload["prune_ratio"] == round(smoke_report.prune_ratio, 4)
        assert [c["key"] for c in payload["candidates"]] == [
            o.key for o in smoke_report.outcomes
        ]

    def test_describe_renders_prunes_and_recommendation(self, smoke_report):
        text = smoke_report.describe()
        assert "Pareto frontier" in text
        assert "recommended:" in text

    def test_invalid_target_rejected(self):
        with pytest.raises(ConfigurationError, match="target"):
            plan("smoke", target=0.0)

    def test_invalid_grid_type_rejected(self):
        with pytest.raises(ConfigurationError, match="grid"):
            plan("smoke", grid=42)

    def test_grid_dict_is_accepted(self):
        report = plan(
            "smoke",
            grid={"n_nodes": [2], "procurement": ["on_demand_only"]},
            target=0.99,
            jobs=1,
        )
        assert len(report.outcomes) == 1

    def test_no_feasible_candidate_yields_none(self):
        # molecule on a single node collapses under the smoke load.
        report = plan(
            "smoke",
            grid={
                "n_nodes": [1],
                "procurement": ["on_demand_only"],
                "schemes": ["molecule"],
            },
            target=0.99,
            jobs=1,
        )
        assert report.recommended is None
        assert report.recommended_outcome is None
        assert "no candidate met the target" in report.describe()


class TestParetoFrontier:
    def test_keeps_non_dominated_points(self):
        frontier = pareto_frontier(
            [
                ("cheap_bad", 1.0, 0.50),
                ("mid", 2.0, 0.90),
                ("dominated", 3.0, 0.80),
                ("dear_good", 4.0, 0.99),
            ]
        )
        assert frontier == ("cheap_bad", "mid", "dear_good")

    def test_ties_are_kept_and_ordered_deterministically(self):
        frontier = pareto_frontier(
            [("b", 1.0, 0.9), ("a", 1.0, 0.9)]
        )
        assert frontier == ("a", "b")

    def test_empty_input(self):
        assert pareto_frontier([]) == ()
