"""Tests for the Mélange-style fleet allocator."""

import itertools

import pytest

from repro.capacity import (
    DEFAULT_MARGIN,
    PLAN_PRESETS,
    Candidate,
    analytic_bound,
    fleet_hourly_cost,
    solve_fleet,
    solver_cost_matrix,
)
from repro.errors import ConfigurationError

WORKLOAD = PLAN_PRESETS["hetero-smoke"]


def _exhaustive_optimum(workload, classes, max_per_class, target):
    """Ground truth: enumerate the whole count lattice, keep the
    cheapest conservatively-feasible fleet (ties by count tuple — the
    same order the solver's heap pops in)."""
    class_names = tuple(sorted(classes))
    best = None
    for counts in itertools.product(
        range(max_per_class + 1), repeat=len(class_names)
    ):
        if not any(counts):
            continue
        fleet = tuple(
            (name, count)
            for name, count in zip(class_names, counts)
            if count > 0
        )
        candidate = Candidate(
            key=f"exhaustive/{counts}",
            scheme="protean",
            procurement="on_demand_only",
            knobs=(),
            fleet=fleet,
            workload=workload,
        )
        bound = analytic_bound(candidate, margin=DEFAULT_MARGIN)
        if bound.attainment_lower < target:
            continue
        cost = fleet_hourly_cost(
            fleet, "on_demand_only", workload.spot_availability
        )
        if best is None or (cost, counts) < best[:2]:
            best = (cost, counts, fleet)
    return best


class TestSolveFleet:
    @pytest.mark.parametrize("max_per_class", [2, 4, 8])
    def test_matches_exhaustive_lattice_enumeration(self, max_per_class):
        # The optimality argument made checkable: the Dijkstra walk must
        # return exactly what brute-force enumeration of the lattice
        # declares cheapest-feasible (or None when nothing qualifies).
        classes = ("a100", "t4")
        target = 0.99
        solution = solve_fleet(
            WORKLOAD,
            classes=classes,
            max_per_class=max_per_class,
            target=target,
        )
        truth = _exhaustive_optimum(WORKLOAD, classes, max_per_class, target)
        if truth is None:
            assert solution is None
        else:
            assert solution is not None
            assert solution.fleet == truth[2]
            assert solution.est_hourly_cost == truth[0]

    def test_hetero_smoke_proposal_is_mixed(self):
        # On the demonstrator workload the conservatively-cheapest fleet
        # itself mixes classes: T4s soak best-effort work the A100s
        # would otherwise be overprovisioned for.
        solution = solve_fleet(
            WORKLOAD, classes=("a100", "t4"), max_per_class=8
        )
        assert solution is not None
        assert len(solution.fleet) >= 2
        assert solution.bound.attainment_lower >= 0.99
        assert solution.explored >= 1

    def test_returns_none_when_lattice_too_small(self):
        assert (
            solve_fleet(WORKLOAD, classes=("a100", "t4"), max_per_class=2)
            is None
        )

    def test_solution_serialises(self):
        import json

        solution = solve_fleet(
            WORKLOAD, classes=("a100", "t4"), max_per_class=8
        )
        payload = json.loads(json.dumps(solution.to_dict()))
        assert payload["fleet_key"] == solution.key_fragment
        assert payload["explored"] == solution.explored
        assert payload["bound"]["attainment_lower"] >= 0.99

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError, match="target"):
            solve_fleet(WORKLOAD, target=0.0)
        with pytest.raises(ConfigurationError, match="max_per_class"):
            solve_fleet(WORKLOAD, max_per_class=0)
        with pytest.raises(ConfigurationError, match="duplicate"):
            solve_fleet(WORKLOAD, classes=("a100", "A100"))


class TestSolverCostMatrix:
    def test_strict_is_inf_on_incapable_classes(self):
        rows = {
            row["gpu_class"]: row
            for row in solver_cost_matrix(
                WORKLOAD,
                classes=("a100", "t4"),
                procurement="on_demand_only",
            )
        }
        assert rows["t4"]["strict_$per_1k"] == float("inf")
        assert rows["a100"]["strict_$per_1k"] > 0.0

    def test_best_effort_is_cheapest_on_the_t4(self):
        # The Mélange premise in one assertion: per best-effort request,
        # the small time-slicing part undercuts the flagship.
        rows = {
            row["gpu_class"]: row
            for row in solver_cost_matrix(
                WORKLOAD,
                classes=("a100", "t4"),
                procurement="on_demand_only",
            )
        }
        assert (
            rows["t4"]["best_effort_$per_1k"]
            < rows["a100"]["best_effort_$per_1k"]
        )
