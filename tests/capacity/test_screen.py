"""Tests for the analytic pre-screen (stage one of the planner)."""

import pytest

from repro.capacity import (
    PRUNE_DOMINATED,
    PRUNE_INFEASIBLE,
    CandidateGrid,
    PLAN_PRESETS,
    analytic_bound,
    estimate_hourly_cost,
    screen_candidates,
)
from repro.cluster.pricing import DEFAULT_PRICING, VMTier
from repro.errors import ConfigurationError


def _candidates(workload="smoke", **grid_kwargs):
    grid_kwargs.setdefault("procurement", ("on_demand_only",))
    grid = CandidateGrid(**grid_kwargs)
    return grid.candidates(PLAN_PRESETS[workload])


class TestAnalyticBound:
    def test_lower_never_exceeds_upper(self):
        for candidate in _candidates(
            n_nodes=(1, 2, 4, 8), procurement=("on_demand_only", "spot_only")
        ):
            bound = analytic_bound(candidate)
            assert 0.0 <= bound.attainment_lower <= bound.attainment_upper <= 1.0

    def test_bounds_are_monotone_in_cluster_size(self):
        bounds = [
            analytic_bound(c) for c in _candidates(n_nodes=(1, 2, 4, 8, 16))
        ]
        uppers = [b.attainment_upper for b in bounds]
        lowers = [b.attainment_lower for b in bounds]
        assert uppers == sorted(uppers)
        assert lowers == sorted(lowers)

    def test_utilization_halves_when_nodes_double(self):
        two, four = (
            analytic_bound(c) for c in _candidates(n_nodes=(2, 4))
        )
        assert two.utilization == pytest.approx(2 * four.utilization)

    def test_spot_discount_lowers_the_conservative_bound(self):
        # The wiki preset runs at moderate availability, so spot_only
        # procurement must pay a revocation penalty on the lower bound.
        grid = CandidateGrid(
            n_nodes=(16,), procurement=("on_demand_only", "spot_only")
        )
        on_demand, spot = (
            analytic_bound(c) for c in grid.candidates(PLAN_PRESETS["wiki"])
        )
        assert spot.attainment_lower < on_demand.attainment_lower
        assert spot.est_hourly_cost < on_demand.est_hourly_cost

    def test_overloaded_candidate_upper_is_served_fraction(self):
        # Enough load that even the margin-inflated ideal pool saturates
        # on the strict stream alone.
        import dataclasses

        spec = dataclasses.replace(
            PLAN_PRESETS["smoke"], name="heavy", offered_load=4.0
        )
        grid = CandidateGrid(n_nodes=(1,), procurement=("on_demand_only",))
        (candidate,) = grid.candidates(spec)
        bound = analytic_bound(candidate)
        assert bound.attainment_upper < 1.0

    def test_negative_margin_rejected(self):
        (candidate,) = _candidates(n_nodes=(2,))
        with pytest.raises(ConfigurationError, match="margin"):
            analytic_bound(candidate, margin=-0.1)

    def test_to_dict_is_json_safe(self):
        (candidate,) = _candidates(n_nodes=(2,))
        payload = analytic_bound(candidate).to_dict()
        assert set(payload) == {
            "utilization",
            "attainment_upper",
            "attainment_lower",
            "est_hourly_cost",
        }


class TestEstimateHourlyCost:
    def test_on_demand_cost_scales_with_nodes(self):
        two, four = _candidates(n_nodes=(2, 4))
        assert estimate_hourly_cost(four) == pytest.approx(
            2 * estimate_hourly_cost(two)
        )

    def test_procurement_cost_ordering(self):
        grid = CandidateGrid(n_nodes=(4,))
        on_demand, hybrid, spot = (
            estimate_hourly_cost(c)
            for c in grid.candidates(PLAN_PRESETS["wiki"])
        )
        assert spot < hybrid < on_demand

    def test_on_demand_matches_pricing_table(self):
        (candidate,) = _candidates(n_nodes=(2,))
        expected = 2 * DEFAULT_PRICING.per_gpu_hourly(VMTier.ON_DEMAND)
        assert estimate_hourly_cost(candidate) == pytest.approx(expected)


class TestScreenCandidates:
    def test_decisions_preserve_input_order(self):
        candidates = _candidates(n_nodes=(2, 4, 6))
        decisions = screen_candidates(candidates, target=0.99)
        assert [d.candidate.key for d in decisions] == [
            c.key for c in candidates
        ]

    def test_dominated_candidates_name_their_dominator(self):
        decisions = screen_candidates(
            _candidates(n_nodes=(2, 4, 6, 8, 12)), target=0.99
        )
        by_key = {d.candidate.key: d for d in decisions}
        dominated = [
            d for d in decisions if d.prune_reason == PRUNE_DOMINATED
        ]
        assert dominated, "expected domination pruning on the default sizes"
        for decision in dominated:
            dominator_key = decision.detail.split(" already clears")[0]
            dominator = by_key[dominator_key]
            assert dominator.admitted
            assert (
                dominator.candidate.n_nodes < decision.candidate.n_nodes
            )
            assert dominator.bound.attainment_lower >= 0.99

    def test_infeasible_pruning_requires_upper_below_target(self):
        import dataclasses

        spec = dataclasses.replace(
            PLAN_PRESETS["smoke"], name="heavy", offered_load=4.0
        )
        grid = CandidateGrid(
            n_nodes=(1, 2), procurement=("on_demand_only",)
        )
        decisions = screen_candidates(grid.candidates(spec), target=0.99)
        assert decisions[0].prune_reason == PRUNE_INFEASIBLE
        assert decisions[0].bound.attainment_upper < 0.99

    def test_zero_margin_prunes_at_least_as_much_as_default(self):
        candidates = _candidates(n_nodes=(2, 4, 6, 8, 12))
        pruned_default = sum(
            1
            for d in screen_candidates(candidates, target=0.99)
            if not d.admitted
        )
        pruned_tight = sum(
            1
            for d in screen_candidates(candidates, target=0.99, margin=0.0)
            if not d.admitted
        )
        assert pruned_tight >= pruned_default

    def test_invalid_target_rejected(self):
        candidates = _candidates(n_nodes=(2,))
        for target in (0.0, 1.5, -1.0):
            with pytest.raises(ConfigurationError, match="target"):
                screen_candidates(candidates, target=target)
