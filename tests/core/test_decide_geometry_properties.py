"""Property-based tests for Algorithm 2's geometry decision."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reconfigurator import decide_geometry
from repro.gpu.mig import (
    GEOMETRY_4G_2G_1G,
    GEOMETRY_4G_3G,
    Geometry,
    SliceKind,
    is_valid_geometry,
)
from repro.workloads import ALL_MODELS
from repro.workloads.scaling import scale_model

#: The only geometries Algorithm 2 can emit: the (4g, 3g) fallback and
#: each small-slice set joined with the 4g.
ALLOWED = {
    GEOMETRY_4G_3G,
    GEOMETRY_4G_2G_1G,
    Geometry((SliceKind.G3, SliceKind.G4)),
}

model_strategy = st.sampled_from([m.name for m in ALL_MODELS])


@settings(max_examples=200, deadline=None)
@given(
    count=st.floats(min_value=0.0, max_value=1000.0),
    model_name=model_strategy,
    scale=st.sampled_from([1.0, 0.1]),
)
def test_decision_is_always_a_valid_allowed_geometry(count, model_name, scale):
    from repro.workloads import get_model

    model = scale_model(get_model(model_name), scale)
    geometry = decide_geometry(count, model)
    assert geometry in ALLOWED
    assert is_valid_geometry(geometry.kinds)


@settings(max_examples=100, deadline=None)
@given(count=st.floats(min_value=0.0, max_value=1000.0))
def test_no_model_always_yields_fallback(count):
    assert decide_geometry(count, None) == GEOMETRY_4G_3G


@settings(max_examples=100, deadline=None)
@given(model_name=model_strategy)
def test_extreme_be_loads_use_fallback(model_name):
    from repro.workloads import get_model

    model = get_model(model_name)
    # Zero predicted BE: fallback. Enormous predicted BE: fallback too
    # (nothing small can hold it) — the corner cases of markers ⓓⓔⓕ.
    assert decide_geometry(0.0, model) == GEOMETRY_4G_3G
    assert decide_geometry(1e6, model) == GEOMETRY_4G_3G


@settings(max_examples=60, deadline=None)
@given(
    model_name=model_strategy,
    count=st.floats(min_value=0.1, max_value=500.0),
)
def test_decision_deterministic(model_name, count):
    from repro.workloads import get_model

    model = get_model(model_name)
    assert decide_geometry(count, model) == decide_geometry(count, model)
