"""Tests for the Job Distribution logic — Algorithm 1 (§4.3)."""

import pytest

from repro.core.distribution import (
    choose_best_effort_slice,
    choose_strict_slice,
    compute_tags,
    distribute_batch,
)
from repro.gpu import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G, GPU, SliceJob
from repro.serverless.request import Request, RequestBatch
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

RESNET = scale_model(get_model("resnet50"), 4 / 128)  # 8 GB, HI
SHUFFLE = scale_model(get_model("shufflenet_v2"), 4 / 128)  # 4 GB, LI
DPN = scale_model(get_model("dpn92"), 4 / 128)  # 11 GB, HI


def make_slices(sim=None, geometry=GEOMETRY_4G_2G_1G):
    sim = sim or Simulator()
    return sim, GPU(sim, geometry).slices


def make_batch(model, strict=True):
    batch = RequestBatch(model, strict, created_at=0.0)
    batch.add(
        Request.from_spec(RequestSpec(arrival=0.0, model=model, strict=strict))
    )
    return batch


def occupy(sim, gpu_slice, fbr=0.5, memory=0.0, work=100.0):
    gpu_slice.submit(
        SliceJob(
            work=work, rdf=1.0, fbr=fbr, memory_gb=memory,
            on_complete=lambda j, t: None,
        )
    )


class TestComputeTags:
    def test_no_be_memory_tags_nothing(self):
        _sim, slices = make_slices()
        assert compute_tags(slices, 0.0) == {}

    def test_packing_is_smallest_first(self):
        _sim, slices = make_slices()  # 4g(20), 2g(10), 1g(5)
        by_kind = {s.profile.kind.value: s for s in slices}
        tags = compute_tags(slices, 7.0)
        # 1g takes min(1, 7/5)=1.0; 2g takes (7-5)/10=0.2; 4g untouched.
        assert tags[id(by_kind["1g"])] == 1.0
        assert tags[id(by_kind["2g"])] == pytest.approx(0.2)
        assert id(by_kind["4g"]) not in tags

    def test_light_load_tags_only_smallest(self):
        _sim, slices = make_slices()
        by_kind = {s.profile.kind.value: s for s in slices}
        tags = compute_tags(slices, 2.0)
        assert tags == {id(by_kind["1g"]): pytest.approx(0.4)}

    def test_overflow_saturates_everything(self):
        _sim, slices = make_slices()
        tags = compute_tags(slices, 100.0)
        assert all(v == 1.0 for v in tags.values())
        assert len(tags) == 3


class TestChooseStrictSlice:
    def test_prefers_empty_large_slice(self):
        _sim, slices = make_slices(geometry=GEOMETRY_4G_3G)
        chosen = choose_strict_slice(make_batch(RESNET), slices, {})
        assert chosen.profile.kind.value == "4g"

    def test_avoids_fully_tagged_slices(self):
        _sim, slices = make_slices(geometry=GEOMETRY_4G_3G)
        by_kind = {s.profile.kind.value: s for s in slices}
        tags = {id(by_kind["4g"]): 1.0}
        chosen = choose_strict_slice(make_batch(RESNET), slices, tags)
        assert chosen.profile.kind.value == "3g"

    def test_balances_interference_against_deficiency(self):
        # 4g loaded with a heavy resident, 3g empty: eta should route the
        # strict batch to the 3g despite its smaller size.
        sim, slices = make_slices(geometry=GEOMETRY_4G_3G)
        by_kind = {s.profile.kind.value: s for s in slices}
        occupy(sim, by_kind["4g"], fbr=1.0)
        occupy(sim, by_kind["4g"], fbr=1.0)
        chosen = choose_strict_slice(make_batch(RESNET), slices, {})
        assert chosen.profile.kind.value == "3g"

    def test_tag_contributes_potential_interference(self):
        # 4g tagged heavily with predicted BE occupancy; 3g untagged.
        _sim, slices = make_slices(geometry=GEOMETRY_4G_3G)
        by_kind = {s.profile.kind.value: s for s in slices}
        tags = {id(by_kind["4g"]): 0.9}
        chosen = choose_strict_slice(make_batch(RESNET), slices, tags)
        assert chosen.profile.kind.value == "3g"

    def test_memory_full_slices_skipped(self):
        sim, slices = make_slices(geometry=GEOMETRY_4G_3G)
        by_kind = {s.profile.kind.value: s for s in slices}
        occupy(sim, by_kind["4g"], fbr=0.0, memory=15.0)  # 5 GB free < 8
        chosen = choose_strict_slice(make_batch(RESNET), slices, {})
        assert chosen.profile.kind.value == "3g"

    def test_none_when_nothing_fits(self):
        sim, slices = make_slices(geometry=GEOMETRY_4G_3G)
        for gpu_slice in slices:
            occupy(sim, gpu_slice, fbr=0.0, memory=15.0)
        assert choose_strict_slice(make_batch(RESNET), slices, {}) is None


class TestChooseBestEffortSlice:
    def test_first_fit_smallest_slice(self):
        _sim, slices = make_slices()
        chosen = choose_best_effort_slice(make_batch(SHUFFLE, strict=False), slices)
        assert chosen.profile.kind.value == "1g"  # 4 GB fits the 5 GB slice

    def test_spills_upward_when_small_full(self):
        sim, slices = make_slices()
        by_kind = {s.profile.kind.value: s for s in slices}
        occupy(sim, by_kind["1g"], memory=4.0)
        chosen = choose_best_effort_slice(make_batch(SHUFFLE, strict=False), slices)
        assert chosen.profile.kind.value == "2g"

    def test_large_be_model_lands_on_large_slice(self):
        _sim, slices = make_slices()
        chosen = choose_best_effort_slice(make_batch(DPN, strict=False), slices)
        assert chosen.profile.kind.value == "4g"  # 11 GB only fits 4g

    def test_none_when_everything_full(self):
        sim, slices = make_slices()
        for gpu_slice in slices:
            occupy(sim, gpu_slice, memory=gpu_slice.profile.memory_gb)
        assert choose_best_effort_slice(make_batch(SHUFFLE, strict=False), slices) is None


class TestDistributeBatch:
    def test_strict_and_be_separated(self):
        _sim, slices = make_slices()
        be_mem = 8.0  # tags 1g fully, 2g at 0.3
        strict_slice = distribute_batch(make_batch(RESNET), slices, be_mem)
        be_slice = distribute_batch(make_batch(SHUFFLE, strict=False), slices, be_mem)
        assert strict_slice.profile.kind.value == "4g"
        assert be_slice.profile.kind.value == "1g"

    def test_strict_fallback_ignores_tags_when_all_tagged(self):
        _sim, slices = make_slices()
        # Enormous predicted BE memory tags every slice at 1.0; the strict
        # batch must still be placed somewhere rather than starve.
        chosen = distribute_batch(make_batch(RESNET), slices, 1000.0)
        assert chosen is not None
