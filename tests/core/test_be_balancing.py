"""Tests for the BE-balancing extension (the paper's stated future work)."""


from repro.core.distribution import choose_balanced_slice, distribute_batch
from repro.core.protean import ProteanScheme
from repro.cluster.pricing import VMTier
from repro.gpu import GEOMETRY_4G_2G_1G, GPU
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request, RequestBatch
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

SHUFFLE = scale_model(get_model("shufflenet_v2"), 4 / 128)
RESNET = scale_model(get_model("resnet50"), 4 / 128)


def make_batch(model, strict):
    batch = RequestBatch(model, strict, created_at=0.0)
    batch.add(
        Request.from_spec(RequestSpec(arrival=0.0, model=model, strict=strict))
    )
    return batch


def test_balanced_slice_prefers_large_empty_slice():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_4G_2G_1G)
    chosen = choose_balanced_slice(make_batch(SHUFFLE, False), gpu.slices)
    assert chosen.profile.kind.value == "4g"


def test_distribute_respects_strict_present_flag():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_4G_2G_1G)
    batch = make_batch(SHUFFLE, False)
    packed = distribute_batch(
        batch, gpu.slices, 0.0, balance_best_effort=True, strict_present=True
    )
    balanced = distribute_batch(
        batch, gpu.slices, 0.0, balance_best_effort=True, strict_present=False
    )
    assert packed.profile.kind.value == "1g"  # normal first-fit packing
    assert balanced.profile.kind.value == "4g"


def _platform(sim, balance):
    scheme = ProteanScheme(
        enable_reconfigurator=False,
        enable_autoscaler=False,
        balance_best_effort=balance,
    )
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=1, cold_start_seconds=0.0, batch_max_wait=0.01),
    )
    platform.provision_initial(VMTier.ON_DEMAND)
    return platform


def test_scheduler_balances_only_without_strict_traffic():
    sim = Simulator()
    platform = _platform(sim, balance=True)
    node = platform.cluster.nodes[0]
    for _ in range(4):
        platform.gateway.admit(
            Request.from_spec(
                RequestSpec(arrival=0.0, model=SHUFFLE, strict=False)
            )
        )
    sim.run(until=0.05)
    by_kind = {s.profile.kind.value: s for s in node.gpu.slices}
    assert by_kind["4g"].running_jobs  # balanced onto the big slice


def test_default_protean_still_packs_be():
    sim = Simulator()
    platform = _platform(sim, balance=False)
    node = platform.cluster.nodes[0]
    for _ in range(4):
        platform.gateway.admit(
            Request.from_spec(
                RequestSpec(arrival=0.0, model=SHUFFLE, strict=False)
            )
        )
    sim.run(until=0.05)
    by_kind = {s.profile.kind.value: s for s in node.gpu.slices}
    assert by_kind["1g"].running_jobs  # first-fit onto the smallest slice


def test_strict_traffic_disables_balancing():
    sim = Simulator()
    platform = _platform(sim, balance=True)
    node = platform.cluster.nodes[0]
    scheduler = platform.dispatcher.scheduler_for(node)
    scheduler.hold = True
    for strict in (True, False):
        model = RESNET if strict else SHUFFLE
        for _ in range(4):
            platform.gateway.admit(
                Request.from_spec(
                    RequestSpec(arrival=0.0, model=model, strict=strict)
                )
            )
    sim.at(0.05, lambda: (setattr(scheduler, "hold", False),
                          scheduler.dispatch()))
    sim.run(until=0.1)
    by_kind = {s.profile.kind.value: s for s in node.gpu.slices}
    # With strict traffic present, BE goes back to the packing rule.
    assert any(
        not j.payload.strict for j in by_kind["1g"].running_jobs
    )
    assert all(j.payload.strict for j in by_kind["4g"].running_jobs)
