"""Tests for the conservative autoscaler (§4.2) and procurement (§4.5)."""

import pytest

from repro.cluster.pricing import VMTier
from repro.cluster.spot import (
    HIGH_AVAILABILITY,
    SpotAvailability,
    SpotMarket,
)
from repro.core.autoscaler import Autoscaler, AutoscalerConfig
from repro.core.procurement import Procurement, ProcurementConfig, ProcurementMode
from repro.core.protean import ProteanScheme
from repro.errors import ConfigurationError
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("resnet50"), 8 / 128)  # batch size 8


def make_platform(sim, n_nodes=2, scheme=None):
    scheme = scheme or ProteanScheme(
        enable_reconfigurator=False, enable_autoscaler=False
    )
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=n_nodes, cold_start_seconds=1.0),
    )
    return platform


def request(model=MODEL, strict=True):
    return Request.from_spec(RequestSpec(arrival=0.0, model=model, strict=strict))


class TestAutoscaler:
    def test_desired_containers_from_prediction(self):
        sim = Simulator()
        platform = make_platform(sim)
        platform.provision_initial(VMTier.ON_DEMAND)
        autoscaler = Autoscaler(
            platform, AutoscalerConfig(monitor_interval=5.0, headroom=1.0)
        )
        for _ in range(16):  # 16 requests/window, batch 8 → 2 batches
            autoscaler.observe_request(request())
        autoscaler.on_monitor()
        assert autoscaler.desired_containers(MODEL) == 2

    def test_headroom_rounds_up(self):
        sim = Simulator()
        platform = make_platform(sim)
        platform.provision_initial(VMTier.ON_DEMAND)
        autoscaler = Autoscaler(
            platform, AutoscalerConfig(headroom=1.25)
        )
        for _ in range(16):
            autoscaler.observe_request(request())
        autoscaler.on_monitor()
        assert autoscaler.desired_containers(MODEL) == 3  # ceil(2.5)

    def test_monitor_prewarms_pools(self):
        sim = Simulator()
        platform = make_platform(sim, n_nodes=2)
        platform.provision_initial(VMTier.ON_DEMAND)
        autoscaler = Autoscaler(platform, AutoscalerConfig(headroom=1.0))
        for _ in range(32):  # 4 batches cluster-wide → 2 per node
            autoscaler.observe_request(request())
        autoscaler.on_monitor()
        assert autoscaler.prewarms_issued == 4
        sim.run(until=5.0)
        for node in platform.cluster.nodes:
            assert platform.pool_for(node).idle_count(MODEL.name) == 2

    def test_remainder_is_distributed_not_ceiled(self):
        # Regression: ceil(desired / n_nodes) per node over-prewarmed by
        # up to n_nodes - 1 containers versus the cluster-wide target.
        sim = Simulator()
        platform = make_platform(sim, n_nodes=4)
        platform.provision_initial(VMTier.ON_DEMAND)
        autoscaler = Autoscaler(platform, AutoscalerConfig(headroom=1.0))
        for _ in range(40):  # 5 batches cluster-wide over 4 nodes
            autoscaler.observe_request(request())
        autoscaler.on_monitor()
        # ceil(5/4) = 2 per node would have issued 8; divmod spreads
        # the remainder as 2+1+1+1.
        assert autoscaler.prewarms_issued == 5
        sim.run(until=5.0)
        counts = sorted(
            platform.pool_for(n).idle_count(MODEL.name)
            for n in platform.cluster.nodes
        )
        assert counts == [1, 1, 1, 2]

    def test_decayed_models_are_pruned(self):
        # Regression: models were never removed from the scan set, so a
        # long run re-scanned every model ever seen on every tick and the
        # EWMA family grew without bound.
        sim = Simulator()
        platform = make_platform(sim)
        platform.provision_initial(VMTier.ON_DEMAND)
        autoscaler = Autoscaler(
            platform, AutoscalerConfig(ewma_alpha=0.5, headroom=1.0)
        )
        for _ in range(8):
            autoscaler.observe_request(request())
        autoscaler.on_monitor()
        assert MODEL.name in autoscaler.predictor.keys()
        for _ in range(40):  # idle windows: EWMA decays below threshold
            autoscaler.on_monitor()
        assert MODEL.name not in autoscaler._models
        assert MODEL.name not in autoscaler.predictor.keys()
        # A returning model is re-learned from scratch.
        autoscaler.observe_request(request())
        autoscaler.on_monitor()
        assert MODEL.name in autoscaler._models

    def test_no_prewarm_without_prediction(self):
        sim = Simulator()
        platform = make_platform(sim)
        platform.provision_initial(VMTier.ON_DEMAND)
        autoscaler = Autoscaler(platform)
        autoscaler.on_monitor()
        assert autoscaler.prewarms_issued == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(monitor_interval=0.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(headroom=0.5)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(prune_threshold=0.0)


class TestProcurement:
    def _setup(self, sim, mode, availability=HIGH_AVAILABILITY, n_nodes=2):
        platform = make_platform(sim, n_nodes=n_nodes)
        market = SpotMarket(
            sim,
            sim.rng.stream("spot"),
            availability,
            notice_seconds=10.0,
            check_interval=20.0,
        )
        procurement = Procurement(
            platform,
            market,
            ProcurementConfig(mode=mode, provision_seconds=5.0, retry_interval=5.0),
        )
        return platform, market, procurement

    def test_on_demand_only_builds_on_demand(self):
        sim = Simulator()
        platform, _market, procurement = self._setup(
            sim, ProcurementMode.ON_DEMAND_ONLY
        )
        procurement.provision_initial()
        assert procurement.on_demand_nodes_built == 2
        assert all(
            n.vm.tier is VMTier.ON_DEMAND for n in platform.cluster.nodes
        )

    def test_hybrid_prefers_spot_when_available(self):
        sim = Simulator()
        platform, _market, procurement = self._setup(sim, ProcurementMode.HYBRID)
        procurement.provision_initial()
        assert procurement.spot_nodes_built == 2
        assert all(n.vm.tier is VMTier.SPOT for n in platform.cluster.nodes)

    def test_hybrid_falls_back_to_on_demand(self):
        sim = Simulator()
        platform, _market, procurement = self._setup(
            sim, ProcurementMode.HYBRID,
            availability=SpotAvailability("none", 1.0),
        )
        procurement.provision_initial()
        assert procurement.on_demand_nodes_built == 2
        assert len(platform.cluster) == 2

    def test_spot_only_runs_short_when_market_dry(self):
        sim = Simulator()
        platform, _market, procurement = self._setup(
            sim, ProcurementMode.SPOT_ONLY,
            availability=SpotAvailability("none", 1.0),
        )
        procurement.provision_initial()
        assert len(platform.cluster) == 0
        assert procurement.retries_scheduled == 2

    def test_eviction_drains_then_replaces(self):
        sim = Simulator()
        platform, market, procurement = self._setup(
            sim, ProcurementMode.HYBRID,
            availability=SpotAvailability("certain", 1.0),
            n_nodes=1,
        )
        # Initial acquisition draws also fail at P_rev=1 → on-demand node.
        procurement.provision_initial()
        assert procurement.on_demand_nodes_built == 1

    def test_eviction_cycle_with_moderate_market(self):
        sim = Simulator()
        platform, market, procurement = self._setup(
            sim, ProcurementMode.HYBRID, availability=HIGH_AVAILABILITY,
            n_nodes=1,
        )
        procurement.provision_initial()
        node = platform.cluster.nodes[0]
        assert node.vm.tier is VMTier.SPOT
        # Force a revocation notice through the market machinery.
        market.availability = SpotAvailability("certain", 1.0)
        sim.run(until=21.0)  # first check at 20 → notice
        assert market.notices_issued == 1
        assert not node.accepting  # draining
        sim.run(until=40.0)  # eviction at 30; replacement lands
        assert node.state.value == "retired"
        assert len(platform.cluster) == 1
        assert platform.cluster.nodes[0] is not node

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ProcurementConfig(provision_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            ProcurementConfig(retry_interval=0.0)
