"""Tests for the GPU Reconfigurator — Algorithm 2 (§4.4)."""

import pytest

from repro.core.reconfigurator import (
    ReconfiguratorConfig,
    SMALL_SLICE_SETS,
    decide_geometry,
    slice_set_memory,
)
from repro.errors import ConfigurationError
from repro.gpu.mig import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G, Geometry, SliceKind
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

SHUFFLE = scale_model(get_model("shufflenet_v2"), 4 / 128)  # 4 GB / 4 reqs
DPN = scale_model(get_model("dpn92"), 4 / 128)  # 11 GB / 4 reqs


class TestSliceSets:
    def test_paper_slice_sets(self):
        assert SMALL_SLICE_SETS == (
            (SliceKind.G1, SliceKind.G2),
            (SliceKind.G3,),
        )

    def test_slice_set_memory(self):
        assert slice_set_memory((SliceKind.G1, SliceKind.G2)) == 15.0
        assert slice_set_memory((SliceKind.G3,)) == 20.0


class TestDecideGeometry:
    def test_no_be_load_gives_4g_3g(self):
        assert decide_geometry(0.0, None) == GEOMETRY_4G_3G
        assert decide_geometry(0.0, SHUFFLE) == GEOMETRY_4G_3G

    def test_moderate_be_load_uses_small_slice_set(self):
        # 8 BE shufflenet requests/window = 2 batches × 4 GB = 8 GB; the
        # (1g, 2g) set (15 GB) holds it within thresholds.
        assert decide_geometry(8.0, SHUFFLE) == GEOMETRY_4G_2G_1G

    def test_tiny_be_load_consolidates_on_4g_3g(self):
        # Below T_low (25% fill of 15 GB at 1 GB/request ≈ 3.75 reqs),
        # the corner case picks the (4g, 3g) fallback.
        assert decide_geometry(1.0, SHUFFLE) == GEOMETRY_4G_3G

    def test_heavy_be_load_falls_back_to_4g_3g(self):
        # Above T_high for both small sets: 60 shufflenet requests need
        # 15 batches × 4 GB = 60 GB > 20 GB.
        assert decide_geometry(60.0, SHUFFLE) == GEOMETRY_4G_3G

    def test_big_model_prefers_3g_set(self):
        # One DPN batch (11 GB) does not fit (1g, 2g)'s individual slices
        # sum... the decision uses total memory: 11 GB < 15 GB so the
        # (1g, 2g) set is selected only if within thresholds; DPN's
        # per-request memory (2.75 GB) puts 4 requests at 11 GB which is
        # 73% fill — inside (T_low, T_high).
        assert decide_geometry(4.0, DPN) == GEOMETRY_4G_2G_1G

    def test_dpn_surge_triggers_4g_3g(self):
        # The Figure 7 situation: a surge of DPN 92 BE requests exceeds
        # the small-set capacity, so the GPUs move to (4g, 3g).
        assert decide_geometry(8.0, DPN) == GEOMETRY_4G_3G

    def test_result_is_always_valid_geometry(self):
        for count in [0, 1, 3, 7, 20, 100]:
            for model in (SHUFFLE, DPN):
                geometry = decide_geometry(float(count), model)
                assert isinstance(geometry, Geometry)


class TestReconfiguratorConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReconfiguratorConfig(monitor_interval=0.0)
        with pytest.raises(ConfigurationError):
            ReconfiguratorConfig(wait_limit=0)
        with pytest.raises(ConfigurationError):
            ReconfiguratorConfig(low_fill_fraction=0.9, high_fill_fraction=0.5)
