"""Integration tests for the PROTEAN scheduler and scheme (§4)."""


from repro.cluster.pricing import VMTier
from repro.core.protean import ProteanScheme
from repro.gpu.mig import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

RESNET = scale_model(get_model("resnet50"), 4 / 128)
SHUFFLE = scale_model(get_model("shufflenet_v2"), 4 / 128)


def make_platform(sim, *, n_nodes=1, reconfigurator=False, autoscaler=False,
                  cold=0.0):
    scheme = ProteanScheme(
        enable_reconfigurator=reconfigurator, enable_autoscaler=autoscaler
    )
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=n_nodes, cold_start_seconds=cold,
                       batch_max_wait=0.01),
    )
    platform.provision_initial(VMTier.ON_DEMAND)
    return platform, scheme


def admit(platform, model, strict, count=1, arrival=None):
    arrival = platform.sim.now if arrival is None else arrival
    for _ in range(count):
        platform.gateway.admit(
            Request.from_spec(
                RequestSpec(arrival=arrival, model=model, strict=strict)
            )
        )


class TestProteanPlacement:
    def test_initial_geometry_is_4g_2g_1g(self):
        sim = Simulator()
        platform, _ = make_platform(sim)
        node = platform.cluster.nodes[0]
        assert node.gpu.geometry == GEOMETRY_4G_2G_1G

    def test_strict_lands_on_large_slice_be_on_small(self):
        sim = Simulator()
        platform, _ = make_platform(sim)
        node = platform.cluster.nodes[0]
        sim.at(0.0, lambda: admit(platform, RESNET, strict=True, count=4))
        sim.at(0.0, lambda: admit(platform, SHUFFLE, strict=False, count=4))
        sim.run(until=0.05)
        by_kind = {s.profile.kind.value: s for s in node.gpu.slices}
        strict_jobs = by_kind["4g"].running_jobs
        assert any(j.payload.strict for j in strict_jobs)
        small_jobs = by_kind["1g"].running_jobs
        assert small_jobs and not any(j.payload.strict for j in small_jobs)

    def test_strict_first_ordering_under_contention(self):
        # Queue BE batches ahead of a strict batch while dispatch is held;
        # both can only run on the 4g slice. On release, reordering must
        # hand the 4g to the strict batch first.
        sim = Simulator()
        platform, _ = make_platform(sim)
        node = platform.cluster.nodes[0]
        scheduler = platform.dispatcher.scheduler_for(node)
        big = scale_model(get_model("gpt2"), 4 / 4)  # 14 GB: only fits 4g
        dpn = scale_model(get_model("dpn92"), 4 / 128)  # 11 GB: only fits 4g

        def hold():
            scheduler.hold = True

        def release():
            scheduler.hold = False
            scheduler.dispatch()

        sim.at(0.0, hold)
        sim.at(0.0, lambda: admit(platform, big, strict=False, count=8))
        sim.at(0.01, lambda: admit(platform, dpn, strict=True, count=4))
        sim.at(0.1, release)
        sim.run(until=0.2)
        by_kind = {s.profile.kind.value: s for s in node.gpu.slices}
        running = by_kind["4g"].running_jobs
        assert running, "4g should be executing a batch"
        assert running[0].payload.strict, "strict batch must be placed first"


class TestProteanDaemons:
    def test_reconfigurator_converges_to_4g_3g_without_be(self):
        sim = Simulator()
        platform, scheme = make_platform(sim, reconfigurator=True)
        node = platform.cluster.nodes[0]
        # Strict-only traffic: Algorithm 2 predicts zero BE load and the
        # geometry converges to (4g, 3g).
        for t in range(0, 40):
            sim.at(float(t), lambda: admit(platform, RESNET, strict=True, count=4))
        sim.run(until=60.0)
        assert node.gpu.geometry == GEOMETRY_4G_3G
        assert scheme.reconfigurator.reconfigurations_started >= 1

    def test_wait_counter_defers_reconfiguration(self):
        sim = Simulator()
        platform, scheme = make_platform(sim, reconfigurator=True)
        node = platform.cluster.nodes[0]
        sim.at(0.0, lambda: admit(platform, RESNET, strict=True, count=4))
        # After one monitor tick (5 s) the decision mismatches but the
        # wait counter (3) has not elapsed yet.
        sim.run(until=6.0)
        assert node.gpu.geometry == GEOMETRY_4G_2G_1G
        sim.run(until=30.0)
        assert node.gpu.geometry == GEOMETRY_4G_3G

    def test_autoscaler_prewarms_for_recurring_traffic(self):
        sim = Simulator()
        platform, scheme = make_platform(sim, autoscaler=True, cold=2.0)
        for t in range(0, 30):
            sim.at(float(t), lambda: admit(platform, RESNET, strict=True, count=4))
        sim.run(until=31.0)
        assert scheme.autoscaler.prewarms_issued >= 1

    def test_scheme_reports_reconfigurations_in_utilization(self):
        sim = Simulator()
        platform, _ = make_platform(sim, reconfigurator=True)
        node = platform.cluster.nodes[0]
        for t in range(0, 40):
            sim.at(float(t), lambda: admit(platform, RESNET, strict=True, count=4))
        sim.run(until=60.0)
        assert node.gpu.utilization().reconfigurations >= 1
