"""Live-daemon tests for the GPU Reconfigurator: governor, eviction races."""


from repro.cluster.pricing import VMTier
from repro.core.protean import ProteanScheme
from repro.core.reconfigurator import ReconfiguratorConfig
from repro.gpu.mig import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

RESNET = scale_model(get_model("resnet50"), 4 / 128)


def build(sim, n_nodes=8, wait_limit=1, interval=2.0):
    scheme = ProteanScheme(
        reconfigurator_config=ReconfiguratorConfig(
            monitor_interval=interval, wait_limit=wait_limit
        ),
        enable_autoscaler=False,
    )
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=n_nodes, cold_start_seconds=0.0,
                       batch_max_wait=0.01),
    )
    platform.provision_initial(VMTier.ON_DEMAND)
    return platform, scheme


def strict_burst(platform, count=4):
    for _ in range(count):
        platform.gateway.admit(
            Request.from_spec(
                RequestSpec(arrival=platform.sim.now, model=RESNET, strict=True)
            )
        )


def test_governor_limits_concurrent_reconfigurations():
    sim = Simulator()
    platform, scheme = build(sim, n_nodes=8, wait_limit=1, interval=2.0)
    # Strict-only traffic: every GPU wants to move to (4g, 3g) at once,
    # but at most ceil(0.3×8)=3 may reconfigure simultaneously.
    for t in range(0, 6):
        sim.at(float(t), lambda: strict_burst(platform))
    sim.run(until=3.1)  # first monitor tick at 2.0 triggers the wave
    reconfiguring = sum(
        1 for node in platform.cluster.nodes if node.gpu.reconfiguring
    )
    pending_or_done = sum(
        1
        for node in platform.cluster.nodes
        if node.gpu.geometry == GEOMETRY_4G_3G or node.gpu.reconfiguring
    )
    assert reconfiguring <= 3
    assert pending_or_done >= 1
    sim.run(until=30.0)
    # Eventually the whole fleet converges.
    assert all(
        node.gpu.geometry == GEOMETRY_4G_3G for node in platform.cluster.nodes
    )
    assert platform.cluster.governor.in_flight == 0


def test_node_retired_mid_reconfiguration_releases_governor():
    sim = Simulator()
    platform, scheme = build(sim, n_nodes=2, wait_limit=1, interval=2.0)
    for t in range(0, 4):
        sim.at(float(t), lambda: strict_burst(platform))
    # Let the reconfigurator claim both nodes (governor limit for 2 nodes
    # is 1, so one node holds the token).
    sim.run(until=2.05)
    held = [
        node
        for node in platform.cluster.nodes
        if node.node_id in scheme.reconfigurator._pending
    ]
    assert held, "expected a pending reconfiguration"
    victim = held[0]
    platform.retire_node(victim)
    assert platform.cluster.governor.in_flight == 0 or (
        platform.cluster.governor.in_flight
        <= len(scheme.reconfigurator._pending)
    )
    sim.run(until=30.0)
    # The surviving node still converges and the governor is clean.
    assert platform.cluster.governor.in_flight == 0
    for node in platform.cluster.nodes:
        assert node.gpu.geometry in (GEOMETRY_4G_3G, GEOMETRY_4G_2G_1G)


def test_hysteresis_requires_repeated_mismatch():
    sim = Simulator()
    platform, scheme = build(sim, n_nodes=1, wait_limit=3, interval=2.0)
    for t in range(0, 20):
        sim.at(float(t), lambda: strict_burst(platform))
    node = platform.cluster.nodes[0]
    sim.run(until=5.9)  # two monitor ticks: wait_ctr < 3
    assert node.gpu.geometry == GEOMETRY_4G_2G_1G
    sim.run(until=12.0)  # third mismatching tick fires the change
    assert node.gpu.geometry == GEOMETRY_4G_3G


def test_geometry_log_records_changes():
    sim = Simulator()
    platform, scheme = build(sim, n_nodes=1, wait_limit=1)
    for t in range(0, 10):
        sim.at(float(t), lambda: strict_burst(platform))
    sim.run(until=20.0)
    log = scheme.reconfigurator.geometry_log
    assert log
    time, node_name, geometry = log[0]
    assert geometry == GEOMETRY_4G_3G
    assert node_name.startswith("node")
    assert time > 0
