"""Tests for request reordering (§4.1) and the EWMA predictor (§4.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ewma import EwmaPredictor, PerKeyEwma
from repro.core.reordering import best_effort_queued_memory, reorder_strict_first
from repro.errors import ConfigurationError
from repro.serverless.request import Request, RequestBatch
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("resnet50"), 4 / 128)


def batch(strict=True, created_at=0.0, arrival=None, model=MODEL):
    b = RequestBatch(model, strict, created_at)
    b.add(
        Request.from_spec(
            RequestSpec(
                arrival=created_at if arrival is None else arrival,
                model=model,
                strict=strict,
            )
        )
    )
    return b


class TestReordering:
    def test_strict_before_best_effort(self):
        queue = [batch(strict=False, created_at=0.0), batch(strict=True, created_at=1.0)]
        reorder_strict_first(queue)
        assert [b.strict for b in queue] == [True, False]

    def test_strict_ordered_by_earliest_deadline(self):
        late = batch(strict=True, created_at=0.0, arrival=5.0)
        early = batch(strict=True, created_at=1.0, arrival=0.0)
        queue = [late, early]
        reorder_strict_first(queue)
        assert queue == [early, late]

    def test_best_effort_kept_fifo(self):
        first = batch(strict=False, created_at=0.0)
        second = batch(strict=False, created_at=1.0)
        queue = [second, first]
        reorder_strict_first(queue)
        assert queue == [first, second]

    def test_stable_for_equal_keys(self):
        a = batch(strict=False, created_at=2.0)
        b = batch(strict=False, created_at=2.0)
        queue = [a, b]
        reorder_strict_first(queue)
        assert queue == [a, b]

    @given(st.lists(st.tuples(st.booleans(), st.floats(0, 100)), max_size=20))
    def test_reordering_is_a_permutation_with_strict_prefix(self, items):
        queue = [batch(strict=s, created_at=t) for s, t in items]
        original = set(id(b) for b in queue)
        reorder_strict_first(queue)
        assert set(id(b) for b in queue) == original
        flags = [b.strict for b in queue]
        # All strict batches precede all BE batches.
        assert flags == sorted(flags, reverse=True)

    def test_be_queued_memory(self):
        queue = [batch(strict=True), batch(strict=False), batch(strict=False)]
        assert best_effort_queued_memory(queue) == pytest.approx(
            2 * MODEL.memory_gb
        )
        assert best_effort_queued_memory([]) == 0.0


class TestEwma:
    def test_initial_prediction(self):
        assert EwmaPredictor().predict() == 0.0
        assert EwmaPredictor(initial=5.0).predict() == 5.0

    def test_first_observation_adopts_value(self):
        predictor = EwmaPredictor(alpha=0.3)
        predictor.observe(10.0)
        assert predictor.predict() == 10.0

    def test_smoothing(self):
        predictor = EwmaPredictor(alpha=0.5)
        predictor.observe(10.0)
        predictor.observe(20.0)
        assert predictor.predict() == pytest.approx(15.0)
        predictor.observe(20.0)
        assert predictor.predict() == pytest.approx(17.5)

    def test_converges_to_constant_signal(self):
        predictor = EwmaPredictor(alpha=0.3)
        for _ in range(100):
            predictor.observe(42.0)
        assert predictor.predict() == pytest.approx(42.0)

    def test_reset(self):
        predictor = EwmaPredictor()
        predictor.observe(10.0)
        predictor.reset()
        assert predictor.predict() == 0.0
        assert predictor.observations == 0

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaPredictor(alpha=1.5)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_prediction_bounded_by_observed_range(self, samples):
        predictor = EwmaPredictor(alpha=0.3)
        for sample in samples:
            predictor.observe(sample)
        assert min(samples) - 1e-6 <= predictor.predict() <= max(samples) + 1e-6


class TestPerKeyEwma:
    def test_independent_keys(self):
        family = PerKeyEwma(alpha=0.5)
        family.observe("a", 10.0)
        family.observe("b", 2.0)
        assert family.predict("a") == 10.0
        assert family.predict("b") == 2.0
        assert family.predict("never_seen") == 0.0
        assert set(family.keys()) == {"a", "b"}
