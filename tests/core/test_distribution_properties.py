"""Property-based tests for Algorithm 1 (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import (
    choose_best_effort_slice,
    choose_strict_slice,
    compute_tags,
    distribute_batch,
)
from repro.gpu import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G, GPU, SliceJob
from repro.serverless.request import Request, RequestBatch
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import ALL_MODELS
from repro.workloads.scaling import scale_model

GEOMETRIES = [GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G]

model_strategy = st.sampled_from([m.name for m in ALL_MODELS])
occupancy_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # slice index (clamped)
        st.floats(min_value=0.0, max_value=1.0),  # fbr
        st.floats(min_value=0.0, max_value=10.0),  # memory
    ),
    max_size=6,
)


def build_state(geometry, occupancy):
    sim = Simulator()
    gpu = GPU(sim, geometry)
    for index, fbr, memory in occupancy:
        gpu_slice = gpu.slices[index % len(gpu.slices)]
        memory = min(memory, gpu_slice.profile.memory_gb - gpu_slice.memory_used)
        if memory < 0:
            continue
        gpu_slice.submit(
            SliceJob(
                work=100.0,
                rdf=1.0,
                fbr=fbr,
                memory_gb=max(0.0, memory),
                on_complete=lambda j, t: None,
            )
        )
    return gpu


def make_batch(model_name, strict):
    from repro.workloads import get_model

    model = scale_model(get_model(model_name), 4 / max(4, 128))
    batch = RequestBatch(model, strict, created_at=0.0)
    batch.add(
        Request.from_spec(RequestSpec(arrival=0.0, model=model, strict=strict))
    )
    return batch


@settings(max_examples=60, deadline=None)
@given(
    geometry=st.sampled_from(GEOMETRIES),
    occupancy=occupancy_strategy,
    model_name=model_strategy,
    strict=st.booleans(),
    be_mem=st.floats(min_value=0.0, max_value=60.0),
)
def test_distribute_never_violates_memory(geometry, occupancy, model_name,
                                          strict, be_mem):
    gpu = build_state(geometry, occupancy)
    batch = make_batch(model_name, strict)
    chosen = distribute_batch(batch, gpu.slices, be_mem)
    if chosen is not None:
        assert batch.memory_gb <= chosen.memory_free + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    geometry=st.sampled_from(GEOMETRIES),
    occupancy=occupancy_strategy,
    model_name=model_strategy,
    be_mem=st.floats(min_value=0.0, max_value=60.0),
)
def test_strict_choice_minimizes_eta(geometry, occupancy, model_name, be_mem):
    from repro.gpu.slowdown import slowdown_factor

    gpu = build_state(geometry, occupancy)
    batch = make_batch(model_name, True)
    tags = compute_tags(gpu.slices, be_mem)
    chosen = choose_strict_slice(batch, gpu.slices, tags)
    if chosen is None:
        return
    model = batch.model

    def eta(gpu_slice):
        return slowdown_factor(
            model.rdf(gpu_slice.profile),
            model.slice_fbr(gpu_slice.profile),
            [*gpu_slice.resident_fbrs(), tags.get(id(gpu_slice), 0.0)],
        )

    eligible = [
        s
        for s in gpu.slices
        if tags.get(id(s), 0.0) < 1.0 and batch.memory_gb <= s.memory_free
    ]
    assert chosen in eligible
    assert eta(chosen) <= min(eta(s) for s in eligible) + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    geometry=st.sampled_from(GEOMETRIES),
    occupancy=occupancy_strategy,
    model_name=model_strategy,
)
def test_best_effort_choice_is_first_fit_ascending(geometry, occupancy,
                                                   model_name):
    gpu = build_state(geometry, occupancy)
    batch = make_batch(model_name, False)
    chosen = choose_best_effort_slice(batch, gpu.slices)
    if chosen is None:
        for gpu_slice in gpu.slices:
            assert batch.memory_gb > gpu_slice.memory_free
        return
    # No strictly smaller slice had room (first-fit ascending order).
    for gpu_slice in gpu.slices:
        if gpu_slice.profile.compute_units < chosen.profile.compute_units:
            assert batch.memory_gb > gpu_slice.memory_free


@settings(max_examples=40, deadline=None)
@given(
    geometry=st.sampled_from(GEOMETRIES),
    be_mem=st.floats(min_value=0.0, max_value=200.0),
)
def test_tags_monotone_and_bounded(geometry, be_mem):
    sim = Simulator()
    gpu = GPU(sim, geometry)
    tags = compute_tags(gpu.slices, be_mem)
    assert all(0.0 <= value <= 1.0 for value in tags.values())
    # Packing order: a larger slice may only be tagged if every smaller
    # one is fully tagged.
    ordered = sorted(gpu.slices, key=lambda s: s.profile.compute_units)
    seen_untagged = False
    for gpu_slice in ordered:
        tag = tags.get(id(gpu_slice), 0.0)
        if tag < 1.0:
            seen_untagged = True
        elif seen_untagged:
            raise AssertionError("tagged a larger slice before filling smaller")
