"""Unit tests for PeriodicProcess and OneShotTimer."""

import pytest

from repro.errors import SimulationError
from repro.simulation import OneShotTimer, PeriodicProcess, Simulator


def test_periodic_fires_on_period():
    sim = Simulator()
    ticks = []
    proc = PeriodicProcess(sim, 2.0, lambda: ticks.append(sim.now))
    proc.start()
    sim.run(until=7.0)
    assert ticks == [2.0, 4.0, 6.0]
    assert proc.invocations == 3


def test_periodic_custom_start_delay():
    sim = Simulator()
    ticks = []
    proc = PeriodicProcess(
        sim, 5.0, lambda: ticks.append(sim.now), start_delay=0.0
    )
    proc.start()
    sim.run(until=11.0)
    assert ticks == [0.0, 5.0, 10.0]


def test_periodic_stop_prevents_future_ticks():
    sim = Simulator()
    ticks = []
    proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
    proc.start()
    sim.at(2.5, proc.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert not proc.running


def test_periodic_can_stop_itself_from_callback():
    sim = Simulator()
    ticks = []
    proc = PeriodicProcess(sim, 1.0, lambda: (ticks.append(sim.now), proc.stop()))
    proc.start()
    sim.run(until=10.0)
    assert ticks == [1.0]


def test_periodic_double_start_raises():
    sim = Simulator()
    proc = PeriodicProcess(sim, 1.0, lambda: None)
    proc.start()
    with pytest.raises(SimulationError):
        proc.start()


def test_periodic_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PeriodicProcess(sim, 0.0, lambda: None)


def test_periodic_stop_is_idempotent():
    sim = Simulator()
    proc = PeriodicProcess(sim, 1.0, lambda: None)
    proc.stop()  # never started: fine
    proc.start()
    proc.stop()
    proc.stop()


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = OneShotTimer(sim, lambda: fired.append(sim.now))
    timer.restart(3.0)
    assert timer.pending
    sim.run()
    assert fired == [3.0]
    assert not timer.pending


def test_timer_restart_supersedes_previous_fire():
    sim = Simulator()
    fired = []
    timer = OneShotTimer(sim, lambda: fired.append(sim.now))
    timer.restart(3.0)
    sim.at(1.0, lambda: timer.restart(5.0))
    sim.run()
    assert fired == [6.0]


def test_timer_cancel():
    sim = Simulator()
    fired = []
    timer = OneShotTimer(sim, lambda: fired.append(sim.now))
    timer.restart(3.0)
    timer.cancel()
    sim.run()
    assert fired == []
    timer.cancel()  # idempotent
