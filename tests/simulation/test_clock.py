"""The Clock/Timers protocol boundary and its two implementations."""

import asyncio

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulation import (
    AsyncioClock,
    Clock,
    Simulator,
    Timers,
    ensure_clock,
)


class TestProtocolConformance:
    def test_simulator_satisfies_clock(self):
        sim = Simulator(seed=1)
        assert isinstance(sim, Clock)
        assert isinstance(sim, Timers)
        assert ensure_clock(sim) is sim

    def test_asyncio_clock_satisfies_clock(self):
        clock = AsyncioClock(seed=1)
        assert isinstance(clock, Clock)
        assert ensure_clock(clock) is clock

    def test_non_clock_rejected_with_typed_error(self):
        with pytest.raises(ConfigurationError, match="Clock protocol"):
            ensure_clock(object())

    def test_simulator_schedule_is_the_canonical_spelling(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now), label="via-schedule")
        sim.at(2.0, lambda: fired.append(sim.now), label="via-at")
        sim.run()
        assert fired == [1.0, 2.0]

    def test_simulator_heap_access_is_deprecated(self):
        sim = Simulator(seed=1)
        with pytest.warns(DeprecationWarning, match="Clock protocol"):
            heap = sim.heap
        assert heap is sim.queue._heap


class TestAsyncioClock:
    def test_speedup_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AsyncioClock(speedup=0.0)

    def test_unstarted_clock_reads_zero_and_refuses_timers(self):
        clock = AsyncioClock()
        assert clock.now == 0.0
        assert not clock.started
        with pytest.raises(SimulationError, match="not started"):
            clock.after(0.1, lambda: None)

    def test_double_start_rejected(self):
        async def body():
            clock = AsyncioClock().start()
            with pytest.raises(SimulationError, match="twice"):
                clock.start()

        asyncio.run(body())

    def test_negative_delay_rejected(self):
        async def body():
            clock = AsyncioClock().start()
            with pytest.raises(SimulationError, match="negative delay"):
                clock.after(-1.0, lambda: None)

        asyncio.run(body())

    def test_timers_fire_in_order_on_the_scaled_timeline(self):
        async def body():
            clock = AsyncioClock(speedup=100.0).start()
            fired = []
            clock.after(2.0, lambda: fired.append("late"))
            clock.after(0.5, lambda: fired.append("early"))
            clock.schedule(1.0, lambda: fired.append("mid"))
            # 2 trace seconds = 0.02 wall seconds at 100x.
            ok = await clock.wait_for(
                lambda: len(fired) == 3, timeout_wall=5.0
            )
            assert ok
            assert fired == ["early", "mid", "late"]
            assert clock.now >= 2.0
            assert clock.timers_fired == 3

        asyncio.run(body())

    def test_past_times_clamp_instead_of_raising(self):
        async def body():
            clock = AsyncioClock(speedup=1000.0).start()
            await clock.sleep(1.0)
            fired = []
            timer = clock.schedule(0.0, lambda: fired.append(clock.now))
            ok = await clock.wait_for(lambda: bool(fired), timeout_wall=5.0)
            assert ok
            assert timer.fired
            # Fired "as soon as possible": at or after the schedule call.
            assert fired[0] >= 1.0

        asyncio.run(body())

    def test_cancel_matches_simulator_semantics(self):
        async def body():
            clock = AsyncioClock(speedup=100.0).start()
            fired = []
            timer = clock.after(0.5, lambda: fired.append(1))
            assert timer.pending
            clock.cancel(timer)
            assert timer.cancelled and not timer.pending
            clock.cancel(timer)  # double-cancel: no-op
            clock.cancel(None)  # None: no-op
            done = clock.after(0.1, lambda: fired.append(2))
            ok = await clock.wait_for(lambda: bool(fired), timeout_wall=5.0)
            assert ok
            clock.cancel(done)  # already fired: no-op
            assert fired == [2]
            assert clock.timers_cancelled == 1

        asyncio.run(body())

    def test_wall_view_is_unscaled(self):
        async def body():
            clock = AsyncioClock(speedup=50.0).start()
            await clock.sleep(1.0)  # 1 trace second = 0.02 wall seconds
            assert clock.now >= 1.0
            assert clock.wall_now < 1.0
            wall = clock.wall
            assert wall.now == pytest.approx(clock.wall_now, abs=0.05)
            assert wall.unix_origin == clock.unix_origin > 0

        asyncio.run(body())

    def test_shutdown_cancels_pending_timers(self):
        async def body():
            clock = AsyncioClock().start()
            fired = []
            for delay in (10.0, 20.0, 30.0):
                clock.after(delay, lambda: fired.append(delay))
            assert clock.pending_timers == 3
            assert clock.shutdown() == 3
            assert clock.pending_timers == 0
            assert not fired

        asyncio.run(body())

    def test_rng_registry_matches_simulator_streams(self):
        # Same seed, same named stream, same draws: components that draw
        # randomness behave identically on either clock.
        sim = Simulator(seed=42)
        clock = AsyncioClock(seed=42)
        a = sim.rng.stream("spot").random(5)
        b = clock.rng.stream("spot").random(5)
        assert list(a) == list(b)
