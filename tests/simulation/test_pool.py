"""Object and array pools: reuse, reset, and bounded retention."""

import numpy as np

from repro.simulation import ArrayPool, ObjectPool


def test_object_pool_reuses_released_objects():
    pool = ObjectPool(factory=list)
    first = pool.acquire()
    first.append(1)
    pool.release(first)
    second = pool.acquire()
    assert second is first
    assert pool.created == 1
    assert pool.reused == 1


def test_object_pool_reset_runs_on_release():
    pool = ObjectPool(factory=list, reset=list.clear)
    obj = pool.acquire()
    obj.extend([1, 2, 3])
    pool.release(obj)
    assert pool.acquire() == []


def test_object_pool_respects_max_size():
    pool = ObjectPool(factory=list, max_size=2)
    objs = [pool.acquire() for _ in range(5)]
    for obj in objs:
        pool.release(obj)
    assert len(pool) == 2
    assert pool.created == 5


def test_array_pool_reuses_matching_shape_and_dtype():
    pool = ArrayPool()
    a = pool.take((4, 3), np.int64)
    pool.give(a)
    b = pool.take((4, 3), np.int64)
    assert b is a
    # Different shape or dtype allocates fresh.
    c = pool.take((4, 3), np.float64)
    assert c is not a
    d = pool.take((3, 4), np.int64)
    assert d is not a


def test_array_pool_bounds_retention_per_key():
    pool = ArrayPool(max_per_key=2)
    arrays = [pool.take((8,), np.float64) for _ in range(4)]
    for array in arrays:
        pool.give(array)
    kept = [pool.take((8,), np.float64) for _ in range(4)]
    reused = sum(1 for k in kept if any(k is a for a in arrays))
    assert reused == 2
