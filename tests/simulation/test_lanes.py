"""Event-lane semantics: ordering, chunking, accounting, validation."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import EventLane, Simulator


def test_lane_validation_rejects_bad_arrays():
    handler = lambda chunk: None  # noqa: E731
    with pytest.raises(SimulationError):
        EventLane(np.array([[1.0, 2.0]]), handler)  # not 1-D
    with pytest.raises(SimulationError):
        EventLane(np.array([2.0, 1.0]), handler)  # unsorted
    with pytest.raises(SimulationError):
        EventLane(np.array([-1.0, 2.0]), handler)  # negative time
    with pytest.raises(SimulationError):
        EventLane(np.array([math.nan]), handler)  # non-finite


def test_lane_times_are_frozen():
    lane = EventLane(np.array([1.0, 2.0]), lambda chunk: None)
    with pytest.raises((ValueError, RuntimeError)):
        lane.times[0] = 0.5


def test_add_lane_rejects_times_before_now():
    sim = Simulator()
    sim.after(1.0, lambda: None)
    sim.run(until=1.0)
    with pytest.raises(SimulationError):
        sim.add_lane(np.array([0.5]), lambda chunk: None)


def test_heap_and_lane_interleave_in_time_order():
    sim = Simulator()
    seen = []
    sim.add_lane(
        np.array([1.0, 3.0, 5.0]),
        lambda chunk: seen.extend(("lane", t) for t in chunk),
    )
    for t in (2.0, 4.0):
        sim.after(t, lambda t=t: seen.append(("heap", t)))
    sim.run()
    assert seen == [
        ("lane", 1.0),
        ("heap", 2.0),
        ("lane", 3.0),
        ("heap", 4.0),
        ("lane", 5.0),
    ]
    assert sim.now == 5.0
    assert sim.events_processed == 5


def test_heap_wins_timestamp_ties_with_lane():
    sim = Simulator()
    seen = []
    sim.add_lane(np.array([1.0, 2.0]), lambda chunk: seen.extend(chunk))
    sim.after(2.0, lambda: seen.append("heap@2"))
    sim.run()
    # The lane chunk up to (but excluding) t=2.0 fires, then the heap
    # event at 2.0, then the remaining lane entry at 2.0.
    assert seen == [1.0, "heap@2", 2.0]


def test_earlier_registered_lane_wins_ties():
    sim = Simulator()
    seen = []
    sim.add_lane(np.array([1.0, 2.0]), lambda c: seen.extend(("a", t) for t in c))
    sim.add_lane(np.array([1.0, 2.0]), lambda c: seen.extend(("b", t) for t in c))
    sim.run()
    assert seen == [("a", 1.0), ("b", 1.0), ("a", 2.0), ("b", 2.0)]


def test_lane_chunks_are_maximal_between_heap_events():
    sim = Simulator()
    chunks = []
    sim.add_lane(
        np.arange(1, 11, dtype=np.float64), lambda c: chunks.append(c.copy())
    )
    sim.after(5.5, lambda: None)
    sim.run()
    assert [list(c) for c in chunks] == [
        [1.0, 2.0, 3.0, 4.0, 5.0],
        [6.0, 7.0, 8.0, 9.0, 10.0],
    ]


def test_lane_handler_may_schedule_heap_events():
    sim = Simulator()
    seen = []

    def on_chunk(chunk):
        seen.append(("chunk", float(chunk[-1])))
        # Clock sits at the chunk's last entry; follow-ups land after it.
        sim.after(0.25, lambda: seen.append(("follow", sim.now)))

    sim.add_lane(np.array([1.0, 2.0]), on_chunk)
    # A heap event between the entries bounds the first chunk at t=1.0
    # (a chunk never spans a heap event that exists when it dispatches).
    sim.after(1.5, lambda: None)
    sim.run()
    assert seen == [
        ("chunk", 1.0),
        ("follow", 1.25),
        ("chunk", 2.0),
        ("follow", 2.25),
    ]


def test_run_until_stops_mid_lane():
    sim = Simulator()
    seen = []
    sim.add_lane(np.array([1.0, 2.0, 3.0, 4.0]), lambda c: seen.extend(c))
    sim.run(until=2.5)
    assert seen == [1.0, 2.0]
    assert sim.now == 2.5
    # The rest dispatches on the next run().
    sim.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_lane_entries_count_toward_max_events():
    sim = Simulator()
    sim.add_lane(np.arange(1, 6, dtype=np.float64), lambda c: None)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=3)
    # The whole chunk dispatched (chunks are atomic) before the check.
    assert sim.events_processed == 5


def test_step_refuses_while_lane_pending():
    sim = Simulator()
    sim.add_lane(np.array([1.0]), lambda c: None)
    sim.after(0.5, lambda: None)
    with pytest.raises(SimulationError, match="lane"):
        sim.step()
    # Once the lane drains, step() works again.
    sim.run()
    sim.after(2.0, lambda: None)  # relative: fires at now + 2.0 = 3.0
    assert sim.step() is True
    assert sim.now == 3.0


def test_exhausted_lane_leaves_default_loop_untouched():
    sim = Simulator()
    sim.add_lane(np.array([1.0]), lambda c: None)
    sim.run()
    seen = []
    sim.after(2.0, lambda: seen.append(sim.now))  # fires at 1.0 + 2.0
    sim.run()
    assert seen == [3.0]
