"""Unit tests for the Simulator event loop."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.simulation import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_executes_in_time_order_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.at(3.0, lambda: seen.append(("c", sim.now)))
    sim.at(1.0, lambda: seen.append(("a", sim.now)))
    sim.after(2.0, lambda: seen.append(("b", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
    assert sim.now == 3.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.at(1.0, lambda: seen.append(1))
    sim.at(10.0, lambda: seen.append(10))
    sim.run(until=5.0)
    assert seen == [1]
    assert sim.now == 5.0
    sim.run()
    assert seen == [1, 10]


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(sim.now)
        if n > 0:
            sim.after(1.0, lambda: chain(n - 1))

    sim.at(0.0, lambda: chain(3))
    sim.run()
    assert seen == [0.0, 1.0, 2.0, 3.0]


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.at(5.0, lambda: None)
    sim.run()
    with pytest.raises(ClockError):
        sim.at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda: None)


def test_cancel_pending_event():
    sim = Simulator()
    seen = []
    event = sim.at(1.0, lambda: seen.append("doomed"))
    sim.at(2.0, lambda: seen.append("kept"))
    sim.cancel(event)
    sim.run()
    assert seen == ["kept"]


def test_max_events_guard_trips_on_runaway():
    sim = Simulator()

    def rearm():
        sim.after(0.1, rearm)

    sim.at(0.0, rearm)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for t in range(5):
        sim.at(float(t), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_step_returns_false_on_empty_queue():
    assert Simulator().step() is False


def test_mid_run_compaction_loses_no_events():
    # Regression: Simulator.run inlines the dispatch loop around a local
    # binding of queue._heap. compact() used to rebind queue._heap to a
    # fresh list, so a callback calling compact() mid-run (an observer or
    # audit sweep is allowed to) stranded the loop on the stale list —
    # events scheduled afterwards never fired and the loop crashed with
    # IndexError once the stale heap drained. compact() now rebuilds in
    # place, so everything scheduled after the sweep must still fire.
    sim = Simulator()
    seen = []
    doomed = [sim.at(5.0, lambda: None) for _ in range(3)]

    def observer_sweep():
        for event in doomed:
            sim.cancel(event)
        sim.queue.compact()  # the audit-style mid-run compaction
        sim.after(1.0, lambda: seen.append(("late", sim.now)))

    sim.at(1.0, observer_sweep)
    sim.at(3.0, lambda: seen.append(("mid", sim.now)))
    sim.run()
    assert seen == [("late", 2.0), ("mid", 3.0)]
    assert len(sim.queue) == 0


def test_mid_run_compaction_preserves_step_order():
    # The same sweep must not perturb dispatch order relative to an
    # uncompacted twin.
    def build():
        sim = Simulator()
        seen = []
        doomed = [sim.at(9.0, lambda: None) for _ in range(4)]
        sim.at(2.0, lambda: seen.append(2.0))

        def sweep(compact):
            for event in doomed:
                sim.cancel(event)
            if compact:
                sim.queue.compact()
            sim.after(0.5, lambda: seen.append(sim.now))

        sim.at(4.0, lambda: seen.append(4.0))
        return sim, seen, sweep

    sim_a, seen_a, sweep_a = build()
    sim_a.at(1.0, lambda: sweep_a(True))
    sim_a.run()
    sim_b, seen_b, sweep_b = build()
    sim_b.at(1.0, lambda: sweep_b(False))
    sim_b.run()
    assert seen_a == seen_b == [1.5, 2.0, 4.0]


def test_max_events_parity_with_step():
    # run(max_events=N) must execute exactly the first N events step()
    # would, in the same order, before tripping the guard.
    def build():
        sim = Simulator()
        seen = []
        for t in (3.0, 1.0, 2.0, 5.0, 4.0):
            sim.at(t, lambda t=t: seen.append(t))
        return sim, seen

    sim_a, seen_a = build()
    for _ in range(3):
        assert sim_a.step()
    sim_b, seen_b = build()
    with pytest.raises(SimulationError, match="max_events"):
        sim_b.run(max_events=3)
    assert seen_a == seen_b == [1.0, 2.0, 3.0]
    assert sim_a.events_processed == sim_b.events_processed == 3


def test_run_order_equals_step_order_under_random_cancellations():
    # Property: for a random schedule with random cancellations (some
    # up-front, some performed *by callbacks* mid-run), run() dispatches
    # exactly the sequence repeated step() calls produce.
    import random

    def build(seed):
        rng = random.Random(seed)
        sim = Simulator()
        seen = []
        events = []
        for i in range(200):
            t = round(rng.uniform(0.0, 50.0), 3)
            priority = rng.choice([10, 100, 100, 100, 1000])
            events.append(
                sim.at(t, lambda i=i: seen.append(i), priority=priority,
                       label=f"e{i}")
            )
        # Up-front cancellations.
        for event in rng.sample(events, 40):
            sim.cancel(event)
        # Mid-run cancellations: a few killer callbacks that cancel
        # still-pending victims when they fire.
        victims = rng.sample(events, 20)
        for victim in victims:
            t = round(rng.uniform(0.0, victim.time), 3)
            sim.at(t, lambda v=victim: sim.cancel(v)
                   if v.pending else None, label="killer")
        return sim, seen

    for seed in range(5):
        sim_run, seen_run = build(seed)
        sim_run.run()
        sim_step, seen_step = build(seed)
        while sim_step.step():
            pass
        assert seen_run == seen_step
        assert sim_run.events_processed == sim_step.events_processed
        assert sim_run.now == sim_step.now


def test_dead_fraction_accounting_across_inlined_tombstone_pops():
    # run() pops tombstones inline (without EventQueue.pop); the queue's
    # live/heap accounting must stay exact across those pops so
    # dead_fraction keeps meaning "fraction of heap entries cancelled".
    sim = Simulator()
    keepers = [sim.at(float(t), lambda: None) for t in range(10, 15)]
    doomed = [sim.at(float(t), lambda: None) for t in range(5)]
    for event in doomed:
        sim.cancel(event)
    assert len(sim.queue) == 5
    assert sim.queue.dead_fraction == pytest.approx(0.5)
    # Run past the tombstones but before any live event: the inlined
    # loop drops the dead heads, fires nothing...
    sim.run(until=9.0)
    assert sim.events_processed == 0
    # ...and the accounting reflects the pops: no tombstones remain.
    assert len(sim.queue._heap) == 5
    assert len(sim.queue) == 5
    assert sim.queue.dead_fraction == 0.0
    assert all(entry[3] in keepers for entry in sim.queue._heap)


def test_run_is_not_reentrant():
    sim = Simulator()
    failures = []

    def reenter():
        try:
            sim.run()
        except SimulationError:
            failures.append(True)

    sim.at(0.0, reenter)
    sim.run()
    assert failures == [True]
