"""Unit tests for the Simulator event loop."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.simulation import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_executes_in_time_order_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.at(3.0, lambda: seen.append(("c", sim.now)))
    sim.at(1.0, lambda: seen.append(("a", sim.now)))
    sim.after(2.0, lambda: seen.append(("b", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
    assert sim.now == 3.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.at(1.0, lambda: seen.append(1))
    sim.at(10.0, lambda: seen.append(10))
    sim.run(until=5.0)
    assert seen == [1]
    assert sim.now == 5.0
    sim.run()
    assert seen == [1, 10]


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(sim.now)
        if n > 0:
            sim.after(1.0, lambda: chain(n - 1))

    sim.at(0.0, lambda: chain(3))
    sim.run()
    assert seen == [0.0, 1.0, 2.0, 3.0]


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.at(5.0, lambda: None)
    sim.run()
    with pytest.raises(ClockError):
        sim.at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda: None)


def test_cancel_pending_event():
    sim = Simulator()
    seen = []
    event = sim.at(1.0, lambda: seen.append("doomed"))
    sim.at(2.0, lambda: seen.append("kept"))
    sim.cancel(event)
    sim.run()
    assert seen == ["kept"]


def test_max_events_guard_trips_on_runaway():
    sim = Simulator()

    def rearm():
        sim.after(0.1, rearm)

    sim.at(0.0, rearm)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for t in range(5):
        sim.at(float(t), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_step_returns_false_on_empty_queue():
    assert Simulator().step() is False


def test_run_is_not_reentrant():
    sim = Simulator()
    failures = []

    def reenter():
        try:
            sim.run()
        except SimulationError:
            failures.append(True)

    sim.at(0.0, reenter)
    sim.run()
    assert failures == [True]
