"""Unit tests for seeded named RNG streams."""

from repro.simulation.rng import RngRegistry, derive_seed


def test_derive_seed_is_stable_and_name_sensitive():
    assert derive_seed(7, "arrivals") == derive_seed(7, "arrivals")
    assert derive_seed(7, "arrivals") != derive_seed(7, "spot")
    assert derive_seed(7, "arrivals") != derive_seed(8, "arrivals")


def test_streams_are_cached():
    registry = RngRegistry(0)
    assert registry.stream("a") is registry.stream("a")


def test_same_seed_same_sequence():
    first = RngRegistry(42).stream("arrivals").random(10)
    second = RngRegistry(42).stream("arrivals").random(10)
    assert (first == second).all()


def test_different_streams_are_independent():
    registry = RngRegistry(42)
    a = registry.stream("a").random(10)
    b = registry.stream("b").random(10)
    assert not (a == b).all()


def test_draw_order_between_streams_does_not_matter():
    registry1 = RngRegistry(1)
    a_then_b = (registry1.stream("a").random(), registry1.stream("b").random())
    registry2 = RngRegistry(1)
    b_first = registry2.stream("b").random()
    a_second = registry2.stream("a").random()
    assert a_then_b == (a_second, b_first)


def test_spawn_produces_distinct_families():
    root = RngRegistry(5)
    child1 = root.spawn("node0")
    child2 = root.spawn("node1")
    assert child1.stream("x").random() != child2.stream("x").random()
    # Spawning is deterministic too.
    again = RngRegistry(5).spawn("node0")
    assert again.stream("x").random() == RngRegistry(5).spawn("node0").stream("x").random()


def test_reset_recreates_streams_from_scratch():
    registry = RngRegistry(9)
    first = registry.stream("s").random()
    registry.stream("s").random()
    registry.reset()
    assert registry.stream("s").random() == first
