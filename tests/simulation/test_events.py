"""Unit tests for the event queue primitives."""

import pytest

from repro.errors import ClockError, EventCancelledError
from repro.simulation.events import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    EventQueue,
    validate_schedule_time,
)


def test_schedule_and_pop_in_time_order():
    queue = EventQueue()
    order = []
    queue.schedule(2.0, lambda: order.append("b"))
    queue.schedule(1.0, lambda: order.append("a"))
    queue.schedule(3.0, lambda: order.append("c"))
    while queue:
        queue.pop().callback()
    assert order == ["a", "b", "c"]


def test_fifo_within_same_timestamp():
    queue = EventQueue()
    first = queue.schedule(1.0, lambda: None)
    second = queue.schedule(1.0, lambda: None)
    assert queue.pop() is first
    assert queue.pop() is second


def test_priority_breaks_timestamp_ties():
    queue = EventQueue()
    normal = queue.schedule(1.0, lambda: None)
    early = queue.schedule(1.0, lambda: None, priority=PRIORITY_EARLY)
    late = queue.schedule(1.0, lambda: None, priority=PRIORITY_LATE)
    assert queue.pop() is early
    assert queue.pop() is normal
    assert queue.pop() is late


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    doomed = queue.schedule(1.0, lambda: None)
    keeper = queue.schedule(2.0, lambda: None)
    queue.cancel(doomed)
    assert len(queue) == 1
    assert queue.pop() is keeper


def test_double_cancel_raises():
    queue = EventQueue()
    event = queue.schedule(1.0, lambda: None)
    queue.cancel(event)
    with pytest.raises(EventCancelledError):
        queue.cancel(event)


def test_cancel_if_pending_tolerates_none_and_cancelled():
    queue = EventQueue()
    queue.cancel_if_pending(None)
    event = queue.schedule(1.0, lambda: None)
    queue.cancel_if_pending(event)
    queue.cancel_if_pending(event)  # second call is a no-op
    assert len(queue) == 0


def test_pop_empty_queue_raises_index_error():
    queue = EventQueue()
    with pytest.raises(IndexError):
        queue.pop()
    with pytest.raises(IndexError):
        queue.peek_time()


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    head = queue.schedule(1.0, lambda: None)
    queue.schedule(5.0, lambda: None)
    queue.cancel(head)
    assert queue.peek_time() == 5.0


def test_compact_removes_tombstones():
    queue = EventQueue()
    events = [queue.schedule(float(i), lambda: None) for i in range(10)]
    for event in events[:9]:
        queue.cancel(event)
    assert queue.dead_fraction == pytest.approx(0.9)
    queue.compact()
    assert queue.dead_fraction == 0.0
    assert len(queue) == 1


def test_validate_schedule_time_rejects_past():
    with pytest.raises(ClockError):
        validate_schedule_time(now=5.0, time=4.0)
    validate_schedule_time(now=5.0, time=5.0)  # boundary is allowed
