"""Shard partitioning, the barrier protocol, and serial/sharded identity."""

import numpy as np
import pytest

from repro.errors import HyperscaleError
from repro.hyperscale import (
    HyperscaleConfig,
    build_report,
    run_engine,
    run_hyperscale,
    shard_ranges,
)


class TestShardRanges:
    def test_contiguous_and_balanced(self):
        ranges = shard_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_more_jobs_than_nodes(self):
        assert shard_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_single_job(self):
        assert shard_ranges(5, 1) == [(0, 5)]

    def test_validation(self):
        with pytest.raises(HyperscaleError):
            shard_ranges(0, 2)
        with pytest.raises(HyperscaleError):
            shard_ranges(4, 0)


def smoke_config():
    # Smaller than the CLI smoke preset: keeps the forked workers quick.
    return HyperscaleConfig.smoke(
        n_nodes=8, rate=400.0, duration=120.0, epoch_ticks=30
    )


class TestSerialShardedIdentity:
    def test_sharded_report_is_bit_identical(self):
        config = smoke_config()
        serial = run_hyperscale(config, jobs=1)
        sharded = run_hyperscale(config, jobs=3)
        assert serial.identity_digest == sharded.identity_digest
        assert serial.to_dict() == sharded.to_dict()

    def test_manual_shard_merge_matches_serial(self):
        # The same identity without processes: run_engine per range,
        # merge via build_report.
        config = smoke_config()
        serial = build_report(config, [run_engine(config)])
        parts = [
            run_engine(config, lo, hi) for lo, hi in shard_ranges(8, 3)
        ]
        merged = build_report(config, list(reversed(parts)))  # any order
        assert merged.identity_digest == serial.identity_digest
        assert merged.to_dict() == serial.to_dict()


class TestBuildReportValidation:
    def test_rejects_gap(self):
        config = smoke_config()
        parts = [run_engine(config, 0, 4), run_engine(config, 5, 8)]
        with pytest.raises(HyperscaleError, match="tile"):
            build_report(config, parts)

    def test_rejects_incomplete_coverage(self):
        config = smoke_config()
        with pytest.raises(HyperscaleError, match="cover"):
            build_report(config, [run_engine(config, 0, 4)])

    def test_rejects_empty(self):
        with pytest.raises(HyperscaleError):
            build_report(smoke_config(), [])


def test_report_totals_are_consistent():
    config = smoke_config()
    report = run_hyperscale(config, jobs=2)
    assert report.total_arrivals == report.total_served + report.final_backlog
    assert 0.0 <= report.slo_attainment <= 1.0
    assert report.latency_p50 <= report.latency_p99
    assert report.latency_p50 >= config.tick  # service tick is a floor
    payload = report.to_dict()
    assert "wall" not in str(payload)  # deterministic: no timings
    assert payload["config"]["n_nodes"] == 8
    assert np.isfinite(payload["latency_p99"])
