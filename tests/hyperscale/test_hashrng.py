"""Counter-based hash RNG: determinism, independence, and distributions."""

import numpy as np
import pytest

from repro.hyperscale import hash_normal, hash_poisson, hash_u01, hash_u64


def test_pure_function_of_coordinates():
    nodes = np.arange(16)
    ticks = np.arange(100)
    a = hash_u64(7, nodes[:, None], ticks[None, :])
    b = hash_u64(7, nodes[:, None], ticks[None, :])
    assert np.array_equal(a, b)


def test_partition_independence():
    # The whole point: node 11's randomness is identical whether it is
    # computed alone, in a grid, or in any sub-range.
    ticks = np.arange(50)
    grid = hash_u64(3, np.arange(32)[:, None], ticks[None, :])
    solo = hash_u64(3, np.uint64(11), ticks)
    assert np.array_equal(grid[11], solo)


def test_coordinates_decorrelate():
    base = hash_u64(0, 5, 7)
    assert hash_u64(1, 5, 7) != base  # seed
    assert hash_u64(0, 6, 7) != base  # node
    assert hash_u64(0, 5, 8) != base  # tick
    assert hash_u64(0, 5, 7, stream=1) != base  # stream


def test_u01_range_and_moments():
    u = hash_u01(0, np.arange(1000)[:, None], np.arange(1000)[None, :])
    assert np.all(u > 0.0)
    assert np.all(u <= 1.0)
    assert u.mean() == pytest.approx(0.5, abs=0.005)
    assert u.var() == pytest.approx(1.0 / 12.0, rel=0.02)


def test_normal_moments():
    z = hash_normal(0, np.arange(1000)[:, None], np.arange(1000)[None, :])
    assert z.mean() == pytest.approx(0.0, abs=0.01)
    assert z.std() == pytest.approx(1.0, rel=0.01)


@pytest.mark.parametrize("lam", [0.5, 4.0, 20.0, 100.0])
def test_poisson_moments(lam):
    counts = hash_poisson(
        np.full((1000, 1000), lam),
        0,
        np.arange(1000)[:, None],
        np.arange(1000)[None, :],
    )
    assert counts.dtype == np.int64
    assert np.all(counts >= 0)
    assert counts.mean() == pytest.approx(lam, rel=0.01)
    assert counts.var() == pytest.approx(lam, rel=0.02)


def test_poisson_zero_rate_and_empty():
    counts = hash_poisson(np.zeros(10), 0, np.arange(10), 0)
    assert np.array_equal(counts, np.zeros(10, dtype=np.int64))
    empty = hash_poisson(np.empty(0), 0, np.empty(0, dtype=np.uint64), 0)
    assert empty.size == 0


def test_poisson_mixed_regimes_are_partition_independent():
    # Rates straddling the exact/approx threshold within one call must
    # still match the single-rate calls elementwise.
    lam = np.array([1.0, 8.0, 31.9, 32.0, 200.0])
    mixed = hash_poisson(lam, 0, np.uint64(2), np.arange(5))
    for i, rate in enumerate(lam):
        solo = hash_poisson(
            np.array([rate]), 0, np.uint64(2), np.array([i])
        )
        assert mixed[i] == solo[0]
