"""Engine correctness: Lindley recursion, conservation, block independence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, HyperscaleError
from repro.hyperscale import (
    HyperscaleConfig,
    build_report,
    hash_poisson,
    run_engine,
)


def tiny_config(**overrides):
    defaults = dict(
        n_nodes=4,
        rate=40.0,
        duration=50.0,
        epoch_ticks=10,
        diurnal_period=50.0,
        block_nodes=2,
        max_centroids=64,
    )
    defaults.update(overrides)
    return HyperscaleConfig(**defaults)


def reference_lindley(q0, arrivals, c):
    """The textbook per-tick loop the vectorised engine must reproduce."""
    q = q0
    trajectory = []
    served = []
    for a in arrivals:
        before = q
        q = max(q + a - c, 0)
        trajectory.append(q)
        served.append(before + a - q)
    return trajectory, served


def test_vectorised_lindley_matches_reference_loop():
    rng = np.random.default_rng(0)
    for _ in range(50):
        c = int(rng.integers(1, 6))
        q0 = int(rng.integers(0, 10))
        arrivals = rng.integers(0, 10, size=40).astype(np.int64)
        cser = q0 + np.cumsum(arrivals - c)
        run_min = np.minimum.accumulate(np.minimum(cser, 0))
        q = cser - run_min
        q_prev = np.concatenate([[q0], q[:-1]])
        served = q_prev + arrivals - q
        ref_q, ref_served = reference_lindley(q0, arrivals, c)
        assert q.tolist() == ref_q
        assert served.tolist() == ref_served


def test_integer_conservation_over_full_run():
    config = tiny_config()
    result = run_engine(config)
    # Every arrival is either served or still queued: exact, not approx.
    assert np.array_equal(
        result.arrivals, result.served + result.final_backlog
    )
    assert np.all(result.slo_met <= result.arrivals)


def test_results_independent_of_block_nodes():
    base = tiny_config(block_nodes=1)
    wide = tiny_config(block_nodes=4)
    assert (
        build_report(base, [run_engine(base)]).identity_digest
        == build_report(wide, [run_engine(wide)]).identity_digest
    )


def test_results_independent_of_epoch_ticks():
    # Epoch length is a barrier/batching knob, never a physics knob.
    short = tiny_config(epoch_ticks=7)
    long = tiny_config(epoch_ticks=50)
    assert (
        build_report(short, [run_engine(short)]).identity_digest
        == build_report(long, [run_engine(long)]).identity_digest
    )


def test_node_range_slices_match_full_run():
    config = tiny_config()
    full = run_engine(config)
    lo_half = run_engine(config, 0, 2)
    hi_half = run_engine(config, 2, 4)
    assert np.array_equal(full.arrivals[:2], lo_half.arrivals)
    assert np.array_equal(full.arrivals[2:], hi_half.arrivals)
    assert np.array_equal(full.served[2:], hi_half.served)
    for i in range(2):
        means_full, weights_full = full.digests[2 + i]
        means_half, weights_half = hi_half.digests[i]
        assert np.array_equal(means_full, means_half)
        assert np.array_equal(weights_full, weights_half)


def test_epoch_hook_fires_once_per_epoch():
    config = tiny_config()
    epochs = []
    run_engine(config, epoch_hook=epochs.append)
    assert epochs == list(range(config.n_epochs))


def test_invalid_node_range_rejected():
    config = tiny_config()
    with pytest.raises(HyperscaleError):
        run_engine(config, 3, 2)
    with pytest.raises(HyperscaleError):
        run_engine(config, 0, 99)


def test_config_validation_and_roundtrip():
    with pytest.raises(ConfigurationError):
        HyperscaleConfig(n_nodes=0)
    with pytest.raises(ConfigurationError):
        HyperscaleConfig(diurnal_amplitude=1.5)
    config = tiny_config(seed=9)
    assert HyperscaleConfig.from_dict(config.to_dict()) == config
    with pytest.raises(ConfigurationError):
        HyperscaleConfig.from_dict({"no_such_field": 1})


def test_slo_accounting_matches_arrival_weighted_definition():
    # One node, tiny horizon: recompute SLO hits by hand from the same
    # arrival stream the engine draws.
    config = tiny_config(n_nodes=1, rate=3.0, duration=20.0, epoch_ticks=20)
    result = run_engine(config)
    c = config.capacity_per_tick
    ticks = np.arange(config.n_ticks, dtype=np.int64)
    lam = config.mean_arrivals_per_node_tick * (
        1.0
        + config.diurnal_amplitude
        * np.sin(2.0 * np.pi * ticks * config.tick / config.diurnal_period)
    )
    arrivals = hash_poisson(
        lam[None, :], config.seed, np.array([0])[:, None], ticks[None, :]
    )[0]
    q = 0
    met = 0
    for t in range(config.n_ticks):
        if q / c <= config.slo_ticks:
            met += int(arrivals[t])
        q = max(q + int(arrivals[t]) - c, 0)
    assert int(result.slo_met[0]) == met
    assert int(result.arrivals[0]) == int(arrivals.sum())
