"""Tests for the vectorised hyperscale engine."""
