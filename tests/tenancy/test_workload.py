"""The tenant workload multiplexer: deterministic, share-faithful tagging."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tenancy import TenancySpec, Tenant, TenantSet, TenantSurge, TenantWorkload
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model

MODEL = get_model("resnet50")


def make_specs(n, spacing=0.01):
    return [
        RequestSpec(arrival=i * spacing, model=MODEL, strict=True)
        for i in range(n)
    ]


def make_spec(**overrides):
    tenants = overrides.pop(
        "tenant_set",
        TenantSet(
            (Tenant("a", traffic_share=1.0), Tenant("b", traffic_share=3.0))
        ),
    )
    return TenancySpec(tenant_set=tenants, **overrides)


def test_multiplex_is_deterministic_per_seed():
    workload = TenantWorkload(make_spec())
    specs = make_specs(500)
    first = workload.multiplex(specs, np.random.default_rng(7))
    second = workload.multiplex(specs, np.random.default_rng(7))
    assert [s.tenant for s in first] == [s.tenant for s in second]
    other = workload.multiplex(specs, np.random.default_rng(8))
    assert [s.tenant for s in first] != [s.tenant for s in other]


def test_assignment_tracks_traffic_shares():
    workload = TenantWorkload(make_spec())
    tagged = workload.multiplex(make_specs(4000), np.random.default_rng(0))
    share_b = sum(1 for s in tagged if s.tenant == "b") / len(tagged)
    assert share_b == pytest.approx(0.75, abs=0.03)


def test_surge_window_modulates_shares():
    spec = make_spec(
        tenant_set=TenantSet(
            (Tenant("a", traffic_share=1.0), Tenant("b", traffic_share=1.0))
        ),
        surges=(TenantSurge("b", start=10.0, end=20.0, multiplier=0.0),),
    )
    workload = TenantWorkload(spec)
    tagged = workload.multiplex(make_specs(3000), np.random.default_rng(1))
    inside = [s for s in tagged if 10.0 <= s.arrival < 20.0]
    outside = [s for s in tagged if s.arrival < 10.0]
    assert inside and outside
    assert all(s.tenant == "a" for s in inside)
    assert any(s.tenant == "b" for s in outside)


def test_slo_class_scales_deadline_multiplier():
    spec = make_spec(
        tenant_set=TenantSet((Tenant("gold", slo_class="premium"),))
    )
    workload = TenantWorkload(spec)
    base = RequestSpec(arrival=0.0, model=MODEL, strict=True, slo_multiplier=4.0)
    (tagged,) = workload.multiplex([base], np.random.default_rng(0))
    assert tagged.tenant == "gold"
    assert tagged.slo_multiplier == pytest.approx(4.0 * 0.75)


def test_pretagged_specs_pass_through_but_must_be_registered():
    workload = TenantWorkload(make_spec())
    known = RequestSpec(arrival=0.0, model=MODEL, strict=True, tenant="a")
    (passed,) = workload.multiplex([known], np.random.default_rng(0))
    assert passed is known
    ghost = RequestSpec(arrival=0.0, model=MODEL, strict=True, tenant="ghost")
    with pytest.raises(ConfigurationError):
        workload.multiplex([ghost], np.random.default_rng(0))


def test_all_shares_surged_to_zero_is_an_error():
    spec = make_spec(
        tenant_set=TenantSet(
            (Tenant("a", traffic_share=1.0), Tenant("b", traffic_share=0.0))
        ),
        surges=(TenantSurge("a", start=0.0, end=100.0, multiplier=0.0),),
    )
    workload = TenantWorkload(spec)
    with pytest.raises(ConfigurationError):
        workload.multiplex(make_specs(1), np.random.default_rng(0))


def test_workload_requires_a_tenancy_spec():
    with pytest.raises(ConfigurationError):
        TenantWorkload({"policy": "wfq"})
