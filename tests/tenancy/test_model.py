"""Tenant model validation and wire-format behaviour.

Every misconfiguration must surface as ConfigurationError at construction
or parse time — never as a KeyError/ValueError mid-run (satellite of the
tenancy issue). Round-trip coverage of the full config payload lives in
tests/experiments/test_config_roundtrip.py; this file covers the unit
validation surface.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.tenancy import (
    DEFAULT_TENANT_ID,
    SLO_CLASSES,
    TenancySpec,
    Tenant,
    TenantSet,
    TenantSurge,
)


class TestTenantValidation:
    def test_defaults_are_valid(self):
        tenant = Tenant("acme")
        assert tenant.slo_class == "standard"
        assert tenant.quota is None
        assert tenant.slo_factor == 1.0

    def test_slo_factor_tracks_class(self):
        for name, factor in SLO_CLASSES.items():
            assert Tenant("t", slo_class=name).slo_factor == factor

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(tenant_id=""),
            dict(tenant_id="t", slo_class="platinum"),
            dict(tenant_id="t", priority=-1),
            dict(tenant_id="t", quota=0),
            dict(tenant_id="t", quota=-3),
            dict(tenant_id="t", weight=0.0),
            dict(tenant_id="t", weight=float("inf")),
            dict(tenant_id="t", traffic_share=-0.1),
            dict(tenant_id="t", billing_rate=-1.0),
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            Tenant(**kwargs)

    def test_round_trip_and_unknown_key(self):
        tenant = Tenant("gold", slo_class="premium", quota=8, exclusive=True)
        payload = json.loads(json.dumps(tenant.to_dict()))
        assert Tenant.from_dict(payload) == tenant
        payload["colour"] = "purple"
        with pytest.raises(ConfigurationError):
            Tenant.from_dict(payload)


class TestTenantSet:
    def test_duplicate_ids_raise(self):
        with pytest.raises(ConfigurationError):
            TenantSet((Tenant("a"), Tenant("a")))

    def test_empty_set_raises(self):
        with pytest.raises(ConfigurationError):
            TenantSet(())

    def test_all_zero_shares_raise(self):
        with pytest.raises(ConfigurationError):
            TenantSet((Tenant("a", traffic_share=0.0),))

    def test_get_and_contains(self):
        tenants = TenantSet((Tenant("a"), Tenant("b")))
        assert tenants.get("b").tenant_id == "b"
        assert "a" in tenants
        assert DEFAULT_TENANT_ID not in tenants
        with pytest.raises(ConfigurationError):
            tenants.get("ghost")

    def test_normalised_shares_sum_to_one(self):
        tenants = TenantSet(
            (Tenant("a", traffic_share=1.0), Tenant("b", traffic_share=3.0))
        )
        shares = tenants.normalised_shares()
        assert shares == {"a": 0.25, "b": 0.75}


class TestTenantSurge:
    def test_active_window_is_half_open(self):
        surge = TenantSurge("a", start=10.0, end=20.0, multiplier=4.0)
        assert not surge.active_at(9.999)
        assert surge.active_at(10.0)
        assert surge.active_at(19.999)
        assert not surge.active_at(20.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(tenant_id="", start=0.0, end=1.0, multiplier=1.0),
            dict(tenant_id="a", start=5.0, end=5.0, multiplier=1.0),
            dict(tenant_id="a", start=-1.0, end=1.0, multiplier=1.0),
            dict(tenant_id="a", start=0.0, end=1.0, multiplier=-2.0),
        ],
    )
    def test_invalid_surges_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantSurge(**kwargs)


class TestTenancySpec:
    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError):
            TenancySpec(tenant_set=TenantSet((Tenant("a"),)), policy="lottery")

    def test_tenant_set_type_checked(self):
        with pytest.raises(ConfigurationError):
            TenancySpec(tenant_set=[Tenant("a")])

    def test_surge_for_unknown_tenant_raises(self):
        with pytest.raises(ConfigurationError):
            TenancySpec(
                tenant_set=TenantSet((Tenant("a"),)),
                surges=(TenantSurge("ghost", 0.0, 1.0, 2.0),),
            )

    def test_missing_tenant_set_payload_raises(self):
        with pytest.raises(ConfigurationError):
            TenancySpec.from_dict({"policy": "wfq"})
