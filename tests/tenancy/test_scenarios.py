"""Scenario regressions: WFQ protects the victim; fan-out is bit-identical.

The noisy-neighbour test is the acceptance criterion of the tenancy
issue, stated exactly as the paper-style claim: under a 3× aggressor,
FIFO lets the victim's SLO attainment collapse by more than 20 points
while WFQ + admission control holds it within 5 points of its solo
attainment. The scenario runs are the same configs the CLI executes
(``python -m repro tenants noisy-neighbour``), so the CLI's quoted
numbers are the numbers pinned here.
"""

import pytest

from repro.errors import ConfigurationError
from repro.tenancy import SCENARIOS, run_tenancy_scenario, scenario_configs


@pytest.fixture(scope="module")
def noisy_neighbour():
    return run_tenancy_scenario("noisy-neighbour", seed=0)


class TestNoisyNeighbour:
    def test_fifo_lets_the_victim_collapse(self, noisy_neighbour):
        assert noisy_neighbour.verdict["fifo_degradation_points"] > 20.0

    def test_wfq_holds_the_victim_near_solo(self, noisy_neighbour):
        assert abs(noisy_neighbour.verdict["wfq_gap_to_solo_points"]) <= 5.0

    def test_wfq_sheds_aggressor_excess_at_the_gateway(self, noisy_neighbour):
        wfq = noisy_neighbour.tenancy["wfq"]
        rejections = {
            row["tenant_id"]: row["rejections"] for row in wfq["outcomes"]
        }
        assert rejections["aggressor"] > 0
        assert rejections["victim"] == 0

    def test_describe_renders_every_run(self, noisy_neighbour):
        text = noisy_neighbour.describe()
        for label in ("solo", "fifo", "wfq"):
            assert f"run {label}:" in text
        assert "fifo_degradation_points" in text


class TestScenarioSurface:
    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            scenario_configs("noisy-neighbor")  # spelling matters

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_configs_are_seed_deterministic(self, name):
        assert scenario_configs(name, seed=3) == scenario_configs(name, seed=3)
        for config in scenario_configs(name, seed=3).values():
            assert config.tenants is not None

    def test_quota_exhaustion_sheds_only_the_capped_tenant(self):
        result = run_tenancy_scenario("quota-exhaustion", seed=0)
        assert result.verdict["capped_rejections"] > 0
        assert result.verdict["steady_rejections"] == 0


def test_parallel_fanout_is_bit_identical():
    serial = run_tenancy_scenario("noisy-neighbour", seed=1, jobs=1)
    fanned = run_tenancy_scenario("noisy-neighbour", seed=1, jobs=4)
    assert serial.rows == fanned.rows
    assert serial.tenancy == fanned.tenancy
    assert serial.verdict == fanned.verdict
