"""Start-time fair queueing and the soft-exclusivity placement guard.

Uses minimal stand-ins for batches and slices: NodeTenancy only reads
``batch_id``/``tenant``/``work`` from a batch and the job payloads resident
on a slice, which keeps these tests pinned to the SFQ arithmetic itself.
"""

import itertools
from types import SimpleNamespace

from repro.tenancy import NodeTenancy, TenancySpec, Tenant, TenantSet

_ids = itertools.count(1)


def batch(tenant, work=1.0):
    return SimpleNamespace(batch_id=next(_ids), tenant=tenant, work=work)


def gpu_slice(*payloads):
    jobs = [SimpleNamespace(payload=p) for p in payloads]
    return SimpleNamespace(running_jobs=jobs, pending_jobs=[])


def policy(*tenants, policy="wfq"):
    return NodeTenancy(TenancySpec(TenantSet(tuple(tenants)), policy=policy))


class TestOrdering:
    def test_fifo_policy_preserves_scheme_order(self):
        node = policy(Tenant("a"), Tenant("b"), policy="fifo")
        queue = [batch("b"), batch("a"), batch("b")]
        expect = list(queue)
        node.order(queue)
        assert queue == expect

    def test_wfq_interleaves_by_weight(self):
        # a (weight 2) accrues finish tags half as fast as b (weight 1):
        # tags a1=0, a2=0.5, a3=1.0 vs b1=0, b2=1.0 — so both of a's
        # first two batches sort before b's second.
        node = policy(Tenant("a", weight=2.0), Tenant("b", weight=1.0))
        a1, a2, a3 = batch("a"), batch("a"), batch("a")
        b1, b2 = batch("b"), batch("b")
        queue = [a1, a2, a3, b1, b2]
        node.order(queue)
        assert queue == [a1, b1, a2, a3, b2]

    def test_priority_tier_dominates_tags(self):
        node = policy(Tenant("hi", priority=0), Tenant("lo", priority=1))
        lo_batches = [batch("lo") for _ in range(3)]
        hi = batch("hi")
        queue = [*lo_batches, hi]
        node.order(queue)
        assert queue[0] is hi

    def test_sort_is_stable_within_equal_tags(self):
        node = policy(Tenant("a"), Tenant("b"))
        a1, b1 = batch("a"), batch("b")  # both tagged start=0
        queue = [b1, a1]
        node.order(queue)
        assert queue == [b1, a1]

    def test_launch_advances_virtual_time(self):
        node = policy(Tenant("a"), Tenant("b"))
        early = batch("a", work=4.0)
        node.order([early])
        node.on_launch(early)
        node.on_launch(batch("a"))  # untagged launch is a no-op
        assert node.virtual_time == 0.0
        late = batch("a")
        node.order([late])
        node.on_launch(late)
        # late's start tag = a's finish tag of the first batch (4.0/1.0).
        assert node.virtual_time == 4.0
        # A newcomer from an idle tenant starts at the advanced clock,
        # not at zero — no starving the busy tenant with stale tags.
        fresh = batch("b")
        node.order([fresh])
        assert node._tags[fresh.batch_id] == 4.0


class TestPlacementGuard:
    def test_no_exclusive_tenants_short_circuits(self):
        node = policy(Tenant("a"), Tenant("b"))
        occupied = gpu_slice(batch("b"))
        assert node.placement_allowed(batch("a"), occupied)

    def test_exclusive_batch_refuses_shared_slice(self):
        node = policy(Tenant("vip", exclusive=True), Tenant("b"))
        assert not node.placement_allowed(batch("vip"), gpu_slice(batch("b")))
        assert node.placement_allowed(batch("vip"), gpu_slice())
        assert node.placement_allowed(batch("vip"), gpu_slice(batch("vip")))

    def test_shared_batch_refuses_exclusive_slice(self):
        node = policy(Tenant("vip", exclusive=True), Tenant("b"))
        assert not node.placement_allowed(batch("b"), gpu_slice(batch("vip")))
        assert node.placement_allowed(batch("b"), gpu_slice(batch("b")))

    def test_pending_jobs_count_as_residents(self):
        node = policy(Tenant("vip", exclusive=True), Tenant("b"))
        occupied = gpu_slice()
        occupied.pending_jobs = [SimpleNamespace(payload=batch("b"))]
        assert not node.placement_allowed(batch("vip"), occupied)

    def test_tenantless_payloads_are_ignored(self):
        node = policy(Tenant("vip", exclusive=True))
        occupied = gpu_slice(None, SimpleNamespace())
        assert node.placement_allowed(batch("vip"), occupied)
