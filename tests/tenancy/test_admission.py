"""Gateway admission control: quotas as 429-style rejections."""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.tenancy import AdmissionController, Tenant, TenantSet


def controller(*tenants, **kwargs):
    return AdmissionController(TenantSet(tuple(tenants)), **kwargs)


def request(tenant):
    return SimpleNamespace(tenant=tenant)


def test_quota_rejects_when_full_and_release_frees_a_slot():
    ctl = controller(Tenant("a", quota=2))
    assert ctl.try_admit(request("a"))
    assert ctl.try_admit(request("a"))
    assert not ctl.try_admit(request("a"))
    assert ctl.rejected["a"] == 1
    ctl.release(request("a"))
    assert ctl.try_admit(request("a"))
    assert ctl.admitted["a"] == 3


def test_no_quota_means_unlimited():
    ctl = controller(Tenant("a"))
    for _ in range(100):
        assert ctl.try_admit(request("a"))
    assert ctl.total_rejected() == 0


def test_enforcement_can_be_disabled():
    ctl = controller(Tenant("a", quota=1), enforce_quotas=False)
    assert ctl.try_admit(request("a"))
    assert ctl.try_admit(request("a"))
    # Bookkeeping still runs so the auditor can flag the over-quota state.
    assert ctl.in_flight["a"] == 2


def test_unregistered_tenant_is_a_configuration_error():
    ctl = controller(Tenant("a"))
    with pytest.raises(ConfigurationError):
        ctl.try_admit(request("ghost"))


def test_on_reject_callback_sees_the_rejected_request():
    seen = []
    ctl = controller(Tenant("a", quota=1), on_reject=seen.append)
    first, second = request("a"), request("a")
    ctl.try_admit(first)
    ctl.try_admit(second)
    assert seen == [second]


def test_release_never_goes_negative():
    ctl = controller(Tenant("a", quota=1))
    ctl.release(request("a"))  # phantom completion
    assert ctl.in_flight["a"] == 0
    assert ctl.try_admit(request("a"))
    assert not ctl.try_admit(request("a"))


def test_total_rejected_sums_across_tenants():
    ctl = controller(Tenant("a", quota=1), Tenant("b", quota=1))
    for tenant in ("a", "a", "b", "b"):
        ctl.try_admit(request(tenant))
    assert ctl.total_rejected() == 2
