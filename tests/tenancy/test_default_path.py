"""Pin: tenancy machinery leaves the default path bit-identical.

The tenancy subsystem's core contract is that ``tenants=None`` (the
default) constructs none of its machinery: no admission hook on the
gateway, no per-node fairness policy, no extra RNG draws in workload
generation, no tenant span attributes. The strongest possible statement
of that contract is a pinned run: the summary row, extras, *and the
SHA-256 digest of the full span log* below were captured on the commit
immediately before tenancy landed. If any of them drifts, the default
path is no longer the pre-tenancy platform — find the leak, don't
re-pin.

(A re-pin is only legitimate when a *deliberate* behaviour change to the
core platform lands; say so in the changelog.)
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme

PINNED_CONFIG = ExperimentConfig(
    duration=25.0,
    warmup=5.0,
    drain=50.0,
    n_nodes=2,
    seed=11,
    tracing=True,
)

PINNED_ROW = {
    "scheme": "protean",
    "model": "resnet50",
    "slo_%": 82.94,
    "strict_p50_ms": 166.9,
    "strict_p99_ms": 9603.6,
    "be_p99_ms": 10160.3,
    "thru_strict_rps_gpu": 64.03,
    "gpu_util_%": 57.1,
    "mem_util_%": 20.7,
    "cost_$": 0.1707,
    "savings_%": 0.0,
}

PINNED_EXTRAS = {
    "spot_nodes_built": 0,
    "on_demand_nodes_built": 2,
    "evictions": 0,
    "spot_notices": 0,
    "resubmissions": 0,
    "backlog_at_end": 0,
    "cold_starts": 277,
    "nodes_at_end": 2,
}

PINNED_SPAN_DIGEST = (
    "afe53a2db9f6dd88b920996306dad7d91f9c163507ec225756c9fba70f298574"
)


def test_default_path_matches_pre_tenancy_pin():
    result = run_scheme("protean", PINNED_CONFIG)
    assert result.summary.row() == PINNED_ROW
    assert dict(result.extras) == PINNED_EXTRAS
    assert result.detach().tracer.digest() == PINNED_SPAN_DIGEST
    # And the tenancy surface itself stays dark:
    assert result.tenancy is None
    assert "tenant_rejections" not in result.extras
