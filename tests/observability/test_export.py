"""Tests for the Chrome-trace / JSONL / text exporters."""

import json

import pytest

from repro.observability import (
    CATEGORY_REQUEST,
    SimTracer,
    text_summary,
    to_trace_events,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.simulation.simulator import Simulator


def _tracer_with_spans() -> SimTracer:
    tracer = SimTracer(Simulator(0))
    tracer.record(
        "queue.wait", 1.0, 2.0,
        category=CATEGORY_REQUEST, track="queue",
        batch_id=7, request_ids=[1, 2],
    )
    tracer.record("reconfig.apply", 0.5, 2.5, track="reconfig", node="node0")
    tracer.instant("spot.eviction", track="spot", vm="vm3")
    tracer.telemetry.counter("requests.completed").inc(2)
    tracer.telemetry.histogram("request.latency_s").observe(1.25)
    return tracer


class TestToTraceEvents:
    def test_request_spans_become_async_pairs(self):
        events = to_trace_events(_tracer_with_spans())
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["name"] == "queue.wait"
        assert begins[0]["id"] == ends[0]["id"] == "batch_id:7"
        assert begins[0]["ts"] == pytest.approx(1.0e6)
        assert ends[0]["ts"] == pytest.approx(2.0e6)

    def test_control_spans_become_complete_events(self):
        events = to_trace_events(_tracer_with_spans())
        (complete,) = [e for e in events if e["ph"] == "X"]
        assert complete["name"] == "reconfig.apply"
        assert complete["ts"] == pytest.approx(0.5e6)
        assert complete["dur"] == pytest.approx(2.0e6)

    def test_zero_duration_spans_become_instants(self):
        events = to_trace_events(_tracer_with_spans())
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["name"] == "spot.eviction"
        assert instant["args"]["vm"] == "vm3"

    def test_tracks_get_thread_name_metadata(self):
        events = to_trace_events(_tracer_with_spans())
        names = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(names) == {"queue", "reconfig", "spot"}
        spans_by_track = {
            e["tid"] for e in events if e["ph"] in ("X", "i", "b", "e")
        }
        assert spans_by_track == set(names.values())

    def test_non_json_attrs_are_stringified(self):
        tracer = SimTracer(Simulator(0))

        class Geometry:
            def __str__(self):
                return "4g+3g"

        tracer.instant("x", geometry=Geometry(), kinds=(1, Geometry()))
        (event,) = [e for e in to_trace_events(tracer) if e["ph"] == "i"]
        assert event["args"]["geometry"] == "4g+3g"
        assert event["args"]["kinds"] == [1, "4g+3g"]


class TestWriters:
    def test_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(_tracer_with_spans(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["spans"] == 3
        assert doc["otherData"]["counters"]["requests.completed"] == 2

    def test_jsonl_one_object_per_span(self, tmp_path):
        path = write_span_jsonl(_tracer_with_spans(), tmp_path / "t.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == [
            "queue.wait", "reconfig.apply", "spot.eviction",
        ]
        assert rows[0]["attrs"]["request_ids"] == [1, 2]


class TestTextSummary:
    def test_rollup_mentions_spans_and_instruments(self):
        summary = text_summary(_tracer_with_spans())
        assert "queue.wait" in summary
        assert "requests.completed" in summary
        assert "request.latency_s" in summary
