"""Live-mode tracing: spans stamped by a wall clock still export cleanly.

The satellite fix for live serving: :class:`SimTracer` accepts any
object with a readable ``now`` (the Clock protocol's reading half), so
the serving runtime can hand it the :class:`AsyncioClock` and spans
carry measured wall-clock timestamps. Perfetto/JSONL export must round
trip those spans exactly as it does simulated ones.
"""

import asyncio
import json

from repro.observability import (
    read_span_jsonl,
    spans_from_log,
    to_trace_events,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.observability.tracer import SimTracer
from repro.simulation import AsyncioClock, Simulator


def _traced_live_run():
    """Record a few spans against a fast wall clock; return the tracer."""

    async def body():
        clock = AsyncioClock(seed=3, speedup=200.0).start()
        tracer = SimTracer(clock)
        span = tracer.begin("gateway.admit", track="gateway", request_id=1)
        await clock.sleep(0.5)
        tracer.end(span, admitted=True)
        tracer.instant("node.join", track="cluster", node="n0")
        await clock.sleep(0.25)
        tracer.record(
            "slice.execute", 0.1, clock.now, track="execute", batch_id=7
        )
        return tracer

    return asyncio.run(body())


def test_tracer_clock_alias_points_at_the_clock():
    sim = Simulator(seed=0)
    tracer = SimTracer(sim)
    assert tracer.clock is sim is tracer.sim


def test_wall_clock_spans_have_positive_measured_durations():
    tracer = _traced_live_run()
    admit = tracer.spans_named("gateway.admit")[0]
    # Stamped by the wall clock: the 0.5 trace-second sleep is measured,
    # not assumed, so the duration is ≥ the requested sleep.
    assert admit.end >= admit.start + 0.5
    assert tracer.spans_named("node.join")[0].start >= admit.end


def test_perfetto_export_round_trips_wall_clock_spans(tmp_path):
    tracer = _traced_live_run()
    chrome = write_chrome_trace(tracer, tmp_path / "live.trace.json")
    document = json.loads(chrome.read_text())
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert len(complete) + len(instants) == len(tracer.spans)
    # Chrome timestamps are microseconds; all non-negative and finite.
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)

    jsonl = write_span_jsonl(tracer, tmp_path / "live.spans.jsonl")
    restored = spans_from_log(read_span_jsonl(jsonl))
    assert len(restored) == len(tracer.spans)
    original = {s.name: s for s in tracer.spans}
    for span in restored:
        source = original[span.name]
        assert span.start == source.start
        assert span.end == (source.end if source.end is not None
                            else source.start)
        assert span.attrs == source.attrs


def test_exports_match_simulated_spans_shape(tmp_path):
    # Same exporter, either clock: a simulated tracer and a live tracer
    # produce structurally identical trace-event streams.
    sim = Simulator(seed=0)
    sim_tracer = SimTracer(sim)
    span = sim_tracer.begin("gateway.admit", track="gateway", request_id=1)
    sim.after(0.5, lambda: sim_tracer.end(span, admitted=True))
    sim.run()
    live_tracer = _traced_live_run()
    sim_events = to_trace_events(sim_tracer)
    live_events = to_trace_events(live_tracer)
    sim_keys = {frozenset(e.keys()) for e in sim_events if e["ph"] == "X"}
    live_keys = {frozenset(e.keys()) for e in live_events if e["ph"] == "X"}
    assert sim_keys == live_keys
