"""Flamegraph rollup and span-log normalisation/digest tests."""

import pickle

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.observability import (
    DetachedTrace,
    format_rollup,
    rollup_from_jsonl,
    rollup_from_log,
    rollup_spans,
    span_log_digest,
    spans_from_log,
    spans_to_log,
    write_span_jsonl,
)
from repro.observability.span import Span


def _span(name, start, end, *, span_id, parent_id=0, track="main"):
    return Span(
        name=name,
        start=start,
        end=end,
        track=track,
        span_id=span_id,
        parent_id=parent_id,
    )


def test_self_time_subtracts_direct_children():
    spans = [
        _span("outer", 0.0, 10.0, span_id=1),
        _span("inner", 2.0, 5.0, span_id=2, parent_id=1),
        _span("inner", 6.0, 9.0, span_id=3, parent_id=1),
    ]
    rows = {(r.track, r.name): r for r in rollup_spans(spans)}
    outer = rows[("main", "outer")]
    inner = rows[("main", "inner")]
    assert outer.total_s == 10.0
    assert outer.self_s == 4.0  # 10 - (3 + 3)
    assert inner.count == 2
    assert inner.self_s == 6.0  # leaves keep their full duration
    assert inner.mean_ms == 3000.0


def test_self_time_clamped_when_children_overlap():
    spans = [
        _span("outer", 0.0, 2.0, span_id=1),
        _span("a", 0.0, 2.0, span_id=2, parent_id=1),
        _span("b", 0.0, 2.0, span_id=3, parent_id=1),
    ]
    rows = {r.name: r for r in rollup_spans(spans)}
    assert rows["outer"].self_s == 0.0  # never negative


def test_rows_sorted_by_descending_self_time():
    spans = [
        _span("small", 0.0, 1.0, span_id=1),
        _span("large", 0.0, 5.0, span_id=2),
    ]
    assert [r.name for r in rollup_spans(spans)] == ["large", "small"]


def test_format_rollup_folds_explicitly():
    spans = [
        _span(f"s{i}", 0.0, float(10 - i), span_id=i + 1) for i in range(5)
    ]
    text = format_rollup(rollup_spans(spans), limit=2)
    assert "s0" in text and "s1" in text
    assert "s4" not in text
    assert "3 more groups folded" in text


def test_log_normalisation_erases_process_history():
    # Same spans, different absolute ids (as if earlier runs had advanced
    # the id counter): the normalised logs and digests must match.
    def build(offset):
        return [
            _span("outer", 0.0, 4.0, span_id=offset + 1),
            _span("inner", 1.0, 2.0, span_id=offset + 2, parent_id=offset + 1),
        ]

    log_a, log_b = spans_to_log(build(0)), spans_to_log(build(700))
    assert log_a == log_b
    assert span_log_digest(log_a) == span_log_digest(log_b)
    restored = spans_from_log(log_a)
    assert [s.name for s in restored] == ["outer", "inner"]
    assert restored[1].parent_id == restored[0].span_id


def _traced_run():
    config = ExperimentConfig(
        duration=15.0, warmup=5.0, drain=30.0, n_nodes=2, seed=3, tracing=True
    )
    return run_scheme("protean", config)


def test_detached_trace_matches_live_rollup(tmp_path):
    result = _traced_run()
    live_rows = rollup_spans(result.tracer.spans)
    detached = DetachedTrace.from_tracer(result.tracer)
    assert rollup_spans(detached.spans) == live_rows
    assert rollup_from_log(detached.span_log) == live_rows
    # ... and through a JSONL file on disk (the CLI path).
    path = tmp_path / "spans.jsonl"
    write_span_jsonl(result.tracer, path)
    assert rollup_from_jsonl(path) == live_rows


def test_detached_trace_pickles_and_keeps_digest():
    detached = DetachedTrace.from_tracer(_traced_run().tracer)
    clone = pickle.loads(pickle.dumps(detached))
    assert clone.digest() == detached.digest()
    assert len(clone.spans) == len(detached.spans)
