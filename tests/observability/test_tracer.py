"""Tests for the span tracer (SimTracer and the NullTracer fast path)."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    CATEGORY_GPU,
    CATEGORY_REQUEST,
    NULL_TRACER,
    NullTracer,
    SimTracer,
    Span,
)
from repro.simulation.simulator import Simulator


class TestSpan:
    def test_duration_open_vs_closed(self):
        span = Span(name="x", start=1.0)
        assert not span.closed
        assert span.duration == 0.0
        span.end = 3.5
        assert span.closed
        assert span.duration == pytest.approx(2.5)

    def test_span_ids_are_unique(self):
        a = Span(name="a", start=0.0)
        b = Span(name="b", start=0.0)
        assert a.span_id != b.span_id


class TestSimTracer:
    def test_begin_end_records_span(self):
        sim = Simulator(0)
        tracer = SimTracer(sim)
        span = tracer.begin("work", track="t", key="v")
        sim.after(2.0, lambda: tracer.end(span, outcome="ok"))
        sim.run(until=5.0)
        assert tracer.spans == [span]
        assert span.start == 0.0
        assert span.end == pytest.approx(2.0)
        assert span.attrs == {"key": "v", "outcome": "ok"}

    def test_end_twice_raises(self):
        tracer = SimTracer(Simulator(0))
        span = tracer.begin("w")
        tracer.end(span)
        with pytest.raises(ObservabilityError):
            tracer.end(span)

    def test_end_foreign_span_raises(self):
        tracer = SimTracer(Simulator(0))
        with pytest.raises(ObservabilityError):
            tracer.end(Span(name="never-begun", start=0.0))

    def test_end_none_is_noop(self):
        tracer = SimTracer(Simulator(0))
        tracer.end(None)  # call sites need no disabled-tracing branch
        assert tracer.spans == []

    def test_nesting_links_parent(self):
        tracer = SimTracer(Simulator(0))
        outer = tracer.begin("outer")
        inner = tracer.begin("inner", parent=outer)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0

    def test_record_retroactive(self):
        tracer = SimTracer(Simulator(0))
        tracer.record("late", 1.0, 4.0, category=CATEGORY_GPU, track="g", n=2)
        (span,) = tracer.spans
        assert (span.start, span.end) == (1.0, 4.0)
        assert span.category == CATEGORY_GPU
        assert span.attrs == {"n": 2}

    def test_record_backwards_interval_raises(self):
        tracer = SimTracer(Simulator(0))
        with pytest.raises(ObservabilityError):
            tracer.record("bad", 4.0, 1.0)

    def test_instant_is_zero_duration(self):
        sim = Simulator(0)
        tracer = SimTracer(sim)
        sim.after(3.0, lambda: tracer.instant("mark", track="m"))
        sim.run(until=5.0)
        (span,) = tracer.spans
        assert span.start == span.end == pytest.approx(3.0)
        assert span.duration == 0.0

    def test_close_open_spans_marks_truncated(self):
        sim = Simulator(0)
        tracer = SimTracer(sim)
        span = tracer.begin("hung")
        assert tracer.open_spans == (span,)
        closed = tracer.close_open_spans(reason="run ended")
        assert closed == 1
        assert tracer.open_spans == ()
        assert span.attrs["truncated"] is True
        assert span.attrs["reason"] == "run ended"

    def test_spans_named(self):
        tracer = SimTracer(Simulator(0))
        tracer.instant("a")
        tracer.instant("b")
        tracer.instant("a")
        assert len(tracer.spans_named("a")) == 2
        assert len(tracer.spans_named("b")) == 1


class TestNullTracer:
    def test_enabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert SimTracer(Simulator(0)).enabled is True

    def test_all_operations_allocate_no_spans(self):
        tracer = NullTracer()
        assert tracer.begin("x", category=CATEGORY_REQUEST, a=1) is None
        tracer.end(None)
        tracer.end(Span(name="s", start=0.0))  # tolerated, still a no-op
        tracer.record("x", 0.0, 1.0)
        tracer.instant("x")
        assert not hasattr(tracer, "spans")

    def test_null_telemetry_is_shared_noop(self):
        tracer = NullTracer()
        counter = tracer.telemetry.counter("a")
        assert tracer.telemetry.counter("b") is counter
        counter.inc(100)
        assert counter.value == 0
        hist = tracer.telemetry.histogram("h")
        hist.observe(4.2)
        assert hist.count == 0
        tracer.telemetry.register_gauge("g", lambda: 1.0)
        assert tracer.telemetry.sample_gauges() == {}
