"""Tests for the telemetry registry and the periodic gauge sampler."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.observability import TelemetryRegistry, TelemetrySampler
from repro.simulation.simulator import Simulator


class TestCounter:
    def test_inc(self):
        registry = TelemetryRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counters() == {"hits": 5}

    def test_same_name_same_object(self):
        registry = TelemetryRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")


class TestHistogram:
    def test_aggregates(self):
        registry = TelemetryRegistry()
        hist = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_empty_mean_is_nan(self):
        hist = TelemetryRegistry().histogram("empty")
        assert math.isnan(hist.mean)


class TestGauges:
    def test_sample_and_reregister(self):
        registry = TelemetryRegistry()
        registry.register_gauge("depth", lambda: 7)
        assert registry.sample_gauges() == {"depth": 7.0}
        registry.register_gauge("depth", lambda: 9)  # replacement wins
        assert registry.sample_gauges() == {"depth": 9.0}
        registry.unregister_gauge("depth")
        registry.unregister_gauge("depth")  # absent is a no-op
        assert registry.sample_gauges() == {}


class TestSampler:
    def test_periodic_samples(self):
        sim = Simulator(0)
        registry = TelemetryRegistry()
        registry.register_gauge("clock", lambda: sim.now)
        sampler = TelemetrySampler(sim, registry, interval=2.0)
        sampler.start()
        sim.run(until=7.0)
        times = [t for t, _ in sampler.samples]
        assert times == pytest.approx([2.0, 4.0, 6.0])
        assert [s["clock"] for _, s in sampler.samples] == pytest.approx(
            [2.0, 4.0, 6.0]
        )

    def test_stop_halts_sampling(self):
        sim = Simulator(0)
        sampler = TelemetrySampler(sim, TelemetryRegistry(), interval=1.0)
        sampler.start()
        sim.after(2.5, sampler.stop)
        sim.run(until=10.0)
        assert len(sampler.samples) == 2

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ObservabilityError):
            TelemetrySampler(Simulator(0), TelemetryRegistry(), interval=0.0)
