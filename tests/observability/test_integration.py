"""End-to-end tracing: a traced run yields the full request span chain."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.observability import SimTracer, to_trace_events
from repro.observability.tracer import NULL_TRACER

CONFIG = ExperimentConfig(
    duration=30.0,
    warmup=5.0,
    drain=60.0,
    n_nodes=2,
    tracing=True,
    seed=3,
)


@pytest.fixture(scope="module")
def traced_result():
    return run_scheme("protean", CONFIG)


def test_untraced_run_exposes_no_tracer():
    result = run_scheme("protean", CONFIG.with_overrides(tracing=False))
    assert result.tracer is None
    assert result.platform.tracer is NULL_TRACER
    # The null tracer allocates no span storage at all (satellite of the
    # <5% overhead budget: disabled tracing must not even build lists).
    assert not hasattr(NULL_TRACER, "spans")


def test_traced_run_exposes_sim_tracer(traced_result):
    tracer = traced_result.tracer
    assert isinstance(tracer, SimTracer)
    assert tracer.spans
    assert tracer.open_spans == ()  # everything closed by run end


def test_every_completed_request_has_a_full_span_chain(traced_result):
    tracer = traced_result.tracer
    terminal = tracer.spans_named("complete") + tracer.spans_named(
        "slo_violation"
    )
    assert terminal, "run completed no requests"
    admitted = {
        s.attrs["request_id"] for s in tracer.spans_named("gateway.admit")
    }
    waited = {
        rid
        for s in tracer.spans_named("queue.wait")
        for rid in s.attrs["request_ids"]
    }
    executed = {
        rid
        for s in tracer.spans_named("slice.execute")
        for rid in s.attrs["request_ids"]
    }
    formed = {
        rid
        for s in tracer.spans_named("batch.form")
        for rid in s.attrs.get("request_ids", ())
    }
    for span in terminal:
        rid = span.attrs["request_id"]
        assert rid in admitted, f"request {rid} completed but never admitted"
        assert rid in waited, f"request {rid} has no queue.wait span"
        assert rid in executed, f"request {rid} has no slice.execute span"
        assert rid in formed, f"request {rid} has no batch.form span"


def test_lifecycle_span_times_are_ordered(traced_result):
    tracer = traced_result.tracer
    for name in ("queue.wait", "slice.execute"):
        for span in tracer.spans_named(name):
            assert span.closed
            assert span.end >= span.start


def test_control_plane_spans_sit_on_their_own_tracks(traced_result):
    tracer = traced_result.tracer
    decisions = tracer.spans_named("reconfig.decision")
    assert decisions  # the Algorithm 2 daemon monitors every interval
    assert {s.track for s in decisions} == {"reconfig"}
    for span in tracer.spans_named("reconfig.apply"):
        assert span.track == "reconfig"
    for span in tracer.spans_named("gpu.reconfigure"):
        assert span.track.startswith("gpu/")
    request_tracks = {
        s.track
        for s in tracer.spans
        if s.name in ("gateway.admit", "queue.wait", "slice.execute")
    }
    assert request_tracks.isdisjoint({"reconfig", "spot", "autoscale"})


def test_run_markers_and_export(traced_result):
    tracer = traced_result.tracer
    assert len(tracer.spans_named("run.start")) == 1
    assert len(tracer.spans_named("run.end")) == 1
    events = to_trace_events(tracer)
    opens = {}
    for event in events:
        if event["ph"] == "b":
            opens[(event["id"], event["name"])] = (
                opens.get((event["id"], event["name"]), 0) + 1
            )
        elif event["ph"] == "e":
            opens[(event["id"], event["name"])] -= 1
    assert all(count == 0 for count in opens.values())


def test_telemetry_counters_match_platform_state(traced_result):
    counters = traced_result.tracer.telemetry.counters()
    platform = traced_result.platform
    assert counters["requests.completed"] == len(
        list(platform.collector.records)
    )
    assert counters["requests.completed"] <= counters[
        "gateway.requests_admitted"
    ]
    assert counters["reconfig.decisions"] > 0
