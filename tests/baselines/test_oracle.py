"""Unit tests for the Oracle scheme and PlannedReconfigurator."""


from repro.baselines.oracle import OracleScheme, PlannedReconfigurator
from repro.cluster.pricing import VMTier
from repro.gpu.mig import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.simulation import Simulator


def build_platform(sim, plan, n_nodes=2):
    scheme = OracleScheme(plan, enable_autoscaler=False)
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=n_nodes, cold_start_seconds=0.0),
    )
    platform.provision_initial(VMTier.ON_DEMAND)
    return platform, scheme


class TestPlannedReconfigurator:
    def test_planned_for_lookup(self):
        sim = Simulator()
        plan = [(0.0, GEOMETRY_4G_2G_1G), (20.0, GEOMETRY_4G_3G)]
        platform, scheme = build_platform(sim, plan)
        reconfigurator = scheme.reconfigurator
        assert isinstance(reconfigurator, PlannedReconfigurator)
        assert reconfigurator.planned_for(0.0) == GEOMETRY_4G_2G_1G
        assert reconfigurator.planned_for(19.9) == GEOMETRY_4G_2G_1G
        assert reconfigurator.planned_for(20.0) == GEOMETRY_4G_3G
        assert reconfigurator.planned_for(500.0) == GEOMETRY_4G_3G

    def test_before_plan_start_is_none(self):
        sim = Simulator()
        platform, scheme = build_platform(sim, [(10.0, GEOMETRY_4G_3G)])
        assert scheme.reconfigurator.planned_for(5.0) is None

    def test_plan_is_applied_ahead_of_windows(self):
        sim = Simulator()
        plan = [(0.0, GEOMETRY_4G_2G_1G), (20.0, GEOMETRY_4G_3G)]
        platform, scheme = build_platform(sim, plan)
        sim.run(until=25.0)
        for node in platform.cluster.nodes:
            assert node.gpu.geometry == GEOMETRY_4G_3G

    def test_reconfiguration_is_free_on_oracle_nodes(self):
        sim = Simulator()
        plan = [(0.0, GEOMETRY_4G_3G)]
        platform, scheme = build_platform(sim, plan)
        for node in platform.cluster.nodes:
            assert node.gpu.reconfig_seconds == 0.0
        sim.run(until=5.0)
        # Initial geometry (4g,2g,1g) converges to the plan immediately.
        for node in platform.cluster.nodes:
            assert node.gpu.geometry == GEOMETRY_4G_3G
            assert node.gpu.reconfigurations == 1

    def test_unordered_plan_is_sorted(self):
        sim = Simulator()
        plan = [(20.0, GEOMETRY_4G_2G_1G), (0.0, GEOMETRY_4G_3G)]
        platform, scheme = build_platform(sim, plan)
        assert scheme.reconfigurator.planned_for(1.0) == GEOMETRY_4G_3G


class TestOracleScheme:
    def test_disables_the_online_reconfigurator_by_default(self):
        scheme = OracleScheme([(0.0, GEOMETRY_4G_3G)])
        assert scheme._enable_reconfigurator is False

    def test_empty_plan_keeps_initial_geometry(self):
        sim = Simulator()
        platform, scheme = build_platform(sim, [])
        sim.run(until=10.0)
        for node in platform.cluster.nodes:
            assert node.gpu.geometry == GEOMETRY_4G_2G_1G
            assert node.gpu.reconfigurations == 0
