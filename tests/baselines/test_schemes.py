"""Behavioural tests for the baseline schemes (§5's evaluated schemes)."""

import pytest

from repro.baselines import (
    GpuletScheme,
    InflessLlamaScheme,
    MoleculeBetaScheme,
    NaiveSlicingScheme,
)
from repro.baselines.motivation import (
    MigOnlyScheme,
    MpsMigScheme,
    SmartMpsMigScheme,
)
from repro.cluster.pricing import VMTier
from repro.gpu.engine import ShareMode
from repro.gpu.mig import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G, GEOMETRY_FULL
from repro.serverless.dispatcher import DispatchPolicy
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

RESNET = scale_model(get_model("resnet50"), 4 / 128)
SHUFFLE = scale_model(get_model("shufflenet_v2"), 4 / 128)


def make_platform(sim, scheme, n_nodes=1):
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=n_nodes, cold_start_seconds=0.0,
                       batch_max_wait=0.01),
    )
    platform.provision_initial(VMTier.ON_DEMAND)
    return platform


def admit(platform, model, strict, count):
    for _ in range(count):
        platform.gateway.admit(
            Request.from_spec(
                RequestSpec(arrival=platform.sim.now, model=model, strict=strict)
            )
        )


class TestMolecule:
    def test_uses_time_sharing_on_full_gpu(self):
        scheme = MoleculeBetaScheme()
        assert scheme.share_mode is ShareMode.TIME_SHARE
        assert scheme.initial_geometry() == GEOMETRY_FULL

    def test_batches_execute_serially(self):
        sim = Simulator()
        platform = make_platform(sim, MoleculeBetaScheme())
        sim.at(0.0, lambda: admit(platform, RESNET, True, 8))  # 2 batches
        sim.run(until=5.0)
        records = list(platform.collector.records)
        assert len(records) == 8
        completions = sorted({r.completion for r in records})
        # Two distinct completion instants, one solo latency apart.
        assert len(completions) == 2
        assert completions[1] - completions[0] == pytest.approx(
            RESNET.solo_latency_7g
        )
        # No interference under time sharing.
        assert all(r.interference == 0.0 for r in records)


class TestInflessLlama:
    def test_consolidating_dispatch_policy(self):
        scheme = InflessLlamaScheme()
        assert scheme.dispatch_policy is DispatchPolicy.CONSOLIDATE
        assert scheme.initial_geometry() == GEOMETRY_FULL

    def test_batches_co_execute_with_interference(self):
        sim = Simulator()
        platform = make_platform(sim, InflessLlamaScheme())
        sim.at(0.0, lambda: admit(platform, RESNET, True, 8))  # 2 batches
        sim.run(until=5.0)
        records = list(platform.collector.records)
        assert len(records) == 8
        # Both batches run concurrently; ResNet50 FBR 0.62 ×2 saturates.
        assert all(r.interference > 0 for r in records)
        assert all(r.queue_delay == pytest.approx(0.0) for r in records)


class TestNaiveSlicing:
    def test_static_geometry(self):
        assert NaiveSlicingScheme().initial_geometry() == GEOMETRY_4G_2G_1G

    def test_memory_proportional_distribution(self):
        sim = Simulator()
        platform = make_platform(sim, NaiveSlicingScheme())
        node = platform.cluster.nodes[0]
        # Shufflenet (4 GB) fits every slice; expect spread ∝ memory.
        sim.at(0.0, lambda: admit(platform, SHUFFLE, True, 4 * 4))
        sim.run(until=0.05)
        occupancy = {
            s.profile.kind.value: len(s.running_jobs) + len(s.pending_jobs)
            for s in node.gpu.slices
        }
        # 4 batches over (20, 10, 5) GB: the 4g must receive the most.
        assert occupancy["4g"] >= occupancy["2g"] >= occupancy["1g"]
        assert occupancy["1g"] >= 1  # small slices are not spared

    def test_strictness_agnostic(self):
        sim = Simulator()
        platform = make_platform(sim, NaiveSlicingScheme())
        node = platform.cluster.nodes[0]
        sim.at(0.0, lambda: admit(platform, SHUFFLE, True, 4))
        sim.at(0.0, lambda: admit(platform, SHUFFLE, False, 4))
        sim.run(until=0.05)
        # Strict and BE land wherever the proportional cursor points —
        # both may share a slice (no isolation).
        placements = [
            {j.payload.strict for j in s.running_jobs}
            for s in node.gpu.slices
            if s.running_jobs
        ]
        assert placements  # something is running


class TestGpulet:
    def test_full_gpu_mps_with_sm_caps(self):
        scheme = GpuletScheme()
        assert scheme.initial_geometry() == GEOMETRY_FULL
        assert scheme.share_mode is ShareMode.MPS

    def test_one_batch_per_class_at_a_time(self):
        sim = Simulator()
        platform = make_platform(sim, GpuletScheme())
        node = platform.cluster.nodes[0]
        sim.at(0.0, lambda: admit(platform, RESNET, True, 8))  # 2 strict
        sim.at(0.0, lambda: admit(platform, SHUFFLE, False, 8))  # 2 BE
        sim.run(until=0.05)
        running = node.gpu.slices[0].running_jobs
        strict_running = [j for j in running if j.payload.strict]
        be_running = [j for j in running if not j.payload.strict]
        assert len(strict_running) == 1
        assert len(be_running) == 1

    def test_sm_cap_slows_execution(self):
        sim = Simulator()
        platform = make_platform(sim, GpuletScheme())
        sim.at(0.0, lambda: admit(platform, RESNET, True, 4))  # 1 batch
        sim.run(until=5.0)
        record = platform.collector.records[0]
        # Capped at 62.5% SMs: deficiency > 0 even running alone.
        assert record.deficiency > 0
        assert record.exec_min == pytest.approx(RESNET.solo_latency_7g)


class TestMotivationSchemes:
    def test_geometries_and_modes(self):
        assert MigOnlyScheme().initial_geometry() == GEOMETRY_4G_3G
        assert MigOnlyScheme().share_mode is ShareMode.TIME_SHARE
        assert MpsMigScheme().share_mode is ShareMode.MPS
        assert SmartMpsMigScheme().share_mode is ShareMode.MPS

    def test_round_robin_spreads_across_slices(self):
        sim = Simulator()
        platform = make_platform(sim, MpsMigScheme())
        node = platform.cluster.nodes[0]
        sim.at(0.0, lambda: admit(platform, SHUFFLE, True, 8))  # 2 batches
        sim.run(until=0.05)
        busy = [s for s in node.gpu.slices if s.running_jobs]
        assert len(busy) == 2  # one batch per slice

    def test_smart_isolates_strict_on_largest(self):
        sim = Simulator()
        platform = make_platform(sim, SmartMpsMigScheme())
        node = platform.cluster.nodes[0]
        sim.at(0.0, lambda: admit(platform, RESNET, True, 4))
        sim.at(0.0, lambda: admit(platform, SHUFFLE, False, 4))
        sim.run(until=0.05)
        by_kind = {s.profile.kind.value: s for s in node.gpu.slices}
        assert all(j.payload.strict for j in by_kind["4g"].running_jobs)
        assert all(
            not j.payload.strict for j in by_kind["3g"].running_jobs
        )
        assert by_kind["3g"].running_jobs
