"""End-to-end integration tests: whole-platform invariants.

These exercise the full pipeline (trace → gateway → batcher → dispatcher →
scheduler → GPU engine → metrics) under adversarial conditions — spot
evictions mid-flight, MIG reconfigurations under load — and check the
conservation and exactly-once properties the per-module tests cannot see.
"""

import pytest

from repro.experiments import ExperimentConfig, build_specs, run_scheme

QUICK = dict(
    trace="constant",
    duration=40.0,
    warmup=10.0,
    drain=60.0,
    n_nodes=3,
    offered_load=0.5,
)


class TestConservation:
    @pytest.mark.parametrize(
        "scheme", ["protean", "molecule", "infless_llama", "naive_slicing",
                   "gpulet", "oracle"]
    )
    def test_every_request_served_exactly_once(self, scheme):
        config = ExperimentConfig(strict_model="resnet50", **QUICK)
        specs = build_specs(config)
        result = run_scheme(scheme, config, specs=specs)
        assert len(result.collector) == len(specs)
        assert result.summary.dropped_requests == 0

    def test_latency_components_always_additive(self):
        config = ExperimentConfig(strict_model="vgg19", **QUICK)
        result = run_scheme("protean", config)
        for record in result.collector:
            assert sum(record.components().values()) == pytest.approx(
                record.latency, rel=1e-9, abs=1e-9
            )
            assert record.latency >= 0


class TestSpotChurn:
    def _run(self, procurement, availability, scheme="protean", seed=3):
        config = ExperimentConfig(
            strict_model="resnet50",
            procurement=procurement,
            spot_availability=availability,
            spot_check_interval=10.0,
            spot_notice_seconds=5.0,
            provision_seconds=5.0,
            seed=seed,
            **QUICK,
        )
        specs = build_specs(config)
        return run_scheme(scheme, config, specs=specs), specs

    def test_hybrid_under_heavy_churn_serves_everything(self):
        result, specs = self._run("hybrid", "low")
        assert result.extras["evictions"] >= 1
        # Every request is eventually served exactly once, even when its
        # batch was stranded on an evicted node and resubmitted.
        assert len(result.collector) == len(specs)
        assert result.extras["nodes_at_end"] >= 1

    def test_hybrid_compliance_survives_churn(self):
        result, _specs = self._run("hybrid", "moderate")
        assert result.summary.slo_compliance >= 0.8

    def test_spot_only_drops_capacity_not_correctness(self):
        result, specs = self._run("spot_only", "low")
        # No double-serving even under repeated resubmission.
        assert len(result.collector) <= len(specs)
        served_plus_inflight = len(result.collector)
        assert served_plus_inflight >= 0.3 * len(specs)

    def test_cost_accounting_consistent_under_churn(self):
        result, _specs = self._run("hybrid", "moderate")
        summary = result.summary
        assert summary.total_cost > 0
        assert 0.0 <= summary.cost_savings_fraction <= 0.71


class TestReconfigurationUnderLoad:
    def test_protean_reconfigures_while_serving(self):
        config = ExperimentConfig(
            strict_model="shufflenet_v2",
            be_pool=("dpn92", "mobilenet"),
            rotation_period=10.0,
            **QUICK,
        )
        specs = build_specs(config)
        result = run_scheme("protean", config, specs=specs)
        assert result.summary.reconfigurations >= 1
        assert len(result.collector) == len(specs)

    def test_oracle_reconfigures_for_free(self):
        config = ExperimentConfig(
            strict_model="shufflenet_v2",
            be_pool=("dpn92", "mobilenet"),
            rotation_period=10.0,
            **QUICK,
        )
        result = run_scheme("oracle", config)
        # Oracle nodes have zero reconfig downtime but the changes count.
        assert result.summary.reconfigurations >= 1


class TestDeterminismEndToEnd:
    def test_identical_seeds_identical_everything(self):
        config = ExperimentConfig(
            strict_model="resnet50",
            procurement="hybrid",
            spot_availability="moderate",
            seed=11,
            **QUICK,
        )
        a = run_scheme("protean", config)
        b = run_scheme("protean", config)
        assert a.summary == b.summary
        assert a.extras == b.extras

    def test_different_seeds_differ(self):
        config = ExperimentConfig(strict_model="resnet50", **QUICK)
        a = run_scheme("protean", config)
        b = run_scheme("protean", config.with_overrides(seed=99))
        assert a.summary.strict_requests != b.summary.strict_requests or (
            a.summary.strict_p99 != b.summary.strict_p99
        )
