"""Tests for the NodeScheduler machinery and the Dispatcher."""

import pytest

from repro.cluster import AWS, Cluster, CostMeter, VM, VMTier, WorkerNode
from repro.gpu import GEOMETRY_FULL, GPU, ShareMode
from repro.serverless.container import ContainerPool
from repro.serverless.dispatcher import DispatchPolicy, Dispatcher
from repro.serverless.request import Request, RequestBatch
from repro.serverless.scheduler import NodeScheduler
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("resnet50"), 4 / 128)


class FifoFullGpuScheduler(NodeScheduler):
    """Minimal concrete scheduler: whole-GPU MPS placement."""

    def _place(self, batch):
        gpu_slice = self.node.gpu.slices[0]
        if not self.fits_now(batch, gpu_slice):
            return None
        return self.standard_placement(batch, gpu_slice)


def make_node(sim, mode=ShareMode.MPS):
    vm = VM(sim, VMTier.ON_DEMAND, CostMeter(AWS))
    return WorkerNode(vm, GPU(sim, GEOMETRY_FULL, mode))


def make_batch(model=MODEL, strict=True, created_at=0.0, n=None):
    batch = RequestBatch(model, strict, created_at)
    n = model.batch_size if n is None else n  # full batch by default
    for _ in range(n):
        batch.add(
            Request.from_spec(
                RequestSpec(arrival=created_at, model=model, strict=strict)
            )
        )
    return batch


def make_scheduler(sim, node=None, completions=None, cold=0.0):
    node = node or make_node(sim)
    pool = ContainerPool(sim, cold_start_seconds=cold, keep_alive_seconds=600.0)
    completions = completions if completions is not None else []
    scheduler = FifoFullGpuScheduler(
        sim, node, pool, lambda b, t: completions.append((b, t))
    )
    return scheduler, completions


class TestNodeScheduler:
    def test_submit_executes_and_completes(self):
        sim = Simulator()
        scheduler, completions = make_scheduler(sim)
        sim.at(0.0, lambda: scheduler.submit(make_batch()))
        sim.run()
        assert len(completions) == 1
        batch, timing = completions[0]
        assert timing.finished_at == pytest.approx(MODEL.solo_latency_7g)
        assert scheduler.batches_completed == 1
        assert scheduler.in_flight == 0

    def test_cold_start_delays_readiness(self):
        sim = Simulator()
        scheduler, completions = make_scheduler(sim, cold=5.0)
        sim.at(0.0, lambda: scheduler.submit(make_batch()))
        sim.run()
        batch, timing = completions[0]
        assert batch.cold_start_seconds == 5.0
        assert batch.ready_at == pytest.approx(5.0)
        assert timing.finished_at == pytest.approx(5.0 + MODEL.solo_latency_7g)

    def test_container_released_and_reused(self):
        sim = Simulator()
        scheduler, _ = make_scheduler(sim, cold=5.0)
        sim.at(0.0, lambda: scheduler.submit(make_batch()))
        sim.run(until=10.0)  # done; container idle, within keep-alive
        second = make_batch()
        scheduler.submit(second)
        sim.run(until=20.0)
        assert scheduler.pool.warm_hits == 1
        assert second.cold_start_seconds == 0.0

    def test_memory_blocked_batch_waits_in_queue(self):
        sim = Simulator()
        big = scale_model(get_model("gpt2"), 1 / 4)  # 14 GB each
        scheduler, completions = make_scheduler(sim)
        for _ in range(3):  # 42 GB demand > 40 GB slice
            sim.at(0.0, lambda: scheduler.submit(make_batch(model=big)))
        sim.run(until=0.01)
        assert scheduler.in_flight == 2
        assert len(scheduler.queue) == 1
        sim.run()
        assert len(completions) == 3

    def test_hold_pauses_dispatch(self):
        sim = Simulator()
        scheduler, completions = make_scheduler(sim)
        scheduler.hold = True
        sim.at(0.0, lambda: scheduler.submit(make_batch()))
        sim.run()
        assert completions == []
        assert len(scheduler.queue) == 1
        scheduler.hold = False
        scheduler.dispatch()
        sim.run()
        assert len(completions) == 1

    def test_load_counts_all_stages(self):
        sim = Simulator()
        scheduler, _ = make_scheduler(sim, cold=10.0)
        sim.at(0.0, lambda: scheduler.submit(make_batch()))
        sim.run(until=1.0)  # container booting
        assert scheduler.load() == pytest.approx(MODEL.solo_latency_7g)
        assert scheduler.outstanding_batches() == 1

    def test_collect_unfinished_drains_scheduler_state(self):
        sim = Simulator()
        scheduler, _ = make_scheduler(sim, cold=10.0)
        scheduler.hold = True
        sim.at(0.0, lambda: scheduler.submit(make_batch()))
        sim.run(until=11.0)  # booted, now queued but held
        unfinished = scheduler.collect_unfinished()
        assert len(unfinished) == 1
        assert scheduler.outstanding_batches() == 0

    def test_lost_batch_callback_on_late_boot_after_retire(self):
        sim = Simulator()
        node = make_node(sim)
        pool = ContainerPool(sim, cold_start_seconds=5.0, keep_alive_seconds=60.0)
        lost = []
        scheduler = FifoFullGpuScheduler(
            sim, node, pool, lambda b, t: None, lost.append
        )
        batch = make_batch()
        sim.at(0.0, lambda: scheduler.submit(batch))
        # Retire mid-boot: collect_unfinished reclaims the batch, so the
        # late boot callback must NOT double-report it.
        sim.at(1.0, lambda: (node.retire(), scheduler.collect_unfinished()))
        sim.run()
        assert lost == []


class TestDispatcher:
    def _cluster_with_nodes(self, sim, n):
        cluster = Cluster()
        dispatcher = Dispatcher(cluster)
        schedulers = []
        for _ in range(n):
            node = make_node(sim)
            pool = ContainerPool(sim, cold_start_seconds=0.0)
            scheduler = FifoFullGpuScheduler(sim, node, pool, lambda b, t: None)
            cluster.add(node)
            dispatcher.register(node, scheduler)
            schedulers.append((node, scheduler))
        return cluster, dispatcher, schedulers

    def test_least_loaded_routing_spreads_batches(self):
        sim = Simulator()
        _cluster, dispatcher, schedulers = self._cluster_with_nodes(sim, 3)
        for _ in range(3):
            dispatcher.route(make_batch())
        counts = [s.outstanding_batches() for _node, s in schedulers]
        assert counts == [1, 1, 1]

    def test_consolidate_packs_then_spills(self):
        sim = Simulator()
        cluster = Cluster()
        dispatcher = Dispatcher(
            cluster, policy=DispatchPolicy.CONSOLIDATE, consolidation_limit=2
        )
        schedulers = []
        for _ in range(2):
            node = make_node(sim)
            pool = ContainerPool(sim, cold_start_seconds=0.0)
            scheduler = FifoFullGpuScheduler(sim, node, pool, lambda b, t: None)
            cluster.add(node)
            dispatcher.register(node, scheduler)
            schedulers.append(scheduler)
        for _ in range(3):
            dispatcher.route(make_batch())
        counts = sorted(s.outstanding_batches() for s in schedulers)
        assert counts == [1, 2]  # packed to the limit, then spilled

    def test_draining_node_excluded(self):
        sim = Simulator()
        _cluster, dispatcher, schedulers = self._cluster_with_nodes(sim, 2)
        schedulers[0][0].drain()
        for _ in range(2):
            dispatcher.route(make_batch())
        assert schedulers[0][1].outstanding_batches() == 0
        assert schedulers[1][1].outstanding_batches() == 2

    def test_backlog_when_no_nodes_then_flush_on_register(self):
        sim = Simulator()
        cluster = Cluster()
        dispatcher = Dispatcher(cluster)
        dispatcher.route(make_batch())
        assert dispatcher.backlog_size == 1
        node = make_node(sim)
        pool = ContainerPool(sim, cold_start_seconds=0.0)
        scheduler = FifoFullGpuScheduler(sim, node, pool, lambda b, t: None)
        cluster.add(node)
        dispatcher.register(node, scheduler)
        assert dispatcher.backlog_size == 0
        assert scheduler.outstanding_batches() == 1

    def test_resubmit_counts(self):
        sim = Simulator()
        _cluster, dispatcher, _schedulers = self._cluster_with_nodes(sim, 1)
        batch = make_batch()
        dispatcher.resubmit(batch)
        assert batch.resubmissions == 1
        assert dispatcher.resubmissions == 1
