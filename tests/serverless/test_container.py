"""Tests for the container pool: cold starts, keep-alive, pre-warming."""

import pytest

from repro.errors import ConfigurationError
from repro.serverless.container import ContainerPool, ContainerState
from repro.simulation import Simulator


def make_pool(sim, cold=8.0, keep_alive=600.0):
    return ContainerPool(
        sim, cold_start_seconds=cold, keep_alive_seconds=keep_alive
    )


class TestAcquire:
    def test_first_acquire_pays_cold_start(self):
        sim = Simulator()
        pool = make_pool(sim)
        ready = []
        sim.at(0.0, lambda: pool.acquire("resnet50", lambda c, cold: ready.append((sim.now, cold))))
        sim.run()
        assert ready == [(8.0, 8.0)]
        assert pool.cold_starts == 1
        assert pool.warm_hits == 0

    def test_released_container_is_reused_warm(self):
        sim = Simulator()
        pool = make_pool(sim)
        holder = []
        sim.at(0.0, lambda: pool.acquire("resnet50", lambda c, cold: holder.append(c)))
        sim.run()
        pool.release(holder[0])
        second = []
        pool.acquire("resnet50", lambda c, cold: second.append((c, cold)))
        assert second[0][0] is holder[0]
        assert second[0][1] == 0.0
        assert pool.warm_hits == 1

    def test_model_isolation(self):
        sim = Simulator()
        pool = make_pool(sim)
        holder = []
        sim.at(0.0, lambda: pool.acquire("resnet50", lambda c, cold: holder.append(c)))
        sim.run()
        pool.release(holder[0])
        other = []
        pool.acquire("vgg19", lambda c, cold: other.append(cold))
        assert other == []  # still cold-starting; different model
        sim.run()
        assert other == [8.0]

    def test_concurrent_acquires_spawn_separate_containers(self):
        # Reactive scale-up: one container per batch (Section 4.2).
        sim = Simulator()
        pool = make_pool(sim)
        seen = []
        sim.at(0.0, lambda: pool.acquire("m", lambda c, cold: seen.append(c)))
        sim.at(0.0, lambda: pool.acquire("m", lambda c, cold: seen.append(c)))
        sim.run()
        assert len(seen) == 2
        assert seen[0] is not seen[1]
        assert pool.cold_starts == 2


class TestKeepAlive:
    def test_idle_container_terminates_after_keep_alive(self):
        sim = Simulator()
        pool = make_pool(sim, keep_alive=10.0)
        holder = []
        sim.at(0.0, lambda: pool.acquire("m", lambda c, cold: holder.append(c)))
        sim.run()
        pool.release(holder[0])
        sim.run(until=sim.now + 9.0)
        assert holder[0].state is ContainerState.IDLE
        sim.run(until=sim.now + 2.0)
        assert holder[0].state is ContainerState.TERMINATED
        assert pool.idle_count("m") == 0

    def test_reuse_resets_keep_alive(self):
        sim = Simulator()
        pool = make_pool(sim, keep_alive=10.0)
        holder = []
        sim.at(0.0, lambda: pool.acquire("m", lambda c, cold: holder.append(c)))
        sim.run()
        container = holder[0]
        pool.release(container)
        sim.run(until=sim.now + 8.0)
        pool.acquire("m", lambda c, cold: None)  # warm hit re-busies it
        pool.release(container)
        sim.run(until=sim.now + 8.0)
        assert container.state is ContainerState.IDLE  # timer restarted

    def test_delayed_termination_cuts_cold_starts(self):
        # With keep-alive, repeated bursts reuse containers; without it
        # (tiny keep-alive) every burst pays cold starts — "reduces the
        # number of cold starts by up to 98%" (Section 4.2).
        def run(keep_alive):
            sim = Simulator()
            pool = make_pool(sim, cold=1.0, keep_alive=keep_alive)
            held = []

            def serve():
                pool.acquire("m", lambda c, cold: held.append(c))

            for burst in range(20):
                sim.at(burst * 60.0, serve)
                sim.at(burst * 60.0 + 5.0, lambda: pool.release(held.pop()))
            sim.run()
            return pool.cold_starts

        assert run(keep_alive=600.0) == 1
        assert run(keep_alive=1.0) == 20


class TestPrewarm:
    def test_prewarmed_container_becomes_idle(self):
        sim = Simulator()
        pool = make_pool(sim)
        pool.prewarm("m")
        assert pool.idle_count("m") == 0
        sim.run(until=10.0)  # past the boot, before keep-alive expiry
        assert pool.idle_count("m") == 1
        assert pool.live_count("m") == 1
        hits = []
        pool.acquire("m", lambda c, cold: hits.append(cold))
        assert hits == [0.0]


class TestLifecycleErrors:
    def test_release_idle_container_raises(self):
        sim = Simulator()
        pool = make_pool(sim)
        holder = []
        sim.at(0.0, lambda: pool.acquire("m", lambda c, cold: holder.append(c)))
        sim.run()
        pool.release(holder[0])
        with pytest.raises(ConfigurationError):
            pool.release(holder[0])

    def test_stopped_pool_rejects_work(self):
        sim = Simulator()
        pool = make_pool(sim)
        pool.stop()
        with pytest.raises(ConfigurationError):
            pool.acquire("m", lambda c, cold: None)
        with pytest.raises(ConfigurationError):
            pool.prewarm("m")

    def test_stop_terminates_everything_and_swallows_boots(self):
        sim = Simulator()
        pool = make_pool(sim)
        booted = []
        sim.at(0.0, lambda: pool.acquire("m", lambda c, cold: booted.append(c)))
        sim.at(1.0, pool.stop)  # mid-boot
        sim.run()
        assert booted == []
        assert pool.total_containers == 0

    def test_negative_delays_rejected(self):
        with pytest.raises(ConfigurationError):
            ContainerPool(Simulator(), cold_start_seconds=-1.0)
