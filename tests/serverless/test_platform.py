"""Unit tests for the ServerlessPlatform wiring and node lifecycle."""

import pytest

from repro.cluster.pricing import VMTier
from repro.cluster.vm import VMState
from repro.core.protean import ProteanScheme
from repro.errors import ConfigurationError
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("resnet50"), 4 / 128)


def make_platform(sim, n_nodes=2, **config_kwargs):
    config_kwargs.setdefault("cold_start_seconds", 0.0)
    config_kwargs.setdefault("batch_max_wait", 0.01)
    scheme = ProteanScheme(
        enable_reconfigurator=False, enable_autoscaler=False
    )
    platform = ServerlessPlatform(
        sim, scheme, PlatformConfig(n_nodes=n_nodes, **config_kwargs)
    )
    platform.provision_initial(VMTier.ON_DEMAND)
    return platform


def spec(arrival=0.0, strict=True):
    return RequestSpec(arrival=arrival, model=MODEL, strict=strict)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(n_nodes=0)
        with pytest.raises(ConfigurationError):
            PlatformConfig(reconfig_seconds=-1.0)


class TestProvisioning:
    def test_initial_nodes_and_pools(self):
        sim = Simulator()
        platform = make_platform(sim, n_nodes=3)
        assert len(platform.cluster) == 3
        assert len(platform.all_nodes) == 3
        for node in platform.cluster.nodes:
            assert platform.pool_for(node) is not None
            assert node.vm.tier is VMTier.ON_DEMAND

    def test_build_node_registers_with_dispatcher(self):
        sim = Simulator()
        platform = make_platform(sim, n_nodes=1)
        node = platform.build_node(VMTier.SPOT)
        assert platform.dispatcher.try_scheduler_for(node) is not None
        assert len(platform.cluster) == 2


class TestInjectAndServe:
    def test_inject_serves_requests(self):
        sim = Simulator()
        platform = make_platform(sim)
        specs = [spec(arrival=0.1 * i) for i in range(8)]  # two batches
        platform.inject(specs)
        sim.run(until=10.0)
        assert platform.gateway.requests_admitted == 8
        assert len(platform.collector) == 8

    def test_record_components_additive(self):
        sim = Simulator()
        platform = make_platform(sim)
        platform.inject([spec(arrival=0.0) for _ in range(4)])
        sim.run(until=5.0)
        for record in platform.collector:
            assert sum(record.components().values()) == pytest.approx(
                record.latency
            )

    def test_empty_injection_is_fine(self):
        sim = Simulator()
        platform = make_platform(sim)
        platform.inject([])
        sim.run(until=1.0)
        assert len(platform.collector) == 0


class TestRetirement:
    def test_retire_resubmits_unfinished_work(self):
        sim = Simulator()
        platform = make_platform(sim, n_nodes=2)
        victim = platform.cluster.nodes[0]
        # Hold the victim's scheduler so work stays queued there.
        platform.dispatcher.scheduler_for(victim).hold = True
        # Route a batch explicitly to the victim.
        from repro.serverless.request import RequestBatch

        batch = RequestBatch(MODEL, True, created_at=0.0)
        for _ in range(4):
            batch.add(Request.from_spec(spec()))
        platform.dispatcher.scheduler_for(victim).submit(batch)
        sim.run(until=0.5)
        platform.retire_node(victim)
        sim.run(until=5.0)
        # The batch was resubmitted to the surviving node and completed.
        assert platform.dispatcher.resubmissions == 1
        assert len(platform.collector) == 4
        assert victim.vm.state is VMState.TERMINATED
        assert len(platform.cluster) == 1

    def test_retire_settles_billing(self):
        sim = Simulator()
        platform = make_platform(sim, n_nodes=1)
        node = platform.cluster.nodes[0]
        sim.run(until=100.0)
        platform.retire_node(node)
        assert platform.meter.seconds(VMTier.ON_DEMAND) == pytest.approx(100.0)

    def test_finalize_flushes_live_vms(self):
        sim = Simulator()
        platform = make_platform(sim, n_nodes=2)
        sim.run(until=50.0)
        platform.finalize()
        assert platform.meter.seconds(VMTier.ON_DEMAND) == pytest.approx(100.0)


class TestObservers:
    def test_request_observers_see_ingest(self):
        sim = Simulator()
        platform = make_platform(sim)
        seen = []
        platform.request_observers.append(seen.append)
        platform.inject([spec()])
        sim.run(until=1.0)
        assert len(seen) == 1
        assert seen[0].model.name == MODEL.name
