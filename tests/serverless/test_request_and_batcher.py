"""Tests for Request, RequestBatch, and the Batcher."""

import pytest

from repro.errors import ConfigurationError
from repro.serverless.batcher import Batcher
from repro.serverless.request import Request, RequestBatch
from repro.simulation import Simulator
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

SMALL = scale_model(get_model("resnet50"), 4 / 128)  # batch size 4


def make_request(model=SMALL, strict=True, arrival=0.0, slo_multiplier=3.0):
    spec = RequestSpec(
        arrival=arrival, model=model, strict=strict, slo_multiplier=slo_multiplier
    )
    return Request.from_spec(spec)


class TestRequest:
    def test_from_spec_carries_deadline(self):
        request = make_request(arrival=1.0)
        assert request.deadline == pytest.approx(1.0 + 3 * SMALL.solo_latency_7g)

    def test_best_effort_has_no_deadline(self):
        assert make_request(strict=False).deadline is None

    def test_tight_slo_multiplier(self):
        request = make_request(arrival=0.0, slo_multiplier=2.0)
        assert request.deadline == pytest.approx(2 * SMALL.solo_latency_7g)

    def test_ids_are_unique(self):
        assert make_request().request_id != make_request().request_id


class TestRequestBatch:
    def test_add_enforces_homogeneity(self):
        batch = RequestBatch(SMALL, strict=True, created_at=0.0)
        batch.add(make_request())
        with pytest.raises(ConfigurationError):
            batch.add(make_request(strict=False))
        other = scale_model(get_model("vgg19"), 4 / 128)
        with pytest.raises(ConfigurationError):
            batch.add(make_request(model=other))

    def test_memory_and_work_from_model(self):
        batch = RequestBatch(SMALL, strict=True, created_at=0.0)
        assert batch.memory_gb == SMALL.memory_gb
        # Empty batch: only the fixed overhead fraction of the latency.
        alpha = RequestBatch.FIXED_OVERHEAD_FRACTION
        assert batch.work == pytest.approx(alpha * SMALL.solo_latency_7g)
        # Full batch: exactly the profiled solo latency.
        for _ in range(SMALL.batch_size):
            batch.add(make_request())
        assert batch.fill == 1.0
        assert batch.work == pytest.approx(SMALL.solo_latency_7g)
        # Half batch: linear interpolation above the fixed overhead.
        half = RequestBatch(SMALL, strict=True, created_at=0.0)
        for _ in range(SMALL.batch_size // 2):
            half.add(make_request())
        assert half.work == pytest.approx(
            SMALL.solo_latency_7g * (alpha + (1 - alpha) * 0.5)
        )

    def test_earliest_deadline(self):
        batch = RequestBatch(SMALL, strict=True, created_at=0.0)
        batch.add(make_request(arrival=2.0))
        batch.add(make_request(arrival=1.0))
        assert batch.earliest_deadline == pytest.approx(
            1.0 + 3 * SMALL.solo_latency_7g
        )

    def test_earliest_deadline_none_for_be(self):
        batch = RequestBatch(SMALL, strict=False, created_at=0.0)
        batch.add(make_request(strict=False))
        assert batch.earliest_deadline is None


class TestBatcher:
    def test_flush_on_batch_size(self):
        sim = Simulator()
        batches = []
        batcher = Batcher(sim, batches.append)
        for _ in range(4):  # SMALL.batch_size == 4
            batcher.add(make_request())
        assert len(batches) == 1
        assert len(batches[0]) == 4
        assert batcher.pending_requests == 0

    def test_flush_on_timeout(self):
        sim = Simulator()
        batches = []
        batcher = Batcher(sim, batches.append, max_wait=0.05)
        sim.at(0.0, lambda: batcher.add(make_request()))
        sim.run()
        assert len(batches) == 1
        assert len(batches[0]) == 1
        assert batches[0].created_at == pytest.approx(0.05)

    def test_timeout_measured_from_first_request(self):
        sim = Simulator()
        batches = []
        batcher = Batcher(sim, batches.append, max_wait=0.05)
        sim.at(0.00, lambda: batcher.add(make_request()))
        sim.at(0.04, lambda: batcher.add(make_request()))
        sim.run()
        assert len(batches) == 1
        assert batches[0].created_at == pytest.approx(0.05)

    def test_strict_and_be_batched_separately(self):
        sim = Simulator()
        batches = []
        batcher = Batcher(sim, batches.append)
        for _ in range(4):
            batcher.add(make_request(strict=True))
            batcher.add(make_request(strict=False))
        assert len(batches) == 2
        assert {b.strict for b in batches} == {True, False}

    def test_size_flush_cancels_timer(self):
        sim = Simulator()
        batches = []
        batcher = Batcher(sim, batches.append, max_wait=0.05)

        def fill():
            for _ in range(4):
                batcher.add(make_request())

        sim.at(0.0, fill)
        sim.run()
        assert len(batches) == 1  # no duplicate timeout flush

    def test_flush_all(self):
        sim = Simulator()
        batches = []
        batcher = Batcher(sim, batches.append)
        batcher.add(make_request())
        batcher.add(make_request(strict=False))
        batcher.flush_all()
        assert len(batches) == 2

    def test_pending_best_effort_memory(self):
        sim = Simulator()
        batcher = Batcher(sim, lambda b: None)
        batcher.add(make_request(strict=False))
        # One partial BE batch pending => one batch worth of memory.
        assert batcher.pending_best_effort_memory() == pytest.approx(
            SMALL.memory_gb
        )
        batcher.add(make_request(strict=True))
        assert batcher.pending_best_effort_memory() == pytest.approx(
            SMALL.memory_gb
        )

    def test_rejects_bad_max_wait(self):
        with pytest.raises(ConfigurationError):
            Batcher(Simulator(), lambda b: None, max_wait=0.0)
