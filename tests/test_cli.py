"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_models_command(capsys):
    assert main(["models"]) == 0
    output = capsys.readouterr().out
    assert "resnet50" in output
    assert "OpenAI GPT-2" in output


def test_list_figures(capsys):
    assert main(["list-figures"]) == 0
    output = capsys.readouterr().out
    assert "fig05" in output and "tab04" in output


def test_figure_command(capsys):
    assert main(["figure", "tab03"]) == 0
    output = capsys.readouterr().out
    assert "AWS" in output


def test_figure_unknown_id(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_run_command_quick(capsys):
    code = main(
        [
            "run",
            "--scheme",
            "molecule",
            "--model",
            "mobilenet",
            "--trace",
            "constant",
            "--duration",
            "20",
            "--warmup",
            "5",
            "--nodes",
            "2",
            "--load",
            "0.3",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "molecule" in output
    assert "slo_%" in output


def test_compare_command_quick(capsys):
    code = main(
        [
            "compare",
            "--schemes",
            "molecule",
            "protean",
            "--model",
            "mobilenet",
            "--trace",
            "constant",
            "--duration",
            "20",
            "--warmup",
            "5",
            "--nodes",
            "2",
            "--load",
            "0.3",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "molecule" in output and "protean" in output


def test_reproduce_all_selected(tmp_path, capsys):
    code = main(
        ["reproduce-all", "--only", "tab03", "--output", str(tmp_path)]
    )
    assert code == 0
    assert (tmp_path / "tab03.txt").exists()
    assert "regenerated 1/1" in capsys.readouterr().out


def test_trace_command_writes_chrome_trace(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    code = main(
        [
            "trace",
            "fig05",  # normalized to the fig5 preset
            "--out",
            str(out),
            "--jsonl",
            str(jsonl),
            "--duration",
            "15",
            "--warmup",
            "5",
            "--nodes",
            "2",
        ]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"gateway.admit", "queue.wait", "slice.execute"} <= names
    assert jsonl.exists()
    output = capsys.readouterr().out
    assert "perfetto" in output
    assert "gateway.requests_admitted" in output


def test_trace_command_unknown_experiment(tmp_path, capsys):
    code = main(["trace", "fig99", "--out", str(tmp_path / "t.json")])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_faults_command_with_plan_file(tmp_path, capsys):
    from repro.faults import FaultKind, FaultPlan, FaultSpec

    plan_path = tmp_path / "plan.json"
    FaultPlan((FaultSpec(FaultKind.NODE_CRASH, at=10.0),)).to_json(plan_path)
    out = tmp_path / "trace.json"
    code = main(
        [
            "faults",
            "default",
            "--plan",
            str(plan_path),
            "--duration",
            "25",
            "--warmup",
            "5",
            "--nodes",
            "2",
            "--out",
            str(out),
        ]
    )
    assert code == 0  # recovered within SLA
    output = capsys.readouterr().out
    assert "fault_crashes: 1" in output
    assert "recovered within" in output
    assert out.exists()


def test_faults_command_unknown_experiment(capsys):
    assert main(["faults", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_audit_command_quick(capsys):
    code = main(
        [
            "audit",
            "default",
            "--schemes",
            "protean",
            "naive",
            "--duration",
            "20",
            "--warmup",
            "5",
            "--nodes",
            "2",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "conservation audit" in output
    assert "protean" in output and "naive_slicing" in output
    assert "zero violations" in output


def test_audit_command_with_fault_demo(capsys):
    code = main(
        [
            "audit",
            "fig9",
            "--fault-demo",
            "--schemes",
            "protean",
            "--duration",
            "25",
            "--warmup",
            "5",
            "--nodes",
            "2",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "under fault plan" in output
    assert "zero violations" in output


def test_audit_command_unknown_scheme(capsys):
    assert main(["audit", "default", "--schemes", "skynet"]) == 2
    err = capsys.readouterr().err
    assert "skynet" in err and "protean" in err


def test_audit_command_unknown_experiment(capsys):
    assert main(["audit", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_rejects_unknown_scheme():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--scheme", "skynet"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_plan_command_smoke(tmp_path, capsys):
    out = tmp_path / "plan.json"
    code = main(
        [
            "plan",
            "smoke",
            "--nodes",
            "2",
            "4",
            "--procurement",
            "on_demand_only",
            "--json",
            str(out),
            "--jobs",
            "1",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "Pareto frontier" in output
    assert "recommended:" in output
    import json

    payload = json.loads(out.read_text())
    assert payload["version"] == 1
    assert payload["recommended"]["key"].startswith("protean/")
    assert payload["recommended"]["evidence"]["attainment"] >= 0.99
    assert len(payload["candidates"]) == 2


def test_plan_command_workload_file(tmp_path, capsys):
    import json

    from repro.capacity import PLAN_PRESETS

    spec = tmp_path / "workload.json"
    spec.write_text(json.dumps(PLAN_PRESETS["smoke"].to_dict()))
    code = main(
        [
            "plan",
            str(spec),
            "--nodes",
            "4",
            "--procurement",
            "hybrid",
            "--jobs",
            "1",
        ]
    )
    assert code == 0
    assert "protean/hybrid/n4" in capsys.readouterr().out


def test_plan_command_unknown_workload(capsys):
    assert main(["plan", "atlantis"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_plan_command_grid_conflicts_with_inline_flags(tmp_path, capsys):
    grid = tmp_path / "grid.json"
    grid.write_text('{"n_nodes": [2]}')
    code = main(["plan", "smoke", "--grid", str(grid), "--nodes", "4"])
    assert code == 2
    assert "exclusive" in capsys.readouterr().err


def test_plan_command_exit_one_when_nothing_feasible(capsys):
    code = main(
        [
            "plan",
            "smoke",
            "--nodes",
            "1",
            "--procurement",
            "on_demand_only",
            "--schemes",
            "molecule",
            "--jobs",
            "1",
        ]
    )
    assert code == 1
    assert "no candidate met the target" in capsys.readouterr().out


def test_plan_command_rejects_bad_grid_file(tmp_path, capsys):
    grid = tmp_path / "grid.json"
    grid.write_text('{"warp_factor": [9]}')
    assert main(["plan", "smoke", "--grid", str(grid)]) == 2
    assert "unknown grid field" in capsys.readouterr().err


def test_serve_replay_smoke(tmp_path, capsys):
    import json

    out = tmp_path / "report.json"
    code = main(
        [
            "serve", "--replay", "smoke", "--speedup", "50",
            "--retries", "3", "--json", str(out),
        ]
    )
    output = capsys.readouterr().out
    assert code == 0, output
    report = json.loads(out.read_text())
    assert report["drained"] is True
    assert report["completed"] > 0
    assert report["agrees"] is True
    assert "verdict:" in output


def test_serve_unknown_preset(capsys):
    assert main(["serve", "nope"]) == 2
    assert "preset" in capsys.readouterr().err
