"""Unit tests for ModelProfile derived quantities."""

import pytest

from repro.gpu.mig import SliceKind
from repro.workloads.profile import Domain, InterferenceCategory, ModelProfile


def make_profile(**overrides):
    defaults = dict(
        name="toy",
        display_name="Toy",
        domain=Domain.VISION,
        category=InterferenceCategory.LI,
        batch_size=128,
        solo_latency_7g=0.1,
        memory_gb=4.0,
        fbr=0.3,
        compute_sensitivity=0.5,
        bandwidth_sensitivity=0.1,
    )
    defaults.update(overrides)
    return ModelProfile(**defaults)


def test_rdf_is_one_on_full_gpu():
    assert make_profile().rdf("7g") == 1.0


def test_rdf_grows_as_slices_shrink():
    model = make_profile()
    rdfs = [model.rdf(k) for k in ("7g", "4g", "3g", "2g", "1g")]
    assert rdfs == sorted(rdfs)
    assert rdfs[0] == 1.0
    assert rdfs[-1] > 1.0


def test_solo_latency_scales_with_rdf():
    model = make_profile()
    assert model.solo_latency("7g") == pytest.approx(0.1)
    assert model.solo_latency("3g") == pytest.approx(0.1 * model.rdf("3g"))


def test_slice_fbr_accepts_kind_enum_and_string():
    model = make_profile()
    assert model.slice_fbr(SliceKind.G7) == model.slice_fbr("7g")


def test_slice_fbr_tracks_compute_to_bandwidth_ratio():
    model = make_profile(fbr=0.3)
    assert model.slice_fbr("7g") == pytest.approx(0.3)
    # 4g/2g/1g: compute:bandwidth = (k/7)/(k/8) = 8/7 → mild inflation.
    for kind in ("4g", "2g", "1g"):
        assert model.slice_fbr(kind) == pytest.approx(0.3 * 8 / 7)
    # 3g enjoys 4 memory slices for 3 compute slices: 6/7 deflation.
    assert model.slice_fbr("3g") == pytest.approx(0.3 * 6 / 7)
    # Saturated demand caps at the slice's bandwidth.
    heavy = make_profile(fbr=0.95)
    assert heavy.slice_fbr("2g") == 1.0


def test_fits_checks_slice_memory():
    model = make_profile(memory_gb=8.0)
    assert model.fits("7g")
    assert model.fits("2g")  # 10 GB
    assert not model.fits("1g")  # 5 GB


def test_slo_target_default_is_three_times_7g_latency():
    model = make_profile(solo_latency_7g=0.05)
    assert model.slo_target() == pytest.approx(0.15)
    assert model.slo_target(2.0) == pytest.approx(0.10)
    with pytest.raises(ValueError):
        model.slo_target(0.0)


@pytest.mark.parametrize(
    "overrides",
    [
        dict(batch_size=0),
        dict(solo_latency_7g=0.0),
        dict(memory_gb=0.0),
        dict(fbr=1.5),
        dict(fbr=-0.1),
        dict(compute_sensitivity=-1.0),
    ],
)
def test_validation_rejects_bad_fields(overrides):
    with pytest.raises(ValueError):
        make_profile(**overrides)


def test_language_flag():
    assert not make_profile().is_language_model
    lm = make_profile(domain=Domain.LANGUAGE, category=InterferenceCategory.VHI)
    assert lm.is_language_model
