"""Tests pinning the registry to the paper's workload suite (Section 5)."""

import pytest

from repro.errors import UnknownModelError
from repro.workloads import (
    ALL_MODELS,
    Domain,
    InterferenceCategory,
    generative_models,
    get_model,
    high_interference_models,
    language_models,
    low_interference_models,
    model_names,
    normalized_fbrs,
    opposite_category,
    very_high_interference_models,
    vision_models,
)

PAPER_VISION = {
    "resnet50", "googlenet", "densenet121", "dpn92", "vgg19", "resnet18",
    "mobilenet", "mobilenet_v2", "senet18", "shufflenet_v2",
    "efficientnet_b0", "simplified_dla",
}
PAPER_LANGUAGE = {
    "albert", "bert", "deberta", "distilbert", "flaubert",
    "funnel_transformer", "roberta", "squeezebert", "gpt1", "gpt2",
}


def test_there_are_exactly_22_workloads():
    assert len(ALL_MODELS) == 22
    assert len(set(model_names())) == 22


def test_vision_and_language_rosters_match_paper():
    assert {m.name for m in vision_models()} == PAPER_VISION
    assert {m.name for m in language_models()} == PAPER_LANGUAGE


def test_lookup_by_display_name_and_case():
    assert get_model("ResNet 50").name == "resnet50"
    assert get_model("resnet50").display_name == "ResNet 50"
    assert get_model("SHUFFLENET_V2").name == "shufflenet_v2"


def test_unknown_model_raises_with_hint():
    with pytest.raises(UnknownModelError, match="resnet50"):
        get_model("resnet51")


def test_batch_sizes_follow_paper():
    for model in vision_models():
        assert model.batch_size == 128
    for model in language_models():
        assert model.batch_size == 4


def test_latencies_are_in_paper_band():
    # Paper Section 5: batch latency on 7g between ~50 and 200 ms.
    for model in ALL_MODELS:
        assert 0.050 <= model.solo_latency_7g <= 0.200


def test_memory_footprints_are_in_paper_band():
    # Paper Section 5: ~2 to 14 GB per batch.
    for model in ALL_MODELS:
        assert 2.0 <= model.memory_gb <= 14.0


def test_category_assignment_consistency():
    li = low_interference_models()
    hi = high_interference_models()
    vhi = very_high_interference_models()
    assert {m.name for m in li} | {m.name for m in hi} == PAPER_VISION
    assert {m.name for m in vhi} == PAPER_LANGUAGE
    # FBR ordering between buckets: every LI < every HI.
    assert max(m.fbr for m in li) < min(m.fbr for m in hi)


def test_vhi_fbrs_are_59_percent_above_vision_average():
    # Paper Section 6.2: LLM FBRs are ~59% higher on average than vision.
    vision_mean = sum(m.fbr for m in vision_models()) / 12
    language_mean = sum(m.fbr for m in language_models()) / 10
    assert language_mean / vision_mean == pytest.approx(1.59, abs=0.08)


def test_gpt_fbrs_top_out_42_percent_above_other_llms():
    # Paper Figure 13 discussion: GPT FBRs up to ~42% above the other LLMs.
    others = [m.fbr for m in language_models() if not m.generative]
    gpt_peak = max(m.fbr for m in generative_models())
    assert gpt_peak / (sum(others) / len(others)) == pytest.approx(1.42, abs=0.06)


def test_generative_models_are_gpt_family():
    assert {m.name for m in generative_models()} == {"gpt1", "gpt2"}


def test_dpn92_footprint_anchor():
    # Figure 7: DPN 92's footprint is up to 2.74x the rotating BE models'.
    dpn = get_model("dpn92")
    shufflenet = get_model("shufflenet_v2")
    assert dpn.memory_gb / shufflenet.memory_gb == pytest.approx(2.75, abs=0.15)


def test_albert_rdf_anchor():
    # Section 2.2: ALBERT batch time grows 2.15x on a 3g slice.
    assert get_model("albert").rdf("3g") == pytest.approx(2.15, rel=0.03)


def test_shufflenet_is_deficiency_insensitive():
    # Section 6.2: ShuffleNet V2 sees <2% resource-deficiency slowdown.
    assert get_model("shufflenet_v2").rdf("3g") < 1.02


def test_opposite_category_mapping():
    assert opposite_category(InterferenceCategory.LI) is InterferenceCategory.HI
    assert opposite_category(InterferenceCategory.HI) is InterferenceCategory.LI
    assert opposite_category(InterferenceCategory.VHI) is InterferenceCategory.VHI


def test_normalized_fbrs_peak_at_one():
    normalized = normalized_fbrs()
    assert len(normalized) == 22
    assert max(normalized.values()) == 1.0
    assert min(normalized.values()) > 0.0
    # GPT-2 has the largest FBR of all 22 workloads.
    assert normalized["gpt2"] == 1.0


def test_domains_are_consistent():
    for model in ALL_MODELS:
        if model.name in PAPER_VISION:
            assert model.domain is Domain.VISION
        else:
            assert model.domain is Domain.LANGUAGE
