"""Tests for the profiling pipeline: FBR/RDF recovery from measurements."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import get_model
from repro.workloads.profiler import (
    estimate_fbrs,
    measure_co_location,
    measure_rdf,
    measure_solo_latency,
)


def test_measured_solo_latency_matches_profile_on_7g():
    model = get_model("resnet50")
    assert measure_solo_latency(model, "7g") == pytest.approx(
        model.solo_latency_7g
    )


def test_measured_solo_latency_matches_profile_on_slice():
    model = get_model("albert")
    assert measure_solo_latency(model, "3g") == pytest.approx(
        model.solo_latency("3g")
    )


def test_measured_rdf_matches_ground_truth():
    for name, kind in [("albert", "3g"), ("resnet50", "2g"), ("vgg19", "4g")]:
        model = get_model(name)
        assert measure_rdf(model, kind) == pytest.approx(model.rdf(kind), rel=1e-6)


def test_co_location_observes_eq1_factor():
    model = get_model("dpn92")  # fbr 0.55
    measurement = measure_co_location(model, [model, model])
    # Three residents of FBR 0.55 => factor 1.65.
    assert measurement.slowdown_factor == pytest.approx(3 * model.fbr, rel=1e-6)


def test_co_location_below_saturation_shows_no_slowdown():
    model = get_model("mobilenet")  # fbr 0.22
    measurement = measure_co_location(model, [model])
    assert measurement.slowdown_factor == pytest.approx(1.0)


def test_estimate_fbrs_recovers_ground_truth():
    models = [get_model(n) for n in ("resnet50", "dpn92", "vgg19", "densenet121")]
    estimates = estimate_fbrs(models, copies=4)
    for model in models:
        assert estimates[model.name] == pytest.approx(model.fbr, abs=0.02)


def test_estimate_fbrs_mixed_li_hi():
    models = [get_model(n) for n in ("mobilenet", "dpn92", "shufflenet_v2")]
    estimates = estimate_fbrs(models, copies=8)
    for model in models:
        assert estimates[model.name] == pytest.approx(model.fbr, abs=0.03)


def test_estimate_fbrs_rejects_bad_copies():
    with pytest.raises(WorkloadError):
        estimate_fbrs([get_model("resnet50")], copies=0)
