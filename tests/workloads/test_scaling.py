"""Tests for scaled-down workload variants."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import get_model
from repro.workloads.scaling import scale_model, scale_models


def test_identity_scale_returns_same_object():
    model = get_model("resnet50")
    assert scale_model(model, 1.0) is model


def test_scale_only_changes_batch_size():
    model = get_model("resnet50")
    scaled = scale_model(model, 0.1)
    assert scaled.batch_size == 13
    assert scaled.solo_latency_7g == model.solo_latency_7g
    assert scaled.memory_gb == model.memory_gb
    assert scaled.fbr == model.fbr
    assert scaled.name == model.name


def test_scale_floors_at_one():
    model = get_model("bert")  # batch size 4
    assert scale_model(model, 0.01).batch_size == 1


def test_scale_models_vector():
    models = (get_model("resnet50"), get_model("vgg19"))
    scaled = scale_models(models, 0.5)
    assert [m.batch_size for m in scaled] == [64, 64]


def test_invalid_factor():
    with pytest.raises(WorkloadError):
        scale_model(get_model("resnet50"), 0.0)


def test_batch_rate_invariance():
    # The point of scaling: batches per second at rate r×f with batch
    # size b×f equals batches per second at rate r with batch size b.
    model = get_model("resnet50")
    scaled = scale_model(model, 0.25)
    rate, factor = 4000.0, 0.25
    assert rate / model.batch_size == pytest.approx(
        (rate * factor) / scaled.batch_size, rel=0.01
    )
