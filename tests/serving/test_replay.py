"""Replay determinism and the sim-vs-live agreement cross-check."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.serving import ReplayReport, replay, serve_preset
from repro.serving.replay import REPLAY_SCHEMA_VERSION


def _smoke(speedup):
    return serve_preset("smoke").with_overrides(speedup=speedup)


class TestReplayDeterminism:
    def test_two_live_runs_agree_on_counts(self):
        # Wall-clock timing is not bit-deterministic, but the *counting*
        # level is: same trace, same seed, full drain — every request is
        # admitted and completed in both runs.
        first = replay(config=_smoke(50.0))
        second = replay(config=_smoke(50.0))
        for report in (first, second):
            assert report.drained
            assert report.executor_incomplete == 0
        assert first.injected == second.injected > 0
        assert first.admitted == second.admitted == first.injected
        assert first.completed == second.completed == first.injected
        assert first.rejected == second.rejected == 0
        # And both see the identical simulator prediction.
        assert first.sim_p99 == second.sim_p99
        assert first.sim_attainment == second.sim_attainment


@pytest.mark.slow
class TestSimVsLiveAgreement:
    def test_live_metrics_agree_with_simulation(self):
        # The acceptance gate: with the sleep-stub executor, measured
        # attainment and p99 must land within the documented tolerances
        # of the discrete-event prediction for the same seed. Moderate
        # speedup keeps wall-clock skew well inside the band; one retry
        # absorbs host scheduling spikes (same policy as the CLI's
        # --retries flag).
        report = replay(config=_smoke(20.0))
        if not report.agrees:
            report = replay(config=_smoke(20.0))
        assert report.drained
        assert report.live_strict_requests > 0
        assert report.attainment_agrees, (
            f"attainment live={report.live_attainment:.4f} "
            f"sim={report.sim_attainment:.4f} "
            f"tolerance={report.attainment_tolerance}"
        )
        assert report.p99_agrees, (
            f"p99 live={report.live_p99:.4f} sim={report.sim_p99:.4f} "
            f"tolerance={report.p99_tolerance:.4f}"
        )
        assert report.agrees


@pytest.fixture(scope="module")
def smoke_report():
    return replay(config=_smoke(50.0))


class TestReplayReport:
    def test_round_trips_through_json(self, smoke_report):
        payload = json.loads(json.dumps(smoke_report.to_dict()))
        assert payload["version"] == REPLAY_SCHEMA_VERSION
        assert payload["agrees"] == smoke_report.agrees
        assert ReplayReport.from_dict(payload) == smoke_report

    def test_unknown_keys_rejected(self, smoke_report):
        payload = smoke_report.to_dict()
        payload["mystery"] = 1
        with pytest.raises(ConfigurationError, match="mystery"):
            ReplayReport.from_dict(payload)

    def test_newer_schema_refused(self, smoke_report):
        payload = smoke_report.to_dict()
        payload["version"] = REPLAY_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            ReplayReport.from_dict(payload)

    def test_summary_lines_name_the_verdict(self, smoke_report):
        text = "\n".join(smoke_report.summary_lines())
        assert "verdict:" in text
        assert "p99" in text and "attainment" in text
