"""ServeConfig: validation, presets, and the versioned wire format."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig
from repro.serving import (
    SERVE_PRESETS,
    SERVE_SCHEMA_VERSION,
    ServeConfig,
    serve_preset,
)


class TestValidation:
    def test_defaults_construct(self):
        config = ServeConfig()
        assert config.scheme == "protean"
        assert config.executor == "sleep"

    def test_bad_port_rejected(self):
        with pytest.raises(ConfigurationError, match="port"):
            ServeConfig(port=70000)

    def test_bad_speedup_rejected(self):
        with pytest.raises(ConfigurationError, match="speedup"):
            ServeConfig(speedup=-1.0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            ServeConfig(executor="nope")

    def test_experiment_must_be_a_config(self):
        with pytest.raises(ConfigurationError, match="ExperimentConfig"):
            ServeConfig(experiment={"duration": 5.0})

    def test_tolerances_validated(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(attainment_tolerance=1.5)
        with pytest.raises(ConfigurationError):
            ServeConfig(p99_tolerance_abs=-0.1)

    def test_misconfig_is_also_a_value_error(self):
        # ConfigurationError subclasses ValueError (the repo-wide
        # convention callers may rely on).
        with pytest.raises(ValueError):
            ServeConfig(speedup=0.0)


class TestWireFormat:
    def test_round_trip(self):
        config = ServeConfig(
            experiment=ExperimentConfig(duration=10.0, warmup=2.0, seed=3),
            scheme="mps_mig",
            port=0,
            speedup=25.0,
        )
        payload = config.to_dict()
        assert payload["version"] == SERVE_SCHEMA_VERSION
        assert ServeConfig.from_dict(payload) == config

    def test_round_trip_through_json(self):
        import json

        config = serve_preset("smoke")
        payload = json.loads(json.dumps(config.to_dict()))
        assert ServeConfig.from_dict(payload) == config

    def test_unknown_keys_rejected(self):
        payload = ServeConfig().to_dict()
        payload["mystery"] = 1
        with pytest.raises(ConfigurationError, match="mystery"):
            ServeConfig.from_dict(payload)

    def test_newer_schema_refused(self):
        payload = ServeConfig().to_dict()
        payload["version"] = SERVE_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            ServeConfig.from_dict(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError, match="dict"):
            ServeConfig.from_dict([1, 2])


class TestPresets:
    def test_every_preset_constructs(self):
        for name in SERVE_PRESETS:
            config = serve_preset(name)
            assert isinstance(config, ServeConfig)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="preset"):
            serve_preset("nope")

    def test_smoke_preset_is_actually_smoke_sized(self):
        config = serve_preset("smoke")
        assert config.experiment.duration <= 10.0
        assert config.experiment.n_nodes <= 2

    def test_p99_tolerance_has_an_absolute_floor(self):
        config = ServeConfig(p99_tolerance_frac=0.5, p99_tolerance_abs=0.5)
        assert config.p99_tolerance(0.0) == 0.5
        assert config.p99_tolerance(10.0) == 5.0

    def test_p99_tolerance_widens_with_speedup(self):
        # A fixed wall-clock jitter budget maps to jitter × speedup trace
        # seconds, so faster replays get a proportionally wider band.
        config = ServeConfig(speedup=100.0, jitter_wall_seconds=0.025)
        assert config.p99_tolerance(0.0) == pytest.approx(2.5)
        slow = ServeConfig(speedup=1.0, jitter_wall_seconds=0.025)
        assert slow.p99_tolerance(0.0) == slow.p99_tolerance_abs

    def test_negative_jitter_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="jitter"):
            ServeConfig(jitter_wall_seconds=-0.01)
