"""The HTTP gateway in front of a live run (stdlib asyncio end to end)."""

import asyncio
import json

from repro.serving import HttpGateway, LiveRun, serve_preset


async def _http(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, data = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(data)


def _with_gateway(scenario):
    """Run ``scenario(host, port, run)`` against a started smoke gateway."""

    async def body():
        config = serve_preset("smoke").with_overrides(port=0, speedup=20.0)
        run = await LiveRun(config).start()
        gateway = await HttpGateway(
            run, host=config.host, port=config.port
        ).start()
        try:
            await scenario(config.host, gateway.port, run)
        finally:
            await gateway.stop()
            await run.stop()

    asyncio.run(body())


def test_healthz_reports_clock():
    async def scenario(host, port, run):
        status, payload = await _http(host, port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["clock_now"] >= 0.0

    _with_gateway(scenario)


def test_inference_round_trip_and_metrics():
    async def scenario(host, port, run):
        status, payload = await _http(
            host, port, "POST", "/v1/requests",
            {"model": "resnet50", "strict": True},
        )
        assert status == 200
        assert payload["rejected"] is False
        assert payload["latency_s"] > 0.0
        assert payload["wall_latency_s"] > 0.0
        assert payload["deadline"] is not None
        status, metrics = await _http(host, port, "GET", "/metrics")
        assert status == 200
        assert metrics["requests_admitted"] == 1
        assert metrics["requests_completed"] == 1
        assert metrics["executor_incomplete"] == 0
        assert metrics["latency_p50_s"] == payload["latency_s"]

    _with_gateway(scenario)


def test_default_model_comes_from_the_experiment():
    async def scenario(host, port, run):
        status, payload = await _http(host, port, "POST", "/v1/requests", {})
        assert status == 200
        assert payload["model"] == run.config.experiment.strict_model

    _with_gateway(scenario)


def test_error_routes():
    async def scenario(host, port, run):
        status, payload = await _http(host, port, "GET", "/nope")
        assert status == 404
        status, payload = await _http(host, port, "GET", "/v1/requests")
        assert status == 405
        status, payload = await _http(
            host, port, "POST", "/v1/requests", {"model": "not-a-model"}
        )
        assert status == 400
        assert "error" in payload

    _with_gateway(scenario)


def test_malformed_json_is_a_400():
    async def scenario(host, port, run):
        reader, writer = await asyncio.open_connection(host, port)
        body = b"{not json"
        writer.write(
            (
                "POST /v1/requests HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        assert b"400" in raw.split(b"\r\n", 1)[0]

    _with_gateway(scenario)
