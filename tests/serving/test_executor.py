"""Executor plugin API: registry + the sleep stub on either clock."""

import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    SleepExecutor,
    executor_names,
    get_executor,
    register_executor,
)
from repro.serving.executor import Executor
from repro.simulation import Simulator


class TestRegistry:
    def test_sleep_is_registered(self):
        assert "sleep" in executor_names()
        executor = get_executor("sleep")
        assert isinstance(executor, SleepExecutor)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(get_executor("  SLEEP "), SleepExecutor)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            get_executor("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="registered"):
            register_executor("sleep", SleepExecutor)

    def test_custom_executor_plugs_in(self):
        class Recording(Executor):
            name = "recording-test"

            def __init__(self):
                self.batches = []

            def launch(self, batch, *, planned_seconds, clock, on_done):
                self.batches.append((batch, planned_seconds))
                on_done(batch, 0.0)

        register_executor("recording-test", Recording)
        try:
            executor = get_executor("recording-test")
            done = []
            executor.launch(
                "batch", planned_seconds=1.0, clock=None,
                on_done=lambda b, s: done.append(b),
            )
            assert executor.batches == [("batch", 1.0)]
            assert done == ["batch"]
        finally:
            from repro.serving.executor import _EXECUTORS

            _EXECUTORS.pop("recording-test", None)


class TestSleepExecutor:
    def test_consumes_exactly_the_planned_duration(self):
        # The executor only needs the Clock protocol, so the
        # deterministic simulator doubles as its test harness.
        sim = Simulator(seed=0)
        executor = SleepExecutor()
        done = []
        executor.launch(
            "batch-a",
            planned_seconds=1.5,
            clock=sim,
            on_done=lambda batch, s: done.append((batch, s, sim.now)),
        )
        executor.launch(
            "batch-b",
            planned_seconds=0.5,
            clock=sim,
            on_done=lambda batch, s: done.append((batch, s, sim.now)),
        )
        assert executor.launched == 2 and executor.completed == 0
        sim.run()
        assert executor.completed == 2
        assert done == [
            ("batch-b", 0.5, 0.5),
            ("batch-a", 1.5, 1.5),
        ]

    def test_negative_plan_clamps_to_zero(self):
        sim = Simulator(seed=0)
        executor = SleepExecutor()
        done = []
        executor.launch(
            "b", planned_seconds=-1.0, clock=sim,
            on_done=lambda batch, s: done.append(sim.now),
        )
        sim.run()
        assert done == [0.0]
