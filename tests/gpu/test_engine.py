"""Unit tests for the slice execution engine (rate-based MPS / time-share)."""

import pytest

from repro.errors import InsufficientMemoryError
from repro.gpu.engine import GPUSlice, JobTiming, ShareMode, SliceJob
from repro.gpu.mig import profile
from repro.simulation import Simulator


def make_slice(sim, kind="7g", mode=ShareMode.MPS):
    return GPUSlice(sim, profile(kind), mode)


def collect():
    done = []

    def on_complete(job, timing):
        done.append((job, timing))

    return done, on_complete


def job(work=0.1, rdf=1.0, fbr=0.2, memory=2.0, on_complete=None, **kwargs):
    return SliceJob(
        work=work,
        rdf=rdf,
        fbr=fbr,
        memory_gb=memory,
        on_complete=on_complete or (lambda j, t: None),
        **kwargs,
    )


class TestSoloExecution:
    def test_solo_job_finishes_at_solo_time(self):
        sim = Simulator()
        done, cb = collect()
        gpu_slice = make_slice(sim)
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.1, on_complete=cb)))
        sim.run()
        assert len(done) == 1
        _, timing = done[0]
        assert timing.finished_at == pytest.approx(0.1)
        assert timing.execution_time == pytest.approx(0.1)
        assert timing.interference_time == pytest.approx(0.0)
        assert timing.deficiency_time == pytest.approx(0.0)

    def test_rdf_stretches_solo_time(self):
        sim = Simulator()
        done, cb = collect()
        gpu_slice = make_slice(sim, "3g")
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.1, rdf=2.0, on_complete=cb)))
        sim.run()
        _, timing = done[0]
        assert timing.execution_time == pytest.approx(0.2)
        assert timing.deficiency_time == pytest.approx(0.1)
        assert timing.interference_time == pytest.approx(0.0)

    def test_memory_accounting_returns_to_zero(self):
        sim = Simulator()
        gpu_slice = make_slice(sim)
        sim.at(0.0, lambda: gpu_slice.submit(job(memory=10.0)))
        sim.run()
        assert gpu_slice.memory_used == 0.0
        assert gpu_slice.idle
        assert gpu_slice.completed_jobs == 1


class TestMpsInterference:
    def test_low_fbr_jobs_do_not_interfere(self):
        sim = Simulator()
        done, cb = collect()
        gpu_slice = make_slice(sim)
        sim.at(0.0, lambda: gpu_slice.submit(job(fbr=0.3, on_complete=cb)))
        sim.at(0.0, lambda: gpu_slice.submit(job(fbr=0.3, on_complete=cb)))
        sim.run()
        for _, timing in done:
            assert timing.execution_time == pytest.approx(0.1)
            assert timing.interference_time == pytest.approx(0.0)

    def test_saturating_fbr_slows_both_jobs(self):
        sim = Simulator()
        done, cb = collect()
        gpu_slice = make_slice(sim)
        # Total FBR = 1.6 => both jobs run 1.6x slower (Eq. 1).
        sim.at(0.0, lambda: gpu_slice.submit(job(fbr=0.8, on_complete=cb)))
        sim.at(0.0, lambda: gpu_slice.submit(job(fbr=0.8, on_complete=cb)))
        sim.run()
        for _, timing in done:
            assert timing.execution_time == pytest.approx(0.16)
            assert timing.interference_time == pytest.approx(0.06)

    def test_interference_recomputed_when_job_departs(self):
        sim = Simulator()
        done, cb = collect()
        gpu_slice = make_slice(sim)
        # Short job saturates bandwidth with the long one; once the short
        # job leaves, the long job speeds back up.
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.08, fbr=0.8, on_complete=cb)))
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.2, fbr=0.8, on_complete=cb)))
        sim.run()
        assert len(done) == 2
        short_timing = done[0][1]
        long_timing = done[1][1]
        # Short job: whole life at factor 1.6.
        assert short_timing.execution_time == pytest.approx(0.08 * 1.6)
        # Long job: 0.08 units of work at factor 1.6, then 0.12 solo.
        expected = 0.08 * 1.6 + (0.2 - 0.08)
        assert long_timing.execution_time == pytest.approx(expected)

    def test_interference_recomputed_when_job_arrives_midway(self):
        sim = Simulator()
        done, cb = collect()
        gpu_slice = make_slice(sim)
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.2, fbr=0.8, on_complete=cb)))
        sim.at(0.1, lambda: gpu_slice.submit(job(work=0.2, fbr=0.8, on_complete=cb)))
        sim.run()
        first = done[0][1]
        # First job: 0.1 of work solo, remaining 0.1 at factor 1.6.
        assert first.execution_time == pytest.approx(0.1 + 0.1 * 1.6)

    def test_memory_blocked_job_waits_in_fifo(self):
        sim = Simulator()
        done, cb = collect()
        gpu_slice = make_slice(sim, "2g")  # 10 GB
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.1, memory=8.0, on_complete=cb)))
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.1, memory=8.0, on_complete=cb)))
        sim.run()
        second_timing = done[1][1]
        assert second_timing.pending_time == pytest.approx(0.1)
        assert second_timing.finished_at == pytest.approx(0.2)

    def test_pending_queue_is_strictly_fifo(self):
        sim = Simulator()
        starts = {}
        gpu_slice = make_slice(sim, "2g")  # 10 GB

        def record(name):
            return lambda j, t: starts.__setitem__(name, t.started_at)

        sim.at(0.0, lambda: gpu_slice.submit(
            job(work=0.1, memory=8.0, on_complete=record("big1"))))
        sim.at(0.0, lambda: gpu_slice.submit(
            job(work=0.1, memory=8.0, on_complete=record("big2"))))
        # Small job *could* fit alongside big1 but must not jump the queue:
        # it starts only when big2 (ahead of it in FIFO) has been admitted.
        sim.at(0.0, lambda: gpu_slice.submit(
            job(work=0.01, memory=1.0, on_complete=record("small"))))
        sim.run()
        assert starts["big1"] == pytest.approx(0.0)
        assert starts["big2"] == pytest.approx(0.1)
        assert starts["small"] >= starts["big2"]

    def test_oversized_job_rejected_outright(self):
        sim = Simulator()
        gpu_slice = make_slice(sim, "1g")  # 5 GB
        with pytest.raises(InsufficientMemoryError):
            gpu_slice.submit(job(memory=6.0))


class TestTimeShare:
    def test_jobs_run_serially(self):
        sim = Simulator()
        done, cb = collect()
        gpu_slice = make_slice(sim, mode=ShareMode.TIME_SHARE)
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.1, fbr=0.9, on_complete=cb)))
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.1, fbr=0.9, on_complete=cb)))
        sim.run()
        first, second = done[0][1], done[1][1]
        # No interference despite huge FBRs — but the second job queues.
        assert first.execution_time == pytest.approx(0.1)
        assert second.execution_time == pytest.approx(0.1)
        assert second.pending_time == pytest.approx(0.1)
        assert second.finished_at == pytest.approx(0.2)

    def test_queue_drains_in_order(self):
        sim = Simulator()
        finished = []
        gpu_slice = make_slice(sim, mode=ShareMode.TIME_SHARE)
        for index in range(5):
            sim.at(
                0.0,
                lambda i=index: gpu_slice.submit(
                    job(work=0.1, on_complete=lambda j, t, i=i: finished.append(i))
                ),
            )
        sim.run()
        assert finished == [0, 1, 2, 3, 4]
        assert sim.now == pytest.approx(0.5)


class TestTimingInvariants:
    def test_breakdown_components_sum_to_execution_time(self):
        timing = JobTiming(
            submitted_at=0.0, started_at=0.5, finished_at=1.0, work=0.2, rdf=1.5
        )
        total = timing.work + timing.deficiency_time + timing.interference_time
        assert total == pytest.approx(timing.execution_time)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            job(work=0.0)
        with pytest.raises(ValueError):
            job(rdf=0.5)
        with pytest.raises(ValueError):
            job(fbr=-0.1)
        with pytest.raises(ValueError):
            job(memory=-1.0)


class TestUtilizationIntegrals:
    def test_busy_fraction_tracks_occupancy(self):
        sim = Simulator()
        gpu_slice = make_slice(sim)
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.5)))
        sim.run(until=1.0)
        busy, _mem, lifetime = gpu_slice.utilization_snapshot()
        assert busy == pytest.approx(0.5)
        assert lifetime == pytest.approx(1.0)

    def test_memory_integral(self):
        sim = Simulator()
        gpu_slice = make_slice(sim)
        sim.at(0.0, lambda: gpu_slice.submit(job(work=0.5, memory=10.0)))
        sim.run(until=1.0)
        _busy, mem_gb_s, _lifetime = gpu_slice.utilization_snapshot()
        assert mem_gb_s == pytest.approx(5.0)
