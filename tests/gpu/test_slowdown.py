"""Unit tests for the Eq. 1 / Eq. 2 slowdown model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.slowdown import (
    interference_factor,
    predicted_execution_time,
    resource_deficiency_factor,
    slice_relative_fbr,
    slowdown_factor,
)


class TestSliceRelativeFbr:
    def test_full_gpu_is_identity(self):
        assert slice_relative_fbr(0.2, 1.0) == pytest.approx(0.2)

    def test_demand_shrinks_with_slice_compute(self):
        # A job on a 4g uses 4/7 of the SMs against 4/8 of the bandwidth:
        # slice-relative demand is fbr × (4/7)/(4/8) ≈ 1.14 × fbr.
        assert slice_relative_fbr(
            0.5, bandwidth_fraction=4 / 8, compute_fraction=4 / 7
        ) == pytest.approx(0.5 * 8 / 7)
        # A 3g has a *better* bandwidth:compute ratio: 0.857 × fbr.
        assert slice_relative_fbr(
            0.5, bandwidth_fraction=4 / 8, compute_fraction=3 / 7
        ) == pytest.approx(0.5 * 6 / 7)

    def test_caps_at_one(self):
        # A job cannot demand more than the slice's entire bandwidth.
        assert slice_relative_fbr(0.95, 0.125, compute_fraction=1.0) == 1.0

    def test_sm_fraction_scales_demand(self):
        assert slice_relative_fbr(0.4, 1.0, sm_fraction=0.5) == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(model_fbr=-0.1, bandwidth_fraction=1.0),
            dict(model_fbr=0.1, bandwidth_fraction=0.0),
            dict(model_fbr=0.1, bandwidth_fraction=1.5),
            dict(model_fbr=0.1, bandwidth_fraction=1.0, sm_fraction=0.0),
            dict(model_fbr=0.1, bandwidth_fraction=1.0, sm_fraction=1.1),
            dict(model_fbr=0.1, bandwidth_fraction=1.0, compute_fraction=0.0),
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ValueError):
            slice_relative_fbr(**kwargs)


class TestInterferenceFactor:
    def test_below_saturation_is_one(self):
        assert interference_factor([0.2, 0.3]) == 1.0

    def test_above_saturation_is_sum(self):
        assert interference_factor([0.8, 0.7]) == pytest.approx(1.5)

    def test_empty_is_one(self):
        assert interference_factor([]) == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=20))
    def test_never_below_one(self, fbrs):
        assert interference_factor(fbrs) >= 1.0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=10),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_in_added_job(self, fbrs, extra):
        # Adding a co-located job can never reduce contention (Eq. 1).
        assert interference_factor(fbrs + [extra]) >= interference_factor(fbrs)


class TestPredictedExecutionTime:
    def test_solo_job_runs_at_solo_time(self):
        assert predicted_execution_time(0.1, 0.3, []) == pytest.approx(0.1)

    def test_eq1_worked_example(self):
        # Solo 100ms, own FBR 0.6, neighbours 0.5+0.4 => factor 1.5.
        assert predicted_execution_time(0.1, 0.6, [0.5, 0.4]) == pytest.approx(0.15)


class TestSlowdownFactor:
    def test_eta_combines_rdf_and_interference(self):
        # RDF 1.3, total FBR 1.2 => eta = 1.56 (Eq. 2).
        assert slowdown_factor(1.3, 0.6, [0.6]) == pytest.approx(1.56)

    def test_eta_floor_is_rdf(self):
        assert slowdown_factor(1.3, 0.1, [0.1]) == pytest.approx(1.3)

    def test_rejects_rdf_below_one(self):
        with pytest.raises(ValueError):
            slowdown_factor(0.9, 0.1, [])

    @given(
        rdf=st.floats(min_value=1.0, max_value=10.0),
        own=st.floats(min_value=0.0, max_value=1.0),
        others=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=10),
    )
    def test_eta_at_least_rdf(self, rdf, own, others):
        assert slowdown_factor(rdf, own, others) >= rdf


class TestResourceDeficiencyFactor:
    def test_full_gpu_has_rdf_one(self):
        assert resource_deficiency_factor(1.0, 1.0, 0.8, 0.3) == 1.0

    def test_insensitive_model_unaffected(self):
        assert resource_deficiency_factor(3 / 7, 4 / 8, 0.0, 0.0) == 1.0

    def test_power_law_shape(self):
        rdf = resource_deficiency_factor(0.5, 0.5, 1.0, 1.0)
        assert rdf == pytest.approx(4.0)

    def test_albert_anchor_from_paper(self):
        # Paper Section 2.2: ALBERT's batch time grows 2.15x on a 3g slice.
        rdf = resource_deficiency_factor(3 / 7, 4 / 8, 0.83, 0.09)
        assert rdf == pytest.approx(2.15, rel=0.02)

    @given(
        compute=st.floats(min_value=0.1, max_value=1.0),
        bandwidth=st.floats(min_value=0.1, max_value=1.0),
        alpha_c=st.floats(min_value=0.0, max_value=2.0),
        alpha_b=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_rdf_never_below_one(self, compute, bandwidth, alpha_c, alpha_b):
        assert resource_deficiency_factor(compute, bandwidth, alpha_c, alpha_b) >= 1.0

    def test_smaller_slices_have_larger_rdf(self):
        # Monotone: fewer resources can never speed a job up.
        big = resource_deficiency_factor(4 / 7, 4 / 8, 0.5, 0.2)
        small = resource_deficiency_factor(1 / 7, 1 / 8, 0.5, 0.2)
        assert small > big

    def test_rejects_negative_sensitivities(self):
        with pytest.raises(ValueError):
            resource_deficiency_factor(0.5, 0.5, -0.1, 0.0)
