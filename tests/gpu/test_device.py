"""Unit tests for the GPU device and MIG reconfiguration."""

import pytest

from repro.errors import ReconfigurationInProgressError, SliceBusyError
from repro.gpu import (
    GEOMETRY_4G_2G_1G,
    GEOMETRY_4G_3G,
    GEOMETRY_FULL,
    GPU,
    ShareMode,
    SliceJob,
)
from repro.simulation import Simulator


def idle_job(work=0.1, memory=1.0):
    return SliceJob(
        work=work, rdf=1.0, fbr=0.1, memory_gb=memory, on_complete=lambda j, t: None
    )


def test_initial_geometry_builds_slices():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_4G_3G)
    kinds = sorted(s.profile.kind.value for s in gpu.slices)
    assert kinds == ["3g", "4g"]
    assert gpu.idle
    assert gpu.available


def test_slices_by_size_orders():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_4G_2G_1G)
    ascending = [s.profile.kind.value for s in gpu.slices_by_size()]
    assert ascending == ["1g", "2g", "4g"]
    assert gpu.largest_slice().profile.kind.value == "4g"


def test_reconfigure_takes_downtime_and_swaps_slices():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_4G_2G_1G, reconfig_seconds=2.0)
    finished = []
    sim.at(1.0, lambda: gpu.reconfigure(GEOMETRY_4G_3G, finished.append))
    sim.run()
    assert sim.now == pytest.approx(3.0)
    assert finished == [gpu]
    assert gpu.geometry == GEOMETRY_4G_3G
    assert gpu.reconfigurations == 1
    assert not gpu.reconfiguring


def test_reconfigure_to_same_geometry_is_noop():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_4G_3G)
    called = []
    gpu.reconfigure(GEOMETRY_4G_3G, called.append)
    assert called == [gpu]
    assert gpu.reconfigurations == 0


def test_reconfigure_rejected_while_busy():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_FULL)
    sim.at(0.0, lambda: gpu.slices[0].submit(idle_job(work=1.0)))
    errors = []

    def attempt():
        try:
            gpu.reconfigure(GEOMETRY_4G_3G)
        except SliceBusyError:
            errors.append("busy")

    sim.at(0.5, attempt)
    sim.run()
    assert errors == ["busy"]
    assert gpu.geometry == GEOMETRY_FULL


def test_reconfigure_rejected_while_reconfiguring():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_FULL, reconfig_seconds=2.0)
    errors = []

    def first():
        gpu.reconfigure(GEOMETRY_4G_3G)

    def second():
        assert not gpu.available
        with pytest.raises(ReconfigurationInProgressError):
            gpu.reconfigure(GEOMETRY_4G_2G_1G)
        errors.append("caught")

    sim.at(0.0, first)
    sim.at(1.0, second)
    sim.run()
    assert errors == ["caught"]
    assert gpu.geometry == GEOMETRY_4G_3G


def test_utilization_rolls_up_across_reconfigurations():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_FULL, reconfig_seconds=2.0)
    # Busy 0..1 on the full GPU, reconfigure 2..4 — but run only until 4.
    sim.at(0.0, lambda: gpu.slices[0].submit(idle_job(work=1.0)))
    sim.at(2.0, lambda: gpu.reconfigure(GEOMETRY_4G_3G))
    sim.run(until=4.0)
    utilization = gpu.utilization()
    # 1 busy second on a compute-fraction-1.0 slice over 4 seconds.
    assert utilization.busy_fraction == pytest.approx(0.25)
    assert utilization.reconfigurations == 1


def test_occupancy_counts_running_and_pending():
    sim = Simulator()
    gpu = GPU(sim, GEOMETRY_FULL, mode=ShareMode.TIME_SHARE)
    sim.at(0.0, lambda: gpu.slices[0].submit(idle_job(work=1.0)))
    sim.at(0.0, lambda: gpu.slices[0].submit(idle_job(work=1.0)))
    sim.run(until=0.5)
    assert gpu.occupancy == 2
    assert not gpu.idle
    assert not gpu.can_reconfigure()
