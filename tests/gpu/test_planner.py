"""Tests for the analytic geometry planner."""

import pytest

from repro.errors import SchedulingError
from repro.gpu.mig import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G, GEOMETRY_FULL, Geometry
from repro.gpu.planner import (
    BatchStream,
    best_geometry,
    evaluate_geometry,
)
from repro.workloads import get_model


def stream(model_name, bps, strict=True):
    return BatchStream(
        model=get_model(model_name), batches_per_second=bps, strict=strict
    )


class TestEvaluateGeometry:
    def test_idle_mix_has_unit_slowdown(self):
        result = evaluate_geometry(GEOMETRY_4G_3G, [])
        assert result.strict_slowdown == 1.0
        assert result.feasible

    def test_light_strict_load_close_to_rdf(self):
        result = evaluate_geometry(
            GEOMETRY_4G_3G, [stream("shufflenet_v2", 1.0)]
        )
        # ShuffleNet is deficiency-insensitive: slowdown ≈ 1.
        assert result.strict_slowdown == pytest.approx(1.0, abs=0.1)

    def test_infeasible_when_nothing_fits(self):
        # GPT-2 batches (14 GB) cannot fit any slice of an all-1g geometry.
        geometry = Geometry(["1g"] * 7)
        result = evaluate_geometry(geometry, [stream("gpt2", 1.0)])
        assert not result.feasible
        assert result.strict_slowdown > 50.0

    def test_overload_penalized(self):
        light = evaluate_geometry(GEOMETRY_FULL, [stream("resnet50", 2.0)])
        heavy = evaluate_geometry(GEOMETRY_FULL, [stream("resnet50", 20.0)])
        assert heavy.strict_slowdown > light.strict_slowdown

    def test_be_contention_raises_strict_cost(self):
        # Rates high enough that the Eq. 1 contention sum saturates.
        alone = evaluate_geometry(GEOMETRY_FULL, [stream("resnet50", 6.0)])
        crowded = evaluate_geometry(
            GEOMETRY_FULL,
            [stream("resnet50", 6.0), stream("dpn92", 6.0, strict=False)],
        )
        assert crowded.strict_slowdown > alone.strict_slowdown

    def test_placements_follow_guidelines(self):
        result = evaluate_geometry(
            GEOMETRY_4G_2G_1G,
            [
                stream("resnet50", 1.0, strict=True),  # 8 GB
                stream("mobilenet", 1.0, strict=False),  # 2 GB
            ],
        )
        # BE starts on the smallest slice; strict reaches the largest.
        assert "1g" in result.placements["mobilenet"]
        assert "4g" in result.placements["resnet50"]


class TestBestGeometry:
    def test_isolating_geometry_wins_for_mixed_load(self):
        # Heavy strict HI + BE load overloading a lone 7g: a partitioned
        # geometry must beat it by isolating the streams.
        streams = [
            stream("vgg19", 5.0, strict=True),
            stream("mobilenet", 10.0, strict=False),
        ]
        winner = best_geometry(streams)
        full = evaluate_geometry(GEOMETRY_FULL, streams)
        assert winner.strict_slowdown < full.strict_slowdown
        assert len(winner.geometry) >= 2  # actually partitioned

    def test_low_load_prefers_large_slices(self):
        winner = best_geometry([stream("resnet50", 0.5)])
        assert winner.geometry.profiles[0].compute_units >= 4

    def test_candidate_restriction(self):
        candidates = (GEOMETRY_4G_3G, GEOMETRY_4G_2G_1G)
        winner = best_geometry([stream("resnet50", 1.0)], candidates)
        assert winner.geometry in candidates

    def test_empty_candidates_rejected(self):
        with pytest.raises(SchedulingError):
            best_geometry([stream("resnet50", 1.0)], candidates=())

    def test_negative_rate_rejected(self):
        with pytest.raises(SchedulingError):
            BatchStream(get_model("resnet50"), -1.0, True)

    def test_deterministic(self):
        streams = [
            stream("resnet50", 2.0),
            stream("googlenet", 2.0, strict=False),
        ]
        assert best_geometry(streams).geometry == best_geometry(streams).geometry
