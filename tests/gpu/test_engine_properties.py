"""Property-based tests for the slice execution engine (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.engine import GPUSlice, ShareMode, SliceJob
from repro.gpu.mig import profile
from repro.simulation import Simulator

job_strategy = st.fixed_dictionaries(
    {
        "work": st.floats(min_value=0.01, max_value=0.5),
        "rdf": st.floats(min_value=1.0, max_value=3.0),
        "fbr": st.floats(min_value=0.0, max_value=1.0),
        "memory": st.floats(min_value=0.5, max_value=12.0),
        "submit_at": st.floats(min_value=0.0, max_value=2.0),
    }
)


def run_workload(jobs, mode):
    sim = Simulator()
    gpu_slice = GPUSlice(sim, profile("7g"), mode)
    finished = []

    def submit(spec):
        gpu_slice.submit(
            SliceJob(
                work=spec["work"],
                rdf=spec["rdf"],
                fbr=spec["fbr"],
                memory_gb=spec["memory"],
                on_complete=lambda j, t: finished.append((j, t)),
            )
        )

    for spec in jobs:
        sim.at(spec["submit_at"], lambda s=spec: submit(s))
    sim.run(max_events=100_000)
    return gpu_slice, finished


@settings(max_examples=40, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=12))
def test_all_jobs_complete_and_memory_returns_to_zero(jobs):
    for mode in (ShareMode.MPS, ShareMode.TIME_SHARE):
        gpu_slice, finished = run_workload(jobs, mode)
        assert len(finished) == len(jobs)
        assert gpu_slice.memory_used == pytest.approx(0.0, abs=1e-9)
        assert gpu_slice.idle
        assert gpu_slice.completed_jobs == len(jobs)


@settings(max_examples=40, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=12))
def test_execution_never_faster_than_deficiency_floor(jobs):
    # exec time >= work × rdf always (interference only slows down).
    _slice, finished = run_workload(jobs, ShareMode.MPS)
    for job, timing in finished:
        assert timing.execution_time >= job.work * job.rdf - 1e-9
        assert timing.interference_time >= -1e-12
        assert timing.started_at >= timing.submitted_at - 1e-12


@settings(max_examples=40, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=12))
def test_breakdown_is_additive(jobs):
    _slice, finished = run_workload(jobs, ShareMode.MPS)
    for job, timing in finished:
        total = timing.work + timing.deficiency_time + timing.interference_time
        assert total == pytest.approx(timing.execution_time, rel=1e-6, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.lists(job_strategy, min_size=2, max_size=10))
def test_time_share_has_no_interference(jobs):
    _slice, finished = run_workload(jobs, ShareMode.TIME_SHARE)
    for _job, timing in finished:
        assert timing.interference_time == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.lists(job_strategy, min_size=2, max_size=10))
def test_mps_completion_no_earlier_than_solo_schedule(jobs):
    # Each MPS job finishes no earlier than if it ran alone from its
    # actual start time.
    _slice, finished = run_workload(jobs, ShareMode.MPS)
    for job, timing in finished:
        solo_finish = timing.started_at + job.work * job.rdf
        assert timing.finished_at >= solo_finish - 1e-9


@settings(max_examples=25, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=10))
def test_busy_time_bounded_by_wallclock_and_work(jobs):
    gpu_slice, finished = run_workload(jobs, ShareMode.MPS)
    busy, _mem, lifetime = gpu_slice.utilization_snapshot()
    assert busy <= lifetime + 1e-9
    # Busy time is at least the largest single execution span.
    longest = max(t.execution_time for _j, t in finished)
    assert busy >= longest - 1e-9
