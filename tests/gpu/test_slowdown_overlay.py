"""Tests for the fault-injection slowdown overlay on slices and devices."""

import pytest

from repro.errors import SimulationError
from repro.gpu import GEOMETRY_4G_3G, GEOMETRY_FULL, GPU, ShareMode, SliceJob
from repro.gpu.engine import GPUSlice
from repro.gpu.mig import profile
from repro.simulation import Simulator


def job(work=0.1, on_complete=None):
    return SliceJob(
        work=work,
        rdf=1.0,
        fbr=0.1,
        memory_gb=1.0,
        on_complete=on_complete or (lambda j, t: None),
    )


class TestSliceSlowdown:
    def test_slowdown_stretches_execution(self):
        sim = Simulator()
        gpu_slice = GPUSlice(sim, profile("7g"), ShareMode.MPS)
        gpu_slice.set_slowdown(2.0)
        done = []
        sim.at(0.0, lambda: gpu_slice.submit(
            job(work=0.1, on_complete=lambda j, t: done.append(t))
        ))
        sim.run()
        assert done[0].finished_at == pytest.approx(0.2)

    def test_mid_flight_change_reschedules(self):
        sim = Simulator()
        gpu_slice = GPUSlice(sim, profile("7g"), ShareMode.MPS)
        done = []
        sim.at(0.0, lambda: gpu_slice.submit(
            job(work=0.2, on_complete=lambda j, t: done.append(t))
        ))
        # Half the work done at 2x slowdown onset: 0.1 remaining runs at
        # half rate -> finishes at 0.1 + 0.2 = 0.3.
        sim.at(0.1, lambda: gpu_slice.set_slowdown(2.0))
        sim.run()
        assert done[0].finished_at == pytest.approx(0.3)

    def test_lifting_slowdown_restores_rate(self):
        sim = Simulator()
        gpu_slice = GPUSlice(sim, profile("7g"), ShareMode.MPS)
        gpu_slice.set_slowdown(2.0)
        done = []
        sim.at(0.0, lambda: gpu_slice.submit(
            job(work=0.2, on_complete=lambda j, t: done.append(t))
        ))
        sim.at(0.2, lambda: gpu_slice.set_slowdown(1.0))  # half done
        sim.run()
        assert done[0].finished_at == pytest.approx(0.3)

    def test_rejects_speedup(self):
        sim = Simulator()
        gpu_slice = GPUSlice(sim, profile("7g"), ShareMode.MPS)
        with pytest.raises(SimulationError):
            gpu_slice.set_slowdown(0.5)


class TestDeviceSlowdown:
    def test_applies_to_all_slices(self):
        sim = Simulator()
        gpu = GPU(sim, GEOMETRY_4G_3G)
        gpu.set_slowdown(3.0)
        assert gpu.slowdown == 3.0
        assert all(s.slowdown == 3.0 for s in gpu.slices)
        gpu.set_slowdown(1.0)
        assert all(s.slowdown == 1.0 for s in gpu.slices)

    def test_overlay_survives_reconfiguration(self):
        sim = Simulator()
        gpu = GPU(sim, GEOMETRY_FULL, reconfig_seconds=1.0)
        gpu.set_slowdown(2.0)
        sim.at(0.0, lambda: gpu.reconfigure(GEOMETRY_4G_3G))
        sim.run()
        assert gpu.geometry == GEOMETRY_4G_3G
        assert all(s.slowdown == 2.0 for s in gpu.slices)
