"""Tests for the multi-part MIG device models (A100-40/80, H100)."""

import pytest

from repro.errors import GPUError
from repro.gpu import (
    A100_40GB,
    A100_80GB,
    GEOMETRY_4G_2G_1G,
    GEOMETRY_FULL,
    GPU,
    H100_80GB,
    SliceJob,
    get_device_model,
)
from repro.gpu.device_models import geometry_profiles
from repro.simulation import Simulator


class TestDeviceModels:
    def test_lookup(self):
        assert get_device_model("a100") is A100_40GB
        assert get_device_model("A100-80GB") is A100_80GB
        assert get_device_model("h100") is H100_80GB
        with pytest.raises(GPUError):
            get_device_model("tpu-v5")

    def test_h100_doubles_memory_keeps_fractions(self):
        for kind in ("7g", "4g", "3g", "2g", "1g"):
            a100 = A100_40GB.profile(kind)
            h100 = H100_80GB.profile(kind)
            assert h100.memory_gb == pytest.approx(2 * a100.memory_gb)
            assert h100.compute_fraction == a100.compute_fraction
            assert h100.bandwidth_fraction == a100.bandwidth_fraction
            assert h100.max_count == a100.max_count

    def test_totals(self):
        assert A100_40GB.total_memory_gb == 40.0
        assert H100_80GB.total_memory_gb == 80.0
        assert H100_80GB.profile("7g").memory_gb == 80.0
        assert H100_80GB.profile("1g").memory_gb == 10.0

    def test_geometry_profiles_resolve_per_device(self):
        profiles = geometry_profiles(GEOMETRY_4G_2G_1G.kinds, H100_80GB)
        assert [p.memory_gb for p in profiles] == [40.0, 20.0, 10.0]


class TestGpuOnH100:
    def test_slices_carry_h100_capacity(self):
        sim = Simulator()
        gpu = GPU(sim, GEOMETRY_4G_2G_1G, device_model=H100_80GB)
        capacities = sorted(s.profile.memory_gb for s in gpu.slices)
        assert capacities == [10.0, 20.0, 40.0]

    def test_double_memory_doubles_packing(self):
        def concurrent(device_model):
            sim = Simulator()
            gpu = GPU(sim, GEOMETRY_FULL, device_model=device_model)
            gpu_slice = gpu.slices[0]
            for _ in range(8):
                gpu_slice.submit(
                    SliceJob(
                        work=10.0,
                        rdf=1.0,
                        fbr=0.0,
                        memory_gb=10.0,
                        on_complete=lambda j, t: None,
                    )
                )
            return len(gpu_slice.running_jobs)

        assert concurrent(A100_40GB) == 4  # 40 GB / 10 GB
        assert concurrent(H100_80GB) == 8  # 80 GB / 10 GB

    def test_memory_utilization_normalized_to_device_total(self):
        sim = Simulator()
        gpu = GPU(sim, GEOMETRY_FULL, device_model=H100_80GB)
        sim.at(0.0, lambda: gpu.slices[0].submit(
            SliceJob(work=1.0, rdf=1.0, fbr=0.0, memory_gb=40.0,
                     on_complete=lambda j, t: None)))
        sim.run(until=1.0)
        # 40 GB held for the full window on an 80 GB part: 50%.
        assert gpu.utilization().memory_fraction == pytest.approx(0.5)

    def test_reconfigure_preserves_device_model(self):
        sim = Simulator()
        gpu = GPU(sim, GEOMETRY_FULL, device_model=H100_80GB,
                  reconfig_seconds=1.0)
        gpu.reconfigure(GEOMETRY_4G_2G_1G)
        sim.run()
        assert max(s.profile.memory_gb for s in gpu.slices) == 40.0


class TestPlatformOnH100:
    def test_experiment_runs_on_h100(self):
        from repro.experiments import ExperimentConfig, run_scheme

        config = ExperimentConfig(
            strict_model="resnet50",
            gpu_device="h100",
            trace="constant",
            duration=30.0,
            warmup=15.0,
            drain=30.0,
            n_nodes=2,
            offered_load=0.5,
        )
        result = run_scheme("protean", config)
        # Smoke-level check: the full pipeline works on the H100 part.
        assert result.summary.requests_served > 0
        assert result.summary.slo_compliance >= 0.7
        assert result.summary.dropped_requests == 0

    def test_h100_packs_more_be_memory(self):
        # The Algorithm 2 decision uses device-specific capacities: a BE
        # demand that overflows the A100's small slices fits the H100's.
        from repro.core.reconfigurator import decide_geometry
        from repro.gpu.mig import GEOMETRY_4G_2G_1G, GEOMETRY_4G_3G
        from repro.workloads import get_model
        from repro.workloads.scaling import scale_model

        dpn = scale_model(get_model("dpn92"), 4 / 128)
        # 8 requests → 2 batches × 11 GB = 22 GB of BE demand.
        assert decide_geometry(8.0, dpn, device=A100_40GB) == GEOMETRY_4G_3G
        assert decide_geometry(8.0, dpn, device=H100_80GB) == GEOMETRY_4G_2G_1G
