"""Unit tests for MIG profiles and geometry validation (Table 2)."""

import pytest

from repro.errors import InvalidGeometryError
from repro.gpu.mig import (
    GEOMETRY_4G_2G_1G,
    GEOMETRY_4G_3G,
    MIG_PROFILES,
    Geometry,
    SliceKind,
    enumerate_geometries,
    is_valid_geometry,
    profile,
)


def test_table2_profile_fractions():
    g7 = profile("7g")
    assert g7.compute_fraction == 1.0
    assert g7.memory_gb == 40.0
    assert g7.cache_fraction == 1.0

    g4 = profile("4g")
    assert g4.compute_fraction == pytest.approx(4 / 7)
    assert g4.memory_gb == 20.0
    assert g4.cache_fraction == pytest.approx(4 / 8)

    g3 = profile("3g")
    assert g3.compute_fraction == pytest.approx(3 / 7)
    assert g3.memory_gb == 20.0
    assert g3.cache_fraction == pytest.approx(4 / 8)

    g2 = profile("2g")
    assert g2.compute_fraction == pytest.approx(2 / 7)
    assert g2.memory_gb == 10.0
    assert g2.cache_fraction == pytest.approx(2 / 8)

    g1 = profile("1g")
    assert g1.compute_fraction == pytest.approx(1 / 7)
    assert g1.memory_gb == 5.0
    assert g1.cache_fraction == pytest.approx(1 / 8)


def test_table2_max_counts():
    expected = {"7g": 1, "4g": 1, "3g": 2, "2g": 3, "1g": 7}
    for kind, count in expected.items():
        assert MIG_PROFILES[SliceKind(kind)].max_count == count


@pytest.mark.parametrize(
    "kinds",
    [
        ["7g"],
        ["4g", "3g"],
        ["4g", "2g", "1g"],
        ["3g", "3g"],
        ["2g", "2g", "2g", "1g"],
        ["1g"] * 7,
        ["4g"],
        ["2g", "1g"],
    ],
)
def test_valid_geometries(kinds):
    assert is_valid_geometry(kinds)
    Geometry(kinds)  # does not raise


@pytest.mark.parametrize(
    "kinds",
    [
        [],
        ["7g", "1g"],              # 7g must stand alone
        ["4g", "4g"],              # max one 4g
        ["3g", "3g", "3g"],        # max two 3g
        ["2g", "2g", "2g", "2g"],  # max three 2g
        ["4g", "3g", "1g"],        # 8 compute units > 7
        ["3g", "3g", "1g"],        # 9 memory slices > 8
        ["1g"] * 8,                # count cap (and compute)
    ],
)
def test_invalid_geometries(kinds):
    assert not is_valid_geometry(kinds)
    with pytest.raises(InvalidGeometryError):
        Geometry(kinds)


def test_geometry_is_unordered_multiset():
    assert Geometry(["3g", "4g"]) == Geometry(["4g", "3g"])
    assert hash(Geometry(["3g", "4g"])) == hash(Geometry(["4g", "3g"]))
    assert Geometry(["4g", "3g"]) != Geometry(["4g", "2g", "1g"])


def test_geometry_orders_slices_largest_first():
    geometry = Geometry(["1g", "4g", "2g"])
    assert [p.kind.value for p in geometry.profiles] == ["4g", "2g", "1g"]


def test_geometry_totals():
    geometry = GEOMETRY_4G_3G
    assert geometry.compute_units == 7
    assert geometry.memory_units == 8
    assert geometry.total_memory_gb == 40.0
    assert GEOMETRY_4G_2G_1G.total_memory_gb == 35.0


def test_enumerate_geometries_contains_paper_geometries():
    geometries = enumerate_geometries()
    assert GEOMETRY_4G_3G in geometries
    assert GEOMETRY_4G_2G_1G in geometries
    assert Geometry(["7g"]) in geometries
    # All enumerated geometries are valid and unique.
    assert len(set(geometries)) == len(geometries)
    for geometry in geometries:
        assert is_valid_geometry(geometry.kinds)


def test_enumerate_geometries_is_deterministic():
    assert enumerate_geometries() == enumerate_geometries()
