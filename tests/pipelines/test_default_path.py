"""Pin: pipeline machinery leaves the single-stage default path bit-identical.

With ``pipelines=None`` (the default) none of the pipeline subsystem is
constructed: no runtime hooks on the platform observers, no workflow
attributes on spans, no extra RNG draws, no pipeline report. The proof
is the same pinned run the tenancy subsystem uses — summary row, extras,
and the SHA-256 digest of the full span log captured *before* either
subsystem landed. The digest is the strong form: a single new span
attribute or reordered event on the default path changes it.

If this drifts, the default path is no longer the pre-pipelines
platform — find the leak, don't re-pin.
"""

import pytest

from repro.experiments.runner import run_scheme
from tests.tenancy.test_default_path import (
    PINNED_CONFIG,
    PINNED_EXTRAS,
    PINNED_ROW,
    PINNED_SPAN_DIGEST,
)


@pytest.fixture(scope="module")
def result():
    return run_scheme("protean", PINNED_CONFIG)


def test_default_path_matches_pre_pipelines_pin(result):
    assert result.summary.row() == PINNED_ROW
    assert dict(result.extras) == PINNED_EXTRAS
    assert result.detach().tracer.digest() == PINNED_SPAN_DIGEST


def test_pipeline_surface_stays_dark(result):
    assert result.pipelines is None
    assert not any(key.startswith("pipeline_") for key in result.extras)
    assert result.platform.pipelines is None


def test_default_records_carry_no_workflow_lineage(result):
    assert result.measured  # the run measured something
    assert all(r.workflow is None and r.stage is None for r in result.measured)
