"""PipelineWorkload: root-stream generation and load accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pipelines import PipelineSpec, PipelineWorkload, StageSpec


def chain(policy="pipeline-aware"):
    return PipelineSpec(
        name="chain",
        stages=(
            StageSpec(name="a", model="resnet50"),
            StageSpec(name="b", model="resnet18", parents=("a",)),
            StageSpec(name="c", model="googlenet", parents=("b",)),
        ),
        deadline_policy=policy,
    )


def fanout():
    return PipelineSpec(
        name="fanout",
        stages=(
            StageSpec(name="left", model="resnet50"),
            StageSpec(name="right", model="resnet18"),
            StageSpec(name="join", model="googlenet", parents=("left", "right")),
        ),
    )


def make_workload(spec=None, **kwargs):
    return PipelineWorkload(spec or chain(), scale=8 / 128, **kwargs)


class TestConstruction:
    def test_rejects_nonpositive_multiplier(self):
        with pytest.raises(ConfigurationError):
            make_workload(slo_multiplier=0.0)

    def test_rejects_out_of_range_strict_fraction(self):
        with pytest.raises(ConfigurationError):
            make_workload(strict_fraction=1.5)


class TestLoad:
    def test_work_per_workflow_sums_stage_work(self):
        workload = make_workload()
        compiled = workload.compiled
        expected = sum(
            compiled.latency[n] / compiled.profiles[n].batch_size
            for n in compiled.order
        )
        assert workload.work_per_workflow() == pytest.approx(expected)

    def test_workflow_rate_scales_with_nodes_and_load(self):
        workload = make_workload()
        base = workload.workflow_rate(1.0, 2)
        assert workload.workflow_rate(2.0, 2) == pytest.approx(2 * base)
        assert workload.workflow_rate(1.0, 4) == pytest.approx(2 * base)

    def test_profiles_deduplicate_by_model(self):
        spec = PipelineSpec(
            name="twins",
            stages=(
                StageSpec(name="a", model="resnet50"),
                StageSpec(name="b", model="resnet50", parents=("a",)),
            ),
        )
        workload = make_workload(spec)
        assert len(workload.profiles()) == 1

    def test_end_deadline(self):
        workload = make_workload(slo_multiplier=3.0)
        assert workload.end_deadline(2.0) == pytest.approx(
            2.0 + 3.0 * workload.compiled.critical_path
        )


class TestRootSpecs:
    def test_one_root_spec_per_workflow_on_a_chain(self):
        workload = make_workload()
        specs = workload.root_specs(
            [0.0, 0.5, 1.0], np.random.default_rng(0)
        )
        assert len(specs) == 3
        assert [s.workflow for s in specs] == ["wf0", "wf1", "wf2"]
        assert all(s.stage == "a" for s in specs)

    def test_multi_root_dag_emits_every_root_per_workflow(self):
        workload = make_workload(fanout())
        specs = workload.root_specs([0.0, 1.0], np.random.default_rng(0))
        assert len(specs) == 4
        by_wf = {}
        for s in specs:
            by_wf.setdefault(s.workflow, set()).add(s.stage)
        assert by_wf == {"wf0": {"left", "right"}, "wf1": {"left", "right"}}

    def test_strictness_is_per_workflow_not_per_root(self):
        workload = make_workload(fanout())
        specs = workload.root_specs(
            np.arange(50, dtype=float), np.random.default_rng(7)
        )
        by_wf = {}
        for s in specs:
            by_wf.setdefault(s.workflow, set()).add(s.strict)
        assert all(len(flags) == 1 for flags in by_wf.values())

    def test_deterministic_under_fixed_rng(self):
        arrivals = np.linspace(0.0, 10.0, 40)
        first = make_workload().root_specs(arrivals, np.random.default_rng(3))
        second = make_workload().root_specs(arrivals, np.random.default_rng(3))
        assert first == second

    def test_arrivals_are_sorted_into_order(self):
        workload = make_workload()
        specs = workload.root_specs([2.0, 0.5, 1.0], np.random.default_rng(0))
        assert [s.arrival for s in specs] == [0.5, 1.0, 2.0]

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            make_workload().root_specs([-0.1, 1.0], np.random.default_rng(0))

    def test_naive_root_multiplier_is_base(self):
        workload = make_workload(chain(policy="naive"), slo_multiplier=4.0)
        specs = workload.root_specs([0.0], np.random.default_rng(0))
        assert specs[0].slo_multiplier == pytest.approx(4.0)

    def test_aware_off_critical_root_is_looser(self):
        workload = make_workload(fanout(), slo_multiplier=3.0)
        compiled = workload.compiled
        light_root = min(
            ("left", "right"), key=lambda r: compiled.downstream[r]
        )
        specs = workload.root_specs([0.0], np.random.default_rng(0))
        light = next(s for s in specs if s.stage == light_root)
        assert light.slo_multiplier > 3.0
