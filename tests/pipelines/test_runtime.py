"""End-to-end pipeline runs through run_scheme: both policies, audited.

These are short real simulations (seconds of wall time) — the cheapest
way to prove the whole loop holds together: workload generation → root
admission → stage completion → live child release → end-to-end
accounting, with the conservation auditor armed and silent.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.pipelines import PipelineSpec, StageSpec

CHAIN = PipelineSpec(
    name="mini-chain",
    stages=(
        StageSpec(name="front", model="resnet50"),
        StageSpec(name="back", model="resnet18", parents=("front",)),
    ),
)


def run(policy, **overrides):
    from dataclasses import replace

    kwargs = dict(
        pipelines=replace(CHAIN, deadline_policy=policy),
        trace="constant",
        duration=25.0,
        warmup=5.0,
        drain=60.0,
        n_nodes=2,
        offered_load=0.9,
        seed=5,
        audit=True,
        audit_fail_fast=True,
    )
    kwargs.update(overrides)
    return run_scheme("protean", ExperimentConfig(**kwargs))


@pytest.fixture(scope="module")
def aware_result():
    return run("pipeline-aware")


@pytest.fixture(scope="module")
def naive_result():
    return run("naive")


class TestReport:
    def test_report_attached(self, aware_result):
        report = aware_result.pipelines
        assert report is not None
        assert report.pipeline == "mini-chain"
        assert report.policy == "pipeline-aware"

    def test_workflows_measured_and_completed(self, aware_result):
        report = aware_result.pipelines
        assert report.workflows > 0
        assert report.completed == report.workflows  # drain long enough
        assert report.incomplete == 0

    def test_e2e_attainment_is_a_fraction(self, aware_result):
        report = aware_result.pipelines
        assert 0.0 <= report.e2e_attainment <= 1.0
        assert report.e2e_p99 >= report.e2e_p50 > 0.0

    def test_per_stage_rows_follow_topology(self, aware_result):
        report = aware_result.pipelines
        assert [row.stage for row in report.per_stage] == ["front", "back"]
        for row in report.per_stage:
            assert row.requests > 0
            assert row.p99 >= row.p50 > 0.0
            assert 0.0 <= row.stage_attainment <= 1.0
        # Every measured workflow pushed exactly one request per stage.
        front, back = report.per_stage
        assert front.requests == back.requests == report.workflows

    def test_stage_lookup(self, aware_result):
        report = aware_result.pipelines
        assert report.stage("back").model.startswith("resnet18")
        with pytest.raises(KeyError):
            report.stage("nope")

    def test_stats_and_extras(self, aware_result):
        stats = aware_result.pipelines.stats
        assert stats["workflows_started"] >= stats["workflows_completed"] > 0
        assert stats["stages_released"] > 0
        assert aware_result.extras["pipeline_workflows"] == (
            stats["workflows_started"]
        )
        assert (
            aware_result.extras["pipeline_rebudgets"] == stats["rebudgets"]
        )

    def test_audit_is_silent_on_a_clean_run(self, aware_result, naive_result):
        for result in (aware_result, naive_result):
            assert result.audit is not None
            assert result.audit.ok
            assert result.extras["audit_violations"] == 0


class TestPolicies:
    def test_aware_rebudgets_naive_does_not(self, aware_result, naive_result):
        assert aware_result.pipelines.stats["rebudgets"] > 0
        assert naive_result.pipelines.stats["rebudgets"] == 0

    def test_policies_measure_the_same_workflow_stream(
        self, aware_result, naive_result
    ):
        # Same seed, same DAG, same trace: the arms see identical arrival
        # streams — only deadlines (and hence ordering) differ.
        assert (
            aware_result.pipelines.workflows
            == naive_result.pipelines.workflows
        )
        assert (
            aware_result.pipelines.strict_workflows
            == naive_result.pipelines.strict_workflows
        )


class TestRuntimeGuards:
    def test_double_arm_refused(self):
        from repro.experiments.schemes import make_scheme
        from repro.pipelines import PipelineRuntime
        from repro.serverless.platform import PlatformConfig, ServerlessPlatform
        from repro.simulation import Simulator
        from repro.simulation.identity import reset_run_ids

        reset_run_ids()
        sim = Simulator()
        platform = ServerlessPlatform(
            sim, make_scheme("protean"), PlatformConfig(n_nodes=1)
        )
        runtime = PipelineRuntime(sim, platform, CHAIN, scale=8 / 128)
        runtime.arm()
        with pytest.raises(ConfigurationError):
            runtime.arm()

    def test_best_effort_workflow_has_no_deadline(self):
        from repro.pipelines import PipelineWorkload
        import numpy as np

        workload = PipelineWorkload(
            CHAIN, scale=8 / 128, strict_fraction=0.0
        )
        specs = workload.root_specs([0.0], np.random.default_rng(0))
        assert not specs[0].strict

    def test_nan_attainment_with_no_strict_load(self):
        result = run("pipeline-aware", strict_fraction=0.0, duration=10.0)
        assert math.isnan(result.pipelines.e2e_attainment)
        assert result.pipelines.stats["rebudgets"] == 0
