"""CLI plumbing for ``python -m repro pipelines``.

The scenario itself is exercised (and its numbers pinned) by
test_scenarios.py; here the heavy run is monkeypatched out so these
tests cover only the argument wiring: scenario choices, scheme
canonicalisation, ``--json`` to stdout and to a file, the jobs flag, and
the ConfigurationError → exit-code-2 contract.
"""

import json

import pytest

import repro.pipelines.scenarios as scenarios_mod
from repro.cli import main
from repro.errors import ConfigurationError
from repro.pipelines import ScenarioResult


@pytest.fixture
def fake_scenario(monkeypatch):
    """Replace the heavy scenario run with a canned result; record calls."""
    calls = []

    def fake(name, *, scheme="protean", seed=0, jobs=None):
        calls.append({"name": name, "scheme": scheme, "seed": seed, "jobs": jobs})
        result = ScenarioResult(name=name, scheme=scheme)
        result.rows = {"naive": {"cost_$": 1.0}, "pipeline-aware": {"cost_$": 1.0}}
        result.verdict = {
            "naive_e2e_attainment": 0.9,
            "aware_e2e_attainment": 0.95,
            "attainment_gap_points": 5.0,
            "equal_cost": True,
        }
        return result

    monkeypatch.setattr(scenarios_mod, "run_pipeline_scenario", fake)
    return calls


def test_pipelines_text_output(fake_scenario, capsys):
    assert main(["pipelines", "chain"]) == 0
    output = capsys.readouterr().out
    assert "scenario chain" in output
    assert "attainment_gap_points: 5.0" in output
    assert fake_scenario == [
        {"name": "chain", "scheme": "protean", "seed": 0, "jobs": 1}
    ]


def test_pipelines_json_to_stdout(fake_scenario, capsys):
    assert main(["pipelines", "ensemble", "--seed", "7", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "ensemble"
    assert payload["verdict"]["aware_e2e_attainment"] == 0.95
    assert fake_scenario[0]["seed"] == 7


def test_pipelines_json_to_file(fake_scenario, capsys, tmp_path):
    target = tmp_path / "out.json"
    assert main(["pipelines", "chain", "--json", str(target)]) == 0
    assert f"wrote {target}" in capsys.readouterr().out
    payload = json.loads(target.read_text())
    assert payload["scenario"] == "chain"


def test_pipelines_jobs_flag_forwarded(fake_scenario, capsys):
    assert main(["pipelines", "branchy", "--jobs", "4"]) == 0
    assert fake_scenario[0]["jobs"] == 4


def test_pipelines_rejects_unknown_scenario():
    with pytest.raises(SystemExit):  # argparse choices
        main(["pipelines", "no-such-scenario"])


def test_pipelines_configuration_error_exits_2(monkeypatch, capsys):
    def explode(name, **kwargs):
        raise ConfigurationError("broken pipeline config")

    monkeypatch.setattr(scenarios_mod, "run_pipeline_scenario", explode)
    assert main(["pipelines", "chain"]) == 2
    assert "broken pipeline config" in capsys.readouterr().err
