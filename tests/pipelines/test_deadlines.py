"""Deadline-splitting math: naive vs pipeline-aware budgets.

Pure-function tests — no simulator. The one structural fact worth
pinning: on the nominal schedule the aware split *telescopes* to the
end-to-end deadline along a chain, so the two policies only diverge once
a workflow runs off-plan.
"""

import pytest

from repro.pipelines import (
    REBUDGET_EPS,
    PipelineSpec,
    StageSpec,
    aware_stage_deadline,
    compile_pipeline,
    is_rebudget,
    naive_stage_deadline,
    root_slo_multiplier,
)


def chain(policy="pipeline-aware"):
    return PipelineSpec(
        name="chain",
        stages=(
            StageSpec(name="a", model="resnet50"),
            StageSpec(name="b", model="resnet18", parents=("a",)),
            StageSpec(name="c", model="googlenet", parents=("b",)),
        ),
        deadline_policy=policy,
    )


def branchy(policy="pipeline-aware"):
    return PipelineSpec(
        name="branchy",
        stages=(
            StageSpec(name="root", model="mobilenet"),
            StageSpec(name="heavy", model="vgg19", parents=("root",)),
            StageSpec(name="light", model="resnet18", parents=("root",)),
            StageSpec(name="join", model="googlenet", parents=("heavy", "light")),
        ),
        deadline_policy=policy,
    )


class TestNaive:
    def test_formula(self):
        assert naive_stage_deadline(10.0, 0.2, 3.0) == pytest.approx(10.6)

    def test_independent_of_history(self):
        # A late release just shifts the budget — the naive policy never
        # looks at the end-to-end deadline.
        early = naive_stage_deadline(1.0, 0.2, 3.0)
        late = naive_stage_deadline(9.0, 0.2, 3.0)
        assert late - early == pytest.approx(8.0)


class TestAware:
    def test_on_schedule_matches_naive(self):
        # Release exactly when the nominal plan says (remaining slack ==
        # M × downstream): proportional split reproduces M × L_s.
        latency, downstream, mult = 0.25, 1.0, 3.0
        release = 5.0
        end_deadline = release + mult * downstream
        aware = aware_stage_deadline(release, end_deadline, latency, downstream)
        assert aware == pytest.approx(
            naive_stage_deadline(release, latency, mult)
        )

    def test_late_release_tightens(self):
        latency, downstream = 0.25, 1.0
        end_deadline = 8.0
        on_time = aware_stage_deadline(5.0, end_deadline, latency, downstream)
        behind = aware_stage_deadline(6.5, end_deadline, latency, downstream)
        assert behind - 6.5 < on_time - 5.0  # tighter per-stage budget

    def test_early_release_loosens(self):
        latency, downstream = 0.25, 1.0
        end_deadline = 8.0
        on_time = aware_stage_deadline(5.0, end_deadline, latency, downstream)
        ahead = aware_stage_deadline(4.0, end_deadline, latency, downstream)
        assert ahead - 4.0 > on_time - 5.0

    def test_latency_floor_for_hopeless_stage(self):
        # Release is already past the end-to-end deadline: the budget is
        # negative, but the stage still gets a schedulable L_s window.
        latency = 0.25
        deadline = aware_stage_deadline(10.0, 8.0, latency, 1.0)
        assert deadline == pytest.approx(10.0 + latency)

    def test_telescopes_to_end_deadline_on_chain(self):
        compiled = compile_pipeline(chain())
        mult = 3.0
        arrival = 2.0
        end_deadline = arrival + mult * compiled.critical_path
        release = arrival
        for name in compiled.order:  # a → b → c, nominal execution
            deadline = aware_stage_deadline(
                release,
                end_deadline,
                compiled.latency[name],
                compiled.downstream[name],
            )
            release = deadline  # each stage uses its entire budget
        assert release == pytest.approx(end_deadline)


class TestRootMultiplier:
    def test_naive_keeps_base(self):
        compiled = compile_pipeline(chain(policy="naive"))
        assert root_slo_multiplier(compiled, "a", 3.0) == pytest.approx(3.0)

    def test_aware_critical_root_keeps_base(self):
        # A single-root chain's root is on the critical path:
        # downstream(root) == critical_path, so the ratio is 1.
        compiled = compile_pipeline(chain())
        assert root_slo_multiplier(compiled, "a", 3.0) == pytest.approx(3.0)

    def test_aware_ratio_is_critical_path_over_downstream(self):
        compiled = compile_pipeline(branchy())
        expected = 3.0 * compiled.critical_path / compiled.downstream["root"]
        assert root_slo_multiplier(compiled, "root", 3.0) == pytest.approx(
            expected
        )


class TestRebudget:
    def test_nominal_release_is_not_a_rebudget(self):
        downstream, mult = 0.8, 3.0
        release = 4.0
        end_deadline = release + mult * downstream
        assert not is_rebudget(release, end_deadline, downstream, mult)

    def test_off_plan_release_is_a_rebudget(self):
        downstream, mult = 0.8, 3.0
        end_deadline = 4.0 + mult * downstream
        assert is_rebudget(4.1, end_deadline, downstream, mult)

    def test_tolerance_is_relative(self):
        # A deviation below the relative epsilon never counts.
        downstream, mult = 0.8, 3.0
        release = 4.0
        end_deadline = release + mult * downstream
        wiggle = REBUDGET_EPS * 0.1 * (end_deadline - release)
        assert not is_rebudget(
            release + wiggle, end_deadline + wiggle, downstream, mult
        )
