"""PipelineSpec/StageSpec validation, DAG compilation, serialisation.

Misconfiguration is a first-class surface here: cycles, unknown models,
zero-stage DAGs, duplicate stages, and unknown parents must all arrive
as :class:`ConfigurationError` with messages naming the offender — the
CLI maps that one exception type to exit code 2.
"""

import pytest

from repro.errors import ConfigurationError
from repro.pipelines import (
    DEADLINE_POLICIES,
    DEFAULT_HANDOFF_LATENCY,
    PIPELINE_SCHEMA_VERSION,
    PipelineSpec,
    StageSpec,
    compile_pipeline,
)


def chain(policy="pipeline-aware", **overrides):
    kwargs = dict(
        name="chain",
        stages=(
            StageSpec(name="a", model="resnet50"),
            StageSpec(name="b", model="resnet18", parents=("a",)),
            StageSpec(name="c", model="googlenet", parents=("b",)),
        ),
        deadline_policy=policy,
    )
    kwargs.update(overrides)
    return PipelineSpec(**kwargs)


def diamond():
    return PipelineSpec(
        name="diamond",
        stages=(
            StageSpec(name="root", model="mobilenet"),
            StageSpec(name="left", model="resnet50", parents=("root",)),
            StageSpec(name="right", model="resnet18", parents=("root",)),
            StageSpec(name="join", model="googlenet", parents=("left", "right")),
        ),
    )


class TestStageSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            StageSpec(name="", model="resnet50")

    def test_rejects_duplicate_parents(self):
        with pytest.raises(ConfigurationError):
            StageSpec(name="b", model="resnet50", parents=("a", "a"))

    def test_rejects_self_parent(self):
        with pytest.raises(ConfigurationError):
            StageSpec(name="a", model="resnet50", parents=("a",))

    def test_round_trips(self):
        stage = StageSpec(name="b", model="resnet18", parents=("a",))
        assert StageSpec.from_dict(stage.to_dict()) == stage

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            StageSpec.from_dict(
                {"name": "a", "model": "resnet50", "weight": 2}
            )


class TestPipelineSpecValidation:
    def test_zero_stage_dag_rejected(self):
        with pytest.raises(ConfigurationError, match="zero-stage"):
            PipelineSpec(name="empty", stages=())

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            PipelineSpec(
                name="dup",
                stages=(
                    StageSpec(name="a", model="resnet50"),
                    StageSpec(name="a", model="resnet18"),
                ),
            )

    def test_unknown_parent_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            PipelineSpec(
                name="dangling",
                stages=(
                    StageSpec(name="a", model="resnet50"),
                    StageSpec(name="b", model="resnet18", parents=("ghost",)),
                ),
            )

    def test_unknown_model_becomes_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no-such-model"):
            PipelineSpec(
                name="bad-model",
                stages=(StageSpec(name="a", model="no-such-model"),),
            )

    def test_cycle_rejected(self):
        with pytest.raises(ConfigurationError, match="cycle"):
            PipelineSpec(
                name="loop",
                stages=(
                    StageSpec(name="a", model="resnet50", parents=("b",)),
                    StageSpec(name="b", model="resnet18", parents=("a",)),
                ),
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            chain(policy="clairvoyant")

    def test_negative_handoff_rejected(self):
        with pytest.raises(ConfigurationError):
            chain(handoff_latency=-0.001)

    def test_policies_are_the_documented_pair(self):
        assert DEADLINE_POLICIES == ("naive", "pipeline-aware")

    def test_default_handoff_applied(self):
        assert chain().handoff_latency == DEFAULT_HANDOFF_LATENCY


class TestGraphQueries:
    def test_chain_topology(self):
        spec = chain()
        assert spec.roots() == ("a",)
        assert spec.sinks() == ("c",)
        assert spec.children()["a"] == ("b",)
        assert spec.topological() == ("a", "b", "c")

    def test_diamond_topology(self):
        spec = diamond()
        assert spec.roots() == ("root",)
        assert spec.sinks() == ("join",)
        assert set(spec.children()["root"]) == {"left", "right"}
        order = spec.topological()
        assert order.index("root") < order.index("left") < order.index("join")
        assert order.index("root") < order.index("right") < order.index("join")


class TestCompiledPipeline:
    def test_chain_downstream_telescopes(self):
        compiled = compile_pipeline(chain())
        lat = compiled.latency
        assert compiled.downstream["c"] == pytest.approx(lat["c"])
        assert compiled.downstream["b"] == pytest.approx(lat["b"] + lat["c"])
        assert compiled.downstream["a"] == pytest.approx(
            lat["a"] + lat["b"] + lat["c"]
        )
        assert compiled.critical_path == pytest.approx(
            compiled.downstream["a"]
        )

    def test_diamond_critical_path_takes_the_slower_branch(self):
        compiled = compile_pipeline(diamond())
        lat = compiled.latency
        slow = max(lat["left"], lat["right"])
        assert compiled.downstream["root"] == pytest.approx(
            lat["root"] + slow + lat["join"]
        )

    def test_scale_shrinks_batch_size_not_structure(self):
        # scale_model reduces per-request work via the batch size; the
        # profiled full-batch latency (the deadline unit) is unchanged.
        base = compile_pipeline(chain(), scale=1.0)
        scaled = compile_pipeline(chain(), scale=8 / 128)
        assert scaled.order == base.order
        for name in base.latency:
            assert scaled.latency[name] == base.latency[name]
            assert (
                scaled.profiles[name].batch_size
                < base.profiles[name].batch_size
            )


class TestSerialisation:
    def test_round_trips(self):
        for spec in (chain(), chain(policy="naive"), diamond()):
            assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_payload_is_versioned(self):
        assert chain().to_dict()["version"] == PIPELINE_SCHEMA_VERSION

    def test_newer_schema_refused(self):
        payload = chain().to_dict()
        payload["version"] = PIPELINE_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            PipelineSpec.from_dict(payload)

    def test_unknown_keys_refused(self):
        payload = chain().to_dict()
        payload["retries"] = 3
        with pytest.raises(ConfigurationError, match="retries"):
            PipelineSpec.from_dict(payload)

    def test_rides_in_experiment_config(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(pipelines=chain())
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.pipelines == chain()


class TestConfigGuards:
    def test_pipelines_plus_tenants_refused(self):
        from repro.experiments.config import ExperimentConfig
        from repro.tenancy import Tenant, TenancySpec, TenantSet

        tenants = TenancySpec(tenant_set=TenantSet((Tenant("solo"),)))
        with pytest.raises(ConfigurationError, match="tenants"):
            ExperimentConfig(pipelines=chain(), tenants=tenants)

    def test_pipelines_plus_streaming_refused(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ConfigurationError, match="streaming"):
            ExperimentConfig(pipelines=chain(), streaming_metrics=True)

    def test_wrong_type_refused(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ConfigurationError, match="PipelineSpec"):
            ExperimentConfig(pipelines={"name": "chain"})
