"""Scenario regressions: pipeline-aware beats naive on the chain.

The chain test is the acceptance criterion of the pipelines issue,
stated as the paper-style claim: at equal cost (same fixed cluster, same
trace, same seed), pipeline-aware deadline splitting achieves *strictly
higher* end-to-end SLO attainment than naive per-stage splitting. The
scenario runs are the very configs the CLI executes (``python -m repro
pipelines chain``), so the CLI's quoted numbers are the numbers pinned
here. The exact attainments are pinned too: they are seed-deterministic,
and a silent drift in either arm means the deadline path changed.
"""

import pytest

from repro.errors import ConfigurationError
from repro.pipelines import SCENARIOS, run_pipeline_scenario, scenario_configs

#: Chain-scenario attainments at seed 0 (see the acceptance criterion).
PINNED_NAIVE = 0.9230769230769231
PINNED_AWARE = 0.941025641025641


@pytest.fixture(scope="module")
def chain():
    return run_pipeline_scenario("chain", seed=0)


class TestChainVerdict:
    def test_aware_strictly_beats_naive(self, chain):
        verdict = chain.verdict
        assert verdict["aware_e2e_attainment"] > verdict["naive_e2e_attainment"]
        assert verdict["attainment_gap_points"] > 0.0

    def test_attainments_are_pinned(self, chain):
        assert chain.verdict["naive_e2e_attainment"] == PINNED_NAIVE
        assert chain.verdict["aware_e2e_attainment"] == PINNED_AWARE

    def test_arms_are_equal_cost(self, chain):
        verdict = chain.verdict
        assert verdict["equal_cost"]
        assert verdict["naive_cost"] == verdict["aware_cost"] > 0.0

    def test_aware_arm_actually_rebudgeted(self, chain):
        assert chain.verdict["aware_rebudgets"] > 0
        assert chain.pipelines["naive"]["stats"]["rebudgets"] == 0

    def test_describe_renders_both_arms(self, chain):
        text = chain.describe()
        for label in ("naive", "pipeline-aware"):
            assert f"arm {label}:" in text
        assert "attainment_gap_points" in text

    def test_to_dict_is_json_safe(self, chain):
        import json

        payload = json.loads(json.dumps(chain.to_dict()))
        assert payload["scenario"] == "chain"
        assert set(payload["pipelines"]) == {"naive", "pipeline-aware"}


class TestScenarioSurface:
    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            scenario_configs("chains")  # spelling matters

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_configs_differ_only_in_policy(self, name):
        configs = scenario_configs(name, seed=3)
        assert set(configs) == {"naive", "pipeline-aware"}
        from dataclasses import replace

        naive, aware = configs["naive"], configs["pipeline-aware"]
        assert naive.pipelines.deadline_policy == "naive"
        assert aware.pipelines.deadline_policy == "pipeline-aware"
        # Everything else — DAG, trace, seed, cluster — is identical.
        assert replace(
            naive,
            pipelines=replace(naive.pipelines, deadline_policy="pipeline-aware"),
        ) == aware

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_configs_are_seed_deterministic(self, name):
        assert scenario_configs(name, seed=3) == scenario_configs(name, seed=3)


def test_parallel_fanout_is_bit_identical(chain):
    fanned = run_pipeline_scenario("chain", seed=0, jobs=4)
    assert fanned.rows == chain.rows
    assert fanned.pipelines == chain.pipelines
    assert fanned.verdict == chain.verdict
