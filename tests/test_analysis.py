"""Cross-validation: analytic queueing models vs the simulator.

These tests give the substrate an *external* check: classical M/G/1
theory must predict the simulated time-sharing scheme's queueing, and
the MPS capacity formula must predict where consolidation stops paying.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    consolidation_breakeven,
    erlang_c,
    mg1,
    mmc,
    mps_effective_capacity,
)
from repro.errors import SchedulingError


class TestMG1Theory:
    def test_pollaczek_khinchine_known_values(self):
        # M/M/1 (scv=1) at rho=0.5: W_q = rho/(1-rho) * s = 1.0 * s... :
        # W_q = 0.5 * 1.0 * 2 / (2 * 0.5) = 1.0 × service.
        prediction = mg1(arrival_rate=0.5, service_mean=1.0, service_scv=1.0)
        assert prediction.utilization == pytest.approx(0.5)
        assert prediction.mean_wait == pytest.approx(1.0)
        assert prediction.mean_response == pytest.approx(2.0)

    def test_deterministic_service_halves_waiting(self):
        md1 = mg1(0.5, 1.0, service_scv=0.0)
        mm1 = mg1(0.5, 1.0, service_scv=1.0)
        assert md1.mean_wait == pytest.approx(mm1.mean_wait / 2)

    def test_saturation_is_infinite(self):
        prediction = mg1(1.0, 1.0)
        assert math.isinf(prediction.mean_wait)
        assert math.isinf(prediction.response_percentile(0.99))

    def test_percentiles_monotone(self):
        prediction = mg1(7.0, 0.1, service_scv=0.5)  # rho = 0.7
        p50 = prediction.response_percentile(0.50)
        p90 = prediction.response_percentile(0.90)
        p99 = prediction.response_percentile(0.99)
        assert p50 < p90 < p99
        assert p50 >= 0.1  # never below the service time

    def test_validation(self):
        with pytest.raises(SchedulingError):
            mg1(-1.0, 1.0)
        with pytest.raises(SchedulingError):
            mg1(0.5, 0.0)
        with pytest.raises(SchedulingError):
            mg1(0.5, 1.0).response_percentile(1.5)


class TestMMCTheory:
    def test_erlang_c_known_value(self):
        # Textbook: c=2, a=1 (rho=0.5) → B = 1/5, C = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_single_server_reduces_to_mm1(self):
        mm1 = mg1(0.5, 1.0, service_scv=1.0)
        multi = mmc(0.5, 1.0, servers=1)
        assert multi.utilization == pytest.approx(mm1.utilization)
        assert multi.wait_probability == pytest.approx(0.5)  # C = rho
        assert multi.mean_wait == pytest.approx(mm1.mean_wait)
        assert multi.mean_response == pytest.approx(mm1.mean_response)

    def test_two_servers_known_values(self):
        # lambda=1, s=1, c=2: C = 1/3, W_q = C·s/(c−a) = 1/3.
        prediction = mmc(1.0, 1.0, servers=2)
        assert prediction.utilization == pytest.approx(0.5)
        assert prediction.wait_probability == pytest.approx(1.0 / 3.0)
        assert prediction.mean_wait == pytest.approx(1.0 / 3.0)
        assert prediction.mean_response == pytest.approx(4.0 / 3.0)

    def test_pooling_beats_split_queues(self):
        # A shared c=4 pool waits less than one M/M/1 at the same rho.
        pooled = mmc(3.2, 1.0, servers=4)
        split = mg1(0.8, 1.0, service_scv=1.0)
        assert pooled.utilization == pytest.approx(split.utilization)
        assert pooled.mean_wait < split.mean_wait

    def test_saturation_is_infinite(self):
        prediction = mmc(2.0, 1.0, servers=2)
        assert math.isinf(prediction.mean_wait)
        assert prediction.wait_tail(10.0) == 1.0
        assert math.isinf(prediction.response_percentile(0.99))

    def test_wait_tail_is_a_survival_function(self):
        prediction = mmc(3.0, 1.0, servers=4)
        assert prediction.wait_tail(0.0) == pytest.approx(
            prediction.wait_probability
        )
        assert prediction.wait_tail(1.0) > prediction.wait_tail(5.0) > 0.0

    def test_percentiles_monotone(self):
        prediction = mmc(6.0, 0.5, servers=4)  # rho = 0.75
        p50 = prediction.response_percentile(0.50)
        p90 = prediction.response_percentile(0.90)
        p99 = prediction.response_percentile(0.99)
        assert p50 <= p90 < p99
        assert p50 >= 0.5  # never below the service time

    def test_validation(self):
        with pytest.raises(SchedulingError):
            mmc(-1.0, 1.0, servers=2)
        with pytest.raises(SchedulingError):
            mmc(0.5, 0.0, servers=2)
        with pytest.raises(SchedulingError):
            mmc(0.5, 1.0, servers=0)
        with pytest.raises(SchedulingError):
            erlang_c(0, 1.0)
        with pytest.raises(SchedulingError):
            mmc(1.0, 1.0, servers=2).wait_tail(-1.0)
        with pytest.raises(SchedulingError):
            mmc(1.0, 1.0, servers=2).response_percentile(0.0)


class TestMpsCapacity:
    def test_linear_growth_until_breakeven(self):
        assert mps_effective_capacity(0.5, 1.0) == pytest.approx(1.0)
        assert mps_effective_capacity(0.5, 2.0) == pytest.approx(2.0)
        # Beyond 1/f = 2 co-residents, throughput is flat at 1/f.
        assert mps_effective_capacity(0.5, 4.0) == pytest.approx(2.0)
        assert consolidation_breakeven(0.5) == pytest.approx(2.0)

    def test_zero_fbr_scales_forever(self):
        assert mps_effective_capacity(0.0, 8.0) == pytest.approx(8.0)
        assert math.isinf(consolidation_breakeven(0.0))

    def test_validation(self):
        with pytest.raises(SchedulingError):
            mps_effective_capacity(-0.1, 1.0)
        with pytest.raises(SchedulingError):
            mps_effective_capacity(0.5, 0.0)


class TestTheoryVsSimulator:
    def _simulate_time_share_queue(self, arrival_rate, service_mean, seed=0):
        """Poisson arrivals into a single TIME_SHARE slice."""
        from repro.gpu.engine import GPUSlice, ShareMode, SliceJob
        from repro.gpu.mig import profile
        from repro.simulation import Simulator

        sim = Simulator(seed)
        gpu_slice = GPUSlice(sim, profile("7g"), ShareMode.TIME_SHARE)
        rng = np.random.default_rng(seed)
        waits = []

        def on_complete(job, timing):
            waits.append(timing.pending_time)

        t = 0.0
        for _ in range(3000):
            t += rng.exponential(1.0 / arrival_rate)
            sim.at(
                t,
                lambda: gpu_slice.submit(
                    SliceJob(
                        work=service_mean,
                        rdf=1.0,
                        fbr=0.0,
                        memory_gb=0.0,
                        on_complete=on_complete,
                    )
                ),
            )
        sim.run()
        # Discard the transient.
        return float(np.mean(waits[500:]))

    def _simulate_replica_pool(
        self, arrival_rate, service_mean, replicas, seed=0, jobs=3000
    ):
        """Poisson arrivals into ``replicas`` TIME_SHARE slices behind one
        shared FIFO dispatch queue — the multi-replica time-sharing shape
        the capacity planner models as M/M/c (exponential service)."""
        from collections import deque

        from repro.gpu.engine import GPUSlice, ShareMode, SliceJob
        from repro.gpu.mig import profile
        from repro.simulation import Simulator

        sim = Simulator(seed)
        slices = [
            GPUSlice(sim, profile("7g"), ShareMode.TIME_SHARE)
            for _ in range(replicas)
        ]
        idle = deque(range(replicas))
        queue = deque()
        rng = np.random.default_rng(seed)
        waits = []

        def dispatch(index, work, submitted_at):
            def on_complete(job, timing):
                # Wait = time in the shared queue plus any in-slice delay
                # (zero here: a slice only ever holds one job).
                waits.append(timing.finished_at - submitted_at - timing.execution_time)
                if queue:
                    dispatch(index, *queue.popleft())
                else:
                    idle.append(index)

            slices[index].submit(
                SliceJob(
                    work=work,
                    rdf=1.0,
                    fbr=0.0,
                    memory_gb=0.0,
                    on_complete=on_complete,
                )
            )

        def arrive(work):
            if idle:
                dispatch(idle.popleft(), work, sim.now)
            else:
                queue.append((work, sim.now))

        t = 0.0
        for _ in range(jobs):
            t += rng.exponential(1.0 / arrival_rate)
            work = rng.exponential(service_mean)
            sim.at(t, lambda w=work: arrive(w))
        sim.run()
        return float(np.mean(waits[500:]))

    @pytest.mark.parametrize("replicas,rho", [(2, 0.6), (4, 0.8)])
    def test_mmc_mean_wait_matches_replica_pool(self, replicas, rho):
        service = 0.1
        arrival = rho * replicas / service
        predicted = mmc(arrival, service, servers=replicas).mean_wait
        simulated = self._simulate_replica_pool(arrival, service, replicas)
        assert simulated == pytest.approx(predicted, rel=0.25)

    def test_mmc_wait_probability_matches_replica_pool(self):
        # With 2 replicas at rho=0.5, a third of arrivals should queue.
        from collections import deque

        from repro.gpu.engine import GPUSlice, ShareMode, SliceJob
        from repro.gpu.mig import profile
        from repro.simulation import Simulator

        replicas, service, arrival = 2, 0.1, 10.0
        sim = Simulator(1)
        slices = [
            GPUSlice(sim, profile("7g"), ShareMode.TIME_SHARE)
            for _ in range(replicas)
        ]
        idle = deque(range(replicas))
        queue = deque()
        rng = np.random.default_rng(1)
        delayed = []

        def dispatch(index, work):
            def on_complete(job, timing):
                if queue:
                    dispatch(index, queue.popleft())
                else:
                    idle.append(index)

            slices[index].submit(
                SliceJob(
                    work=work,
                    rdf=1.0,
                    fbr=0.0,
                    memory_gb=0.0,
                    on_complete=on_complete,
                )
            )

        def arrive(work):
            delayed.append(not idle)
            if idle:
                dispatch(idle.popleft(), work)
            else:
                queue.append(work)

        t = 0.0
        for _ in range(4000):
            t += rng.exponential(1.0 / arrival)
            work = rng.exponential(service)
            sim.at(t, lambda w=work: arrive(w))
        sim.run()
        predicted = mmc(arrival, service, servers=replicas).wait_probability
        assert float(np.mean(delayed[500:])) == pytest.approx(predicted, abs=0.06)

    @pytest.mark.parametrize("rho", [0.4, 0.6, 0.8])
    def test_md1_mean_wait_matches_simulation(self, rho):
        service = 0.1
        arrival = rho / service
        predicted = mg1(arrival, service, service_scv=0.0).mean_wait
        simulated = self._simulate_time_share_queue(arrival, service)
        assert simulated == pytest.approx(predicted, rel=0.25)

    def test_consolidation_collapse_matches_sensitivity_sweep(self):
        # VGG 19's 7g FBR is 0.64 → breakeven ≈ 1.6 co-residents; the
        # INFless sensitivity sweep (bench_sensitivity) shows compliance
        # degrading once consolidation exceeds ~2-4 — consistent with the
        # analytic prediction that packing deeper adds latency without
        # throughput.
        from repro.workloads import get_model

        fbr = get_model("vgg19").slice_fbr("7g")
        breakeven = consolidation_breakeven(fbr)
        assert 1.0 < breakeven < 4.0
        deep = mps_effective_capacity(fbr, 8.0)
        shallow = mps_effective_capacity(fbr, 2.0)
        assert deep == pytest.approx(shallow, rel=0.35)  # flat region
