"""End-to-end auditor tests: clean runs audit clean, reports behave.

The planted-bug suite proves each checker *can* fire; this module proves
the real platform *doesn't* trip them — across schemes, under fault
injection — and that enabling the audit observer leaves every metric
bit-identical (the same contract tracing honours).
"""

import json

import pytest

from repro.audit import (
    AuditReport,
    AuditViolation,
    CHECK_GROUPS,
    DEFAULT_AUDIT_INTERVAL,
)
from repro.experiments import ExperimentConfig, run_scheme
from repro.faults import demo_plan

QUICK = dict(duration=30.0, warmup=10.0, drain=60.0, n_nodes=2)


def test_clean_run_audits_clean():
    config = ExperimentConfig(audit=True, **QUICK)
    result = run_scheme("protean", config)
    report = result.audit
    assert isinstance(report, AuditReport)
    assert report.ok
    assert report.violations == ()
    assert report.sweeps >= 3
    assert report.admitted > 0
    assert report.completed + report.residual == report.admitted
    assert result.extras["audit_violations"] == 0


def test_unaudited_run_has_no_report():
    result = run_scheme("protean", ExperimentConfig(**QUICK))
    assert result.audit is None
    assert "audit_violations" not in result.extras


def test_fault_plan_run_audits_clean():
    config = ExperimentConfig(
        audit=True,
        procurement="hybrid",
        fault_plan=demo_plan(30.0),
        **QUICK,
    )
    result = run_scheme("protean", config)
    assert result.audit.ok, result.audit.describe()


def test_audit_is_a_pure_observer():
    base = ExperimentConfig(**QUICK)
    plain = run_scheme("protean", base)
    audited = run_scheme("protean", base.with_overrides(audit=True))
    assert audited.summary.row() == plain.summary.row()
    assert len(audited.measured) == len(plain.measured)


def test_audit_interval_is_configurable():
    config = ExperimentConfig(audit=True, audit_interval=2.0, **QUICK)
    result = run_scheme("protean", config)
    dense = result.audit.sweeps
    sparse = run_scheme(
        "protean", config.with_overrides(audit_interval=30.0)
    ).audit.sweeps
    assert dense > sparse


# ----------------------------------------------------------------------
# Report / violation value objects
# ----------------------------------------------------------------------
def _violation(check="memory.leak", time=3.0, subject="slice0"):
    return AuditViolation(
        check=check, message="planted", time=time, subject=subject
    )


def test_violation_group_and_describe():
    violation = _violation()
    assert violation.group == "memory"
    assert violation.group in CHECK_GROUPS
    text = violation.describe()
    assert "memory.leak" in text and "slice0" in text and "planted" in text


def test_report_by_group_and_describe():
    report = AuditReport(
        violations=(_violation(), _violation(check="clock.backwards")),
        sweeps=4,
        admitted=10,
        completed=9,
        residual=1,
    )
    assert not report.ok
    groups = report.by_group()
    assert groups["memory"] == 1 and groups["clock"] == 1
    text = report.describe()
    assert "memory.leak" in text and "clock.backwards" in text


def test_report_to_dict_is_json_safe():
    report = AuditReport(
        violations=(_violation(),), sweeps=2, admitted=5, completed=5
    )
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["sweeps"] == 2
    assert payload["violations"][0]["check"] == "memory.leak"


def test_empty_report_is_ok():
    assert AuditReport().ok
    assert AuditReport().by_group() == {}


def test_config_validates_audit_interval():
    with pytest.raises(ValueError):
        ExperimentConfig(audit_interval=0.0)
    assert DEFAULT_AUDIT_INTERVAL == 5.0
