"""Planted-bug tests for the pipeline workflow-lifecycle checkers.

Same discipline as test_planted_bugs.py: build a tiny live platform with
a real :class:`PipelineRuntime` armed *before* the auditor (the wiring
order the runner uses), plant exactly one workflow-lifecycle defect the
way a real bug would introduce it, and assert the matching
``pipeline.*`` check fires. The clean-path test at the bottom proves the
checkers stay silent on a correctly-ordered workflow — they fire on
bugs, not on pipelines.
"""

import pytest

from repro.audit import Auditor
from repro.errors import AuditViolationError
from repro.gpu.engine import JobTiming
from repro.pipelines import PipelineRuntime, PipelineSpec, StageSpec
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request, RequestBatch
from repro.simulation import Simulator
from repro.simulation.identity import reset_run_ids
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("resnet50"), 8 / 128)

SPEC = PipelineSpec(
    name="two-step",
    stages=(
        StageSpec(name="a", model="resnet50"),
        StageSpec(name="b", model="resnet18", parents=("a",)),
    ),
)


def make_rig(*, spec=SPEC, fail_fast=False):
    """Live platform + armed runtime + armed auditor (runtime first)."""
    reset_run_ids()
    sim = Simulator()
    from repro.core.protean import ProteanScheme

    scheme = ProteanScheme(enable_reconfigurator=False, enable_autoscaler=False)
    platform = ServerlessPlatform(
        sim, scheme, PlatformConfig(n_nodes=2, cold_start_seconds=1.0)
    )
    platform.provision_initial()
    runtime = None
    if spec is not None:
        runtime = PipelineRuntime(sim, platform, spec, scale=8 / 128)
        runtime.arm()
    auditor = Auditor(sim, platform, fail_fast=fail_fast)
    auditor.arm()
    return sim, platform, runtime, auditor


def checks(auditor) -> list[str]:
    return [v.check for v in auditor.violations]


def stage_request(workflow, stage, *, arrival=0.0, strict=True) -> Request:
    return Request(
        model=MODEL,
        strict=strict,
        arrival=arrival,
        deadline=arrival + 1.0 if strict else None,
        workflow=workflow,
        stage=stage,
    )


def complete(platform, request, finished_at=0.2) -> None:
    batch = RequestBatch(
        request.model,
        strict=request.strict,
        created_at=request.arrival,
        tenant=request.tenant,
    )
    batch.add(request)
    timing = JobTiming(
        submitted_at=0.0,
        started_at=0.1,
        finished_at=finished_at,
        work=0.1,
        rdf=1.0,
        slice_name="no-such-gpu/g7#0",
    )
    platform.record_batch_completion(batch, timing)


class TestPrematureStage:
    def test_child_admitted_before_parent_completes_fires(self):
        _sim, platform, _runtime, auditor = make_rig()
        platform.gateway.admit(stage_request("wf0", "a"))
        # planted: something admits the child while the parent is in
        # flight (a broken release path would do exactly this).
        platform.gateway.admit(stage_request("wf0", "b"))
        assert "pipeline.premature_stage" in checks(auditor)

    def test_fail_fast_raises(self):
        _sim, platform, _runtime, _auditor = make_rig(fail_fast=True)
        platform.gateway.admit(stage_request("wf0", "a"))
        with pytest.raises(AuditViolationError):
            platform.gateway.admit(stage_request("wf0", "b"))


class TestDoubleCompletion:
    def test_same_stage_completing_twice_fires(self):
        _sim, platform, _runtime, auditor = make_rig()
        first = stage_request("wf0", "a")
        second = stage_request("wf0", "a")
        # planted: the platform runs the same logical stage twice via two
        # distinct requests (e.g. a retry that was not cancelled).
        platform.gateway.admit(first)
        platform.gateway.admit(second)
        complete(platform, first)
        complete(platform, second, finished_at=0.3)
        assert "pipeline.double_completion" in checks(auditor)

    def test_runtime_does_not_walk_the_graph_twice(self):
        _sim, platform, runtime, _auditor = make_rig()
        first = stage_request("wf0", "a")
        second = stage_request("wf0", "a")
        platform.gateway.admit(first)
        platform.gateway.admit(second)
        complete(platform, first)
        complete(platform, second, finished_at=0.3)
        # The duplicate is flagged by the auditor, but the runtime must
        # release the child exactly once.
        assert runtime.workflows["wf0"].released == {"a", "b"}


class TestOrphanedStage:
    def test_lost_completion_orphans_the_child(self):
        sim, platform, runtime, auditor = make_rig()
        # planted: the runtime's completion hook is lost (an unhooked
        # observer), so the parent's completion never releases the child.
        platform.completion_observers.remove(runtime._on_batch_completion)
        root = stage_request("wf0", "a")
        platform.gateway.admit(root)
        complete(platform, root)
        sim.at(5.0, lambda: None)
        sim.run(until=5.0)
        auditor.finalize()
        assert "pipeline.orphaned_stage" in checks(auditor)

    def test_in_flight_handoff_is_not_an_orphan(self):
        sim, platform, _runtime, auditor = make_rig()
        root = stage_request("wf0", "a")
        platform.gateway.admit(root)
        complete(platform, root)
        # Finalize immediately: the handoff is still inside its grace
        # window, so the not-yet-admitted child is not an orphan.
        auditor.finalize()
        assert "pipeline.orphaned_stage" not in checks(auditor)


class TestUnknownWorkflow:
    def test_lineage_without_a_runtime_fires(self):
        _sim, platform, _runtime, auditor = make_rig(spec=None)
        platform.gateway.admit(stage_request("wf0", "a"))
        assert "pipeline.unknown_workflow" in checks(auditor)

    def test_stage_outside_the_dag_fires(self):
        _sim, platform, _runtime, auditor = make_rig()
        platform.gateway.admit(stage_request("wf0", "zz"))
        assert "pipeline.unknown_workflow" in checks(auditor)

    def test_non_root_stage_of_unseen_workflow_fires(self):
        _sim, platform, _runtime, auditor = make_rig()
        # planted: a child stage arrives for a workflow whose root the
        # platform never admitted (cross-run leakage, forged lineage...).
        platform.gateway.admit(stage_request("ghost", "b"))
        assert "pipeline.unknown_workflow" in checks(auditor)


class TestCleanWorkflow:
    def test_properly_ordered_workflow_raises_nothing(self):
        sim, platform, runtime, auditor = make_rig()
        released = []
        platform.request_observers.append(
            lambda request: released.append(request)
        )
        root = stage_request("wf0", "a")
        platform.gateway.admit(root)
        complete(platform, root)
        sim.run(until=1.0)  # let the handoff admit the child
        children = [r for r in released if r.stage == "b"]
        assert len(children) == 1
        complete(platform, children[0], finished_at=1.2)
        auditor.finalize()
        assert not [c for c in checks(auditor) if c.startswith("pipeline.")]
        assert runtime.workflows["wf0"].finished
