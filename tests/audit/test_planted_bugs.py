"""Planted-bug tests: every audit checker must fire on its target defect.

Each test builds a small live platform, arms an :class:`Auditor`, plants
exactly one class of invariant violation by reaching into the platform
the way a real bug would (double completion, leaked memory accounting,
forged geometry, zombie lifecycle states, ...), and asserts the matching
check name appears in the collected violations. Together they prove the
auditor is not vacuously green: a clean run passing means the invariants
actually hold, not that nobody is looking.
"""

from types import SimpleNamespace

import pytest

from repro.audit import Auditor
from repro.cluster.node import NodeState
from repro.cluster.pricing import VMTier
from repro.errors import AuditError, AuditViolationError
from repro.gpu.engine import JobTiming, SliceJob
from repro.gpu.mig import SliceKind
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request, RequestBatch
from repro.simulation import Simulator
from repro.simulation.identity import reset_run_ids
from repro.traces.mixing import RequestSpec
from repro.workloads import get_model
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("resnet50"), 8 / 128)


def make_rig(*, n_nodes=2, fail_fast=False, tenancy=None):
    """A tiny live platform with an armed auditor (no traffic yet)."""
    reset_run_ids()
    sim = Simulator()
    from repro.core.protean import ProteanScheme

    scheme = ProteanScheme(enable_reconfigurator=False, enable_autoscaler=False)
    platform = ServerlessPlatform(
        sim,
        scheme,
        PlatformConfig(n_nodes=n_nodes, cold_start_seconds=1.0),
        tenancy=tenancy,
    )
    platform.provision_initial()
    auditor = Auditor(sim, platform, fail_fast=fail_fast)
    auditor.arm()
    return sim, platform, auditor


def checks(auditor) -> list[str]:
    return [v.check for v in auditor.violations]


def make_request(arrival=0.0, tenant="default") -> Request:
    spec = RequestSpec(arrival=arrival, model=MODEL, strict=True, tenant=tenant)
    return Request.from_spec(spec)


def make_batch(request: Request) -> RequestBatch:
    batch = RequestBatch(
        MODEL, strict=True, created_at=request.arrival, tenant=request.tenant
    )
    batch.add(request)
    return batch


def make_timing(slice_name: str = "no-such-gpu/g7#0") -> JobTiming:
    return JobTiming(
        submitted_at=0.0,
        started_at=0.1,
        finished_at=0.2,
        work=0.1,
        rdf=1.0,
        slice_name=slice_name,
    )


def make_job(memory_gb=1.0, payload=None) -> SliceJob:
    return SliceJob(
        work=0.5,
        rdf=1.0,
        fbr=1.0,
        memory_gb=memory_gb,
        payload=payload,
        on_complete=lambda job, timing: None,
    )


# ----------------------------------------------------------------------
# request.* — lifecycle conservation
# ----------------------------------------------------------------------
class TestRequestChecks:
    def test_duplicate_admission_fires(self):
        _sim, platform, auditor = make_rig()
        request = make_request()
        platform.gateway.admit(request)
        platform.gateway.admit(request)  # planted: same request twice
        assert "request.duplicate_admission" in checks(auditor)

    def test_duplicate_completion_fires(self):
        _sim, platform, auditor = make_rig()
        request = make_request()
        platform.gateway.admit(request)
        batch = make_batch(request)
        timing = make_timing()
        platform.record_batch_completion(batch, timing)
        platform.record_batch_completion(batch, timing)  # planted
        assert "request.duplicate_completion" in checks(auditor)

    def test_phantom_completion_fires(self):
        _sim, platform, auditor = make_rig()
        request = make_request()  # planted: never admitted
        platform.record_batch_completion(make_batch(request), make_timing())
        assert "request.phantom_completion" in checks(auditor)

    def test_stranded_request_fires_at_drain(self):
        _sim, platform, auditor = make_rig()
        platform.gateway.admit(make_request())
        platform.batcher._buffers.clear()  # planted: drop the buffer
        report = auditor.finalize()
        assert "request.stranded" in checks(auditor)
        assert report.residual == 0
        assert not report.ok

    def test_buffered_request_counts_as_residual_not_stranded(self):
        _sim, platform, auditor = make_rig()
        platform.gateway.admit(make_request())
        report = auditor.finalize()  # still buffered: legitimate residue
        assert "request.stranded" not in checks(auditor)
        assert report.residual == 1


# ----------------------------------------------------------------------
# memory.* — slice memory accounting
# ----------------------------------------------------------------------
class TestMemoryChecks:
    def test_negative_memory_fires(self):
        _sim, platform, auditor = make_rig()
        gpu_slice = platform.all_nodes[0].gpu.slices[0]
        gpu_slice.memory_used = -1.0  # planted
        auditor.sweep()
        assert "memory.negative" in checks(auditor)

    def test_over_capacity_fires(self):
        _sim, platform, auditor = make_rig()
        gpu_slice = platform.all_nodes[0].gpu.slices[0]
        gpu_slice.memory_used = gpu_slice.profile.memory_gb + 5.0  # planted
        auditor.sweep()
        assert "memory.over_capacity" in checks(auditor)

    def test_leaked_accounting_fires(self):
        _sim, platform, auditor = make_rig()
        gpu_slice = platform.all_nodes[0].gpu.slices[0]
        gpu_slice.memory_used = 1.0  # planted: no resident job holds it
        auditor.sweep()
        assert "memory.leak" in checks(auditor)

    def test_teardown_leak_fires(self):
        _sim, platform, auditor = make_rig()
        node = platform.all_nodes[0]
        platform.retire_node(node)
        node.gpu.slices[0].memory_used = 2.0  # planted: survived teardown
        auditor.sweep()
        assert "memory.teardown_leak" in checks(auditor)

    def test_consistent_accounting_is_clean(self):
        sim, platform, auditor = make_rig()
        gpu_slice = platform.all_nodes[0].gpu.slices[0]
        gpu_slice.submit(make_job(memory_gb=1.0))
        auditor.sweep()
        assert not [c for c in checks(auditor) if c.startswith("memory.")]


# ----------------------------------------------------------------------
# geometry.* — MIG legality
# ----------------------------------------------------------------------
class TestGeometryChecks:
    def test_invalid_geometry_fires(self):
        _sim, platform, auditor = make_rig()
        gpu = platform.all_nodes[0].gpu
        # planted: two 7g instances (14 compute units) cannot coexist.
        gpu.geometry = SimpleNamespace(kinds=(SliceKind.G7, SliceKind.G7))
        auditor.sweep()
        assert "geometry.invalid" in checks(auditor)

    def test_busy_reconfiguration_fires(self):
        _sim, platform, auditor = make_rig()
        gpu = platform.all_nodes[0].gpu
        gpu.slices[0].submit(make_job())
        gpu.reconfiguring = True  # planted: destroy with work resident
        auditor.sweep()
        assert "geometry.busy_reconfiguration" in checks(auditor)


# ----------------------------------------------------------------------
# clock.* — time, counters, tombstones
# ----------------------------------------------------------------------
class TestClockChecks:
    def test_backwards_clock_fires(self):
        sim, _platform, auditor = make_rig()
        sim.at(1.0, lambda: None)
        sim.run(until=2.0)
        auditor.sweep()
        sim._now = 1.0  # planted: time reversal
        auditor.sweep()
        assert "clock.backwards" in checks(auditor)

    def test_event_counter_regression_fires(self):
        sim, _platform, auditor = make_rig()
        sim.at(1.0, lambda: None)
        sim.run(until=2.0)
        auditor.sweep()
        sim._events_processed = 0  # planted: counter reset mid-run
        auditor.sweep()
        assert "clock.event_counter" in checks(auditor)

    def test_tombstoned_activity_fires(self):
        _sim, platform, auditor = make_rig()
        node = platform.all_nodes[0]
        platform.retire_node(node)
        node.gpu.slices[0].submit(make_job())  # planted: work after death
        auditor.sweep()
        assert "clock.tombstoned_activity" in checks(auditor)


# ----------------------------------------------------------------------
# spot.* — VM/node lifecycle agreement
# ----------------------------------------------------------------------
class TestSpotChecks:
    def test_zombie_node_fires(self):
        _sim, platform, auditor = make_rig()
        node = platform.all_nodes[0]
        node.vm.terminate()  # planted: VM gone, node never retired
        auditor.sweep()
        assert "spot.zombie_node" in checks(auditor)

    def test_ignored_eviction_notice_fires(self):
        _sim, platform, auditor = make_rig()
        node = platform.build_node(VMTier.SPOT)
        node.vm.mark_eviction_notice()  # planted: no drain followed
        auditor.sweep()
        assert "spot.notice_ignored" in checks(auditor)

    def test_drained_node_with_notice_is_clean(self):
        _sim, platform, auditor = make_rig()
        node = platform.build_node(VMTier.SPOT)
        node.vm.mark_eviction_notice()
        node.drain()
        auditor.sweep()
        assert checks(auditor) == []

    def test_work_after_eviction_fires(self):
        _sim, platform, auditor = make_rig()
        node = platform.all_nodes[0]
        request = make_request()
        platform.gateway.admit(request)
        node.vm.terminate()
        node.state = NodeState.RETIRED
        # planted: a batch completes on the terminated node's GPU.
        timing = make_timing(slice_name=node.gpu.slices[0].name)
        platform.record_batch_completion(make_batch(request), timing)
        assert "spot.work_after_eviction" in checks(auditor)

    def test_dangling_scheduler_fires(self):
        _sim, platform, auditor = make_rig()
        node = platform.all_nodes[0]
        node.state = NodeState.RETIRED  # planted: skipped deregistration
        auditor.sweep()
        assert "spot.dangling_scheduler" in checks(auditor)


# ----------------------------------------------------------------------
# tenant.* — tenancy contracts (quota, registration, exclusivity)
# ----------------------------------------------------------------------
def make_tenancy(*tenants):
    from repro.tenancy import TenancySpec, TenantSet

    return TenancySpec(tenant_set=TenantSet(tuple(tenants)), admission=True)


class TestTenantChecks:
    def test_unregistered_tenant_fires(self):
        from repro.tenancy import Tenant

        spec = make_tenancy(Tenant("alpha"))
        _sim, platform, auditor = make_rig(tenancy=spec)
        # Planted: a request sneaks past the admission controller (the
        # way a buggy ingest path would) carrying an unknown tenant id.
        platform._ingest(make_request(tenant="ghost"))
        assert "tenant.unregistered" in checks(auditor)

    def test_quota_exceeded_fires(self):
        from repro.tenancy import Tenant

        spec = make_tenancy(Tenant("alpha", quota=1))
        _sim, platform, auditor = make_rig(tenancy=spec)
        # Planted: two in-flight requests against a quota of one, both
        # bypassing the gateway's admission check.
        platform._ingest(make_request(tenant="alpha"))
        platform._ingest(make_request(arrival=0.1, tenant="alpha"))
        auditor.sweep()
        assert "tenant.quota_exceeded" in checks(auditor)

    def test_exclusive_colocation_fires(self):
        from repro.tenancy import Tenant

        spec = make_tenancy(
            Tenant("sealed", exclusive=True), Tenant("noisy")
        )
        _sim, platform, auditor = make_rig(tenancy=spec)
        gpu_slice = platform.all_nodes[0].gpu.slices[0]
        # Planted: batches of an exclusive and a shared tenant resident
        # on the same slice (a broken placement guard would allow this).
        for tenant in ("sealed", "noisy"):
            batch = make_batch(make_request(tenant=tenant))
            gpu_slice.submit(make_job(payload=batch))
        auditor.sweep()
        assert "tenant.exclusive_colocation" in checks(auditor)

    def test_quota_respected_after_completion_is_clean(self):
        from repro.tenancy import Tenant

        spec = make_tenancy(Tenant("alpha", quota=1))
        _sim, platform, auditor = make_rig(tenancy=spec)
        first = make_request(tenant="alpha")
        platform._ingest(first)
        platform.record_batch_completion(make_batch(first), make_timing())
        platform._ingest(make_request(arrival=0.2, tenant="alpha"))
        auditor.sweep()
        assert not [c for c in checks(auditor) if c.startswith("tenant.")]

    def test_default_rig_has_no_tenant_checks(self):
        _sim, platform, auditor = make_rig()
        platform.gateway.admit(make_request())
        auditor.sweep()
        assert not [c for c in checks(auditor) if c.startswith("tenant.")]


# ----------------------------------------------------------------------
# Fail-fast and arming semantics
# ----------------------------------------------------------------------
class TestAuditorSemantics:
    def test_fail_fast_raises_on_first_violation(self):
        _sim, platform, auditor = make_rig(fail_fast=True)
        platform.all_nodes[0].gpu.slices[0].memory_used = -1.0
        with pytest.raises(AuditViolationError):
            auditor.sweep()

    def test_double_arm_rejected(self):
        _sim, _platform, auditor = make_rig()
        with pytest.raises(AuditError):
            auditor.arm()

    def test_nonpositive_interval_rejected(self):
        reset_run_ids()
        sim = Simulator()
        from repro.core.protean import ProteanScheme

        platform = ServerlessPlatform(
            sim, ProteanScheme(), PlatformConfig(n_nodes=1)
        )
        with pytest.raises(AuditError):
            Auditor(sim, platform, interval=0.0)

    def test_clean_platform_sweeps_clean(self):
        sim, _platform, auditor = make_rig()
        sim.run(until=20.0)
        report = auditor.finalize()
        assert report.ok
        assert report.sweeps >= 2  # periodic sweeps ran
