"""Tests for the repro.audit invariant-checking subsystem."""
