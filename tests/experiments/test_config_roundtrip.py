"""Config serialisation round-trip, property-tested over the figure suite.

``ExperimentConfig.to_dict()`` is the one wire format configs cross
process (parallel workers) and disk (CLI fault plans) boundaries in.
Rather than hand-pick a few configs, we harvest *every* config any
figure module would actually run: ``execute_keyed`` is monkeypatched to
capture the declared work-lists and abort before execution, then every
figure's ``run(quick=True)`` is invoked. Each captured config must
survive ``from_dict(to_dict())`` exactly and serialise to plain JSON.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import CONFIG_SCHEMA_VERSION, ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.figures import common as figures_common
from repro.faults import demo_plan


class _Captured(Exception):
    """Sentinel raised by the patched executor to skip the real runs."""


@pytest.fixture
def figure_configs(monkeypatch):
    """Every ExperimentConfig the figure suite would execute (quick mode)."""
    captured: list[ExperimentConfig] = []

    def capture_keyed(requests):
        captured.extend(request.config for request in requests)
        raise _Captured

    monkeypatch.setattr(figures_common, "execute_keyed", capture_keyed)
    for _figure_id, module in sorted(ALL_FIGURES.items()):
        try:
            module.run(quick=True)
        except _Captured:
            pass
    return captured


def test_every_figure_config_round_trips(figure_configs):
    # The comparison figures alone declare 4 schemes × many workloads;
    # a low captured count means the capture hook silently broke.
    assert len(figure_configs) >= 20
    for config in figure_configs:
        payload = config.to_dict()
        assert payload["version"] == CONFIG_SCHEMA_VERSION
        json.dumps(payload)  # must be JSON-safe as-is
        assert ExperimentConfig.from_dict(payload) == config


def test_round_trip_with_fault_plan_and_be_pool():
    config = ExperimentConfig(
        be_pool=("resnet50", "vgg19"),
        procurement="hybrid",
        fault_plan=demo_plan(60.0),
        audit=True,
        audit_fail_fast=True,
        duration=60.0,
        warmup=10.0,
    )
    payload = json.loads(json.dumps(config.to_dict()))
    restored = ExperimentConfig.from_dict(payload)
    assert restored == config
    assert restored.be_pool == ("resnet50", "vgg19")
    assert restored.fault_plan == config.fault_plan


def test_round_trip_with_tenancy_spec():
    from repro.tenancy import Tenant, TenantSet, TenantSurge, TenancySpec

    config = ExperimentConfig(
        duration=60.0,
        warmup=10.0,
        tenants=TenancySpec(
            tenant_set=TenantSet(
                (
                    Tenant(
                        "gold",
                        slo_class="premium",
                        priority=0,
                        quota=32,
                        weight=3.0,
                        exclusive=True,
                        billing_rate=4.0,
                    ),
                    Tenant("bronze", traffic_share=2.0),
                )
            ),
            policy="wfq",
            admission=True,
            surges=(TenantSurge("bronze", 10.0, 20.0, 5.0),),
        ),
    )
    payload = json.loads(json.dumps(config.to_dict()))
    restored = ExperimentConfig.from_dict(payload)
    assert restored == config
    assert restored.tenants.tenant_set.get("gold").exclusive
    assert restored.tenants.surges[0].multiplier == 5.0


def test_tenancy_payload_rejects_unknown_keys_and_newer_schema():
    from repro.errors import ConfigurationError as CfgErr
    from repro.tenancy import TENANCY_SCHEMA_VERSION, Tenant, TenantSet, TenancySpec

    spec = TenancySpec(tenant_set=TenantSet((Tenant("a"),)))
    payload = spec.to_dict()
    payload["mystery"] = 1
    with pytest.raises(CfgErr):
        TenancySpec.from_dict(payload)
    payload = spec.to_dict()
    payload["version"] = TENANCY_SCHEMA_VERSION + 1
    with pytest.raises(CfgErr):
        TenancySpec.from_dict(payload)


def test_config_rejects_non_tenancy_spec():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(tenants={"tenant_set": {}})


def test_from_dict_rejects_unknown_keys():
    payload = ExperimentConfig().to_dict()
    payload["definitely_not_a_field"] = 1
    with pytest.raises(ConfigurationError) as excinfo:
        ExperimentConfig.from_dict(payload)
    assert "definitely_not_a_field" in str(excinfo.value)


def test_from_dict_rejects_newer_schema():
    payload = ExperimentConfig().to_dict()
    payload["version"] = CONFIG_SCHEMA_VERSION + 1
    with pytest.raises(ConfigurationError):
        ExperimentConfig.from_dict(payload)


def test_from_dict_rejects_non_dict():
    with pytest.raises(ConfigurationError):
        ExperimentConfig.from_dict([("duration", 10.0)])


def test_version_key_is_optional():
    payload = ExperimentConfig(seed=7).to_dict()
    del payload["version"]
    assert ExperimentConfig.from_dict(payload) == ExperimentConfig(seed=7)
