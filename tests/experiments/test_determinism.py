"""Determinism regression: same config → bit-identical metric summaries.

The simulator promises reproducibility (seeded RNG registry, total event
ordering), and tracing promises to be a pure observer. Both promises are
load-bearing — the paper comparisons rerun schemes on shared request
streams — so this module pins them:

1. running the same (scheme, config) twice yields the *same bits* in the
   metric summary, and
2. enabling tracing changes nothing about the simulated system.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme

CONFIG = ExperimentConfig(
    duration=25.0,
    warmup=5.0,
    drain=50.0,
    n_nodes=2,
    seed=11,
)


def _rows(config: ExperimentConfig):
    result = run_scheme("protean", config)
    extras = dict(result.extras)
    return result.summary.row(), extras


@pytest.mark.parametrize("tracing", [False, True])
def test_same_config_twice_is_bit_identical(tracing):
    config = CONFIG.with_overrides(tracing=tracing)
    first_row, first_extras = _rows(config)
    second_row, second_extras = _rows(config)
    assert first_row == second_row  # dict equality on floats == bitwise
    assert first_extras == second_extras


def test_tracing_is_a_pure_observer():
    untraced_row, untraced_extras = _rows(CONFIG)
    traced_row, traced_extras = _rows(CONFIG.with_overrides(tracing=True))
    assert untraced_row == traced_row
    assert untraced_extras == traced_extras


def test_different_seed_differs():
    # Guard the guard: if the summary were constant the tests above would
    # pass vacuously.
    base_row, _ = _rows(CONFIG)
    other_row, _ = _rows(CONFIG.with_overrides(seed=12))
    assert base_row != other_row
