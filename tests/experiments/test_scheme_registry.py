"""Tests for the scheme registry (the name → factory resolution layer)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    COMPARISON_SCHEMES,
    available_schemes,
    canonical_name,
    get_scheme,
    make_scheme,
    register_scheme,
    scheme_names,
)
from repro.experiments import schemes as registry_module
from repro.experiments.figures.common import SCHEMES
from repro.serverless.scheme import Scheme

#: Every scheme name the figure suite evaluates (Sections 2.2, 5, 6).
FIGURE_SUITE_SCHEMES = (
    "protean",
    "protean_be_balanced",
    "infless_llama",
    "molecule",
    "naive_slicing",
    "gpulet",
    "mig_only",
    "mps_mig",
    "smart_mps_mig",
)


@pytest.fixture
def clean_registry():
    """Snapshot/restore the registry so tests can register freely."""
    saved_registry = dict(registry_module._REGISTRY)
    saved_aliases = dict(registry_module._ALIASES)
    yield
    registry_module._REGISTRY.clear()
    registry_module._REGISTRY.update(saved_registry)
    registry_module._ALIASES.clear()
    registry_module._ALIASES.update(saved_aliases)


def test_every_figure_suite_scheme_resolves():
    for name in FIGURE_SUITE_SCHEMES:
        scheme = get_scheme(name)
        assert isinstance(scheme, Scheme)
        # Factories hand out fresh instances — no shared mutable state.
        assert get_scheme(name) is not scheme


def test_available_schemes_covers_suite_and_is_sorted():
    names = available_schemes()
    assert names == tuple(sorted(names))
    assert set(FIGURE_SUITE_SCHEMES) <= set(names)
    assert "oracle" in names
    assert set(COMPARISON_SCHEMES) <= set(names)
    assert set(SCHEMES) <= set(names)


def test_scheme_names_includes_aliases():
    names = scheme_names()
    assert set(available_schemes()) <= set(names)
    assert "infless" in names and "naive" in names


@pytest.mark.parametrize(
    "alias, canonical",
    [
        ("infless", "infless_llama"),
        ("llama", "infless_llama"),
        ("mps_only", "infless_llama"),
        ("molecule_beta", "molecule"),
        ("no_mps_or_mig", "molecule"),
        ("naive", "naive_slicing"),
    ],
)
def test_alias_resolution(alias, canonical):
    assert canonical_name(alias) == canonical
    assert type(get_scheme(alias)) is type(get_scheme(canonical))


def test_names_are_case_insensitive():
    assert canonical_name("PROTEAN") == "protean"
    assert canonical_name("  Naive ") == "naive_slicing"


def test_unknown_name_error_lists_choices():
    with pytest.raises(ConfigurationError) as excinfo:
        get_scheme("no_such_scheme")
    message = str(excinfo.value)
    assert "no_such_scheme" in message
    for name in ("protean", "molecule", "oracle"):
        assert name in message


def test_unknown_name_is_also_a_value_error():
    with pytest.raises(ValueError):
        canonical_name("nope")


def test_oracle_requires_a_plan():
    with pytest.raises(ConfigurationError):
        get_scheme("oracle")


class MyScheme(Scheme):
    name = "my_scheme"

    def create_scheduler(self, platform, node, pool):
        raise NotImplementedError("registry test stub")


def test_register_custom_scheme(clean_registry):
    register_scheme("my_scheme", MyScheme, aliases=("mine",))
    assert "my_scheme" in available_schemes()
    assert canonical_name("mine") == "my_scheme"
    assert isinstance(get_scheme("my_scheme"), MyScheme)


def test_duplicate_registration_rejected(clean_registry):
    with pytest.raises(ConfigurationError):
        register_scheme("protean", MyScheme)
    with pytest.raises(ConfigurationError):
        register_scheme("fresh_name", MyScheme, aliases=("naive",))


def test_replace_overrides_existing(clean_registry):
    register_scheme("protean", MyScheme, replace=True)
    assert isinstance(get_scheme("protean"), MyScheme)


def test_make_scheme_is_backcompat_alias():
    assert make_scheme is get_scheme
