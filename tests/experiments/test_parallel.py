"""Parallel/serial equivalence for the process fan-out layer.

The contract under test (see ``docs/parallel_runner.md``): executing a
work-list with ``jobs=4`` yields results *bit-identical* to ``jobs=1`` —
same ``RunSummary`` rows, same measured records, same extras, and the
same span-log digest — because every run is a pure function of its
``RunRequest`` and results merge by submission index. The suite also pins
the lifetime fix that motivated detachment: results that cross the
work-list boundary hold no live platform.
"""

import gc
import pickle
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.figures.common import FigureResult, compare
from repro.experiments.runner import run_comparison, run_scheme
from repro.experiments.suite import run_full_suite
from repro.faults import demo_plan
from repro.parallel import (
    RunRequest,
    execute_keyed,
    execute_runs,
    resolve_jobs,
    set_default_jobs,
    using_jobs,
)

#: Small but non-trivial: long enough for batching, autoscaling, and a
#: reconfiguration decision or two to fire.
CONFIG = ExperimentConfig(
    duration=20.0,
    warmup=5.0,
    drain=40.0,
    n_nodes=2,
    seed=7,
    tracing=True,
)

SCHEMES = ("protean", "molecule")


def _requests(config=CONFIG, schemes=SCHEMES):
    return [
        RunRequest(key=name, scheme=name, config=config) for name in schemes
    ]


def _fingerprint(result):
    """Everything observable about one run, as comparable plain data."""
    return (
        result.summary.row(),
        [repr(r) for r in result.measured],
        result.extras,
        result.tracer.digest(),
    )


def test_parallel_matches_serial_bit_for_bit():
    serial = execute_runs(_requests(), jobs=1)
    fanned = execute_runs(_requests(), jobs=4)
    assert len(serial) == len(fanned) == len(SCHEMES)
    for one, four in zip(serial, fanned):
        assert one.detached and four.detached
        assert _fingerprint(one) == _fingerprint(four)


def test_parallel_matches_serial_under_faults():
    config = CONFIG.with_overrides(fault_plan=demo_plan(CONFIG.duration))
    assert config.fault_plan  # non-empty plan, or the test is vacuous
    serial = execute_runs(_requests(config), jobs=1)
    fanned = execute_runs(_requests(config), jobs=4)
    for one, four in zip(serial, fanned):
        assert _fingerprint(one) == _fingerprint(four)


def test_run_comparison_jobs_matches_legacy_serial():
    # The legacy path shares one request stream across schemes; the
    # work-list path rebuilds it per worker. Summaries must agree.
    legacy = run_comparison(list(SCHEMES), CONFIG)
    fanned = run_comparison(list(SCHEMES), CONFIG, jobs=4)
    for name in SCHEMES:
        assert legacy[name].summary.row() == fanned[name].summary.row()
        assert legacy[name].extras == fanned[name].extras


def test_results_merge_in_submission_order():
    results = execute_keyed(_requests(), jobs=4)
    assert list(results) == list(SCHEMES)


def test_worklist_results_hold_no_platform():
    # The lifetime fix: anything coming back from the work-list path has
    # released its ServerlessPlatform and collector, and pickles cleanly.
    for result in compare(CONFIG, schemes=SCHEMES).values():
        assert result.platform is None
        assert result.collector is None
        assert pickle.loads(pickle.dumps(result)).summary.row() == (
            result.summary.row()
        )


class _TinyFigure:
    """A real (small) experiment figure for the suite lifetime test."""

    @staticmethod
    def run(quick=True):
        results = compare(CONFIG, schemes=("protean",))
        rows = [
            {"scheme": name, "slo_%": result.summary.slo_percent}
            for name, result in results.items()
        ]
        return FigureResult(figure="tiny", rows=rows)


def test_suite_entries_hold_no_live_platform(monkeypatch):
    # The memory fix behind detach(): once a figure's rows exist, nothing
    # reachable from its SuiteEntry — nor anything leaked into the
    # process — keeps a ServerlessPlatform (event queue, containers,
    # daemons) alive.
    from repro.serverless.platform import ServerlessPlatform

    gc.collect()
    before = {
        id(o) for o in gc.get_objects() if isinstance(o, ServerlessPlatform)
    }
    monkeypatch.setitem(ALL_FIGURES, "tiny", _TinyFigure)
    entries = run_full_suite(quick=True, only=("tiny",))
    assert entries[0].error is None and entries[0].result.rows
    gc.collect()
    leaked = [
        o
        for o in gc.get_objects()
        if isinstance(o, ServerlessPlatform) and id(o) not in before
    ]
    assert leaked == []


def test_detach_is_lossless_for_summary_consumers():
    live = run_scheme("protean", CONFIG)
    detached = live.detach()
    assert live.platform is not None  # detach copies, never mutates
    assert detached.summary.row() == live.summary.row()
    assert detached.measured == live.measured
    assert detached.tracer.digest()  # span log survived the detach


def test_duplicate_keys_rejected():
    requests = _requests() + _requests()
    with pytest.raises(ConfigurationError):
        execute_runs(requests, jobs=1)


def test_unpicklable_request_falls_back_to_serial():
    requests = [
        RunRequest(key="plain", scheme="protean", config=CONFIG),
        RunRequest(
            key="closure",
            scheme="protean",
            config=CONFIG,
            postprocess=lambda result: {},  # lambdas don't pickle
        ),
    ]
    with pytest.warns(RuntimeWarning, match="serial"):
        results = execute_runs(requests, jobs=4)
    assert len(results) == 2
    assert results[0].summary.slo_percent >= 0.0


def test_jobs_resolution_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(default=1) == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(default=1) == 3  # env beats the fallback
    with using_jobs(2):
        assert resolve_jobs(default=1) == 2  # ambient beats env
        assert resolve_jobs(5) == 5  # explicit beats everything
    assert resolve_jobs(default=1) == 3  # ambient scope restored
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ConfigurationError):
        resolve_jobs(default=1)


def test_invalid_jobs_rejected():
    with pytest.raises(ConfigurationError):
        resolve_jobs(0)
    with pytest.raises(ConfigurationError):
        set_default_jobs(-1)
    set_default_jobs(None)


def test_single_request_runs_serially_without_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        results = execute_runs(_requests(schemes=("protean",)), jobs=4)
    assert len(results) == 1
