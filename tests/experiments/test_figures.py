"""Smoke tests for the figure registry and the cheap figure modules.

Heavy figure modules (full scheme comparisons) are exercised by the
benchmark suite; here we verify the registry wiring, the FigureResult
contract, and run the two figure modules that are cheap enough for unit
testing.
"""

import pytest

from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.experiments.figures.common import (
    FigureResult as CommonFigureResult,
    base_config,
)


EXPECTED_IDS = {
    "fig02", "fig03", "tab03", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "tab04",
    "tab05", "fig15", "fig16", "fig17",
}


def test_registry_covers_every_evaluation_artifact():
    assert set(ALL_FIGURES) == EXPECTED_IDS
    for module in ALL_FIGURES.values():
        assert callable(module.run)
        assert module.run.__doc__


def test_figure_result_table_renders():
    result = FigureResult(
        figure="Test", rows=[{"a": 1, "b": 2}], notes="note"
    )
    text = result.table()
    assert "Test" in text and "note" in text
    assert FigureResult is CommonFigureResult


def test_render_extras_plots_curves_and_series():
    result = FigureResult(
        figure="Test",
        rows=[],
        extra={
            "slo_ms": 100.0,
            "curves": {
                "protean": {"latency_ms": [10, 50, 90], "fraction": [0.1, 0.6, 1.0]},
            },
            "series": [{"t": 0, "p95_ms": 40.0}, {"t": 1, "p95_ms": 60.0}],
        },
    )
    rendered = result.render_extras()
    assert "Latency CDF" in rendered
    assert "strict P95" in rendered
    assert "p=protean" in rendered


def test_render_extras_empty_without_plot_data():
    assert FigureResult(figure="T", rows=[]).render_extras() == ""


def test_tab03_runs_and_matches_paper():
    result = ALL_FIGURES["tab03"].run(quick=True)
    assert isinstance(result, FigureResult)
    savings = {row["provider"]: row["savings_%"] for row in result.rows}
    assert savings["AWS"] == pytest.approx(69.99, abs=0.05)
    assert savings["Google Cloud"] == pytest.approx(70.70, abs=0.05)


def test_fig03_runs_with_measured_columns():
    result = ALL_FIGURES["fig03"].run(quick=True)
    assert len(result.rows) == 22
    measured = [row for row in result.rows if "measured_fbr" in row]
    assert len(measured) >= 4
    for row in measured:
        assert row["measured_fbr"] == pytest.approx(row["fbr"], abs=0.03)


def test_base_config_quick_vs_full_durations():
    quick = base_config(True, strict_model="resnet50")
    full = base_config(False, strict_model="resnet50")
    assert quick.duration < full.duration
    assert quick.warmup < full.warmup


def test_base_config_accepts_overrides():
    config = base_config(True, strict_model="vgg19", n_nodes=4, duration=33.0)
    assert config.strict_model == "vgg19"
    assert config.n_nodes == 4
    assert config.duration == 33.0
