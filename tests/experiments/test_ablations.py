"""Tests for the ablation harness."""

import pytest

from repro.core.protean import ProteanScheme
from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig, run_scheme
from repro.experiments.ablations import (
    ABLATION_VARIANTS,
    make_variant,
    run_ablation,
    run_ablation_suite,
)
from repro.gpu.mig import GEOMETRY_4G_3G

QUICK = dict(
    trace="constant",
    duration=25.0,
    warmup=10.0,
    drain=30.0,
    n_nodes=2,
    offered_load=0.5,
)


def test_variant_roster():
    assert set(ABLATION_VARIANTS) == {
        "full",
        "no_reordering",
        "no_reconfigurator",
        "no_autoscaler",
        "static_4g_3g",
    }


def test_make_variant_configures_scheme():
    full = make_variant("full")
    assert isinstance(full, ProteanScheme)
    static = make_variant("static_4g_3g")
    assert static.initial_geometry() == GEOMETRY_4G_3G
    no_reorder = make_variant("no_reordering")
    assert no_reorder._enable_reordering is False


def test_unknown_variant():
    with pytest.raises(ConfigurationError):
        make_variant("no_gpus")


def test_run_ablation_labels_result():
    config = ExperimentConfig(strict_model="resnet50", **QUICK)
    result = run_ablation("no_reordering", config)
    assert result.scheme == "no_reordering"
    assert result.summary.requests_served > 0


def test_suite_shares_request_stream():
    config = ExperimentConfig(strict_model="resnet50", **QUICK)
    results = run_ablation_suite(config, variants=("full", "static_4g_3g"))
    assert set(results) == {"full", "static_4g_3g"}
    assert (
        results["full"].summary.strict_requests
        == results["static_4g_3g"].summary.strict_requests
    )
    # The frozen variant never reconfigures.
    assert results["static_4g_3g"].summary.reconfigurations == 0


def test_run_scheme_accepts_scheme_instance():
    config = ExperimentConfig(strict_model="resnet50", **QUICK)
    scheme = ProteanScheme(enable_reconfigurator=False, enable_autoscaler=False)
    result = run_scheme(scheme, config)
    assert result.scheme == "protean"
    assert result.summary.requests_served > 0
