"""Scale-invariance check: the documented substitution argument, tested.

DESIGN.md claims that shrinking batch size and request rate by the same
factor preserves batch arrival rates, execution latencies, and memory
footprints — hence all queueing/interference structure. This test runs
the same experiment at two scales and requires the headline metrics to
agree (up to sampling noise from the smaller request population).
"""

import pytest

from repro.experiments import ExperimentConfig, run_scheme

BASE = dict(
    strict_model="vgg19",
    trace="constant",
    duration=60.0,
    warmup=20.0,
    drain=60.0,
    n_nodes=4,
    offered_load=0.85,
    seed=5,
)


def run_at_scale(scheme, scale):
    config = ExperimentConfig(scale=scale, **BASE)
    return run_scheme(scheme, config)


@pytest.mark.parametrize("scheme", ["protean", "infless_llama"])
def test_slo_compliance_is_scale_invariant(scheme):
    small = run_at_scale(scheme, 0.05)
    large = run_at_scale(scheme, 0.15)
    assert small.summary.slo_percent == pytest.approx(
        large.summary.slo_percent, abs=8.0
    )


def test_batch_population_scales_linearly():
    small = run_at_scale("protean", 0.05)
    large = run_at_scale("protean", 0.15)
    # 3x the scale → ~3x the requests, same number of *batches* (so the
    # GPUs see identical pressure).
    ratio = large.summary.requests_served / small.summary.requests_served
    assert ratio == pytest.approx(3.0, rel=0.15)


def test_latency_distribution_is_scale_invariant():
    small = run_at_scale("protean", 0.05)
    large = run_at_scale("protean", 0.15)
    assert small.summary.strict_p50 == pytest.approx(
        large.summary.strict_p50, rel=0.25
    )
    assert small.summary.strict_p99 == pytest.approx(
        large.summary.strict_p99, rel=0.5
    )
