"""Tests for the full-suite runner."""

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.suite import SuiteEntry, run_full_suite


def test_selected_artifacts_run_and_write(tmp_path):
    progress = []
    entries = run_full_suite(
        quick=True,
        output_dir=tmp_path,
        only=("tab03", "fig03"),
        progress=progress.append,
    )
    assert progress == ["tab03", "fig03"]
    assert all(isinstance(e, SuiteEntry) for e in entries)
    assert all(e.error is None for e in entries)
    assert (tmp_path / "tab03.txt").exists()
    assert (tmp_path / "fig03.txt").exists()
    summary = (tmp_path / "SUMMARY.txt").read_text()
    assert "tab03" in summary and "ok" in summary


def test_errors_are_captured_not_raised(tmp_path, monkeypatch):
    class Boom:
        @staticmethod
        def run(quick=True):
            raise RuntimeError("kaput")

    monkeypatch.setitem(ALL_FIGURES, "tab03", Boom)
    entries = run_full_suite(quick=True, output_dir=tmp_path, only=("tab03",))
    assert entries[0].error == "RuntimeError: kaput"
    assert "ERROR" in (tmp_path / "SUMMARY.txt").read_text()


def test_no_output_dir_skips_writing():
    entries = run_full_suite(quick=True, only=("tab03",))
    assert entries[0].result.rows
