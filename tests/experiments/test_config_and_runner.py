"""Tests for the experiment configuration and runner."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    build_oracle_plan,
    build_specs,
    make_scheme,
    run_comparison,
    run_scheme,
    scheme_names,
)
from repro.gpu.mig import GEOMETRY_4G_3G

QUICK = dict(
    trace="constant",
    duration=30.0,
    warmup=10.0,
    drain=30.0,
    n_nodes=2,
    offered_load=0.5,
)


class TestConfig:
    def test_defaults_validate(self):
        ExperimentConfig()

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(warmup=200.0, duration=100.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(trace="netflix")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(procurement="free_gpus")

    def test_strict_profile_is_scaled(self):
        config = ExperimentConfig(strict_model="resnet50", scale=0.1)
        assert config.strict_profile().batch_size == 13

    def test_be_pool_defaults_to_opposite_category(self):
        config = ExperimentConfig(strict_model="resnet50")  # HI
        names = {m.category.value for m in config.be_profiles()}
        assert names == {"LI"}
        config = ExperimentConfig(strict_model="shufflenet_v2")  # LI
        names = {m.category.value for m in config.be_profiles()}
        assert names == {"HI"}

    def test_vhi_strict_draws_be_from_other_llms(self):
        config = ExperimentConfig(strict_model="gpt2")
        pool = config.be_profiles()
        assert all(m.category.value == "VHI" for m in pool)
        assert not any(m.generative for m in pool)
        assert all(m.name != "gpt2" for m in pool)

    def test_explicit_be_pool(self):
        config = ExperimentConfig(
            strict_model="resnet50", be_pool=("mobilenet", "senet18")
        )
        assert {m.name for m in config.be_profiles()} == {
            "mobilenet",
            "senet18",
        }

    def test_request_rate_scales_with_load_and_nodes(self):
        base = ExperimentConfig(strict_model="resnet50", offered_load=0.5)
        double_load = base.with_overrides(offered_load=1.0)
        double_nodes = base.with_overrides(n_nodes=16)
        assert double_load.request_rate() == pytest.approx(
            2 * base.request_rate()
        )
        assert double_nodes.request_rate() == pytest.approx(
            2 * base.request_rate()
        )

    def test_explicit_rate_is_scaled(self):
        config = ExperimentConfig(rate=5000.0, scale=0.1)
        assert config.request_rate() == pytest.approx(500.0)


class TestBuildSpecs:
    def test_spec_count_matches_rate(self):
        config = ExperimentConfig(**QUICK)
        specs = build_specs(config)
        expected = config.request_rate() * config.duration
        assert len(specs) == pytest.approx(expected, rel=0.1)

    def test_specs_are_deterministic_per_seed(self):
        config = ExperimentConfig(**QUICK)
        a = build_specs(config)
        b = build_specs(config)
        assert [(s.arrival, s.model.name, s.strict) for s in a] == [
            (s.arrival, s.model.name, s.strict) for s in b
        ]

    def test_all_strict_config(self):
        config = ExperimentConfig(strict_fraction=1.0, **QUICK)
        specs = build_specs(config)
        assert all(s.strict for s in specs)

    def test_slo_multiplier_propagates(self):
        config = ExperimentConfig(slo_multiplier=2.0, **QUICK)
        spec = next(s for s in build_specs(config) if s.strict)
        assert spec.slo_deadline == pytest.approx(
            spec.arrival + 2.0 * spec.model.solo_latency_7g
        )


class TestOraclePlan:
    def test_plan_covers_duration(self):
        config = ExperimentConfig(**QUICK)
        specs = build_specs(config)
        plan = build_oracle_plan(config, specs)
        assert plan[0][0] == 0.0
        assert len(plan) == math.ceil(config.duration / config.rotation_period)

    def test_all_strict_plan_is_4g_3g(self):
        config = ExperimentConfig(strict_fraction=1.0, **QUICK)
        specs = build_specs(config)
        plan = build_oracle_plan(config, specs)
        assert all(g == GEOMETRY_4G_3G for _t, g in plan)


class TestSchemeFactory:
    def test_known_names(self):
        for name in ["protean", "infless", "molecule", "naive", "gpulet"]:
            assert make_scheme(name) is not make_scheme(name)  # fresh each time

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_scheme("magic")

    def test_oracle_requires_plan(self):
        with pytest.raises(ConfigurationError):
            make_scheme("oracle")
        assert "oracle" in scheme_names()


class TestRunScheme:
    def test_summary_fields_populated(self):
        config = ExperimentConfig(strict_model="resnet50", **QUICK)
        result = run_scheme("protean", config)
        summary = result.summary
        assert summary.requests_served > 0
        assert 0.0 <= summary.slo_compliance <= 1.0
        assert summary.strict_p99 > 0
        assert summary.total_cost > 0
        assert result.extras["cold_starts"] >= 0

    def test_determinism(self):
        config = ExperimentConfig(strict_model="resnet50", **QUICK)
        a = run_scheme("protean", config)
        b = run_scheme("protean", config)
        assert a.summary.slo_compliance == b.summary.slo_compliance
        assert a.summary.strict_p99 == b.summary.strict_p99
        assert a.summary.total_cost == b.summary.total_cost

    def test_comparison_shares_request_stream(self):
        config = ExperimentConfig(strict_model="resnet50", **QUICK)
        results = run_comparison(["protean", "molecule"], config)
        assert set(results) == {"protean", "molecule"}
        assert (
            results["protean"].summary.strict_requests
            == results["molecule"].summary.strict_requests
        )

    def test_cdf_accessor(self):
        config = ExperimentConfig(strict_model="resnet50", **QUICK)
        result = run_scheme("protean", config)
        values, fractions = result.cdf()
        assert values.size > 0
        assert fractions[-1] == 1.0

    def test_measured_window_excludes_warmup(self):
        config = ExperimentConfig(strict_model="resnet50", **QUICK)
        result = run_scheme("protean", config)
        assert all(r.arrival >= config.warmup for r in result.measured)
        assert all(r.arrival < config.duration for r in result.measured)
