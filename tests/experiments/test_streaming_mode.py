"""Streaming-metrics runs must match record-collecting runs.

``streaming_metrics=True`` swaps the platform's RecordCollector for the
bounded-memory StreamingCollector. The simulation itself is untouched
(the collector is a pure observer), so counters/SLO/throughput/cost are
exact and percentiles come from a sketch that is exact below its
centroid budget — at this experiment size every summary field must
match the record-based run bit for bit.
"""

import bisect
import dataclasses
import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.metrics.streaming import StreamingCollector
from repro.tenancy import TenancySpec, Tenant, TenantSet


def quick_config(**overrides):
    return ExperimentConfig(
        duration=60.0, warmup=20.0, n_nodes=4, seed=3, **overrides
    )


def summaries_equal(a, b):
    for spec in dataclasses.fields(a):
        if spec.name in ("tail_breakdown", "extras"):
            continue
        left = getattr(a, spec.name)
        right = getattr(b, spec.name)
        if isinstance(left, float) and math.isnan(left):
            assert math.isnan(right), spec.name
        else:
            assert left == right, (spec.name, left, right)


class TestStreamingParity:
    def test_summary_matches_record_mode(self):
        record_run = run_scheme("protean", quick_config())
        streaming_run = run_scheme(
            "protean", quick_config(streaming_metrics=True)
        )
        summaries_equal(record_run.summary, streaming_run.summary)
        # The tail breakdown comes from the retained worst records; at
        # this size the whole tail fits, leaving only the threshold
        # convention (sketch order statistic vs interpolation).
        assert streaming_run.summary.tail_breakdown.total == pytest.approx(
            record_run.summary.tail_breakdown.total, rel=0.1
        )

    def test_streaming_run_keeps_no_records(self):
        result = run_scheme("protean", quick_config(streaming_metrics=True))
        assert result.measured == []
        assert result.extras.get("streaming_metrics") is True
        assert isinstance(result.collector, StreamingCollector)
        assert len(result.collector) == 0  # nothing retained

    def test_streaming_tenancy_report_matches(self):
        tenants = TenancySpec(
            tenant_set=TenantSet(
                (
                    Tenant("gold", weight=2.0, traffic_share=0.6),
                    Tenant("bronze", weight=1.0, traffic_share=0.4),
                )
            )
        )
        record_run = run_scheme("protean", quick_config(tenants=tenants))
        streaming_run = run_scheme(
            "protean", quick_config(tenants=tenants, streaming_metrics=True)
        )
        exact = record_run.tenancy
        sketched = streaming_run.tenancy
        assert sketched is not None and exact is not None
        assert sketched.fairness_index == pytest.approx(exact.fairness_index)
        assert sketched.total_revenue == pytest.approx(exact.total_revenue)
        by_id = {o.tenant_id: o for o in exact.outcomes}
        for outcome in sketched.outcomes:
            reference = by_id[outcome.tenant_id]
            assert outcome.requests == reference.requests
            assert outcome.strict_requests == reference.strict_requests
            assert outcome.rejections == reference.rejections
            assert outcome.slo_attainment == pytest.approx(
                reference.slo_attainment
            )
            # The sketch's guarantee is on quantile rank, not value:
            # with 256 centroids per tenant the sketched percentile's
            # empirical rank must land within ~1/256 of the target
            # (plus one-sample discreteness on this modest window).
            # Latencies are heavily tied here, so one value occupies a
            # whole rank interval — assert that interval overlaps the
            # target, not that a single-sided rank equals it.
            latencies = sorted(
                r.latency
                for r in record_run.measured
                if r.tenant == outcome.tenant_id
            )
            n = len(latencies)
            bound = 2.0 / 256.0 + 1.0 / n
            for value, target in ((outcome.p50, 0.50), (outcome.p99, 0.99)):
                rank_lo = bisect.bisect_left(latencies, value) / n
                rank_hi = bisect.bisect_right(latencies, value) / n
                assert rank_lo <= target + bound, (
                    outcome.tenant_id,
                    target,
                    rank_lo,
                )
                assert rank_hi >= target - bound, (
                    outcome.tenant_id,
                    target,
                    rank_hi,
                )
