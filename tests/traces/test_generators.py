"""Tests for the Wiki-like and Twitter-like trace generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import (
    TWITTER_PEAK_TO_MEAN,
    WIKI_PEAK_TO_MEAN,
    twitter_trace,
    wiki_trace,
)


class TestWikiTrace:
    def test_mean_rate_hits_target(self):
        trace = wiki_trace(300.0, np.random.default_rng(0), mean_rate=5000.0)
        assert trace.mean_rate == pytest.approx(5000.0)

    def test_peak_to_mean_matches_paper(self):
        # Paper Section 5: Wiki peak:mean is 316:303 (≈ 1.043).
        ratios = [
            wiki_trace(600.0, np.random.default_rng(seed)).peak_to_mean
            for seed in range(5)
        ]
        mean_ratio = sum(ratios) / len(ratios)
        assert mean_ratio == pytest.approx(WIKI_PEAK_TO_MEAN, abs=0.03)

    def test_diurnal_shape_is_smooth(self):
        trace = wiki_trace(600.0, np.random.default_rng(1), noise=0.0)
        step = np.abs(np.diff(trace.rates)) / trace.mean_rate
        assert step.max() < 0.01  # no sudden surges

    def test_deterministic_for_seed(self):
        a = wiki_trace(100.0, np.random.default_rng(7))
        b = wiki_trace(100.0, np.random.default_rng(7))
        assert np.array_equal(a.rates, b.rates)

    def test_language_model_rate(self):
        trace = wiki_trace(120.0, np.random.default_rng(2), mean_rate=128.0)
        assert trace.mean_rate == pytest.approx(128.0)

    def test_rejects_bad_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            wiki_trace(0.0, rng)
        with pytest.raises(TraceError):
            wiki_trace(10.0, rng, noise=-0.1)


class TestTwitterTrace:
    def test_peak_rate_hits_target(self):
        trace = twitter_trace(300.0, np.random.default_rng(0), peak_rate=5000.0)
        assert trace.peak_rate == pytest.approx(5000.0)

    def test_peak_to_mean_is_erratic(self):
        # Paper Section 5: Twitter peak:mean is 4561:2969 (≈ 1.54).
        ratios = [
            twitter_trace(600.0, np.random.default_rng(seed)).peak_to_mean
            for seed in range(8)
        ]
        mean_ratio = sum(ratios) / len(ratios)
        assert mean_ratio == pytest.approx(TWITTER_PEAK_TO_MEAN, abs=0.25)
        assert min(ratios) > 1.2  # always clearly burstier than Wiki

    def test_resulting_mean_is_about_35_percent_below_peak_target(self):
        # Paper Section 6.2: scaling Twitter's peak to ~5000 rps yields a
        # mean of ~3000 rps.
        means = [
            twitter_trace(600.0, np.random.default_rng(seed)).mean_rate
            for seed in range(8)
        ]
        mean = sum(means) / len(means)
        assert mean == pytest.approx(3000.0, rel=0.2)

    def test_deterministic_for_seed(self):
        a = twitter_trace(200.0, np.random.default_rng(3))
        b = twitter_trace(200.0, np.random.default_rng(3))
        assert np.array_equal(a.rates, b.rates)

    def test_short_window_still_has_a_surge(self):
        trace = twitter_trace(30.0, np.random.default_rng(11))
        assert trace.peak_to_mean > 1.15

    def test_rejects_bad_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            twitter_trace(0.0, rng)
        with pytest.raises(TraceError):
            twitter_trace(10.0, rng, surge_probability=1.5)
        with pytest.raises(TraceError):
            twitter_trace(10.0, rng, surge_mean_length=0.5)
