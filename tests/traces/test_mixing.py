"""Tests for strict/BE request mixing."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import MixSpec, be_model_schedule, mix_requests
from repro.workloads import get_model, high_interference_models


def hi_pool():
    return tuple(high_interference_models())


def make_mix(**overrides):
    defaults = dict(
        strict_model=get_model("shufflenet_v2"),
        be_pool=hi_pool(),
        strict_fraction=0.5,
    )
    defaults.update(overrides)
    return MixSpec(**defaults)


def test_strict_fraction_is_respected_statistically():
    arrivals = np.linspace(0.0, 100.0, 20_000, endpoint=False)
    requests = mix_requests(arrivals, make_mix(), np.random.default_rng(0))
    strict_share = sum(r.strict for r in requests) / len(requests)
    assert strict_share == pytest.approx(0.5, abs=0.02)


@pytest.mark.parametrize("fraction", [0.25, 0.75])
def test_skewed_fractions(fraction):
    arrivals = np.linspace(0.0, 50.0, 10_000, endpoint=False)
    requests = mix_requests(
        arrivals, make_mix(strict_fraction=fraction), np.random.default_rng(1)
    )
    strict_share = sum(r.strict for r in requests) / len(requests)
    assert strict_share == pytest.approx(fraction, abs=0.03)


def test_all_strict_case_needs_no_pool():
    mix = MixSpec(
        strict_model=get_model("resnet50"), be_pool=(), strict_fraction=1.0
    )
    requests = mix_requests([0.0, 1.0, 2.0], mix, np.random.default_rng(2))
    assert all(r.strict for r in requests)
    assert all(r.model.name == "resnet50" for r in requests)


def test_all_be_case():
    requests = mix_requests(
        np.linspace(0, 10, 100),
        make_mix(strict_fraction=0.0),
        np.random.default_rng(3),
    )
    assert not any(r.strict for r in requests)


def test_strict_requests_always_use_strict_model():
    requests = mix_requests(
        np.linspace(0, 40, 2000), make_mix(), np.random.default_rng(4)
    )
    for request in requests:
        if request.strict:
            assert request.model.name == "shufflenet_v2"
        else:
            assert request.model.category.value == "HI"


def test_be_model_constant_within_rotation_window():
    requests = mix_requests(
        np.linspace(0, 100, 5000), make_mix(), np.random.default_rng(5)
    )
    by_window: dict[int, set[str]] = {}
    for request in requests:
        if not request.strict:
            window = int(request.arrival // 20.0)
            by_window.setdefault(window, set()).add(request.model.name)
    assert by_window, "expected some BE requests"
    for models in by_window.values():
        assert len(models) == 1


def test_be_model_rotates_across_windows():
    requests = mix_requests(
        np.linspace(0, 400, 20_000), make_mix(), np.random.default_rng(6)
    )
    models = {r.model.name for r in requests if not r.strict}
    assert len(models) > 1


def test_be_schedule_matches_mix_with_same_rng_state():
    mix = make_mix()
    arrivals = np.linspace(0, 100, 5000)
    rng_a = np.random.default_rng(7)
    requests = mix_requests(arrivals, mix, rng_a)
    rng_b = np.random.default_rng(7)
    schedule = be_model_schedule(
        float(arrivals[-1]), mix, rng_b, arrivals=arrivals
    )
    lookup = dict(schedule)
    for request in requests:
        if not request.strict:
            window_start = (request.arrival // 20.0) * 20.0
            assert lookup[window_start].name == request.model.name


def test_be_schedule_matches_mix_when_last_arrival_precedes_duration():
    # Regression: the schedule derived its window count from `duration`
    # while mix_requests derives it from the last arrival stamp, and it
    # skipped the strictness uniforms — with the same rng state the two
    # rotations silently diverged. This is the layout the Oracle baseline
    # and fig07's annotations assume agrees with the generated requests.
    mix = make_mix()
    duration = 200.0
    # Last arrival at 143.0: int(143//20)+1 = 8 rotation windows drawn,
    # while int(200//20)+1 = 11 — the legacy layout drew three extra.
    arrivals = np.linspace(0.0, 143.0, 4001)
    rng_a = np.random.default_rng(21)
    requests = mix_requests(arrivals, mix, rng_a)
    rng_b = np.random.default_rng(21)
    schedule = be_model_schedule(duration, mix, rng_b, arrivals=arrivals)
    # The schedule covers the full nominal duration for annotation...
    assert len(schedule) == int(duration // mix.rotation_period) + 1
    # ...and agrees with every generated BE request.
    lookup = dict(schedule)
    be_requests = [r for r in requests if not r.strict]
    assert be_requests, "expected BE requests"
    for request in be_requests:
        window_start = (request.arrival // 20.0) * 20.0
        assert lookup[window_start].name == request.model.name


def test_be_schedule_with_arrivals_consumes_rng_identically():
    # The shared-layout contract: after the schedule call the generator
    # must be in exactly the state mix_requests would have left it in, so
    # downstream draws (e.g. tenancy multiplexing) stay aligned.
    mix = make_mix()
    arrivals = np.linspace(0.0, 77.0, 1000)
    rng_a = np.random.default_rng(9)
    mix_requests(arrivals, mix, rng_a)
    rng_b = np.random.default_rng(9)
    be_model_schedule(90.0, mix, rng_b, arrivals=arrivals)
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


def test_slo_deadline_only_for_strict():
    mix = make_mix()
    requests = mix_requests(
        np.linspace(0, 40, 500), mix, np.random.default_rng(8)
    )
    for request in requests:
        if request.strict:
            expected = request.arrival + request.model.slo_target()
            assert request.slo_deadline == pytest.approx(expected)
        else:
            assert request.slo_deadline is None


def test_validation():
    with pytest.raises(TraceError):
        make_mix(strict_fraction=1.5)
    with pytest.raises(TraceError):
        MixSpec(strict_model=get_model("bert"), be_pool=(), strict_fraction=0.5)
    with pytest.raises(TraceError):
        make_mix(rotation_period=0.0)
    with pytest.raises(TraceError):
        mix_requests([-1.0], make_mix(), np.random.default_rng(0))
