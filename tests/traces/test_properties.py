"""Property-based tests for trace generation (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    MixSpec,
    RateTrace,
    arrival_times,
    mix_requests,
    twitter_trace,
    wiki_trace,
)
from repro.traces.mixing import collapse_to_batches
from repro.workloads import get_model, high_interference_models
from repro.workloads.scaling import scale_model

rates_strategy = st.lists(
    st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=60
)


@settings(max_examples=50, deadline=None)
@given(rates=rates_strategy, seed=st.integers(0, 2**16))
def test_arrivals_sorted_and_within_trace(rates, seed):
    trace = RateTrace(np.asarray(rates))
    stamps = arrival_times(trace, np.random.default_rng(seed))
    assert (np.diff(stamps) >= 0).all()
    if stamps.size:
        assert stamps[0] >= 0.0
        assert stamps[-1] < trace.duration


@settings(max_examples=30, deadline=None)
@given(rates=rates_strategy)
def test_deterministic_arrivals_count_matches_rates(rates):
    trace = RateTrace(np.asarray(rates))
    stamps = arrival_times(trace, np.random.default_rng(0), poisson=False)
    expected = sum(int(round(r * trace.interval)) for r in rates)
    assert stamps.size == expected


@settings(max_examples=20, deadline=None)
@given(
    duration=st.floats(min_value=30.0, max_value=400.0),
    mean=st.floats(min_value=1.0, max_value=10_000.0),
    seed=st.integers(0, 2**16),
)
def test_wiki_scaling_invariant(duration, mean, seed):
    trace = wiki_trace(duration, np.random.default_rng(seed), mean_rate=mean)
    assert trace.mean_rate == pytest.approx(mean, rel=1e-9)
    assert (trace.rates > 0).all()


@settings(max_examples=20, deadline=None)
@given(
    duration=st.floats(min_value=30.0, max_value=400.0),
    peak=st.floats(min_value=1.0, max_value=10_000.0),
    seed=st.integers(0, 2**16),
)
def test_twitter_scaling_invariant(duration, peak, seed):
    trace = twitter_trace(duration, np.random.default_rng(seed), peak_rate=peak)
    assert trace.peak_rate == pytest.approx(peak, rel=1e-9)
    assert trace.peak_to_mean > 1.0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=300),
    fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 2**16),
)
def test_mixing_then_collapsing_preserves_population(n, fraction, seed):
    model = scale_model(get_model("shufflenet_v2"), 4 / 128)
    mix = MixSpec(
        strict_model=model,
        be_pool=tuple(
            scale_model(m, 4 / 128) for m in high_interference_models()
        ),
        strict_fraction=fraction,
    )
    arrivals = np.sort(np.random.default_rng(seed).random(n) * 50.0)
    specs = mix_requests(arrivals, mix, np.random.default_rng(seed))
    collapsed = collapse_to_batches(specs)
    assert len(collapsed) == n
    assert sum(s.strict for s in collapsed) == sum(s.strict for s in specs)
    # Collapsing never moves an arrival earlier than the original latest
    # member, and all arrivals stay inside the original window.
    assert all(0.0 <= s.arrival <= 50.0 for s in collapsed)
    stamps = [s.arrival for s in collapsed]
    assert stamps == sorted(stamps)
