"""Tests for batch-formation arrival collapsing."""

import numpy as np
import pytest

from repro.traces import MixSpec, mix_requests
from repro.traces.mixing import collapse_to_batches
from repro.workloads import get_model, high_interference_models
from repro.workloads.scaling import scale_model

MODEL = scale_model(get_model("shufflenet_v2"), 4 / 128)  # batch size 4


def make_specs(n=20, strict_fraction=1.0):
    arrivals = np.linspace(0.0, 10.0, n)
    mix = MixSpec(
        strict_model=MODEL,
        be_pool=tuple(
            scale_model(m, 4 / 128) for m in high_interference_models()
        ),
        strict_fraction=strict_fraction,
    )
    return mix_requests(arrivals, mix, np.random.default_rng(0))


def test_groups_share_one_arrival_instant():
    collapsed = collapse_to_batches(make_specs(20))
    arrivals = sorted({s.arrival for s in collapsed})
    assert len(arrivals) == 5  # 20 requests / batch 4
    counts = {a: 0 for a in arrivals}
    for spec in collapsed:
        counts[spec.arrival] += 1
    assert all(count == 4 for count in counts.values())


def test_batch_arrival_is_last_member_arrival():
    specs = make_specs(8)
    collapsed = collapse_to_batches(specs)
    originals = sorted(s.arrival for s in specs)
    collapsed_times = sorted({s.arrival for s in collapsed})
    # Each chunk's formation instant is its last member's arrival.
    assert collapsed_times == [originals[3], originals[7]]


def test_preserves_counts_and_models():
    specs = make_specs(40, strict_fraction=0.5)
    collapsed = collapse_to_batches(specs)
    assert len(collapsed) == len(specs)
    assert sum(s.strict for s in collapsed) == sum(s.strict for s in specs)
    assert {s.model.name for s in collapsed} == {s.model.name for s in specs}


def test_deadlines_reanchored_to_formation():
    collapsed = collapse_to_batches(make_specs(4))
    for spec in collapsed:
        assert spec.slo_deadline == pytest.approx(
            spec.arrival + 3.0 * spec.model.solo_latency_7g
        )


def test_output_is_sorted():
    collapsed = collapse_to_batches(make_specs(40, strict_fraction=0.5))
    arrivals = [s.arrival for s in collapsed]
    assert arrivals == sorted(arrivals)


def test_trailing_partial_chunk_kept():
    collapsed = collapse_to_batches(make_specs(6))
    assert len(collapsed) == 6  # 4 + trailing 2


def test_input_not_modified():
    specs = make_specs(8)
    before = [(s.arrival, s.strict) for s in specs]
    collapse_to_batches(specs)
    assert [(s.arrival, s.strict) for s in specs] == before
