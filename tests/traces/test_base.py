"""Unit tests for RateTrace and arrival-time generation."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import RateTrace, arrival_times, constant_trace


class TestRateTrace:
    def test_basic_statistics(self):
        trace = RateTrace(np.array([1.0, 3.0, 2.0]), interval=2.0)
        assert trace.duration == 6.0
        assert trace.mean_rate == pytest.approx(2.0)
        assert trace.peak_rate == 3.0
        assert trace.peak_to_mean == pytest.approx(1.5)
        assert trace.expected_requests == pytest.approx(12.0)

    def test_rate_at_boundaries(self):
        trace = RateTrace(np.array([1.0, 2.0]), interval=1.0)
        assert trace.rate_at(0.0) == 1.0
        assert trace.rate_at(0.999) == 1.0
        assert trace.rate_at(1.0) == 2.0
        assert trace.rate_at(-0.1) == 0.0
        assert trace.rate_at(2.0) == 0.0

    def test_validation(self):
        with pytest.raises(TraceError):
            RateTrace(np.array([]))
        with pytest.raises(TraceError):
            RateTrace(np.array([-1.0]))
        with pytest.raises(TraceError):
            RateTrace(np.array([1.0]), interval=0.0)

    def test_scale_to_mean(self):
        trace = RateTrace(np.array([1.0, 3.0])).scale_to_mean(100.0)
        assert trace.mean_rate == pytest.approx(100.0)
        assert trace.peak_to_mean == pytest.approx(1.5)

    def test_scale_to_peak(self):
        trace = RateTrace(np.array([1.0, 3.0])).scale_to_peak(5000.0)
        assert trace.peak_rate == pytest.approx(5000.0)
        assert trace.mean_rate == pytest.approx(5000.0 / 1.5)

    def test_scale_rejects_degenerate(self):
        zero = RateTrace(np.array([0.0]))
        with pytest.raises(TraceError):
            zero.scale_to_mean(1.0)
        with pytest.raises(TraceError):
            zero.scale_to_peak(1.0)
        with pytest.raises(TraceError):
            RateTrace(np.array([1.0])).scale_by(0.0)


class TestConstantTrace:
    def test_shape(self):
        trace = constant_trace(500.0, 10.0)
        assert trace.mean_rate == 500.0
        assert trace.peak_to_mean == 1.0
        assert trace.duration == 10.0

    def test_rejects_bad_duration(self):
        with pytest.raises(TraceError):
            constant_trace(1.0, 0.0)


class TestArrivalTimes:
    def test_deterministic_arrivals_match_expected_count(self):
        trace = constant_trace(10.0, 5.0)
        stamps = arrival_times(trace, np.random.default_rng(0), poisson=False)
        assert stamps.size == 50
        assert (np.diff(stamps) > 0).all()
        assert stamps[0] >= 0 and stamps[-1] < 5.0

    def test_poisson_arrivals_are_sorted_and_in_range(self):
        trace = constant_trace(100.0, 10.0)
        stamps = arrival_times(trace, np.random.default_rng(1))
        assert (np.diff(stamps) >= 0).all()
        assert stamps[0] >= 0 and stamps[-1] < 10.0

    def test_poisson_count_near_expectation(self):
        trace = constant_trace(200.0, 20.0)
        stamps = arrival_times(trace, np.random.default_rng(2))
        assert stamps.size == pytest.approx(4000, rel=0.1)

    def test_poisson_is_seed_deterministic(self):
        trace = constant_trace(50.0, 5.0)
        a = arrival_times(trace, np.random.default_rng(3))
        b = arrival_times(trace, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_zero_rate_intervals_produce_no_arrivals(self):
        trace = RateTrace(np.array([0.0, 10.0, 0.0]))
        stamps = arrival_times(trace, np.random.default_rng(4), poisson=False)
        assert ((stamps >= 1.0) & (stamps < 2.0)).all()

    def test_empty_result_for_zero_trace(self):
        trace = RateTrace(np.array([0.0, 0.0]))
        assert arrival_times(trace, np.random.default_rng(5)).size == 0
