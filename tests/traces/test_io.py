"""Tests for trace persistence (CSV load/save)."""

import numpy as np
import pytest

from repro.errors import TraceError, TraceFormatError, UnknownModelError
from repro.traces import MixSpec, constant_trace, mix_requests, wiki_trace
from repro.traces.io import (
    load_rate_trace,
    load_request_stream,
    save_rate_trace,
    save_request_stream,
)
from repro.workloads import get_model, high_interference_models


class TestRateTraceIO:
    def test_round_trip(self, tmp_path):
        trace = wiki_trace(30.0, np.random.default_rng(0), mean_rate=100.0)
        path = tmp_path / "wiki.csv"
        save_rate_trace(trace, path)
        loaded = load_rate_trace(path)
        assert loaded.interval == pytest.approx(trace.interval)
        assert np.allclose(loaded.rates, trace.rates)
        assert loaded.name == "wiki"

    def test_custom_interval_preserved(self, tmp_path):
        trace = constant_trace(50.0, 10.0, interval=2.0)
        path = tmp_path / "c.csv"
        save_rate_trace(trace, path)
        assert load_rate_trace(path).interval == pytest.approx(2.0)

    def test_header_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "hand.csv"
        path.write_text("interval_start_s,rate_rps\n\n0.0,10\n1.0,20\n")
        trace = load_rate_trace(path)
        assert trace.rates.tolist() == [10.0, 20.0]

    def test_nonuniform_intervals_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.0,1\n1.0,2\n3.5,3\n")
        with pytest.raises(TraceError):
            load_rate_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("header,only\n")
        with pytest.raises(TraceError):
            load_rate_trace(path)

    def test_truly_empty_file_rejected(self, tmp_path):
        path = tmp_path / "zero.csv"
        path.write_text("")
        with pytest.raises(TraceError, match="no rate rows"):
            load_rate_trace(path)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "narrow.csv"
        path.write_text("0.0,10\n1.0\n")
        with pytest.raises(TraceFormatError, match="expected 2 columns"):
            load_rate_trace(path)

    def test_extra_column_rejected(self, tmp_path):
        path = tmp_path / "wide.csv"
        path.write_text("0.0,10,999\n")
        with pytest.raises(TraceFormatError, match="expected 2 columns"):
            load_rate_trace(path)

    def test_corrupt_mid_file_row_raises_not_skipped(self, tmp_path):
        # A non-numeric row past the header is corrupt data; silently
        # skipping it (the old behaviour) loses trace rows unnoticed.
        path = tmp_path / "corrupt.csv"
        path.write_text("0.0,10\n1.0,oops\n2.0,30\n")
        with pytest.raises(TraceFormatError, match="non-numeric"):
            load_rate_trace(path)

    def test_non_monotonic_timestamps_rejected(self, tmp_path):
        # Strictly decreasing starts have *uniform* deltas, so the
        # uniform-interval check alone would accept them.
        path = tmp_path / "backwards.csv"
        path.write_text("2.0,1\n1.0,2\n0.0,3\n")
        with pytest.raises(TraceFormatError, match="non-monotonic"):
            load_rate_trace(path)


class TestRequestStreamIO:
    def _specs(self):
        mix = MixSpec(
            strict_model=get_model("resnet50"),
            be_pool=tuple(high_interference_models()),
            slo_multiplier=2.0,
        )
        return mix_requests(
            np.linspace(0, 10, 50), mix, np.random.default_rng(1)
        )

    def test_round_trip(self, tmp_path):
        specs = self._specs()
        path = tmp_path / "stream.csv"
        save_request_stream(specs, path)
        loaded = load_request_stream(path)
        assert len(loaded) == len(specs)
        for original, read in zip(specs, loaded):
            assert read.arrival == pytest.approx(original.arrival)
            assert read.model.name == original.model.name
            assert read.strict == original.strict
            assert read.slo_multiplier == pytest.approx(2.0)

    def test_unknown_model_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("arrival_s,model,strict\n0.0,skynet,1\n")
        with pytest.raises(UnknownModelError):
            load_request_stream(path)

    def test_negative_arrival_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("-1.0,resnet50,1\n")
        with pytest.raises(TraceError):
            load_request_stream(path)

    def test_missing_multiplier_defaults_to_three(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("0.5,resnet50,1\n")
        loaded = load_request_stream(path)
        assert loaded[0].slo_multiplier == 3.0

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "narrow.csv"
        path.write_text("0.5,resnet50\n")
        with pytest.raises(TraceFormatError, match="expected 3-4 columns"):
            load_request_stream(path)

    def test_extra_columns_rejected(self, tmp_path):
        path = tmp_path / "wide.csv"
        path.write_text("0.5,resnet50,1,3.0,surprise\n")
        with pytest.raises(TraceFormatError, match="expected 3-4 columns"):
            load_request_stream(path)

    def test_malformed_strict_flag_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.5,resnet50,yes\n")
        with pytest.raises(TraceFormatError, match="strict flag"):
            load_request_stream(path)

    def test_malformed_multiplier_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.5,resnet50,1,loose\n")
        with pytest.raises(TraceFormatError, match="slo_multiplier"):
            load_request_stream(path)

    def test_corrupt_mid_file_arrival_raises_not_skipped(self, tmp_path):
        path = tmp_path / "corrupt.csv"
        path.write_text("0.5,resnet50,1\nbroken,resnet50,1\n")
        with pytest.raises(TraceFormatError, match="non-numeric arrival"):
            load_request_stream(path)

    def test_unsorted_arrivals_are_sorted(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text("2.0,resnet50,1\n0.5,resnet50,0\n1.0,resnet50,1\n")
        loaded = load_request_stream(path)
        assert [s.arrival for s in loaded] == [0.5, 1.0, 2.0]
