"""Repository hygiene: docs, benches, and registries stay consistent."""

import pathlib
import re

from repro.experiments.figures import ALL_FIGURES

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_every_figure_has_a_benchmark():
    bench_files = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
    for figure_id in ALL_FIGURES:
        matches = [name for name in bench_files if figure_id in name]
        assert matches, f"no benchmark found for {figure_id}"


def test_readme_references_exist():
    readme = (ROOT / "README.md").read_text()
    for relative in re.findall(r"\]\(([\w/.-]+\.md)\)", readme):
        assert (ROOT / relative).exists(), relative
    for example in re.findall(r"examples/(\w+)\.py", readme):
        assert (ROOT / "examples" / f"{example}.py").exists(), example


def test_design_and_experiments_docs_exist():
    for name in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
        path = ROOT / name
        assert path.exists()
        assert len(path.read_text()) > 500


def test_examples_are_runnable_scripts():
    examples = list((ROOT / "examples").glob("*.py"))
    assert len(examples) >= 3  # the deliverable floor; we ship six
    for path in examples:
        source = path.read_text()
        assert '__name__ == "__main__"' in source, path.name
        assert source.lstrip().startswith('"""'), f"{path.name} lacks a docstring"


def test_all_public_modules_have_docstrings():
    import importlib
    import pkgutil

    import repro

    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        module = importlib.import_module(module_info.name)
        assert module.__doc__, f"{module_info.name} lacks a module docstring"


def test_design_mentions_every_figure_id():
    design = (ROOT / "DESIGN.md").read_text().lower()
    for figure_id in ALL_FIGURES:
        assert figure_id.replace("fig0", "fig").replace(
            "tab0", "tab"
        ) in design or figure_id in design, figure_id
