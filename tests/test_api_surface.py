"""Snapshot of the public API surface (`__all__`) of the stable packages.

These names are the repo's contract with external callers (notebooks,
scripts, downstream forks): removing or renaming one is a breaking
change and must be a deliberate decision, not a refactor side effect.
A failure here means *update the snapshot on purpose* — and mention the
break in the changelog — not "fix the test".
"""

import importlib

import pytest

PUBLIC_API = {
    "repro.audit": [
        "AuditReport",
        "AuditViolation",
        "Auditor",
        "CHECK_GROUPS",
        "DEFAULT_AUDIT_INTERVAL",
    ],
    "repro.experiments": [
        "ABLATION_VARIANTS",
        "COMPARISON_SCHEMES",
        "CONFIG_SCHEMA_VERSION",
        "ExperimentConfig",
        "ExperimentResult",
        "available_schemes",
        "build_oracle_plan",
        "build_specs",
        "canonical_name",
        "get_scheme",
        "make_scheme",
        "make_variant",
        "register_scheme",
        "run_ablation",
        "run_ablation_suite",
        "run_comparison",
        "run_scheme",
        "scheme_names",
    ],
    "repro.capacity": [
        "AnalyticBound",
        "Candidate",
        "CandidateGrid",
        "CandidateOutcome",
        "DEFAULT_MARGIN",
        "DEFAULT_NODE_COUNTS",
        "DEFAULT_TARGET",
        "FleetSolution",
        "GPU_CLASSES",
        "GRID_PRESETS",
        "GpuClass",
        "PLAN_PRESETS",
        "PLAN_SCHEMA_VERSION",
        "PROCUREMENT_MODES",
        "PRUNE_DOMINATED",
        "PRUNE_INFEASIBLE",
        "PlanReport",
        "ScreenDecision",
        "SimulationCache",
        "SimulationEvidence",
        "SubRun",
        "WorkloadSpec",
        "analytic_bound",
        "analytic_bounds_batch",
        "canonical_fleet",
        "config_digest",
        "estimate_hourly_cost",
        "fleet_hourly_cost",
        "fleet_key",
        "fleet_nodes",
        "fleet_subset",
        "pareto_frontier",
        "plan",
        "resolve_grid",
        "resolve_workload",
        "screen_candidates",
        "simulated_optimum",
        "solve_fleet",
        "solver_cost_matrix",
        "split_streams",
        "stream_stats",
        "sweepable_knobs",
    ],
    "repro.faults": [
        "DEFAULT_FAULT_NAMES",
        "DEFAULT_RECOVERY_NAME",
        "EMPTY_PLAN",
        "FaultInjector",
        "FaultKind",
        "FaultPlan",
        "FaultSpec",
        "RecoveryMatch",
        "RecoveryReport",
        "assert_recovery",
        "check_recovery",
        "demo_plan",
    ],
    "repro.observability": [
        "CATEGORY_AUDIT",
        "CATEGORY_CONTROL",
        "CATEGORY_FAULT",
        "CATEGORY_GPU",
        "CATEGORY_REQUEST",
        "CATEGORY_RUN",
        "CATEGORY_TENANT",
        "Counter",
        "DetachedTrace",
        "Histogram",
        "NULL_TRACER",
        "NullTelemetry",
        "NullTracer",
        "RollupRow",
        "SimTracer",
        "Span",
        "TelemetryRegistry",
        "TelemetrySampler",
        "TelemetrySnapshot",
        "Tracer",
        "format_rollup",
        "read_span_jsonl",
        "rollup_from_jsonl",
        "rollup_from_log",
        "rollup_spans",
        "span_log_digest",
        "spans_from_log",
        "spans_to_log",
        "text_summary",
        "to_trace_events",
        "write_chrome_trace",
        "write_span_jsonl",
    ],
    "repro.tenancy": [
        "AdmissionController",
        "DEFAULT_TENANT_ID",
        "FAIRNESS_POLICIES",
        "NodeTenancy",
        "SCENARIOS",
        "SLO_CLASSES",
        "ScenarioResult",
        "TENANCY_SCHEMA_VERSION",
        "TenancyRuntime",
        "TenancySpec",
        "Tenant",
        "TenantSet",
        "TenantSurge",
        "TenantWorkload",
        "run_tenancy_scenario",
        "scenario_configs",
    ],
    "repro.hyperscale": [
        "HyperscaleConfig",
        "HyperscaleReport",
        "ShardResult",
        "build_report",
        "hash_normal",
        "hash_poisson",
        "hash_u01",
        "hash_u64",
        "run_engine",
        "run_hyperscale",
        "shard_ranges",
    ],
    "repro.parallel": [
        "JOBS_ENV_VAR",
        "RunRequest",
        "cpu_jobs",
        "execute_keyed",
        "execute_request",
        "execute_runs",
        "mp_context",
        "resolve_jobs",
        "set_default_jobs",
        "using_jobs",
        "worker_init",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_public_api_matches_snapshot(module_name):
    module = importlib.import_module(module_name)
    assert sorted(module.__all__) == PUBLIC_API[module_name]


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_every_exported_name_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert getattr(module, name) is not None


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_all_lists_are_sorted_and_unique(module_name):
    module = importlib.import_module(module_name)
    assert list(module.__all__) == sorted(set(module.__all__))
