"""Tests for worker nodes, drain/retire, and the cluster governor."""

import pytest

from repro.cluster import (
    AWS,
    Cluster,
    CostMeter,
    NodeState,
    ReconfigurationGovernor,
    VM,
    VMTier,
    WorkerNode,
)
from repro.errors import ClusterError, NodeUnavailableError
from repro.gpu import GEOMETRY_FULL, GPU, SliceJob
from repro.simulation import Simulator


def make_node(sim, name=""):
    vm = VM(sim, VMTier.SPOT, CostMeter(AWS))
    gpu = GPU(sim, GEOMETRY_FULL)
    return WorkerNode(vm, gpu, name=name)


class TestWorkerNode:
    def test_active_node_accepts(self):
        sim = Simulator()
        node = make_node(sim)
        assert node.accepting
        node.ensure_accepting()  # does not raise

    def test_drain_stops_acceptance(self):
        sim = Simulator()
        node = make_node(sim)
        node.drain()
        assert node.state is NodeState.DRAINING
        assert not node.accepting
        with pytest.raises(NodeUnavailableError):
            node.ensure_accepting()
        node.drain()  # idempotent
        assert node.state is NodeState.DRAINING

    def test_retire_returns_stranded_payloads(self):
        sim = Simulator()
        node = make_node(sim)
        payloads = ["batch-a", "batch-b"]
        for payload in payloads:
            sim.at(0.0, lambda p=payload: node.gpu.slices[0].submit(
                SliceJob(work=10.0, rdf=1.0, fbr=0.1, memory_gb=1.0,
                         on_complete=lambda j, t: None, payload=p)))
        sim.run(until=1.0)
        stranded = node.retire()
        assert sorted(stranded) == payloads
        assert node.state is NodeState.RETIRED
        assert node.retire() == []  # second retire is empty

    def test_retire_with_idle_gpu_returns_nothing(self):
        sim = Simulator()
        node = make_node(sim)
        assert node.retire() == []


class TestReconfigurationGovernor:
    def test_limit_is_30_percent_rounded_up(self):
        # Paper Section 4.4: only ~30% of GPUs reconfigure simultaneously.
        assert ReconfigurationGovernor(8).limit == 3
        assert ReconfigurationGovernor(1).limit == 1
        assert ReconfigurationGovernor(10).limit == 3
        assert ReconfigurationGovernor(4).limit == 2

    def test_acquire_release_cycle(self):
        governor = ReconfigurationGovernor(8)
        assert governor.try_acquire()
        assert governor.try_acquire()
        assert governor.try_acquire()
        assert not governor.try_acquire()  # limit 3 reached
        governor.release()
        assert governor.try_acquire()

    def test_release_without_acquire_raises(self):
        with pytest.raises(ClusterError):
            ReconfigurationGovernor(8).release()

    def test_validation(self):
        with pytest.raises(ClusterError):
            ReconfigurationGovernor(0)
        with pytest.raises(ClusterError):
            ReconfigurationGovernor(8, fraction=0.0)


class TestCluster:
    def test_membership_and_views(self):
        sim = Simulator()
        cluster = Cluster()
        nodes = [make_node(sim, name=f"n{i}") for i in range(3)]
        for node in nodes:
            cluster.add(node)
        assert len(cluster) == 3
        assert cluster.active_nodes == tuple(nodes)
        nodes[1].drain()
        assert cluster.active_nodes == (nodes[0], nodes[2])
        assert cluster.draining_nodes == (nodes[1],)
        cluster.remove(nodes[1])
        assert len(cluster) == 2

    def test_duplicate_add_and_missing_remove_raise(self):
        sim = Simulator()
        cluster = Cluster()
        node = make_node(sim)
        cluster.add(node)
        with pytest.raises(ClusterError):
            cluster.add(node)
        other = make_node(sim)
        with pytest.raises(ClusterError):
            cluster.remove(other)

    def test_governor_tracks_cluster_size(self):
        sim = Simulator()
        cluster = Cluster()
        for i in range(8):
            cluster.add(make_node(sim))
        assert cluster.governor.limit == 3

    def test_governor_preserves_in_flight_across_resize(self):
        sim = Simulator()
        cluster = Cluster()
        for i in range(8):
            cluster.add(make_node(sim))
        assert cluster.governor.try_acquire()
        cluster.add(make_node(sim))
        assert cluster.governor.in_flight == 1
