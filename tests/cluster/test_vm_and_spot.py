"""Tests for VM lifecycle and the spot market model."""

import numpy as np
import pytest

from repro.cluster import (
    AWS,
    CostMeter,
    HIGH_AVAILABILITY,
    LOW_AVAILABILITY,
    MODERATE_AVAILABILITY,
    SpotAvailability,
    SpotMarket,
    VM,
    VMState,
    VMTier,
)
from repro.errors import ClusterError
from repro.simulation import Simulator


def make_vm(sim, tier=VMTier.SPOT):
    return VM(sim, tier, CostMeter(AWS))


class TestVM:
    def test_billing_on_terminate(self):
        sim = Simulator()
        meter = CostMeter(AWS)
        vm = VM(sim, VMTier.SPOT, meter)
        sim.at(100.0, vm.terminate)
        sim.run()
        assert meter.seconds(VMTier.SPOT) == pytest.approx(100.0)
        assert vm.state is VMState.TERMINATED
        assert vm.uptime == pytest.approx(100.0)

    def test_flush_billing_is_incremental(self):
        sim = Simulator()
        meter = CostMeter(AWS)
        vm = VM(sim, VMTier.ON_DEMAND, meter)
        sim.at(50.0, vm.flush_billing)
        sim.at(80.0, vm.terminate)
        sim.run()
        assert meter.seconds(VMTier.ON_DEMAND) == pytest.approx(80.0)

    def test_double_terminate_raises(self):
        sim = Simulator()
        vm = make_vm(sim)
        vm.terminate()
        with pytest.raises(ClusterError):
            vm.terminate()

    def test_crash_terminates_without_notice(self):
        sim = Simulator()
        meter = CostMeter(AWS)
        vm = VM(sim, VMTier.ON_DEMAND, meter)
        sim.at(40.0, vm.crash)
        sim.run()
        assert vm.crashed
        assert vm.state is VMState.TERMINATED
        # Billing still settles up to the crash instant.
        assert meter.seconds(VMTier.ON_DEMAND) == pytest.approx(40.0)

    def test_notice_only_for_spot(self):
        sim = Simulator()
        on_demand = make_vm(sim, VMTier.ON_DEMAND)
        with pytest.raises(ClusterError):
            on_demand.mark_eviction_notice()
        spot = make_vm(sim)
        spot.mark_eviction_notice()
        assert spot.state is VMState.EVICTION_NOTICE
        assert spot.running  # notice is not termination
        with pytest.raises(ClusterError):
            spot.mark_eviction_notice()


class TestSpotMarket:
    def test_high_availability_never_revokes(self):
        sim = Simulator()
        market = SpotMarket(sim, np.random.default_rng(0), HIGH_AVAILABILITY)
        vm = make_vm(sim)
        events = []
        market.register(vm, lambda v: events.append("notice"),
                        lambda v: events.append("evict"))
        sim.run(until=3600.0)
        assert events == []
        assert market.notices_issued == 0

    def test_acquisition_always_succeeds_at_high_availability(self):
        sim = Simulator()
        market = SpotMarket(sim, np.random.default_rng(0), HIGH_AVAILABILITY)
        assert all(market.try_acquire_spot() for _ in range(50))

    def test_acquisition_failure_rate_matches_p_rev(self):
        sim = Simulator()
        market = SpotMarket(sim, np.random.default_rng(1), LOW_AVAILABILITY)
        successes = sum(market.try_acquire_spot() for _ in range(5000))
        assert successes / 5000 == pytest.approx(1.0 - 0.708, abs=0.02)
        assert market.acquisition_attempts == 5000
        assert market.acquisition_failures == 5000 - successes

    def test_notice_precedes_eviction_by_notice_seconds(self):
        sim = Simulator()
        market = SpotMarket(
            sim,
            np.random.default_rng(2),
            SpotAvailability("certain", 1.0),
            notice_seconds=30.0,
            check_interval=60.0,
        )
        vm = make_vm(sim)
        times = {}
        market.register(
            vm,
            lambda v: times.__setitem__("notice", sim.now),
            lambda v: times.__setitem__("evict", sim.now),
        )
        sim.run(until=200.0)
        assert times["notice"] == pytest.approx(60.0)
        assert times["evict"] == pytest.approx(90.0)
        assert vm.state is VMState.TERMINATED
        assert market.evictions == 1

    def test_moderate_availability_revokes_eventually(self):
        sim = Simulator()
        market = SpotMarket(
            sim, np.random.default_rng(3), MODERATE_AVAILABILITY,
            check_interval=10.0,
        )
        vm = make_vm(sim)
        events = []
        market.register(vm, lambda v: events.append("notice"),
                        lambda v: events.append("evict"))
        sim.run(until=600.0)
        assert events == ["notice", "evict"]

    def test_no_second_notice_after_first(self):
        sim = Simulator()
        market = SpotMarket(
            sim, np.random.default_rng(4), SpotAvailability("certain", 1.0),
            check_interval=5.0, notice_seconds=30.0,
        )
        vm = make_vm(sim)
        notices = []
        market.register(vm, lambda v: notices.append(sim.now), lambda v: None)
        sim.run(until=100.0)
        assert len(notices) == 1

    def test_unregister_stops_draws(self):
        sim = Simulator()
        market = SpotMarket(
            sim, np.random.default_rng(5), SpotAvailability("certain", 1.0),
            check_interval=10.0,
        )
        vm = make_vm(sim)
        events = []
        market.register(vm, lambda v: events.append("notice"), lambda v: None)
        market.unregister(vm)
        sim.run(until=100.0)
        assert events == []

    def test_unregister_after_notice_cancels_pending_eviction(self):
        # Regression: the eviction countdown scheduled at notice time used
        # to keep firing after unregister(), evicting retired nodes and
        # inflating the eviction counters.
        sim = Simulator()
        market = SpotMarket(
            sim, np.random.default_rng(7), SpotAvailability("certain", 1.0),
            check_interval=10.0, notice_seconds=30.0,
        )
        vm = make_vm(sim)
        evictions = []
        market.register(vm, lambda v: None, lambda v: evictions.append(sim.now))
        sim.run(until=15.0)  # notice at 10; eviction pending at 40
        assert vm.state is VMState.EVICTION_NOTICE
        market.unregister(vm)  # node replaced/crashed meanwhile
        vm.terminate()
        sim.run(until=100.0)
        assert evictions == []
        assert market.evictions == 0

    def test_voluntary_terminate_after_notice_is_not_an_eviction(self):
        # Regression: a VM torn down during its drain window must not be
        # terminated again (ClusterError) nor counted as an eviction when
        # the countdown fires.
        sim = Simulator()
        market = SpotMarket(
            sim, np.random.default_rng(8), SpotAvailability("certain", 1.0),
            check_interval=10.0, notice_seconds=30.0,
        )
        vm = make_vm(sim)
        evicted = []
        market.register(vm, lambda v: None, lambda v: evicted.append(v))
        sim.run(until=15.0)  # notice at 10
        vm.terminate()  # voluntary scale-down mid-drain
        sim.run(until=100.0)
        assert evicted == []
        assert market.evictions == 0
        assert vm.state is VMState.TERMINATED

    def test_register_rejects_on_demand_and_duplicates(self):
        sim = Simulator()
        market = SpotMarket(sim, np.random.default_rng(6))
        with pytest.raises(ClusterError):
            market.register(make_vm(sim, VMTier.ON_DEMAND),
                            lambda v: None, lambda v: None)
        vm = make_vm(sim)
        market.register(vm, lambda v: None, lambda v: None)
        with pytest.raises(ClusterError):
            market.register(vm, lambda v: None, lambda v: None)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ClusterError):
            SpotAvailability("bad", 1.5)
        with pytest.raises(ClusterError):
            SpotMarket(sim, np.random.default_rng(0), notice_seconds=-1.0)
        with pytest.raises(ClusterError):
            SpotMarket(sim, np.random.default_rng(0), check_interval=0.0)
