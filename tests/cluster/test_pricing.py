"""Tests pinning Table 3 pricing and the cost meter."""

import pytest

from repro.cluster import (
    AWS,
    AZURE,
    GCP,
    CostMeter,
    ProviderPricing,
    VMTier,
    get_provider,
)
from repro.errors import ClusterError


class TestTable3:
    def test_aws_prices(self):
        assert AWS.on_demand_hourly == pytest.approx(32.7726)
        assert AWS.spot_hourly == pytest.approx(9.8318)
        # Table 3: AWS cost savings 69.99%.
        assert AWS.savings_fraction == pytest.approx(0.6999, abs=0.0005)

    def test_azure_prices(self):
        assert AZURE.on_demand_hourly == pytest.approx(32.77)
        assert AZURE.spot_hourly == pytest.approx(18.0235)
        # Table 3: Azure cost savings 45.01%.
        assert AZURE.savings_fraction == pytest.approx(0.4501, abs=0.0005)

    def test_gcp_prices(self):
        assert GCP.on_demand_hourly == pytest.approx(30.0846)
        assert GCP.spot_hourly == pytest.approx(8.8147)
        # Table 3: Google Cloud cost savings 70.70%.
        assert GCP.savings_fraction == pytest.approx(0.7070, abs=0.0005)

    def test_per_gpu_proration(self):
        assert AWS.per_gpu_hourly(VMTier.ON_DEMAND) == pytest.approx(32.7726 / 8)
        assert AWS.per_gpu_hourly(VMTier.SPOT) == pytest.approx(9.8318 / 8)

    def test_provider_lookup(self):
        assert get_provider("aws") is AWS
        assert get_provider("AZURE") is AZURE
        with pytest.raises(ClusterError):
            get_provider("oracle-cloud")

    def test_validation(self):
        with pytest.raises(ClusterError):
            ProviderPricing("bad", on_demand_hourly=1.0, spot_hourly=2.0)
        with pytest.raises(ClusterError):
            ProviderPricing("bad", on_demand_hourly=0.0, spot_hourly=-1.0)


class TestCostMeter:
    def test_charging_accumulates_per_tier(self):
        meter = CostMeter(AWS)
        meter.charge(VMTier.ON_DEMAND, 3600.0)
        meter.charge(VMTier.SPOT, 7200.0)
        assert meter.seconds(VMTier.ON_DEMAND) == 3600.0
        assert meter.cost(VMTier.ON_DEMAND) == pytest.approx(32.7726 / 8)
        assert meter.cost(VMTier.SPOT) == pytest.approx(2 * 9.8318 / 8)

    def test_total_and_baseline(self):
        meter = CostMeter(AWS)
        meter.charge(VMTier.SPOT, 3600.0)
        assert meter.total_cost == pytest.approx(9.8318 / 8)
        assert meter.on_demand_only_equivalent_cost == pytest.approx(32.7726 / 8)
        # All-spot usage saves the full Table 3 discount (~70%).
        assert meter.savings_fraction == pytest.approx(0.6999, abs=0.0005)

    def test_mixed_usage_savings(self):
        meter = CostMeter(AWS)
        meter.charge(VMTier.SPOT, 1800.0)
        meter.charge(VMTier.ON_DEMAND, 1800.0)
        assert 0.0 < meter.savings_fraction < AWS.savings_fraction

    def test_zero_usage(self):
        meter = CostMeter(AWS)
        assert meter.total_cost == 0.0
        assert meter.savings_fraction == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ClusterError):
            CostMeter(AWS).charge(VMTier.SPOT, -1.0)
