"""Tests pinning Table 3 pricing and the cost meter."""

import pytest

from repro.cluster import (
    AWS,
    AZURE,
    GCP,
    CostMeter,
    ProviderPricing,
    VMTier,
    cost_per_1k_requests,
    get_provider,
    per_scheme_summary,
    pricing_table_rows,
)
from repro.errors import ClusterError


class TestTable3:
    def test_aws_prices(self):
        assert AWS.on_demand_hourly == pytest.approx(32.7726)
        assert AWS.spot_hourly == pytest.approx(9.8318)
        # Table 3: AWS cost savings 69.99%.
        assert AWS.savings_fraction == pytest.approx(0.6999, abs=0.0005)

    def test_azure_prices(self):
        assert AZURE.on_demand_hourly == pytest.approx(32.77)
        assert AZURE.spot_hourly == pytest.approx(18.0235)
        # Table 3: Azure cost savings 45.01%.
        assert AZURE.savings_fraction == pytest.approx(0.4501, abs=0.0005)

    def test_gcp_prices(self):
        assert GCP.on_demand_hourly == pytest.approx(30.0846)
        assert GCP.spot_hourly == pytest.approx(8.8147)
        # Table 3: Google Cloud cost savings 70.70%.
        assert GCP.savings_fraction == pytest.approx(0.7070, abs=0.0005)

    def test_per_gpu_proration(self):
        assert AWS.per_gpu_hourly(VMTier.ON_DEMAND) == pytest.approx(32.7726 / 8)
        assert AWS.per_gpu_hourly(VMTier.SPOT) == pytest.approx(9.8318 / 8)

    def test_provider_lookup(self):
        assert get_provider("aws") is AWS
        assert get_provider("AZURE") is AZURE
        with pytest.raises(ClusterError):
            get_provider("oracle-cloud")

    def test_validation(self):
        with pytest.raises(ClusterError):
            ProviderPricing("bad", on_demand_hourly=1.0, spot_hourly=2.0)
        with pytest.raises(ClusterError):
            ProviderPricing("bad", on_demand_hourly=0.0, spot_hourly=-1.0)


class TestCostMeter:
    def test_charging_accumulates_per_tier(self):
        meter = CostMeter(AWS)
        meter.charge(VMTier.ON_DEMAND, 3600.0)
        meter.charge(VMTier.SPOT, 7200.0)
        assert meter.seconds(VMTier.ON_DEMAND) == 3600.0
        assert meter.cost(VMTier.ON_DEMAND) == pytest.approx(32.7726 / 8)
        assert meter.cost(VMTier.SPOT) == pytest.approx(2 * 9.8318 / 8)

    def test_total_and_baseline(self):
        meter = CostMeter(AWS)
        meter.charge(VMTier.SPOT, 3600.0)
        assert meter.total_cost == pytest.approx(9.8318 / 8)
        assert meter.on_demand_only_equivalent_cost == pytest.approx(32.7726 / 8)
        # All-spot usage saves the full Table 3 discount (~70%).
        assert meter.savings_fraction == pytest.approx(0.6999, abs=0.0005)

    def test_mixed_usage_savings(self):
        meter = CostMeter(AWS)
        meter.charge(VMTier.SPOT, 1800.0)
        meter.charge(VMTier.ON_DEMAND, 1800.0)
        assert 0.0 < meter.savings_fraction < AWS.savings_fraction

    def test_zero_usage(self):
        meter = CostMeter(AWS)
        assert meter.total_cost == 0.0
        assert meter.savings_fraction == 0.0

    def test_summary_json_export(self):
        import json

        meter = CostMeter(AWS)
        meter.charge(VMTier.SPOT, 1800.0)
        meter.charge(VMTier.ON_DEMAND, 3600.0)
        summary = meter.summary()
        json.dumps(summary)  # JSON-safe by construction
        assert summary["provider"] == "AWS"
        assert summary["spot_seconds"] == 1800.0
        assert summary["on_demand_seconds"] == 3600.0
        assert summary["total_cost"] == pytest.approx(meter.total_cost)
        assert summary["on_demand_cost"] + summary["spot_cost"] == pytest.approx(
            meter.total_cost
        )
        assert summary["savings_fraction"] == pytest.approx(
            meter.savings_fraction
        )


class TestSharedCostPath:
    """tab03 / fig09 / the capacity planner all read one code path."""

    def test_table3_rows_pin_paper_numbers(self):
        # Table 3's published savings columns, via the shared function.
        rows = {row["provider"]: row for row in pricing_table_rows()}
        assert rows["AWS"]["savings_%"] == pytest.approx(69.99, abs=0.05)
        assert rows["Microsoft Azure"]["savings_%"] == pytest.approx(
            45.01, abs=0.05
        )
        assert rows["Google Cloud"]["savings_%"] == pytest.approx(
            70.70, abs=0.05
        )
        assert rows["AWS"]["on_demand_$per_h"] == pytest.approx(32.7726)
        assert rows["AWS"]["spot_$per_h"] == pytest.approx(9.8318)

    def test_tab03_figure_uses_shared_rows(self):
        from repro.experiments.figures import tab03_pricing

        assert tab03_pricing.run(quick=True).rows == pricing_table_rows()

    def test_provider_to_dict(self):
        payload = AWS.to_dict()
        assert payload["provider"] == "AWS"
        assert payload["savings_fraction"] == pytest.approx(AWS.savings_fraction)

    def test_cost_per_1k_requests(self):
        assert cost_per_1k_requests(2.0, 4000) == pytest.approx(0.5)
        assert cost_per_1k_requests(0.0, 0) == 0.0
        assert cost_per_1k_requests(1.0, 0) == float("inf")
        with pytest.raises(ClusterError):
            cost_per_1k_requests(-1.0, 10)
        with pytest.raises(ClusterError):
            cost_per_1k_requests(1.0, -10)

    def test_per_scheme_summary_rows(self):
        class FakeSummary:
            total_cost = 0.5
            cost_savings_fraction = 0.7
            requests_served = 2000

        rows = per_scheme_summary({"protean": FakeSummary()})
        assert rows == [
            {
                "scheme": "protean",
                "cost_$": 0.5,
                "savings_%": 70.0,
                "cost_$per_1k_requests": 0.25,
                "requests_served": 2000,
            }
        ]

    def test_negative_charge_rejected(self):
        with pytest.raises(ClusterError):
            CostMeter(AWS).charge(VMTier.SPOT, -1.0)


class TestGpuClassPricing:
    """Per-class rates behind the heterogeneous-fleet planner."""

    def test_every_planner_class_is_priced(self):
        from repro.capacity import GPU_CLASSES
        from repro.cluster.pricing import GPU_CLASS_HOURLY

        assert set(GPU_CLASSES) == set(GPU_CLASS_HOURLY)
        for on_demand, spot in GPU_CLASS_HOURLY.values():
            assert 0.0 < spot < on_demand

    def test_a100_class_is_default_pricing_itself(self):
        # The identity (not just equality) keeps every pre-heterogeneity
        # cost number bit-identical.
        from repro.cluster.pricing import DEFAULT_PRICING, pricing_for_device

        assert pricing_for_device("a100") is DEFAULT_PRICING
        assert pricing_for_device("a100-40gb") is DEFAULT_PRICING

    def test_per_gpu_rates_pin_the_catalogue(self):
        from repro.cluster.pricing import pricing_for_device

        expected = {
            "a100": (32.7726 / 8, 9.8318 / 8),
            "a100-80gb": (5.12, 1.54),
            "h100": (6.88, 2.75),
            "a10": (1.006, 0.402),
            "t4": (0.526, 0.158),
        }
        for name, (on_demand, spot) in expected.items():
            pricing = pricing_for_device(name)
            assert pricing.per_gpu_hourly(VMTier.ON_DEMAND) == pytest.approx(
                on_demand
            )
            assert pricing.per_gpu_hourly(VMTier.SPOT) == pytest.approx(spot)

    def test_device_aliases_resolve(self):
        from repro.cluster.pricing import gpu_class_for_device

        assert gpu_class_for_device("h100-80gb") == "h100"
        assert gpu_class_for_device("T4-16GB") == "t4"
        with pytest.raises(ClusterError, match="no pricing"):
            gpu_class_for_device("b200")

    def test_gpu_class_table_rows_cover_all_classes(self):
        from repro.cluster.pricing import (
            GPU_CLASS_HOURLY,
            gpu_class_table_rows,
        )

        rows = gpu_class_table_rows()
        assert [row["gpu_class"] for row in rows] == sorted(GPU_CLASS_HOURLY)
        for row in rows:
            assert row["spot_$per_gpu_h"] < row["on_demand_$per_gpu_h"]
            assert 0.0 < row["savings_%"] < 100.0
