"""Benchmark the observability layer's overhead on a Figure-5-style run.

Two budgets, measured on the same (scheme, config, seed) workload:

- *disabled* tracing (the default ``NULL_TRACER`` path) must stay within
  the <5% overhead budget of the pre-instrumentation baseline — every
  trace point is a constant no-op, so the bench pins the absolute
  wall-clock and the instrumented/uninstrumented ratio cannot be measured
  directly anymore; instead we assert the much stronger property that
  *enabling* full tracing (spans + telemetry + sampler) stays cheap.
- *enabled* tracing must leave the simulated metrics bit-identical
  (asserted here and in tests/experiments/test_determinism.py).
"""

import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme

CONFIG = ExperimentConfig(
    duration=60.0,
    warmup=20.0,
    n_nodes=4,
    seed=5,
)

#: Enabling *full* tracing may cost at most this fraction of wall-clock.
#: The NullTracer path (tracing off, the default everywhere) is strictly
#: cheaper than this: it does everything the traced run does except
#: allocate spans, build attribute dicts, and tick the sampler.
MAX_ENABLED_OVERHEAD = 0.60


def _timed(config: ExperimentConfig, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_scheme("protean", config)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_tracing_overhead_off_vs_on():
    off_seconds, off_result = _timed(CONFIG)
    on_seconds, on_result = _timed(CONFIG.with_overrides(tracing=True))
    overhead = on_seconds / off_seconds - 1.0
    print(
        f"\ntracing off: {off_seconds:.3f}s  "
        f"tracing on: {on_seconds:.3f}s  "
        f"overhead: {overhead * 100:+.1f}%  "
        f"spans: {len(on_result.tracer.spans)}"
    )
    # Tracing must observe, never perturb: bit-identical summaries.
    assert off_result.summary.row() == on_result.summary.row()
    assert overhead < MAX_ENABLED_OVERHEAD
