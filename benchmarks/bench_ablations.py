"""Ablation benchmarks: what each PROTEAN mechanism contributes.

Not a paper artifact per se — this quantifies the design choices DESIGN.md
calls out by disabling one at a time on a shared request stream. The
workload (DPN 92 strict, big-memory BE rotation) is chosen so geometry
actually matters: 11 GB strict batches need the (4g, 3g) split that only
the reconfigurator (or a lucky static choice) provides.
"""

from repro.experiments.ablations import ABLATION_VARIANTS, run_ablation_suite
from repro.experiments.figures.common import base_config
from repro.metrics.summary import format_table


def test_ablations(benchmark, save_figure):
    config = base_config(
        True,
        strict_model="dpn92",
        be_pool=("vgg19", "densenet121", "mobilenet"),
        trace="twitter",
        offered_load=1.3,
        duration=90.0,
        warmup=30.0,
    )
    results = benchmark.pedantic(
        lambda: run_ablation_suite(config), rounds=1, iterations=1
    )
    rows = []
    for name in ABLATION_VARIANTS:
        summary = results[name].summary
        rows.append(
            {
                "variant": name,
                "slo_%": round(summary.slo_percent, 2),
                "strict_p99_ms": round(summary.strict_p99 * 1000, 1),
                "be_p99_ms": round(summary.be_p99 * 1000, 1),
                "reconfigs": summary.reconfigurations,
            }
        )

    class _Result:
        def table(self) -> str:
            return format_table(
                rows, title="PROTEAN ablations (DPN 92, Twitter trace)"
            )

    save_figure("ablations", _Result())

    by_name = {row["variant"]: row for row in rows}
    full = by_name["full"]
    # Full PROTEAN is at least as compliant as every ablation (within
    # noise) — no mechanism is harmful.
    for name, row in by_name.items():
        assert full["slo_%"] >= row["slo_%"] - 2.0, name
    # Dynamic geometry is the big lever for this workload: freezing the
    # initial (4g, 2g, 1g) forces 11 GB strict batches through a single
    # fitting slice.
    frozen = by_name["no_reconfigurator"]
    assert frozen["reconfigs"] == 0
    assert frozen["slo_%"] <= full["slo_%"] - 5.0
    assert frozen["strict_p99_ms"] >= full["strict_p99_ms"] * 1.5
    # A statically correct geometry recovers the loss — the value is in
    # *having* the right geometry; the reconfigurator finds it online.
    assert by_name["static_4g_3g"]["reconfigs"] == 0
    assert by_name["static_4g_3g"]["slo_%"] >= full["slo_%"] - 2.0
