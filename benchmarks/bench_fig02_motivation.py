"""Benchmark regenerating Figure 2 (Section 2.2 motivation experiment)."""

from repro.experiments.figures import fig02_motivation


def test_fig02_motivation(run_figure):
    result = run_figure("fig02_motivation", fig02_motivation)
    by_panel_scheme = {
        (row["panel"], row["scheme"]): row for row in result.rows
    }
    for panel in ("a:simplified_dla", "b:albert"):
        smart = by_panel_scheme[(panel, "smart_mps_mig")]
        mps_only = by_panel_scheme[(panel, "mps_only")]
        no_sharing = by_panel_scheme[(panel, "no_mps_or_mig")]
        mig_only = by_panel_scheme[(panel, "mig_only")]
        # 'Smart' MPS+MIG clearly beats time sharing and plain MPS
        # (paper: up to 98% more compliance, 72% less tail latency).
        for row in (mps_only, mig_only, no_sharing):
            assert smart["slo_%"] >= row["slo_%"] - 2.0
            assert smart["p99_ms"] <= row["p99_ms"] + 10.0
        # ...and is within noise of the best scheme overall.
        best = max(r["slo_%"] for (p, _s), r in by_panel_scheme.items() if p == panel)
        assert smart["slo_%"] >= best - 3.0
        # Time sharing pays queueing, not interference.
        assert no_sharing["queue_delay_ms"] > no_sharing["interference_ms"]
        assert no_sharing["slo_%"] < 30.0
        assert mig_only["slo_%"] < smart["slo_%"] - 20.0
        # MPS Only shows substantial interference in its tail.
        assert mps_only["interference_ms"] > 50.0
    # ALBERT is hurt by MPS-only co-location far more than under 'Smart'
    # isolation (paper: 0% vs ~98% compliance).
    albert_mps = by_panel_scheme[("b:albert", "mps_only")]
    albert_smart = by_panel_scheme[("b:albert", "smart_mps_mig")]
    assert albert_smart["slo_%"] - albert_mps["slo_%"] >= 10.0
