"""Benchmark regenerating Figure 5 (SLO compliance, vision models)."""

from repro.experiments.figures import fig05_slo_vision


def test_fig05_slo_vision(run_figure):
    result = run_figure("fig05_slo_vision", fig05_slo_vision)
    for row in result.rows:
        # PROTEAN dominates every model (paper: up to 62% more compliant).
        for scheme in ("molecule", "naive_slicing", "infless_llama"):
            assert row["protean_slo_%"] >= row[f"{scheme}_slo_%"] - 1.0
        # PROTEAN itself stays highly compliant.
        assert row["protean_slo_%"] >= 90.0
    # Somewhere the gap over Molecule is large (paper: up to ~62pp).
    gaps = [
        row["protean_slo_%"] - row["molecule_slo_%"] for row in result.rows
    ]
    assert max(gaps) >= 20.0
