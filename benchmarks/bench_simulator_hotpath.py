"""Benchmark the raw Simulator dispatch loop and tombstone compaction.

Measures events/sec on two synthetic workloads that isolate the hot path
from the serverless layers above it:

- *dispatch*: a self-rescheduling callback chain (pure pop/execute/push
  churn — the shape of batch-completion timers);
- *cancel-heavy*: every event schedules a timeout it then cancels, so the
  heap fills with tombstones and the lazy-compaction machinery has to
  keep ``dead_fraction`` bounded.

Results land in ``BENCH_runner.json`` under ``simulator_hotpath`` next to
the runner-scaling numbers. The floor asserted here is deliberately
conservative (shared CI runners); the value of the bench is the recorded
trend across commits.
"""

import json
import pathlib
import time

from repro.simulation.simulator import Simulator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_runner.json"

#: Events per measured workload — large enough to amortise setup and to
#: cross the compaction thresholds in the cancel-heavy variant.
N_EVENTS = 200_000

#: Conservative floor (events/sec) for the pure dispatch loop.
MIN_DISPATCH_RATE = 50_000


def _bench_dispatch():
    sim = Simulator(seed=0)
    state = {"left": N_EVENTS}

    def tick():
        state["left"] -= 1
        if state["left"] > 0:
            sim.after(0.001, tick)

    sim.after(0.001, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_processed, elapsed


def _bench_cancel_heavy():
    sim = Simulator(seed=0)
    state = {"left": N_EVENTS}

    def tick():
        state["left"] -= 1
        # The common serverless pattern: arm a timeout far in the future,
        # then cancel it when the real completion lands first.
        timeout = sim.after(1000.0, lambda: None)
        sim.cancel(timeout)
        if state["left"] > 0:
            sim.after(0.001, tick)

    sim.after(0.001, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_processed, elapsed, len(sim.queue._heap)


def test_simulator_hotpath_throughput():
    dispatched, dispatch_s = _bench_dispatch()
    cancelled, cancel_s, heap_left = _bench_cancel_heavy()
    dispatch_rate = dispatched / dispatch_s
    cancel_rate = cancelled / cancel_s
    payload = {
        "benchmark": "simulator_hotpath",
        "events": N_EVENTS,
        "dispatch_events_per_sec": round(dispatch_rate),
        "cancel_heavy_events_per_sec": round(cancel_rate),
        "heap_entries_at_end": heap_left,
    }
    existing = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    existing["simulator_hotpath"] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {BENCH_PATH}]")

    assert dispatch_rate > MIN_DISPATCH_RATE
    # Compaction must bound the heap: every tick leaves one far-future
    # tombstone, so without it the heap would end ~N_EVENTS long. With
    # the 4096-entry/50% policy it stays within one compaction cycle.
    assert heap_left < 8192
