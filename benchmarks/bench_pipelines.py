"""Benchmark the pipeline machinery's overhead on a single-stage run.

The pipelines issue's budget: workload generator + workflow-join
overhead within 10% of a plain single-stage run at equal request count.
The measured arm is the degenerate pipeline — one resnet50 stage, so the
runtime registers every workflow, splits a (trivial) deadline, and
finishes a workflow per request without ever releasing a child — and
the baseline arm is the plain single-stage run of the same model at the
same explicit rate, trace, seed, and cluster. Both arms serve identical
resnet50 request streams; only the workflow ledger and deadline-split
bookkeeping differ.

The pipeline-free default path is deliberately NOT just assumed cheap —
it is pinned bit-identical in tests/pipelines/test_default_path.py,
which is the stronger statement; this benchmark bounds the cost of
*opting in*.

Measurement hygiene, because the deltas are a few microseconds per
workflow:

- the overhead estimate is the *median of paired ratios*: each
  iteration times the two arms back to back and contributes one
  piped/plain ratio, so CPU-frequency and cache drift cancels within
  the pair instead of landing entirely on one arm (a best-of-N per arm
  would compare the baseline's single luckiest run against the
  pipeline arm's, biasing the ratio upward by whole points);
- the cyclic GC is disabled inside each timed region (collected
  between runs). The ledger allocates one state object per workflow,
  and on shared runners the collector's gen-0 sweeps otherwise get
  billed almost entirely to the pipeline arm — roughly doubling the
  apparent overhead versus the actual bookkeeping cost.

Even with both, median ratios on this container swing several points
run to run (the runs are ~0.35s and co-tenant load drifts on a slower
timescale than a pair), so the asserted ceiling is a *regression
backstop* — budget plus a noise allowance sized to catch an
order-of-magnitude regression (the pre-optimisation runtime measured
~40% here) rather than a percentage point. The numbers to track across
CI runs are in the recorded JSON (``BENCH_pipelines.json``, uploaded as
an artifact): the raw median ratio and the absolute per-workflow cost
in microseconds, which is the machine-independent statement of what
opting in costs (~2-3us of ledger bookkeeping per workflow against a
deliberately lean ~18us/request baseline).
"""

import gc
import json
import pathlib
import statistics
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.pipelines import PipelineSpec, StageSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_pipelines.json"

# Identical request streams: explicit rate + constant trace + all-strict
# resnet50. ``batched_arrivals`` is off because the pipeline path never
# collapses arrivals (workflow arrivals are individual by nature) — the
# baseline must not gain an unrelated advantage from batch alignment.
BASE = ExperimentConfig(
    trace="constant",
    rate=3000.0,
    duration=60.0,
    warmup=20.0,
    n_nodes=4,
    seed=5,
    strict_fraction=1.0,
    batched_arrivals=False,
)

PIPED = BASE.with_overrides(
    pipelines=PipelineSpec(
        name="solo",
        stages=(StageSpec(name="only", model="resnet50"),),
        deadline_policy="pipeline-aware",
    )
)

#: The issue's overhead budget for generator + join vs single-stage.
MAX_PIPELINE_OVERHEAD = 0.10
#: Shared-runner noise allowance for the assertion: median ratios here
#: swing several points between runs even after pairing and GC control,
#: so the hard ceiling is a backstop against order-of-magnitude
#: regressions; the budget itself is what gets recorded and tracked.
NOISE_ALLOWANCE = 0.15


def _timed_once(config: ExperimentConfig):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run_scheme("protean", config)
        return time.perf_counter() - start, result
    finally:
        gc.enable()


def _timed_pairs(repeats: int = 7):
    """Median paired ratio: drift cancels inside each back-to-back pair."""
    ratios = []
    plain_runs = []
    piped_runs = []
    plain = piped = None
    for _ in range(repeats):
        plain_seconds, plain = _timed_once(BASE)
        piped_seconds, piped = _timed_once(PIPED)
        plain_runs.append(plain_seconds)
        piped_runs.append(piped_seconds)
        ratios.append(piped_seconds / plain_seconds)
    return (
        statistics.median(plain_runs),
        plain,
        statistics.median(piped_runs),
        piped,
        statistics.median(ratios),
    )


def test_pipeline_overhead_vs_single_stage():
    plain_seconds, plain, piped_seconds, piped, ratio = _timed_pairs()
    overhead = ratio - 1.0

    # Equal request count: a one-stage workflow is one request, so the
    # degenerate pipeline must neither grow nor shrink the stream.
    assert len(piped.measured) == len(plain.measured)
    report = piped.pipelines
    assert report is not None
    assert plain.pipelines is None
    assert report.workflows == len(piped.measured)
    assert report.completed == report.workflows
    assert report.stats["stages_released"] == 0  # no children to release

    payload = {
        "benchmark": "pipeline_overhead",
        "scheme": "protean",
        "duration": BASE.duration,
        "n_nodes": BASE.n_nodes,
        "single_stage_seconds": round(plain_seconds, 3),
        "one_stage_pipeline_seconds": round(piped_seconds, 3),
        "overhead_fraction": round(overhead, 4),
        "overhead_us_per_workflow": round(
            1e6 * (piped_seconds - plain_seconds) / report.workflows, 2
        ),
        "budget_fraction": MAX_PIPELINE_OVERHEAD,
        "workflows": report.workflows,
        "e2e_attainment": round(report.e2e_attainment, 4),
    }
    existing = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    existing["pipeline_overhead"] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {BENCH_PATH}]")

    assert overhead < MAX_PIPELINE_OVERHEAD + NOISE_ALLOWANCE, (
        f"one-stage pipeline overhead {overhead * 100:.1f}% vs plain "
        f"single-stage exceeds the "
        f"{(MAX_PIPELINE_OVERHEAD + NOISE_ALLOWANCE) * 100:.0f}% ceiling"
    )
