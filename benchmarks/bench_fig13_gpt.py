"""Benchmark regenerating Figure 13 (generative LLMs, GPT-1/GPT-2)."""

from repro.experiments.figures import fig13_gpt


def test_fig13_gpt(run_figure):
    result = run_figure("fig13_gpt", fig13_gpt)
    for row in result.rows:
        # PROTEAN achieves the highest compliance (paper: ~90% average).
        for scheme in ("molecule", "naive_slicing", "infless_llama"):
            assert row["protean_slo_%"] >= row[f"{scheme}_slo_%"] - 2.0
        # INFless/Llama collapses under GPT-level FBRs (paper: 0%).
        assert row["infless_llama_slo_%"] < 30.0
        assert row["protean_slo_%"] >= 60.0
