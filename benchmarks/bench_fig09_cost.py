"""Benchmark regenerating Figure 9 (cost vs SLO under spot availability)."""

from repro.experiments.figures import fig09_cost


def test_fig09_cost(run_figure):
    result = run_figure("fig09_cost", fig09_cost)
    cell = {
        (row["availability"], row["hosting"]): row for row in result.rows
    }
    # High availability: hybrid matches the full spot discount (~70%)
    # with on-demand-level SLO compliance.
    high_hybrid = cell[("high", "protean_hybrid")]
    assert high_hybrid["savings_%"] >= 65.0
    assert high_hybrid["slo_%"] >= cell[("high", "on_demand_baseline")]["slo_%"] - 2.0
    # Spot-Only is always the cheapest option...
    for availability in ("high", "moderate", "low"):
        assert (
            cell[(availability, "spot_only")]["normalized_cost"]
            <= cell[(availability, "protean_hybrid")]["normalized_cost"] + 1e-9
        )
    # ...but its compliance collapses when availability drops (paper:
    # 8.76% / 0.68% for ResNet 50 under medium/low availability).
    assert cell[("low", "spot_only")]["slo_%"] < 50.0
    assert cell[("low", "protean_hybrid")]["slo_%"] >= 90.0
    # Hybrid savings shrink as spot capacity dries up, but stay >= 0.
    assert (
        cell[("high", "protean_hybrid")]["savings_%"]
        >= cell[("low", "protean_hybrid")]["savings_%"]
        >= 0.0
    )
