"""Benchmark fault recovery: how fast the platform heals capacity losses.

Both recovery paths are measured in *simulated* seconds straight off the
recorded span log (the same data the recovery invariants assert on):

- **notice → replacement** (``spot.drain`` → ``procure.node_built``):
  the replacement is requested the moment the eviction notice arrives,
  so recovery should land at exactly ``provision_seconds`` — the drain
  window itself never goes capacity-short.
- **crash → replacement** (``fault.node_crash`` → ``procure.node_built``):
  no notice, no drain; the same provisioning delay runs from the crash
  instant, during which the cluster *is* one node short.

Wall-clock is also reported so the fault layer's overhead on a faulty
run stays visible.
"""

import time

from repro.cluster.spot import HIGH_AVAILABILITY, SpotAvailability, SpotMarket
from repro.core.procurement import (
    Procurement,
    ProcurementConfig,
    ProcurementMode,
)
from repro.core.protean import ProteanScheme
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.faults import FaultKind, FaultPlan, FaultSpec, check_recovery
from repro.observability.tracer import SimTracer
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.simulation import Simulator

PROVISION_SECONDS = 30.0
SLA = PROVISION_SECONDS + 0.5


def test_notice_to_replacement_delay():
    """Forced eviction: drain begins at the notice, heals in provision_s."""
    sim = Simulator()
    tracer = SimTracer(sim)
    platform = ServerlessPlatform(
        sim,
        ProteanScheme(enable_reconfigurator=False, enable_autoscaler=False),
        PlatformConfig(n_nodes=1),
        tracer=tracer,
    )
    market = SpotMarket(
        sim,
        sim.rng.stream("spot"),
        HIGH_AVAILABILITY,
        notice_seconds=30.0,
        check_interval=60.0,
        tracer=tracer,
    )
    procurement = Procurement(
        platform,
        market,
        ProcurementConfig(
            mode=ProcurementMode.HYBRID, provision_seconds=PROVISION_SECONDS
        ),
    )
    procurement.provision_initial()
    market.availability = SpotAvailability("certain", 1.0)  # revoke at t=60
    start = time.perf_counter()
    sim.run(until=200.0)
    wall = time.perf_counter() - start
    report = check_recovery(tracer.spans, sla_seconds=SLA)
    assert report.ok and len(report.matches) == 1
    delay = report.matches[0].delay
    print(
        f"\nnotice->replacement: {delay:.1f}s simulated "
        f"(SLA {SLA:.1f}s, wall {wall * 1000:.0f}ms)"
    )
    assert delay == PROVISION_SECONDS


def test_crash_to_replacement_delay():
    """Injected crash: no warning, heals provision_s after the instant."""
    plan = FaultPlan((FaultSpec(FaultKind.NODE_CRASH, at=20.0),))
    config = ExperimentConfig(
        duration=60.0,
        warmup=10.0,
        drain=120.0,
        n_nodes=2,
        seed=5,
        tracing=True,
        procurement="hybrid",
        spot_availability="high",
        fault_plan=plan,
    )
    start = time.perf_counter()
    result = run_scheme("protean", config)
    wall = time.perf_counter() - start
    report = check_recovery(
        result.tracer.spans, sla_seconds=config.provision_seconds + 0.5
    )
    assert report.ok and len(report.matches) == 1
    delay = report.matches[0].delay
    print(
        f"\ncrash->replacement: {delay:.1f}s simulated "
        f"(provision {config.provision_seconds:.1f}s, "
        f"wall {wall * 1000:.0f}ms, "
        f"resubmissions {result.extras['resubmissions']})"
    )
    assert delay == config.provision_seconds
    assert result.extras["fault_crashes"] == 1
