"""Benchmark the audit subsystem's overhead on a Figure-5-style run.

The auditor rides the same observer hooks as the observability stack:
two O(1) callbacks per request plus one periodic sweep every
``audit_interval`` simulated seconds. The acceptance bar is <5% added
wall-clock with auditing enabled, and — because the auditor is a pure
observer — bit-identical simulated metrics. Both are asserted here and
the measured numbers land in ``BENCH_audit.json`` at the repo root
(uploaded as a CI artifact).

Wall-clock ratios on shared CI runners are noisy, so the run is
best-of-5 and the asserted ceiling carries a small noise allowance on
top of the 5% budget; the recorded JSON keeps the raw ratio.
"""

import json
import pathlib
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_audit.json"

CONFIG = ExperimentConfig(
    duration=60.0,
    warmup=20.0,
    n_nodes=4,
    seed=5,
)

#: The issue's overhead budget for auditing-enabled runs.
MAX_AUDIT_OVERHEAD = 0.05
#: Timer-noise allowance for the assertion (the budget itself is what
#: gets recorded and tracked across CI runs).
NOISE_ALLOWANCE = 0.05


def _timed(config: ExperimentConfig, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_scheme("protean", config)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_audit_overhead_off_vs_on():
    off_seconds, off_result = _timed(CONFIG)
    on_seconds, on_result = _timed(CONFIG.with_overrides(audit=True))
    overhead = on_seconds / off_seconds - 1.0

    report = on_result.audit
    assert report is not None and report.ok
    # Auditing must observe, never perturb: bit-identical summaries.
    assert off_result.summary.row() == on_result.summary.row()

    payload = {
        "benchmark": "audit_overhead",
        "scheme": "protean",
        "duration": CONFIG.duration,
        "n_nodes": CONFIG.n_nodes,
        "audit_off_seconds": round(off_seconds, 3),
        "audit_on_seconds": round(on_seconds, 3),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_AUDIT_OVERHEAD,
        "sweeps": report.sweeps,
        "requests_audited": report.admitted,
        "violations": len(report.violations),
    }
    existing = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    existing["audit_overhead"] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {BENCH_PATH}]")

    assert overhead < MAX_AUDIT_OVERHEAD + NOISE_ALLOWANCE, (
        f"audit overhead {overhead * 100:.1f}% exceeds the "
        f"{(MAX_AUDIT_OVERHEAD + NOISE_ALLOWANCE) * 100:.0f}% ceiling"
    )
