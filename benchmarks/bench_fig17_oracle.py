"""Benchmark regenerating Figure 17 (PROTEAN vs Oracle)."""

from repro.experiments.figures import fig17_oracle


def test_fig17_oracle(run_figure):
    result = run_figure("fig17_oracle", fig17_oracle)
    for row in result.rows:
        # PROTEAN stays competitive with the offline Oracle: the paper
        # reports a gap of at most ~0.42pp SLO compliance; allow modest
        # noise at the reduced benchmark scale.
        assert abs(row["slo_gap_pp"]) <= 5.0
        assert row["protean_slo_%"] >= 90.0
        assert row["oracle_slo_%"] >= 90.0
