"""Benchmark regenerating Figure 16 (PROTEAN vs GPUlet)."""

from repro.experiments.figures import fig16_gpulet


def test_fig16_gpulet(run_figure):
    result = run_figure("fig16_gpulet", fig16_gpulet)
    for row in result.rows:
        # PROTEAN ahead on every model (paper: up to ~16% more compliant,
        # averaging 99.65%).
        assert row["protean_slo_%"] >= row["gpulet_slo_%"] - 0.5
        assert row["protean_slo_%"] >= 95.0
    gaps = [row["protean_slo_%"] - row["gpulet_slo_%"] for row in result.rows]
    assert max(gaps) >= 2.0  # GPUlet's shared caches/bandwidth cost it
