"""Benchmark regenerating Figure 6 (P99 latency breakdown)."""

from repro.experiments.figures import fig06_tail_breakdown


def test_fig06_tail_breakdown(run_figure):
    result = run_figure("fig06_tail_breakdown", fig06_tail_breakdown)
    by_key = {(row["model"], row["scheme"]): row for row in result.rows}
    models = {row["model"] for row in result.rows}
    for model in models:
        protean = by_key[(model, "protean")]
        infless = by_key[(model, "infless_llama")]
        molecule = by_key[(model, "molecule")]
        # INFless/Llama's tail carries far more interference than PROTEAN
        # (paper: 47% less interference for VGG 19 under PROTEAN).
        assert infless["interference_ms"] > protean["interference_ms"]
        # Molecule's tail is queueing-dominated.
        assert molecule["queue_delay_ms"] > molecule["interference_ms"]
        # PROTEAN has the lowest P99 among the four schemes.
        p99s = [
            by_key[(model, s)]["p99_ms"]
            for s in ("molecule", "naive_slicing", "infless_llama")
        ]
        assert protean["p99_ms"] <= min(p99s) * 1.1
