"""Benchmark the tenancy machinery's overhead on a Figure-5-style run.

The tenancy issue's budget: multiplexer + WFQ overhead <5% versus a
single-tenant run at equal request count. The baseline arm is the
degenerate tenanted run — one tenant, FIFO policy — and the measured arm
is two equal tenants under WFQ with admission on: same request stream
length, same models, only the multi-tenant machinery (share-draw
multiplexing, SFQ tagging + per-dispatch ordering, per-tenant admission
ledgers) differs.

The untenanted default path is deliberately NOT the baseline here — it
is pinned bit-identical in tests/tenancy/test_default_path.py, which is
the stronger statement — but its wall-clock ratio is recorded in the
JSON as ``vs_untenanted_fraction`` so the absolute cost of opting into
tenancy stays visible across CI runs.

Wall-clock ratios on shared CI runners are noisy, so each arm is
best-of-5 and the asserted ceiling carries a small noise allowance on
top of the 5% budget; the recorded JSON (``BENCH_tenancy.json``,
uploaded as a CI artifact) keeps the raw ratios.
"""

import json
import pathlib
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.tenancy import TenancySpec, Tenant, TenantSet

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_tenancy.json"

CONFIG = ExperimentConfig(
    duration=60.0,
    warmup=20.0,
    n_nodes=4,
    seed=5,
)

SINGLE = CONFIG.with_overrides(
    tenants=TenancySpec(
        tenant_set=TenantSet((Tenant("alpha"),)),
        policy="fifo",
        admission=True,
    )
)

MULTI = CONFIG.with_overrides(
    tenants=TenancySpec(
        tenant_set=TenantSet((Tenant("alpha"), Tenant("beta"))),
        policy="wfq",
        admission=True,
    )
)

#: The issue's overhead budget for multiplexer + WFQ vs single-tenant.
MAX_TENANCY_OVERHEAD = 0.05
#: Timer-noise allowance for the assertion (the budget itself is what
#: gets recorded and tracked across CI runs).
NOISE_ALLOWANCE = 0.05


def _timed(config: ExperimentConfig, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_scheme("protean", config)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_tenancy_overhead_multi_vs_single_tenant():
    untenanted_seconds, untenanted = _timed(CONFIG)
    single_seconds, single = _timed(SINGLE)
    multi_seconds, multi = _timed(MULTI)
    overhead = multi_seconds / single_seconds - 1.0

    # Equal request count across all three arms: the multiplexer tags
    # the stream, it must never grow or shrink it.
    assert len(single.measured) == len(untenanted.measured)
    assert len(multi.measured) == len(untenanted.measured)
    report = multi.tenancy
    assert report is not None
    assert untenanted.tenancy is None
    served = {o.tenant_id: o.requests for o in report.outcomes}
    assert served["alpha"] > 0 and served["beta"] > 0

    payload = {
        "benchmark": "tenancy_overhead",
        "scheme": "protean",
        "duration": CONFIG.duration,
        "n_nodes": CONFIG.n_nodes,
        "untenanted_seconds": round(untenanted_seconds, 3),
        "single_tenant_seconds": round(single_seconds, 3),
        "multi_tenant_wfq_seconds": round(multi_seconds, 3),
        "overhead_fraction": round(overhead, 4),
        "vs_untenanted_fraction": round(
            multi_seconds / untenanted_seconds - 1.0, 4
        ),
        "budget_fraction": MAX_TENANCY_OVERHEAD,
        "requests_served": sum(served.values()),
        "fairness_index": round(report.fairness_index, 4),
    }
    existing = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    existing["tenancy_overhead"] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {BENCH_PATH}]")

    assert overhead < MAX_TENANCY_OVERHEAD + NOISE_ALLOWANCE, (
        f"multi-tenant WFQ overhead {overhead * 100:.1f}% vs single-tenant "
        f"exceeds the "
        f"{(MAX_TENANCY_OVERHEAD + NOISE_ALLOWANCE) * 100:.0f}% ceiling"
    )
