"""Benchmark regenerating Figure 15 (tightened SLO target)."""

from repro.experiments.figures import fig15_tight_slo


def test_fig15_tight_slo(run_figure):
    result = run_figure("fig15_tight_slo", fig15_tight_slo)
    cell = {(row["model"], row["target"]): row for row in result.rows}
    models = {row["model"] for row in result.rows}
    for model in models:
        loose = cell[(model, "slo_3x")]
        tight = cell[(model, "slo_2x")]
        # PROTEAN degrades the least when the SLO tightens (paper: ≤ ~5%
        # versus up to ~22% for the others).
        protean_drop = loose["protean_slo_%"] - tight["protean_slo_%"]
        assert protean_drop <= 12.0
        # PROTEAN keeps the lead under the tight target.
        for scheme in ("molecule", "naive_slicing", "infless_llama"):
            assert tight["protean_slo_%"] >= tight[f"{scheme}_slo_%"] - 1.0
        # Paper: PROTEAN bottoms out around 94.38% (ResNet 50).
        assert tight["protean_slo_%"] >= 85.0
