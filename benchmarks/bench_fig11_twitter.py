"""Benchmark regenerating Figure 11 (erratic Twitter trace, MobileNet)."""

from repro.experiments.figures import fig11_twitter


def test_fig11_twitter(run_figure):
    result = run_figure("fig11_twitter", fig11_twitter)
    rows = {row["scheme"]: row for row in result.rows}
    # PROTEAN achieves the highest compliance under surges (paper: 99.90%).
    for scheme in ("molecule", "naive_slicing", "infless_llama"):
        assert rows["protean"]["slo_%"] >= rows[scheme]["slo_%"] - 0.5
    assert rows["protean"]["slo_%"] >= 90.0
    # PROTEAN's tail is far below the surge-hit MPS-only and time-share
    # schemes (the paper attributes this to reordering cutting queueing
    # by ~69% versus INFless/Llama).
    assert rows["protean"]["p99_ms"] <= rows["infless_llama"]["p99_ms"]
    assert rows["protean"]["p99_ms"] <= rows["molecule"]["p99_ms"]
