"""Benchmark regenerating Table 5 (100% best-effort case)."""

from repro.experiments.figures import tab05_all_be


def test_tab05_all_be(run_figure):
    result = run_figure("tab05_all_be", tab05_all_be)
    rows = {row["scheme"]: row for row in result.rows}
    # PROTEAN's median BE latency matches or beats the other spatial
    # schemes (paper: best overall at 35 ms; Molecule's time-shared
    # single-batch service wins the median at this load in our model —
    # see EXPERIMENTS.md).
    for scheme in ("naive_slicing", "infless_llama"):
        assert rows["protean"]["be_p50_ms"] <= rows[scheme]["be_p50_ms"] + 1.0
    # But PROTEAN's P99 is NOT the best — it deprioritizes BE requests
    # (paper: others beat it by up to 28% at the tail).
    best_other_p99 = min(
        rows[s]["be_p99_ms"]
        for s in ("molecule", "naive_slicing", "infless_llama")
    )
    assert rows["protean"]["be_p99_ms"] >= best_other_p99 * 0.95
