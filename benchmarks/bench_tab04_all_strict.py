"""Benchmark regenerating Table 4 (100% strict case, ResNet 50)."""

from repro.experiments.figures import tab04_all_strict


def test_tab04_all_strict(run_figure):
    result = run_figure("tab04_all_strict", tab04_all_strict)
    rows = {row["scheme"]: row for row in result.rows}
    # PROTEAN contains the all-HI self-interference (paper: 94.19%).
    assert rows["protean"]["slo_%"] >= 90.0
    assert rows["protean"]["slo_%"] > rows["molecule"]["slo_%"]
    # INFless/Llama is adversely affected by all-HI MPS co-location
    # (paper: 0.42%) — clearly below PROTEAN.
    assert rows["infless_llama"]["slo_%"] < rows["protean"]["slo_%"] - 20.0
    # Note: Naive Slicing lands near PROTEAN here (unlike the paper's
    # 54.31%) — with an all-ResNet50 stream the memory-proportional
    # spread behaves almost like PROTEAN's placement; see EXPERIMENTS.md.
    assert rows["naive_slicing"]["slo_%"] >= 0.0
