"""Benchmark regenerating Figure 10 (throughput and utilization)."""

from repro.experiments.figures import fig10_throughput_util


def test_fig10_throughput_util(run_figure):
    result = run_figure("fig10_throughput_util", fig10_throughput_util)
    cell = {(row["panel"], row["scheme"]): row for row in result.rows}
    # (a) PROTEAN's strict throughput is at least on par with everyone
    # (paper: up to 24% higher).
    panel_a = "a:throughput"
    protean_thru = cell[(panel_a, "protean")]["strict_rps_per_gpu"]
    for scheme in ("molecule", "naive_slicing", "infless_llama"):
        assert protean_thru >= cell[(panel_a, scheme)]["strict_rps_per_gpu"] * 0.98
    # (b) Molecule's memory utilization is far below the MPS schemes
    # (paper: 8% vs ~39-42%).
    panel_b = "b:utilization"
    molecule_mem = cell[(panel_b, "molecule")]["mem_util_%"]
    for scheme in ("protean", "naive_slicing", "infless_llama"):
        assert cell[(panel_b, scheme)]["mem_util_%"] > molecule_mem
