"""Benchmark regenerating Figure 3 (normalized FBRs + measured recovery)."""

import pytest

from repro.experiments.figures import fig03_fbr


def test_fig03_fbr(run_figure):
    result = run_figure("fig03_fbr", fig03_fbr)
    rows = {row["model"]: row for row in result.rows}
    assert len(rows) == 22
    # Figure 3 shape: every LI bar below every HI bar; VHI above vision.
    li = [r["fbr"] for r in rows.values() if r["category"] == "LI"]
    hi = [r["fbr"] for r in rows.values() if r["category"] == "HI"]
    vhi = [r["fbr"] for r in rows.values() if r["category"] == "VHI"]
    assert max(li) < min(hi)
    vision_mean = (sum(li) + sum(hi)) / (len(li) + len(hi))
    vhi_mean = sum(vhi) / len(vhi)
    assert vhi_mean / vision_mean == pytest.approx(1.59, abs=0.08)
    # GPT-2 is the normalization peak.
    assert rows["OpenAI GPT-2"]["normalized_fbr"] == 1.0
    # Measured FBRs (profiling pipeline) recover the ground truth.
    for row in rows.values():
        if "measured_fbr" in row:
            assert row["measured_fbr"] == pytest.approx(row["fbr"], abs=0.03)
