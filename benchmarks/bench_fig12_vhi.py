"""Benchmark regenerating Figure 12 (VHI / LLM models)."""

from repro.experiments.figures import fig12_vhi


def test_fig12_vhi(run_figure):
    result = run_figure("fig12_vhi", fig12_vhi)
    # PROTEAN (almost) always wins — paper: up to ~93% more compliance.
    for row in result.rows:
        for scheme in ("molecule", "naive_slicing", "infless_llama"):
            assert row["protean_slo_%"] >= row[f"{scheme}_slo_%"] - 2.0
    # INFless/Llama is the worst-affected on average (paper mean: 5.92%).
    infless_mean = sum(r["infless_llama_slo_%"] for r in result.rows) / len(
        result.rows
    )
    protean_mean = sum(r["protean_slo_%"] for r in result.rows) / len(
        result.rows
    )
    assert infless_mean < protean_mean - 20.0
    assert infless_mean < 60.0
