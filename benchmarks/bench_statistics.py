"""Reproduce the paper's statistical-significance analysis (Section 7).

The paper reports, across repeated runs: narrow confidence intervals
(<0.1% ranges), p-values ≈ 0 between schemes, and very large Cohen's d
(7.80–304.37). We run PROTEAN and Molecule(beta) over five seeds and
compute the same statistics.
"""

import math

from repro.experiments.figures.common import base_config
from repro.experiments.runner import run_scheme
from repro.metrics.stats import cohens_d, confidence_interval, welch_t_test
from repro.metrics.summary import format_table

SEEDS = (0, 1, 2, 3, 4)


def test_statistical_significance(benchmark, save_figure):
    def collect():
        samples = {"protean": [], "molecule": []}
        for seed in SEEDS:
            config = base_config(
                True,
                strict_model="resnet50",
                trace="wiki",
                duration=60.0,
                warmup=20.0,
                seed=seed,
            )
            for scheme in samples:
                result = run_scheme(scheme, config)
                samples[scheme].append(result.summary.slo_percent)
        return samples

    samples = benchmark.pedantic(collect, rounds=1, iterations=1)
    protean, molecule = samples["protean"], samples["molecule"]
    ci_protean = confidence_interval(protean)
    ci_molecule = confidence_interval(molecule)
    t_stat, p_value = welch_t_test(protean, molecule)
    effect = cohens_d(protean, molecule)

    rows = [
        {
            "metric": "protean SLO% (mean ± CI95 half-width)",
            "value": f"{ci_protean.mean:.2f} ± {ci_protean.half_width:.3f}",
        },
        {
            "metric": "molecule SLO% (mean ± CI95 half-width)",
            "value": f"{ci_molecule.mean:.2f} ± {ci_molecule.half_width:.3f}",
        },
        {"metric": "Welch t", "value": f"{t_stat:.2f}"},
        {"metric": "p-value", "value": f"{p_value:.2e}"},
        {"metric": "Cohen's d", "value": f"{effect:.2f}"},
    ]

    class _Result:
        def table(self):
            return format_table(rows, title="Section 7 statistics (5 seeds)")

    save_figure("statistics", _Result())

    # Paper Section 7: p ≈ 0 (significant at 0.05), Cohen's d in
    # [7.80, 304.37]. At benchmark scale Molecule's per-seed variance is
    # larger than on the authors' long traces, so we assert "very large"
    # (≥ 5) rather than the paper's exact lower bound.
    assert p_value < 0.05
    assert math.isinf(effect) or abs(effect) >= 5.0
    # PROTEAN's CI is narrow (the paper reports <0.1% ranges; allow some
    # slack at benchmark scale).
    assert ci_protean.half_width <= 2.0
    assert ci_protean.lower > ci_molecule.upper  # non-overlapping CIs
