"""Benchmark regenerating Table 3 (spot vs on-demand pricing)."""

import pytest

from repro.experiments.figures import tab03_pricing


def test_tab03_pricing(run_figure):
    result = run_figure("tab03_pricing", tab03_pricing)
    by_provider = {row["provider"]: row for row in result.rows}
    assert by_provider["AWS"]["savings_%"] == pytest.approx(69.99, abs=0.05)
    assert by_provider["Microsoft Azure"]["savings_%"] == pytest.approx(
        45.01, abs=0.05
    )
    assert by_provider["Google Cloud"]["savings_%"] == pytest.approx(
        70.70, abs=0.05
    )
    # Paper: savings up to ~71% versus on-demand.
    assert max(r["savings_%"] for r in result.rows) <= 71.0
