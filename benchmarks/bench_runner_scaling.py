"""Benchmark the parallel runner: serial vs fanned wall-clock + events/sec.

Times the same four-scheme comparison work-list serially (live
``run_scheme`` loop, which also exposes the simulator's event counters)
and through ``execute_runs(jobs=min(4, cpu_count))``, asserts
bit-identical summaries, and records wall-clock, speedup, and events/sec
into ``BENCH_runner.json`` at the repo root (uploaded as a CI artifact).

The benchmark is host-aware: on a single-core container the parallel
path degenerates to one worker, so the fanned leg is skipped entirely
and the record carries ``"speedup": null`` plus the measured
``cpu_count`` — a 1-worker "parallel" timing would only advertise
process-spawn overhead as a slowdown. CI's multi-core runners are where
the recorded speedup is meaningful — the issue's bar is >= 2.5x with 4
workers, and equivalence against the serial run is enforced whenever
the fanned leg runs.
"""

import json
import pathlib
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scheme
from repro.parallel import RunRequest, cpu_jobs, execute_runs

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_runner.json"

CONFIG = ExperimentConfig(
    duration=40.0,
    warmup=10.0,
    drain=80.0,
    n_nodes=4,
    seed=9,
)

SCHEMES = ("molecule", "naive_slicing", "infless_llama", "protean")


def test_parallel_scaling_and_equivalence():
    cpu_count = cpu_jobs()
    fan_jobs = min(4, cpu_count)

    start = time.perf_counter()
    serial = [run_scheme(name, CONFIG) for name in SCHEMES]
    serial_s = time.perf_counter() - start
    events = sum(r.platform.sim.events_processed for r in serial)

    if cpu_count > 1:
        requests = [
            RunRequest(key=name, scheme=name, config=CONFIG)
            for name in SCHEMES
        ]
        start = time.perf_counter()
        fanned = execute_runs(requests, jobs=fan_jobs)
        fanned_s = time.perf_counter() - start

        # Equivalence first — speed means nothing if the bits differ.
        for one, many in zip(serial, fanned):
            assert one.summary.row() == many.summary.row()
            assert one.extras == many.extras
        speedup = serial_s / fanned_s if fanned_s else 0.0
        parallel_s = round(fanned_s, 3)
        speedup_record = round(speedup, 3)
    else:
        # Single-CPU host: one worker cannot speed anything up, so the
        # fanned leg is skipped and the record says so explicitly.
        speedup = None
        parallel_s = None
        speedup_record = None

    payload = {
        "benchmark": "runner_scaling",
        "schemes": list(SCHEMES),
        "cpu_count": cpu_count,
        "jobs": fan_jobs,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": parallel_s,
        "speedup": speedup_record,
        "events_processed": events,
        "serial_events_per_sec": round(events / serial_s) if serial_s else 0,
    }
    existing = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    existing["runner_scaling"] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {BENCH_PATH}]")

    if fan_jobs >= 4 and speedup is not None:
        # The acceptance bar from the issue: >= 2.5x on a 4-core runner.
        assert speedup >= 2.5, f"speedup {speedup:.2f}x below 2.5x bar"
