"""Benchmark regenerating Figure 7 (dynamic geometry selection)."""

from repro.experiments.figures import fig07_reconfig_snapshot


def test_fig07_reconfig_snapshot(run_figure):
    result = run_figure("fig07_reconfig_snapshot", fig07_reconfig_snapshot)
    # The rotating BE model (including DPN 92) must trigger at least one
    # geometry change during the window.
    assert result.extra["reconfigurations"] >= 1
    # The latency series exists and strict latency stays mostly in SLO.
    series = result.extra["series"]
    assert len(series) > 30
    slo_ms = result.extra["slo_ms"]
    within = sum(1 for point in series if point["p95_ms"] <= slo_ms)
    assert within / len(series) >= 0.8
