"""Benchmark fixtures: run figures once, save tables under results/."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def save_figure():
    """Persist a FigureResult's table to results/<figure-id>.txt."""

    def _save(figure_id, result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{figure_id}.txt"
        text = result.table()
        extras = getattr(result, "render_extras", lambda: "")()
        if extras:
            text += "\n\n" + extras
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


@pytest.fixture
def run_figure(benchmark, save_figure):
    """Benchmark one figure module's quick run and save its table."""

    def _run(figure_id, module):
        result = benchmark.pedantic(
            lambda: module.run(quick=True), rounds=1, iterations=1
        )
        save_figure(figure_id, result)
        return result

    return _run


def column(rows, name):
    """Extract one column from FigureResult rows."""
    return [row[name] for row in rows]
