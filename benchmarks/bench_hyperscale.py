"""Benchmark the hyperscale path: event lanes and the vectorised engine.

Two measurements, recorded in ``BENCH_hyperscale.json``:

- *steady_state_lane*: a Simulator run whose steady-state timers live in
  one numpy :class:`~repro.simulation.lanes.EventLane` instead of the
  heap. The ISSUE's acceptance bar is >= 10x the seed's serial dispatch
  rate (54k events/sec -> floor 540k lane entries/sec); the asserted
  floor sits there deliberately even though the lane typically clears
  tens of millions per second, because shared CI runners are noisy.
- *engine_full_scale*: the 1000-node / 100k-rps / 24-h
  :class:`~repro.hyperscale.HyperscaleConfig` run with auditing on,
  which must finish inside the 10-minute budget.

As with the other benches, the floors are conservative; the recorded
values are the real signal across commits.
"""

import json
import pathlib
import time

import numpy as np

from repro.hyperscale import HyperscaleConfig, run_hyperscale
from repro.simulation.simulator import Simulator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_hyperscale.json"

#: Steady-state lane entries in the lane benchmark.
N_LANE_EVENTS = 2_000_000

#: Floor: 10x the seed's 54k events/sec serial dispatch rate.
MIN_LANE_RATE = 540_000

#: Wall-clock budget (seconds) for the full-scale engine run.
MAX_FULL_SCALE_SECONDS = 600.0


def _bench_steady_state_lane():
    sim = Simulator(seed=0)
    times = np.arange(1, N_LANE_EVENTS + 1, dtype=np.float64) * 1e-3
    state = {"entries": 0, "chunks": 0}

    def on_chunk(chunk):
        state["entries"] += chunk.size
        state["chunks"] += 1

    sim.add_lane(times, on_chunk, label="steady-state timers")
    # A sprinkling of heap events so the run exercises the interleaved
    # loop (chunk boundaries at every heap timestamp), not a single take.
    for k in range(1, 101):
        sim.after(k * (N_LANE_EVENTS * 1e-3) / 100, lambda: None)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert state["entries"] == N_LANE_EVENTS
    return state["entries"], state["chunks"], elapsed


def _bench_engine_full_scale():
    config = HyperscaleConfig.full()
    start = time.perf_counter()
    report = run_hyperscale(config, jobs=1)
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_hyperscale_throughput():
    entries, chunks, lane_s = _bench_steady_state_lane()
    report, engine_s = _bench_engine_full_scale()
    lane_rate = entries / lane_s
    payload = {
        "benchmark": "hyperscale",
        "lane_events": entries,
        "lane_chunks": chunks,
        "lane_events_per_sec": round(lane_rate),
        "full_scale_nodes": report.n_nodes,
        "full_scale_arrivals": report.total_arrivals,
        "full_scale_seconds": round(engine_s, 2),
        "full_scale_arrivals_per_sec": round(report.total_arrivals / engine_s),
        "full_scale_slo_attainment": round(report.slo_attainment, 4),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {BENCH_PATH}]")

    assert lane_rate > MIN_LANE_RATE
    assert engine_s < MAX_FULL_SCALE_SECONDS
