"""Benchmark regenerating Figure 8 (latency CDF, SENet 18)."""

from repro.experiments.figures import fig08_latency_cdf


def test_fig08_latency_cdf(run_figure):
    result = run_figure("fig08_latency_cdf", fig08_latency_cdf)
    rows = {row["scheme"]: row for row in result.rows}
    slo_ms = result.extra["slo_ms"]
    # PROTEAN stays within the SLO through P99 (flat curve).
    assert rows["protean"]["p99_ms"] <= slo_ms
    assert rows["protean"]["within_slo_at_p99"]
    # Molecule's curve rises progressively: far beyond the SLO at P99.
    assert rows["molecule"]["p99_ms"] > slo_ms
    # Monotone percentiles per scheme (sanity of the CDF).
    for row in rows.values():
        probes = [row[f"p{p}_ms"] for p in (50, 80, 90, 95, 99)]
        assert probes == sorted(probes)
    # Full curves available for plotting.
    assert set(result.extra["curves"]) == set(rows)
