"""Benchmark the capacity planner's pre-screen against exhaustive search.

The planner's value proposition is pruning: the analytic pre-screen must
eliminate a large share of the candidate grid (the ISSUE-5 bar is ≥50%
on the seeded benchmark grid) without ever changing the recommendation
an exhaustive sweep would make. Both properties are asserted here, and
the measured numbers — prune ratio, wall-clock of the staged planner vs
simulating every candidate — land in ``BENCH_planner.json`` at the repo
root (uploaded as a CI artifact).

Wall-clock ratios on shared CI runners are noisy, so no speedup is
asserted — only recorded; correctness (same recommendation) and the
prune ratio are the hard gates.
"""

import json
import pathlib
import time

from repro.capacity import CandidateGrid, plan, simulated_optimum

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_planner.json"

#: The benchmark grid: every procurement mode over the default cluster
#: sizes, the smoke workload's demand.
GRID = CandidateGrid(
    n_nodes=(2, 4, 6, 8, 12),
    procurement=("on_demand_only", "hybrid", "spot_only"),
    schemes=("protean",),
)

TARGET = 0.99

#: The issue's pruning bar for the pre-screen on this grid.
MIN_PRUNE_RATIO = 0.5


def test_planner_prunes_without_changing_the_answer():
    start = time.perf_counter()
    staged = plan("smoke", grid=GRID, target=TARGET, jobs=1)
    staged_seconds = time.perf_counter() - start

    start = time.perf_counter()
    exhaustive = plan(
        "smoke", grid=GRID, target=TARGET, jobs=1, exhaustive=True
    )
    exhaustive_seconds = time.perf_counter() - start

    optimum = simulated_optimum(exhaustive.outcomes, TARGET)
    assert staged.recommended == optimum, (
        f"staged planner recommended {staged.recommended}, exhaustive "
        f"ground truth is {optimum}"
    )
    assert staged.prune_ratio >= MIN_PRUNE_RATIO, (
        f"prune ratio {staged.prune_ratio:.2f} below the "
        f"{MIN_PRUNE_RATIO:.0%} bar ({staged.prune_counts})"
    )

    payload = {
        "benchmark": "capacity_planner",
        "workload": "smoke",
        "target": TARGET,
        "candidates": len(staged.outcomes),
        "pruned": staged.prune_counts,
        "prune_ratio": round(staged.prune_ratio, 4),
        "simulated_staged": staged.simulated_count,
        "simulated_exhaustive": exhaustive.simulated_count,
        "recommended": staged.recommended,
        "staged_seconds": round(staged_seconds, 3),
        "exhaustive_seconds": round(exhaustive_seconds, 3),
        "speedup": round(exhaustive_seconds / staged_seconds, 2),
    }
    existing = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    existing["capacity_planner"] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {BENCH_PATH}]")
