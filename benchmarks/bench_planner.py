"""Benchmark the capacity planner: pruning, vectorised screen, cache.

Three properties back the planner's value proposition, and all three are
measured here with the numbers landing in ``BENCH_planner.json`` at the
repo root (uploaded as a CI artifact):

1. **Pruning**: the analytic pre-screen must eliminate a large share of
   the candidate grid (the ISSUE-5 bar is ≥50% on the seeded benchmark
   grid) without ever changing the recommendation an exhaustive sweep
   would make.
2. **Vectorised screening**: ``analytic_bounds_batch`` must evaluate a
   ≥1000-candidate heterogeneous grid at least 10× faster than the
   scalar ``analytic_bound`` loop while returning bit-identical bounds —
   identity, not approximation, is the gate, since a single differing
   verdict would desynchronise the benchmark path from the planner path.
3. **Simulation cache**: re-planning against a warm
   ``SimulationCache`` must simulate nothing (hit rate 1.0 on the
   second pass).

Wall-clock ratios on shared CI runners are noisy, so the staged-vs-
exhaustive planner speedup is only recorded, not asserted; the batch
screen's 10× bar is wide enough (the measured margin is orders of
magnitude) to stay robust on a noisy runner.
"""

import json
import pathlib
import time

from repro.capacity import (
    GRID_PRESETS,
    CandidateGrid,
    SimulationCache,
    analytic_bound,
    analytic_bounds_batch,
    plan,
    resolve_workload,
    simulated_optimum,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_planner.json"


def _record(section: str, payload: dict) -> None:
    existing = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    existing[section] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {BENCH_PATH}]")

#: The benchmark grid: every procurement mode over the default cluster
#: sizes, the smoke workload's demand.
GRID = CandidateGrid(
    n_nodes=(2, 4, 6, 8, 12),
    procurement=("on_demand_only", "hybrid", "spot_only"),
    schemes=("protean",),
)

TARGET = 0.99

#: The issue's pruning bar for the pre-screen on this grid.
MIN_PRUNE_RATIO = 0.5


def test_planner_prunes_without_changing_the_answer():
    start = time.perf_counter()
    staged = plan("smoke", grid=GRID, target=TARGET, jobs=1)
    staged_seconds = time.perf_counter() - start

    start = time.perf_counter()
    exhaustive = plan(
        "smoke", grid=GRID, target=TARGET, jobs=1, exhaustive=True
    )
    exhaustive_seconds = time.perf_counter() - start

    optimum = simulated_optimum(exhaustive.outcomes, TARGET)
    assert staged.recommended == optimum, (
        f"staged planner recommended {staged.recommended}, exhaustive "
        f"ground truth is {optimum}"
    )
    assert staged.prune_ratio >= MIN_PRUNE_RATIO, (
        f"prune ratio {staged.prune_ratio:.2f} below the "
        f"{MIN_PRUNE_RATIO:.0%} bar ({staged.prune_counts})"
    )

    # Cache column: a warm re-plan must simulate nothing.
    cache = SimulationCache()
    plan("smoke", grid=GRID, target=TARGET, jobs=1, cache=cache)
    cold_stats = cache.stats()
    start = time.perf_counter()
    warm = plan("smoke", grid=GRID, target=TARGET, jobs=1, cache=cache)
    warm_seconds = time.perf_counter() - start
    assert warm.recommended == staged.recommended
    warm_hits = warm.cache_stats["hits"] - cold_stats["hits"]
    warm_misses = warm.cache_stats["misses"] - cold_stats["misses"]
    assert warm_misses == 0, "a warm cache must not re-simulate anything"

    payload = {
        "benchmark": "capacity_planner",
        "workload": "smoke",
        "target": TARGET,
        "candidates": len(staged.outcomes),
        "pruned": staged.prune_counts,
        "prune_ratio": round(staged.prune_ratio, 4),
        "simulated_staged": staged.simulated_count,
        "simulated_exhaustive": exhaustive.simulated_count,
        "recommended": staged.recommended,
        "staged_seconds": round(staged_seconds, 3),
        "exhaustive_seconds": round(exhaustive_seconds, 3),
        "speedup": round(exhaustive_seconds / staged_seconds, 2),
        "cache": {
            "cold_hit_rate": cold_stats["hit_rate"],
            "warm_replan_hits": warm_hits,
            "warm_replan_misses": warm_misses,
            "warm_replan_hit_rate": 1.0 if warm_hits else 0.0,
            "warm_replan_seconds": round(warm_seconds, 3),
        },
    }
    _record("capacity_planner", payload)


def test_vectorised_screen_is_10x_faster_and_bit_identical():
    workload = resolve_workload("wiki")
    grid = GRID_PRESETS["hetero-wide"]
    candidates = grid.candidates(workload)
    assert len(candidates) >= 1000, (
        f"hetero-wide grid shrank to {len(candidates)} candidates"
    )

    start = time.perf_counter()
    batched = analytic_bounds_batch(candidates)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar = [analytic_bound(candidate) for candidate in candidates]
    scalar_seconds = time.perf_counter() - start

    # Bit identity, not approximation: one differing bound could flip a
    # screen verdict between the scalar and vectorised paths.
    mismatches = sum(
        1
        for one, many in zip(scalar, batched)
        if (
            one.utilization,
            one.attainment_upper,
            one.attainment_lower,
            one.est_hourly_cost,
        )
        != (
            many.utilization,
            many.attainment_upper,
            many.attainment_lower,
            many.est_hourly_cost,
        )
    )
    assert mismatches == 0, f"{mismatches} bounds differ bitwise"

    speedup = scalar_seconds / batch_seconds if batch_seconds else float("inf")
    assert speedup >= 10.0, (
        f"batched screen only {speedup:.1f}x faster than scalar at "
        f"{len(candidates)} candidates (bar: 10x)"
    )

    payload = {
        "benchmark": "vectorised_screen",
        "workload": "wiki",
        "grid": "hetero-wide",
        "candidates": len(candidates),
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "scalar_candidates_per_sec": round(
            len(candidates) / scalar_seconds
        ),
        "batch_candidates_per_sec": round(len(candidates) / batch_seconds),
        "speedup": round(speedup, 1),
        "bitwise_mismatches": mismatches,
    }
    _record("vectorised_screen", payload)
