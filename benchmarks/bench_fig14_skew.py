"""Benchmark regenerating Figure 14 (skewed strictness ratios)."""

from repro.experiments.figures import fig14_skew


def test_fig14_skew(run_figure):
    result = run_figure("fig14_skew", fig14_skew)
    for row in result.rows:
        # PROTEAN outperforms every other scheme in every scenario.
        for scheme in ("molecule", "naive_slicing", "infless_llama"):
            assert row["protean_slo_%"] >= row[f"{scheme}_slo_%"] - 1.0
    cell = {(row["scenario"], row["model"]): row for row in result.rows}
    # BE-skewed DPN 92: LI best-effort majority causes little trouble —
    # every MPS scheme performs well (paper: >= 98.56%).
    be_dpn = cell[("be_skewed", "dpn92")]
    for scheme in ("naive_slicing", "infless_llama", "protean"):
        assert be_dpn[f"{scheme}_slo_%"] >= 85.0
    # PROTEAN stays clearly usable even in its hardest cell, the
    # strict-skewed HI-majority case (paper: 93.78% for DPN 92; at the
    # reduced benchmark scale the HI self-interference bites harder).
    for row in result.rows:
        assert row["protean_slo_%"] >= 60.0
