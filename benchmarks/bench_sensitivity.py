"""Sensitivity sweeps over PROTEAN's tunables (not a paper artifact).

Sweeps the knobs the paper fixes by fiat — the EWMA smoothing factor, the
reconfiguration wait limit, and INFless/Llama's consolidation depth — to
show the reproduction is robust around the chosen operating points.
"""

from repro.baselines.infless_llama import InflessLlamaScheme
from repro.core.protean import ProteanScheme
from repro.core.reconfigurator import ReconfiguratorConfig
from repro.experiments.figures.common import base_config
from repro.experiments.runner import build_specs, run_scheme
from repro.metrics.summary import format_table


class _Result:
    def __init__(self, rows, title):
        self.rows, self.title = rows, title

    def table(self):
        return format_table(self.rows, title=self.title)


def test_ewma_alpha_and_wait_limit_sensitivity(benchmark, save_figure):
    config = base_config(
        True,
        strict_model="shufflenet_v2",
        be_pool=("dpn92", "mobilenet", "resnet18"),
        trace="wiki",
        duration=80.0,
        warmup=20.0,
    )
    specs = build_specs(config)

    def sweep():
        rows = []
        for alpha in (0.1, 0.3, 0.7):
            for wait_limit in (1, 3, 6):
                scheme = ProteanScheme(
                    reconfigurator_config=ReconfiguratorConfig(
                        ewma_alpha=alpha, wait_limit=wait_limit
                    )
                )
                result = run_scheme(scheme, config, specs=specs)
                rows.append(
                    {
                        "alpha": alpha,
                        "wait_limit": wait_limit,
                        "slo_%": round(result.summary.slo_percent, 2),
                        "p99_ms": round(result.summary.strict_p99 * 1000, 1),
                        "reconfigs": result.summary.reconfigurations,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_figure("sensitivity_protean", _Result(rows, "PROTEAN knob sweep"))
    # Robustness: every operating point stays highly compliant.
    assert all(row["slo_%"] >= 90.0 for row in rows)
    # Hysteresis works: a larger wait limit never reconfigures more often
    # than wait_limit=1 at the same alpha.
    by_alpha = {}
    for row in rows:
        by_alpha.setdefault(row["alpha"], {})[row["wait_limit"]] = row
    for group in by_alpha.values():
        assert group[6]["reconfigs"] <= group[1]["reconfigs"]


def test_consolidation_depth_controls_infless_damage(benchmark, save_figure):
    config = base_config(
        True, strict_model="vgg19", trace="constant", duration=80.0,
        warmup=20.0,
    )
    specs = build_specs(config)

    def sweep():
        rows = []
        for limit in (2, 4, 6, 8):
            scheme = InflessLlamaScheme()
            scheme.consolidation_limit = limit
            result = run_scheme(scheme, config, specs=specs)
            rows.append(
                {
                    "consolidation_limit": limit,
                    "slo_%": round(result.summary.slo_percent, 2),
                    "p99_ms": round(result.summary.strict_p99 * 1000, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_figure(
        "sensitivity_consolidation",
        _Result(rows, "INFless/Llama consolidation depth"),
    )
    # Deeper consolidation monotonically (within noise) hurts compliance —
    # the paper's core criticism of MPS-only packing.
    assert rows[0]["slo_%"] >= rows[-1]["slo_%"]
    assert rows[-1]["p99_ms"] >= rows[0]["p99_ms"]
