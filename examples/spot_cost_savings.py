"""Spot-market cost optimization (the paper's Figure 9 scenario).

Runs the same PROTEAN workload under three hosting policies — on-demand
only, PROTEAN's hybrid spot+on-demand, and aggressive spot-only — across
the paper's three spot-availability regimes, and prints dollar cost,
savings, and the SLO compliance each policy sustains.

Usage::

    python examples/spot_cost_savings.py
"""

from repro.experiments import ExperimentConfig, run_scheme
from repro.metrics import format_table

POLICIES = ("on_demand_only", "hybrid", "spot_only")
AVAILABILITY = ("high", "moderate", "low")


def main() -> None:
    rows = []
    for availability in AVAILABILITY:
        for policy in POLICIES:
            config = ExperimentConfig(
                strict_model="resnet50",
                trace="constant",
                duration=90.0,
                warmup=20.0,
                procurement=policy,
                spot_availability=availability,
                spot_check_interval=30.0,
            )
            result = run_scheme("protean", config)
            summary = result.summary
            rows.append(
                {
                    "availability": availability,
                    "policy": policy,
                    "slo_%": round(summary.slo_percent, 2),
                    "cost_$": round(summary.total_cost, 4),
                    "savings_%": round(summary.cost_savings_fraction * 100, 1),
                    "evictions": result.extras["evictions"],
                    "nodes_at_end": result.extras["nodes_at_end"],
                }
            )
    print(format_table(rows, title="Hosting policy x spot availability"))
    print(
        "\nHybrid hosting banks the spot discount whenever the market has "
        "capacity, but never sacrifices SLO compliance to get it — the "
        "spot-only policy does, collapsing under low availability."
    )


if __name__ == "__main__":
    main()
