"""Extending the platform: write your own scheduling scheme.

The platform is scheme-agnostic — a scheme is just (a) an initial MIG
geometry, (b) a sharing mode, and (c) a per-node scheduler with two
hooks: queue ordering and slice placement. This example implements a
"least-occupied slice" scheduler from scratch, registers nothing anywhere
(schemes are plain objects), and races it against PROTEAN.

Usage::

    python examples/custom_scheduler.py
"""

from typing import Optional

from repro.experiments import ExperimentConfig, build_specs, run_scheme
from repro.experiments.runner import run_comparison
from repro.gpu import GEOMETRY_4G_3G, Geometry, ShareMode
from repro.metrics import format_table
from repro.serverless import (
    NodeScheduler,
    Placement,
    PlatformConfig,
    RequestBatch,
    Scheme,
    ServerlessPlatform,
)
from repro.cluster.pricing import VMTier
from repro.simulation import Simulator


class LeastOccupiedScheduler(NodeScheduler):
    """Place every batch on the slice with the fewest running jobs."""

    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        candidates = [
            s
            for s in self.node.gpu.slices
            if self.fits_now(batch, s)
        ]
        if not candidates:
            return None
        target = min(candidates, key=lambda s: len(s.running_jobs))
        return self.standard_placement(batch, target)


class LeastOccupiedScheme(Scheme):
    """Static (4g, 3g) + MPS + least-occupied placement."""

    name = "least_occupied"
    share_mode = ShareMode.MPS

    def initial_geometry(self) -> Geometry:
        return GEOMETRY_4G_3G

    def create_scheduler(self, platform, node, pool) -> LeastOccupiedScheduler:
        return LeastOccupiedScheduler(
            platform.sim, node, pool, platform.record_batch_completion
        )


def run_custom(config: ExperimentConfig) -> dict:
    """Drive the custom scheme through the raw platform API."""
    specs = build_specs(config)
    sim = Simulator(config.seed)
    platform = ServerlessPlatform(
        sim, LeastOccupiedScheme(), PlatformConfig(n_nodes=config.n_nodes)
    )
    platform.provision_initial(VMTier.ON_DEMAND)
    platform.inject(specs)
    sim.run(until=config.duration + config.drain)
    platform.finalize()
    strict = [
        r
        for r in platform.collector.strict()
        if config.warmup <= r.arrival < config.duration
    ]
    met = sum(1 for r in strict if r.slo_met)
    import numpy as np

    return {
        "scheme": "least_occupied (custom)",
        "slo_%": round(100.0 * met / max(len(strict), 1), 2),
        "strict_p99_ms": round(
            float(np.percentile([r.latency for r in strict], 99)) * 1000, 1
        ),
    }


def main() -> None:
    config = ExperimentConfig(
        strict_model="resnet50", trace="wiki", duration=90.0, warmup=30.0
    )
    rows = [run_custom(config)]
    for name, result in run_comparison(["naive_slicing", "protean"], config).items():
        rows.append(
            {
                "scheme": name,
                "slo_%": round(result.summary.slo_percent, 2),
                "strict_p99_ms": round(result.summary.strict_p99 * 1000, 1),
            }
        )
    print(format_table(rows, title="Custom scheme vs built-ins"))
    print(
        "\nLeast-occupied placement balances job counts but ignores both "
        "strictness and the slowdown model — PROTEAN's Eq. 2 placement "
        "should match or beat it."
    )


if __name__ == "__main__":
    main()
