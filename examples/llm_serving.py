"""Serving generative LLMs with SLOs (the paper's Figure 13 scenario).

GPT-2 strict requests (very high FBR) share the cluster with a rotating
cast of BERT-family best-effort models. MPS-only consolidation collapses
here — GPT-level bandwidth demand makes co-location devastating — while
PROTEAN's MIG isolation keeps the strict stream compliant.

Usage::

    python examples/llm_serving.py [--model gpt2]
"""

import argparse

from repro.experiments import ExperimentConfig, run_comparison
from repro.metrics import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="gpt2", choices=["gpt1", "gpt2", "bert", "albert"]
    )
    parser.add_argument("--duration", type=float, default=120.0)
    args = parser.parse_args()

    config = ExperimentConfig(
        strict_model=args.model,
        trace="wiki",
        scale=1.0,  # LLM batch size is already 4
        duration=args.duration,
        warmup=min(40.0, args.duration / 3),
    )
    model = config.strict_profile()
    print(
        f"{model.display_name}: FBR {model.fbr:.2f}, batch latency "
        f"{model.solo_latency_7g * 1000:.0f} ms on 7g, SLO "
        f"{model.slo_target() * 1000:.0f} ms\n"
    )
    results = run_comparison(["infless_llama", "molecule", "protean"], config)
    rows = []
    for scheme, result in results.items():
        summary = result.summary
        tail = summary.tail_breakdown
        rows.append(
            {
                "scheme": scheme,
                "slo_%": round(summary.slo_percent, 2),
                "p99_ms": round(summary.strict_p99 * 1000, 1),
                "tail_interference_ms": round(tail.interference * 1000, 1),
                "tail_queueing_ms": round(tail.queue_delay * 1000, 1),
            }
        )
    print(format_table(rows, title=f"Strict {model.display_name} serving"))
    print(
        "\nThe MPS-only scheme absorbs the full co-location interference; "
        "PROTEAN trades a little resource deficiency for isolation."
    )


if __name__ == "__main__":
    main()
