"""A day of vision inference serving, compressed.

Simulates a full diurnal cycle of image-classification traffic (VGG 19
strict requests under SLO, rotating LI best-effort models) against the
whole scheme roster, then prints the paper's headline comparison plus the
tail-latency decomposition that explains *why* each scheme behaves the
way it does.

Usage::

    python examples/vision_serving_day.py [--model vgg19] [--duration 180]
"""

import argparse

from repro.experiments import COMPARISON_SCHEMES, ExperimentConfig, run_comparison
from repro.metrics import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg19", help="strict model name")
    parser.add_argument("--duration", type=float, default=180.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = ExperimentConfig(
        strict_model=args.model,
        trace="wiki",
        duration=args.duration,
        warmup=min(60.0, args.duration / 3),
        seed=args.seed,
    )
    print(
        f"Serving {args.model} (SLO = "
        f"{config.strict_profile().slo_target() * 1000:.0f} ms) for "
        f"{args.duration:.0f}s of diurnal traffic on "
        f"{config.n_nodes} GPUs at {config.request_rate():.0f} rps...\n"
    )
    results = run_comparison(list(COMPARISON_SCHEMES), config)

    rows = [results[s].summary.row() for s in COMPARISON_SCHEMES]
    print(format_table(rows, title="Headline comparison"))

    breakdown_rows = []
    for scheme in COMPARISON_SCHEMES:
        tail = results[scheme].summary.tail_breakdown
        row = {"scheme": scheme}
        row.update(
            {k: round(v * 1000, 1) for k, v in tail.as_dict().items()}
        )
        breakdown_rows.append(row)
    print()
    print(
        format_table(
            breakdown_rows, title="Tail (P99) latency breakdown, ms"
        )
    )


if __name__ == "__main__":
    main()
