"""Offline MIG geometry planning with the analytic sweep API.

Given an expected workload mix, sweep every valid A100 geometry and rank
them by expected strict-request slowdown — the "multiple offline
configuration/scheduling sweeps" the paper's Oracle performs, exposed as
a library call. Also shows the same decision on an H100-80GB, where the
doubled slice memory changes which geometries are feasible.

Usage::

    python examples/geometry_planning.py
"""

from repro.gpu import H100_80GB, enumerate_geometries
from repro.gpu.planner import BatchStream, best_geometry, evaluate_geometry
from repro.metrics import format_table
from repro.workloads import get_model


def main() -> None:
    streams = [
        BatchStream(get_model("vgg19"), batches_per_second=4.0, strict=True),
        BatchStream(get_model("mobilenet"), batches_per_second=6.0, strict=False),
        BatchStream(get_model("dpn92"), batches_per_second=2.0, strict=False),
    ]
    print(
        "Workload: strict VGG 19 @4 batches/s, BE MobileNet @6 + DPN 92 @2\n"
    )

    rows = []
    for geometry in enumerate_geometries():
        evaluation = evaluate_geometry(geometry, streams)
        rows.append(
            {
                "geometry": repr(geometry),
                "eta_mean": round(evaluation.strict_slowdown, 3),
                "feasible": evaluation.feasible,
            }
        )
    rows.sort(key=lambda r: r["eta_mean"])
    print(format_table(rows[:8], title="Top geometries by expected strict slowdown"))

    winner = best_geometry(streams)
    print(f"\nPlanner pick: {winner.geometry!r} (η̄={winner.strict_slowdown:.3f})")
    print("Placements:")
    for model, slices in winner.placements.items():
        print(f"  {model:12s} -> {', '.join(slices) or '(nowhere!)'}")

    print("\nSame sweep, H100-80GB slice capacities:")
    # The planner reads capacities from the profiles carried by slices;
    # for an offline what-if we evaluate with H100 profiles directly.
    from repro.gpu.device_models import geometry_profiles
    from repro.gpu.mig import GEOMETRY_4G_2G_1G

    a100 = [p.memory_gb for p in GEOMETRY_4G_2G_1G.profiles]
    h100 = [p.memory_gb for p in geometry_profiles(GEOMETRY_4G_2G_1G.kinds, H100_80GB)]
    print(f"  (4g,2g,1g) slice memory: A100 {a100} GB  vs  H100 {h100} GB")
    print(
        "  On H100 the DPN 92 stream (11 GB/batch) fits the 2g slice, so\n"
        "  BE packing no longer spills into the strict slices."
    )


if __name__ == "__main__":
    main()
