"""Quickstart: compare PROTEAN against a baseline in ~20 seconds.

Runs PROTEAN and the INFless/Llama serving policy on the same request
stream (ResNet-50 strict requests, rotating low-interference best-effort
models, Wiki-like diurnal trace on an 8-GPU cluster) and prints the
headline metrics the paper reports: SLO compliance, tail latency, and
GPU/memory utilization.

Usage::

    python examples/quickstart.py
"""

from repro.experiments import ExperimentConfig, run_comparison
from repro.metrics import format_table


def main() -> None:
    config = ExperimentConfig(
        strict_model="resnet50",
        trace="wiki",
        duration=60.0,
        warmup=20.0,
        n_nodes=8,
        seed=7,
    )
    results = run_comparison(["infless_llama", "protean"], config)
    rows = [result.summary.row() for result in results.values()]
    print(format_table(rows, title="PROTEAN vs INFless/Llama (ResNet 50)"))
    protean = results["protean"].summary
    infless = results["infless_llama"].summary
    print(
        f"\nPROTEAN meets the SLO for {protean.slo_percent:.2f}% of strict "
        f"requests vs {infless.slo_percent:.2f}% for INFless/Llama "
        f"({protean.slo_percent - infless.slo_percent:+.2f} pp), with "
        f"{(1 - protean.strict_p99 / infless.strict_p99) * 100:.0f}% lower "
        "P99 latency."
    )


if __name__ == "__main__":
    main()
