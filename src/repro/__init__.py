"""PROTEAN reproduction — SLO-compliant, cost-effective GPU serverless.

A faithful, simulation-backed reproduction of *"Towards SLO-Compliant and
Cost-Effective Serverless Computing on Emerging GPU Architectures"*
(MIDDLEWARE 2024). The package provides:

- ``repro.simulation`` — deterministic discrete-event kernel;
- ``repro.gpu``        — MIG/MPS substrate and the paper's slowdown model;
- ``repro.workloads``  — the 22 ML inference workload profiles;
- ``repro.traces``     — Wiki-like / Twitter-like request trace generators;
- ``repro.cluster``    — worker nodes, spot market, pricing, cost model;
- ``repro.serverless`` — gateway, dispatcher, containers, batching;
- ``repro.core``       — the PROTEAN policies (reordering, autoscaling,
  job distribution, GPU reconfiguration, cost-aware procurement);
- ``repro.baselines``  — Molecule(beta), INFless/Llama, Naïve Slicing,
  GPUlet, Oracle, and Spot-Only comparison schemes;
- ``repro.metrics``    — SLO compliance, tail latency breakdowns, cost;
- ``repro.experiments``— runners reproducing every evaluation figure/table.

Quickstart::

    from repro.experiments import run_scheme, ExperimentConfig

    config = ExperimentConfig(strict_model="resnet50", duration=120.0)
    result = run_scheme("protean", config)
    print(result.summary.slo_percent, result.summary.strict_p99)
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
