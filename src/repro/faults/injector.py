"""The fault injector: executes a :class:`FaultPlan` against a live run.

The injector is armed after initial provisioning and schedules one
simulator event per fault (plus one per window end). Every injection and
every windowed recovery is emitted as a ``fault.*`` span so the recorded
span log carries the full failure timeline — the recovery invariants in
:mod:`repro.faults.invariants` are asserted purely on that log.

Determinism: all randomness (node picks, start-failure draws, admission
jitter) comes from one named RNG stream (``"faults"`` by convention),
derived from the experiment seed. The same seed and plan therefore
reproduce the same faults bit-for-bit, and an *empty* plan draws nothing
— a run with ``EMPTY_PLAN`` is bit-identical to a run with faults
disabled (pinned by the regression tests).

Span taxonomy (all ``category="fault"``, ``track="fault"``):

- ``fault.node_crash`` — instant; attrs ``node``, ``tier``, ``stranded``.
- ``fault.slow_slice`` — interval spanning the degradation window;
  attrs ``node``, ``multiplier``.
- ``fault.container_start_window`` — interval; attr ``failures`` on end.
- ``fault.container_start_fail`` — instant per failed boot attempt.
- ``fault.network_delay`` — interval; attr ``delayed`` on end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.node import NodeState, WorkerNode
from repro.errors import FaultError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.observability.span import CATEGORY_FAULT
from repro.observability.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.procurement import Procurement
    from repro.serverless.platform import ServerlessPlatform


class FaultInjector:
    """Schedules and executes the faults of one plan against one run."""

    def __init__(
        self,
        platform: "ServerlessPlatform",
        procurement: "Procurement",
        plan: FaultPlan,
        *,
        rng: np.random.Generator,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.platform = platform
        self.procurement = procurement
        self.plan = plan
        self.rng = rng
        self.tracer = tracer
        self._armed = False
        self._ctr_injected = tracer.telemetry.counter("faults.injected")
        # Outcome statistics (surfaced in ExperimentResult.extras).
        self.faults_injected = 0
        self.crashes_injected = 0
        self.slow_slice_windows = 0
        self.start_failures_injected = 0
        self.delayed_admissions = 0
        self.skipped_no_target = 0
        # The gateway holds a single delay provider and the platform a
        # single start interceptor, so same-kind windows must not overlap.
        for kind in (FaultKind.NETWORK_DELAY, FaultKind.CONTAINER_START_FAILURE):
            windows = sorted(
                (s.at, s.until) for s in plan.faults if s.kind is kind
            )
            for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
                if next_start < prev_end:
                    raise FaultError(
                        f"overlapping {kind.value} windows in plan"
                    )

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every fault in the plan on the simulator clock."""
        if self._armed:
            raise FaultError("fault injector already armed")
        self._armed = True
        for spec in self.plan.ordered():
            self.platform.sim.at(
                spec.at,
                lambda s=spec: self._inject(s),
                label=f"fault-{spec.kind.value}",
            )

    def _inject(self, spec: FaultSpec) -> None:
        self.faults_injected += 1
        self._ctr_injected.inc()
        if spec.kind is FaultKind.NODE_CRASH:
            self._inject_crash(spec)
        elif spec.kind is FaultKind.SLOW_SLICE:
            self._inject_slow_slice(spec)
        elif spec.kind is FaultKind.CONTAINER_START_FAILURE:
            self._inject_start_failures(spec)
        elif spec.kind is FaultKind.NETWORK_DELAY:
            self._inject_network_delay(spec)
        else:  # pragma: no cover - exhaustive over FaultKind
            raise FaultError(f"unhandled fault kind {spec.kind!r}")

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------
    def _pick_node(self, spec: FaultSpec) -> WorkerNode | None:
        """The target node, by name or by seeded draw over live nodes."""
        candidates = [
            n
            for n in self.platform.cluster.nodes
            if n.state is not NodeState.RETIRED
        ]
        if spec.target:
            for node in candidates:
                if node.name == spec.target:
                    return node
            return None
        if not candidates:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]

    # ------------------------------------------------------------------
    # Fault implementations
    # ------------------------------------------------------------------
    def _inject_crash(self, spec: FaultSpec) -> None:
        node = self._pick_node(spec)
        if node is None:
            self.skipped_no_target += 1
            return
        stranded = node.gpu.occupancy
        if self.tracer.enabled:
            self.tracer.instant(
                "fault.node_crash",
                category=CATEGORY_FAULT,
                track="fault",
                node=node.name,
                tier=node.vm.tier.value,
                stranded=stranded,
            )
        self.crashes_injected += 1
        self.procurement.handle_crash(node)

    def _inject_slow_slice(self, spec: FaultSpec) -> None:
        node = self._pick_node(spec)
        if node is None:
            self.skipped_no_target += 1
            return
        gpu = node.gpu
        span = self.tracer.begin(
            "fault.slow_slice",
            category=CATEGORY_FAULT,
            track="fault",
            node=node.name,
            multiplier=spec.multiplier,
        )
        gpu.set_slowdown(spec.multiplier)
        self.slow_slice_windows += 1

        def recover() -> None:
            # The node may have been retired (evicted/crashed) meanwhile;
            # the overlay sits on its GPU object, so lifting it is safe
            # either way.
            gpu.set_slowdown(1.0)
            self.tracer.end(span)

        self.platform.sim.after(spec.duration, recover, label="fault-recover")

    def _inject_start_failures(self, spec: FaultSpec) -> None:
        span = self.tracer.begin(
            "fault.container_start_window",
            category=CATEGORY_FAULT,
            track="fault",
            probability=spec.failure_probability,
        )
        window_failures = 0

        def intercept(cold_start_seconds: float) -> float:
            nonlocal window_failures
            retry = spec.retry_seconds or cold_start_seconds
            extra = 0.0
            # Geometric retries, capped so a probability-1 spec cannot
            # stall a boot forever.
            for _ in range(self._MAX_START_RETRIES):
                if self.rng.random() >= spec.failure_probability:
                    break
                extra += retry
                window_failures += 1
                self.start_failures_injected += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        "fault.container_start_fail",
                        category=CATEGORY_FAULT,
                        track="fault",
                        retry_in_s=retry,
                    )
            return extra

        self.platform.set_container_start_interceptor(intercept)

        def recover() -> None:
            self.platform.set_container_start_interceptor(None)
            self.tracer.end(span, failures=window_failures)

        self.platform.sim.after(spec.duration, recover, label="fault-recover")

    #: Cap on consecutive failed boot attempts per container start.
    _MAX_START_RETRIES = 5

    def _inject_network_delay(self, spec: FaultSpec) -> None:
        gateway = self.platform.gateway
        span = self.tracer.begin(
            "fault.network_delay",
            category=CATEGORY_FAULT,
            track="fault",
            delay_s=spec.delay_seconds,
            jitter_s=spec.jitter_seconds,
        )
        window_delayed = 0

        def provider() -> float:
            nonlocal window_delayed
            window_delayed += 1
            self.delayed_admissions += 1
            jitter = (
                float(self.rng.random()) * spec.jitter_seconds
                if spec.jitter_seconds > 0
                else 0.0
            )
            return spec.delay_seconds + jitter

        gateway.delay_provider = provider

        def recover() -> None:
            gateway.delay_provider = None
            self.tracer.end(span, delayed=window_delayed)

        self.platform.sim.after(spec.duration, recover, label="fault-recover")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Outcome counters for ExperimentResult.extras."""
        return {
            "faults_injected": self.faults_injected,
            "fault_crashes": self.crashes_injected,
            "fault_slow_slice_windows": self.slow_slice_windows,
            "fault_start_failures": self.start_failures_injected,
            "fault_delayed_admissions": self.delayed_admissions,
            "fault_skipped_no_target": self.skipped_no_target,
        }
