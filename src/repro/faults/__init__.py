"""Fault injection: seeded, declarative failure schedules for the
simulated platform, plus recovery invariants over the recorded spans.

Typical use::

    from repro.faults import FaultKind, FaultPlan, FaultSpec, check_recovery

    plan = FaultPlan((FaultSpec(FaultKind.NODE_CRASH, at=60.0),))
    config = ExperimentConfig(tracing=True, fault_plan=plan,
                              procurement="hybrid")
    result = run_scheme("protean", config)
    report = check_recovery(result.tracer.spans,
                            sla_seconds=config.provision_seconds + 1.0)
    assert report.ok

or from the CLI: ``python -m repro faults fig9 --plan plan.json``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    DEFAULT_FAULT_NAMES,
    DEFAULT_RECOVERY_NAME,
    RecoveryMatch,
    RecoveryReport,
    assert_recovery,
    check_recovery,
)
from repro.faults.plan import (
    EMPTY_PLAN,
    FaultKind,
    FaultPlan,
    FaultSpec,
    demo_plan,
)

__all__ = [
    "DEFAULT_FAULT_NAMES",
    "DEFAULT_RECOVERY_NAME",
    "EMPTY_PLAN",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RecoveryMatch",
    "RecoveryReport",
    "assert_recovery",
    "check_recovery",
    "demo_plan",
]
