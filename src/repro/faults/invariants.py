"""Recovery invariants asserted on the recorded span log.

The paper's spot-market claim (Section 4.5, Figure 9) only holds if every
capacity loss is healed within the provisioning SLA. With tracing on, the
span log carries the whole failure timeline, so the invariant is checked
*after* a run, on data, rather than inside the simulation:

    every fault span (``fault.node_crash``, ``spot.drain``) must be
    followed by a ``procure.node_built`` span within ``sla_seconds``.

Matching is one-to-one and greedy in time order: each recovery span heals
at most one fault, so two crashes need two replacement nodes — a single
rebuild cannot silently satisfy both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import FaultRecoveryError
from repro.observability.span import Span

#: Span names that represent a capacity loss needing a rebuilt node.
DEFAULT_FAULT_NAMES = ("fault.node_crash", "spot.drain")

#: Span name that represents the corresponding recovery.
DEFAULT_RECOVERY_NAME = "procure.node_built"


@dataclass(frozen=True)
class RecoveryMatch:
    """One fault span paired with the recovery span that healed it."""

    fault: Span
    recovery: Span
    #: Seconds from fault start to recovery (span start to span start).
    delay: float


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one invariant check over a span log."""

    matches: tuple[RecoveryMatch, ...]
    #: Fault spans with no recovery span inside the SLA.
    violations: tuple[Span, ...]
    sla_seconds: float

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def max_delay(self) -> float:
        """Worst observed fault→recovery delay (0.0 with no faults)."""
        return max((m.delay for m in self.matches), default=0.0)

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"{len(self.matches)} fault(s) recovered within "
            f"{self.sla_seconds:.1f}s SLA"
            + (f" (worst {self.max_delay:.1f}s)" if self.matches else "")
        ]
        for span in self.violations:
            lines.append(
                f"VIOLATION: {span.name} at t={span.start:.1f}s "
                f"({span.attrs.get('node', '?')}) never recovered in time"
            )
        return "\n".join(lines)


def check_recovery(
    spans: Iterable[Span],
    *,
    sla_seconds: float,
    fault_names: Sequence[str] = DEFAULT_FAULT_NAMES,
    recovery_name: str = DEFAULT_RECOVERY_NAME,
) -> RecoveryReport:
    """Walk ``spans`` and match each fault to a recovery within the SLA.

    ``sla_seconds`` is typically ``provision_seconds`` plus a small slack
    for same-instant event ordering. Faults are processed in start-time
    order; each claims the earliest unclaimed recovery span whose start
    lies in ``[fault.start, fault.start + sla_seconds]``.
    """
    span_list = list(spans)
    faults = sorted(
        (s for s in span_list if s.name in fault_names), key=lambda s: s.start
    )
    recoveries = sorted(
        (s for s in span_list if s.name == recovery_name),
        key=lambda s: s.start,
    )
    claimed = [False] * len(recoveries)
    matches: list[RecoveryMatch] = []
    violations: list[Span] = []
    for fault in faults:
        found = None
        for index, recovery in enumerate(recoveries):
            if claimed[index] or recovery.start < fault.start:
                continue
            if recovery.start > fault.start + sla_seconds:
                break  # sorted: no later recovery can qualify either
            found = index
            break
        if found is None:
            violations.append(fault)
        else:
            claimed[found] = True
            matches.append(
                RecoveryMatch(
                    fault=fault,
                    recovery=recoveries[found],
                    delay=recoveries[found].start - fault.start,
                )
            )
    return RecoveryReport(tuple(matches), tuple(violations), sla_seconds)


def assert_recovery(
    spans: Iterable[Span],
    *,
    sla_seconds: float,
    fault_names: Sequence[str] = DEFAULT_FAULT_NAMES,
    recovery_name: str = DEFAULT_RECOVERY_NAME,
) -> RecoveryReport:
    """:func:`check_recovery`, raising :class:`FaultRecoveryError` on any
    violation. Returns the (clean) report otherwise."""
    report = check_recovery(
        spans,
        sla_seconds=sla_seconds,
        fault_names=fault_names,
        recovery_name=recovery_name,
    )
    if not report.ok:
        raise FaultRecoveryError(report.describe())
    return report
