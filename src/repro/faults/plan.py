"""Declarative fault plans: what to break, when, and for how long.

A :class:`FaultPlan` is a seeded-deterministic schedule of simulated
faults threaded through ``ExperimentConfig`` and executed by the
:class:`~repro.faults.injector.FaultInjector`. Four fault kinds cover the
failure modes that matter for the paper's spot-VM claims (Section 4.5):

- ``node_crash`` — a VM vanishes with *no* notice (host failure). Unlike
  a spot eviction there is no drain window: running work is stranded and
  resubmitted, and procurement must build a replacement from scratch.
- ``slow_slice`` — every slice of one node's GPU runs ``multiplier``×
  slower for a time window (thermal throttling, ECC retirement).
- ``container_start_failure`` — cold starts in a time window fail with
  some probability and pay a retry delay before eventually booting.
- ``network_delay`` — gateway admission jitter: each request arriving in
  the window is held for a (seeded-random) delay before entering the
  batcher.

Plans are plain data: JSON round-trippable, hashable, and free of any
reference to live simulation objects, so the same plan can be replayed
against any scheme/seed combination.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro.errors import FaultPlanError


class FaultKind(str, Enum):
    """The supported simulated fault types."""

    NODE_CRASH = "node_crash"
    SLOW_SLICE = "slow_slice"
    CONTAINER_START_FAILURE = "container_start_failure"
    NETWORK_DELAY = "network_delay"


#: Fault kinds that occupy a time window (require ``duration > 0``).
_WINDOWED = (
    FaultKind.SLOW_SLICE,
    FaultKind.CONTAINER_START_FAILURE,
    FaultKind.NETWORK_DELAY,
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``target`` names a worker node (e.g. ``"node3"``) for node-scoped
    kinds; empty means the injector picks a random active node from its
    seeded stream. Fields irrelevant to a kind are ignored by it.
    """

    kind: FaultKind
    #: Injection time (simulated seconds from run start).
    at: float
    #: Window length for windowed kinds (slow_slice, start failures,
    #: network delay); ignored by node_crash.
    duration: float = 0.0
    #: Node name for node-scoped kinds ("" = injector picks one).
    target: str = ""
    #: slow_slice: latency multiplier applied to the target GPU (> 1).
    multiplier: float = 2.0
    #: network_delay: fixed admission delay component (seconds).
    delay_seconds: float = 0.0
    #: network_delay: uniform jitter added on top of ``delay_seconds``.
    jitter_seconds: float = 0.0
    #: container_start_failure: probability each boot attempt fails.
    failure_probability: float = 1.0
    #: container_start_failure: delay per failed attempt before the
    #: retry (0 = one extra full cold start per failure).
    retry_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.at < 0:
            raise FaultPlanError(f"fault time must be non-negative, got {self.at}")
        if self.kind in _WINDOWED and self.duration <= 0:
            raise FaultPlanError(
                f"{self.kind.value} needs a positive duration, got {self.duration}"
            )
        if self.kind is FaultKind.SLOW_SLICE and self.multiplier <= 1.0:
            raise FaultPlanError(
                f"slow_slice multiplier must exceed 1, got {self.multiplier}"
            )
        if self.kind is FaultKind.CONTAINER_START_FAILURE and not (
            0.0 < self.failure_probability <= 1.0
        ):
            raise FaultPlanError(
                "failure_probability must lie in (0, 1], got "
                f"{self.failure_probability}"
            )
        if self.kind is FaultKind.NETWORK_DELAY and (
            self.delay_seconds < 0
            or self.jitter_seconds < 0
            or self.delay_seconds + self.jitter_seconds <= 0
        ):
            raise FaultPlanError(
                "network_delay needs non-negative delay/jitter with a "
                "positive sum"
            )
        if self.retry_seconds < 0:
            raise FaultPlanError(
                f"retry_seconds must be non-negative, got {self.retry_seconds}"
            )

    @property
    def until(self) -> float:
        """Window end time (== ``at`` for instantaneous faults)."""
        return self.at + self.duration

    def to_dict(self) -> dict:
        """JSON-ready representation (defaults elided)."""
        payload: dict = {"kind": self.kind.value, "at": self.at}
        defaults = {
            "duration": 0.0,
            "target": "",
            "multiplier": 2.0,
            "delay_seconds": 0.0,
            "jitter_seconds": 0.0,
            "failure_probability": 1.0,
            "retry_seconds": 0.0,
        }
        for name, default in defaults.items():
            value = getattr(self, name)
            if value != default:
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Parse one fault entry, rejecting unknown keys early."""
        if "kind" not in payload or "at" not in payload:
            raise FaultPlanError(f"fault entry needs 'kind' and 'at': {payload}")
        known = {
            "kind", "at", "duration", "target", "multiplier",
            "delay_seconds", "jitter_seconds", "failure_probability",
            "retry_seconds",
        }
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault field(s) {sorted(unknown)} in {payload}"
            )
        try:
            kind = FaultKind(payload["kind"])
        except ValueError as exc:
            raise FaultPlanError(
                f"unknown fault kind {payload['kind']!r}; known: "
                f"{', '.join(k.value for k in FaultKind)}"
            ) from exc
        return cls(**{**payload, "kind": kind})


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of :class:`FaultSpec` entries."""

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def ordered(self) -> tuple[FaultSpec, ...]:
        """Faults sorted by injection time (stable for ties)."""
        return tuple(sorted(self.faults, key=lambda s: s.at))

    def to_dict(self) -> dict:
        return {"faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self, path: str | Path) -> None:
        """Write the plan as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_dict(cls, payload: dict | list) -> "FaultPlan":
        """Parse ``{"faults": [...]}`` or a bare list of fault entries."""
        if isinstance(payload, dict):
            entries = payload.get("faults")
            if entries is None:
                raise FaultPlanError("fault plan object needs a 'faults' list")
        else:
            entries = payload
        if not isinstance(entries, list):
            raise FaultPlanError(f"'faults' must be a list, got {type(entries)}")
        return cls(tuple(FaultSpec.from_dict(entry) for entry in entries))

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid fault plan JSON in {path}: {exc}") from exc
        return cls.from_dict(payload)


#: The no-faults plan (distinct from ``None`` only in type; a run with
#: EMPTY_PLAN is bit-identical to a run with faults disabled).
EMPTY_PLAN = FaultPlan()


def demo_plan(duration: float) -> FaultPlan:
    """A plan touching every fault kind, scaled to a run of ``duration``.

    Used by ``python -m repro faults`` when no ``--plan`` file is given:
    one crash early, a slow-slice window mid-run, a cold-start failure
    window, and admission jitter near the end.
    """
    t = duration / 10.0
    return FaultPlan(
        (
            FaultSpec(FaultKind.NODE_CRASH, at=2 * t),
            FaultSpec(FaultKind.SLOW_SLICE, at=3 * t, duration=2 * t, multiplier=2.5),
            FaultSpec(
                FaultKind.CONTAINER_START_FAILURE,
                at=5 * t,
                duration=2 * t,
                failure_probability=0.5,
                retry_seconds=2.0,
            ),
            FaultSpec(
                FaultKind.NETWORK_DELAY,
                at=7 * t,
                duration=2 * t,
                delay_seconds=0.02,
                jitter_seconds=0.04,
            ),
        )
    )
