"""Figure 15 — SLO compliance under a tightened SLO target (2×).

The deadline shrinks from 3× to 2× the 7g batch latency. Expected shape:
the other schemes degrade considerably (paper: up to ~22% overall) while
PROTEAN loses at most ~5%, bottoming out around 94.38% for ResNet 50.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    run_grid,
)

MODELS = ("resnet50", "shufflenet_v2", "vgg19")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 15."""
    models = MODELS[:2] if quick else MODELS
    targets = ((3.0, "slo_3x"), (2.0, "slo_2x"))
    cases = [
        (
            f"{model}/{label}",
            base_config(
                quick,
                strict_model=model,
                slo_multiplier=multiplier,
                trace="wiki",
            ),
        )
        for model in models
        for multiplier, label in targets
    ]
    grid = run_grid(cases)
    rows = []
    for model in models:
        for _multiplier, label in targets:
            results = grid[f"{model}/{label}"]
            row: dict = {"model": model, "target": label}
            for scheme in SCHEMES:
                row[f"{scheme}_slo_%"] = round(
                    results[scheme].summary.slo_percent, 2
                )
            rows.append(row)
    return FigureResult(
        figure="Figure 15: tightened SLO target (2x vs 3x)",
        rows=rows,
        notes="Expected: protean degrades least when tightening to 2x.",
    )
