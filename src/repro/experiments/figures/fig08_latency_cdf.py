"""Figure 8 — CDF of end-to-end job latencies (SENet 18).

Expected shape: PROTEAN's curve is flat and stays inside the SLO through
P99; INFless/Llama and Naïve Slicing cross the SLO around P80 already;
Molecule(beta) rises progressively (queueing).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    compare,
)

#: CDF probe points reported in the summary table.
PROBES = (50, 80, 90, 95, 99)


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 8."""
    config = base_config(quick, strict_model="senet18", trace="wiki")
    results = compare(config)
    slo_ms = config.strict_profile().slo_target(config.slo_multiplier) * 1000
    rows = []
    curves = {}
    for scheme in SCHEMES:
        result = results[scheme]
        latencies = np.array([r.latency for r in result.measured if r.strict])
        row: dict = {"scheme": scheme}
        for probe in PROBES:
            row[f"p{probe}_ms"] = round(
                float(np.percentile(latencies, probe)) * 1000, 1
            )
        row["within_slo_at_p99"] = bool(row["p99_ms"] <= slo_ms)
        rows.append(row)
        values, fractions = result.cdf()
        curves[scheme] = {
            "latency_ms": (values * 1000).round(2).tolist(),
            "fraction": fractions.round(4).tolist(),
        }
    return FigureResult(
        figure="Figure 8: end-to-end latency CDF (SENet 18)",
        rows=rows,
        notes=f"strict SLO = {slo_ms:.0f} ms; full curves in extra['curves']",
        extra={"curves": curves, "slo_ms": slo_ms},
    )
