"""Figure 17 — PROTEAN versus the offline Oracle.

The Oracle runs PROTEAN's policies with perfect knowledge of the ideal
geometry per BE window and pays no reconfiguration downtime. Expected
shape: Oracle beats PROTEAN by at most ~0.42% SLO compliance and up to
~17% tail latency — PROTEAN stays competitive despite predicting online.
"""

from __future__ import annotations

from repro.experiments.figures.common import FigureResult, base_config, run_grid

MODELS = ("shufflenet_v2", "resnet50", "densenet121")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 17."""
    models = MODELS[:2] if quick else MODELS
    grid = run_grid(
        [
            (model, base_config(quick, strict_model=model, trace="wiki"))
            for model in models
        ],
        schemes=("protean", "oracle"),
    )
    rows = []
    for model in models:
        protean = grid[model]["protean"].summary
        oracle = grid[model]["oracle"].summary
        rows.append(
            {
                "model": model,
                "protean_slo_%": round(protean.slo_percent, 2),
                "oracle_slo_%": round(oracle.slo_percent, 2),
                "slo_gap_pp": round(
                    oracle.slo_percent - protean.slo_percent, 3
                ),
                "protean_p99_ms": round(protean.strict_p99 * 1000, 1),
                "oracle_p99_ms": round(oracle.strict_p99 * 1000, 1),
            }
        )
    return FigureResult(
        figure="Figure 17: PROTEAN vs Oracle",
        rows=rows,
        notes="Expected: oracle ahead by <1pp SLO; small tail advantage.",
    )
