"""Figure 12 — SLO compliance for the Very-High-Interference (LLM) models.

Sequence-classification LLMs (batch 4, ~128 rps at paper scale) whose
FBRs run ~59% above the vision models. Expected shape: every MPS-based
scheme suffers more than on vision workloads; INFless/Llama collapses
(paper average: 5.92%); PROTEAN stays on top (up to ~93% more compliance),
with Molecule(beta) competitive only where execution dominates queueing
(FlauBERT).
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    run_grid,
)
from repro.workloads import very_high_interference_models

QUICK_MODELS = ("albert", "bert", "flaubert")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 12."""
    if quick:
        models = QUICK_MODELS
    else:
        models = tuple(
            m.name for m in very_high_interference_models() if not m.generative
        )
    grid = run_grid(
        [
            (
                model,
                base_config(
                    quick,
                    strict_model=model,
                    trace="wiki",
                    scale=1.0,  # language batch size is already 4
                ),
            )
            for model in models
        ]
    )
    rows = []
    for model in models:
        row: dict = {"model": model}
        for scheme in SCHEMES:
            row[f"{scheme}_slo_%"] = round(
                grid[model][scheme].summary.slo_percent, 2
            )
        rows.append(row)
    return FigureResult(
        figure="Figure 12: SLO compliance, VHI (LLM) models",
        rows=rows,
        notes="Expected: infless_llama lowest on average; protean highest.",
    )
