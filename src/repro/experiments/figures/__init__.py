"""Per-figure/table experiment definitions (one module per paper artifact).

Each module exposes ``run(quick=True) -> FigureResult``. The mapping:

========  ===========================================================
module    paper artifact
========  ===========================================================
fig02     Figure 2 — motivation: five sharing schemes on one GPU
fig03     Figure 3 — normalized FBRs (and measured recovery)
tab03     Table 3 — spot vs on-demand pricing
fig05     Figure 5 — SLO compliance across vision models
fig06     Figure 6 — tail (P99) latency breakdown
fig07     Figure 7 — dynamic geometry-selection snapshot
fig08     Figure 8 — end-to-end latency CDF
fig09     Figure 9 — cost vs SLO under spot availability
fig10     Figure 10 — throughput and GPU/memory utilization
fig11     Figure 11 — erratic (Twitter) trace
fig12     Figure 12 — VHI (LLM) models
fig13     Figure 13 — generative LLMs (GPT-1/2)
fig14     Figure 14 — skewed strictness ratios
tab04     Table 4 — 100% strict case
tab05     Table 5 — 100% best-effort case
fig15     Figure 15 — tightened SLO target
fig16     Figure 16 — versus GPUlet
fig17     Figure 17 — versus Oracle
========  ===========================================================
"""

from repro.experiments.figures import (
    fig02_motivation,
    fig03_fbr,
    fig05_slo_vision,
    fig06_tail_breakdown,
    fig07_reconfig_snapshot,
    fig08_latency_cdf,
    fig09_cost,
    fig10_throughput_util,
    fig11_twitter,
    fig12_vhi,
    fig13_gpt,
    fig14_skew,
    fig15_tight_slo,
    fig16_gpulet,
    fig17_oracle,
    tab03_pricing,
    tab04_all_strict,
    tab05_all_be,
)
from repro.experiments.figures.common import FigureResult

ALL_FIGURES = {
    "fig02": fig02_motivation,
    "fig03": fig03_fbr,
    "tab03": tab03_pricing,
    "fig05": fig05_slo_vision,
    "fig06": fig06_tail_breakdown,
    "fig07": fig07_reconfig_snapshot,
    "fig08": fig08_latency_cdf,
    "fig09": fig09_cost,
    "fig10": fig10_throughput_util,
    "fig11": fig11_twitter,
    "fig12": fig12_vhi,
    "fig13": fig13_gpt,
    "fig14": fig14_skew,
    "tab04": tab04_all_strict,
    "tab05": tab05_all_be,
    "fig15": fig15_tight_slo,
    "fig16": fig16_gpulet,
    "fig17": fig17_oracle,
}

__all__ = ["ALL_FIGURES", "FigureResult"]
