"""Table 4 — SLO compliance for the 100% strict case (ResNet 50).

Every request is strict and targets the same HI model — the 'default'
scenario INFless/Llama were designed for. Expected shape (paper):
Molecule 60.12%, Naïve Slicing 54.31%, INFless/Llama 0.42%, PROTEAN
94.19% — MPS-only consolidation of an all-HI stream is catastrophic,
while PROTEAN's slice isolation contains the self-interference.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    compare,
)

PAPER_VALUES = {
    "molecule": 60.12,
    "naive_slicing": 54.31,
    "infless_llama": 0.42,
    "protean": 94.19,
}


def run(quick: bool = True) -> FigureResult:
    """Regenerate Table 4."""
    config = base_config(
        quick,
        strict_model="resnet50",
        strict_fraction=1.0,
        trace="wiki",
    )
    results = compare(config)
    rows = []
    for scheme in SCHEMES:
        rows.append(
            {
                "scheme": scheme,
                "slo_%": round(results[scheme].summary.slo_percent, 2),
                "paper_slo_%": PAPER_VALUES[scheme],
                "p99_ms": round(results[scheme].summary.strict_p99 * 1000, 1),
            }
        )
    return FigureResult(
        figure="Table 4: 100% strict case (ResNet 50)",
        rows=rows,
        notes="Expected ordering: protean > molecule/naive >> infless.",
    )
