"""Table 3 — on-demand vs spot pricing for an 8×A100 instance.

Static data from the pricing module, with the savings column recomputed —
this is the input the Figure 9 cost projections consume.
"""

from __future__ import annotations

from repro.cluster.pricing import PROVIDERS
from repro.experiments.figures.common import FigureResult


def run(quick: bool = True) -> FigureResult:
    """Regenerate Table 3."""
    rows = []
    seen = set()
    for pricing in PROVIDERS.values():
        if pricing.provider in seen:
            continue
        seen.add(pricing.provider)
        rows.append(
            {
                "provider": pricing.provider,
                "on_demand_$per_h": round(pricing.on_demand_hourly, 4),
                "spot_$per_h": round(pricing.spot_hourly, 4),
                "savings_%": round(pricing.savings_fraction * 100, 2),
            }
        )
    return FigureResult(
        figure="Table 3: 8xA100 hourly pricing",
        rows=rows,
        notes="Paper values: AWS 69.99%, Azure 45.01%, Google Cloud 70.70%.",
    )
