"""Table 3 — on-demand vs spot pricing for an 8×A100 instance.

Static data from the pricing module, with the savings column recomputed —
this is the input the Figure 9 cost projections consume.
"""

from __future__ import annotations

from repro.cluster.pricing import pricing_table_rows
from repro.experiments.figures.common import FigureResult


def run(quick: bool = True) -> FigureResult:
    """Regenerate Table 3."""
    rows = pricing_table_rows()
    return FigureResult(
        figure="Table 3: 8xA100 hourly pricing",
        rows=rows,
        notes="Paper values: AWS 69.99%, Azure 45.01%, Google Cloud 70.70%.",
    )
