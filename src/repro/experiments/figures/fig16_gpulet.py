"""Figure 16 — PROTEAN versus strategic MPS-only usage (GPUlet).

GPUlet caps strict requests at ~60–65% of SMs via MPS execution-resource
provisioning, leaving the rest to BE. Expected shape: PROTEAN up to ~16%
more SLO-compliant (average ≈ 99.65%); GPUlet still suffers interference
because caches and memory bandwidth remain shared under MPS.
"""

from __future__ import annotations

from repro.experiments.figures.common import FigureResult, base_config, run_grid

MODELS = ("resnet50", "vgg19", "densenet121", "shufflenet_v2")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 16."""
    models = MODELS[:2] if quick else MODELS
    grid = run_grid(
        [
            (model, base_config(quick, strict_model=model, trace="wiki"))
            for model in models
        ],
        schemes=("gpulet", "protean"),
    )
    rows = []
    for model in models:
        results = grid[model]
        rows.append(
            {
                "model": model,
                "gpulet_slo_%": round(results["gpulet"].summary.slo_percent, 2),
                "protean_slo_%": round(
                    results["protean"].summary.slo_percent, 2
                ),
                "gpulet_p99_ms": round(
                    results["gpulet"].summary.strict_p99 * 1000, 1
                ),
                "protean_p99_ms": round(
                    results["protean"].summary.strict_p99 * 1000, 1
                ),
            }
        )
    return FigureResult(
        figure="Figure 16: PROTEAN vs GPUlet (strategic MPS-only)",
        rows=rows,
        notes="Expected: protean_slo >= gpulet_slo on every row.",
    )
