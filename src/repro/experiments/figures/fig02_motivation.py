"""Figure 2 — the Section 2.2 motivation experiment.

Both workloads run *together* on a single A100 ("The workloads run on a
single A100 GPU"):

- Simplified DLA at 500 rps, batch size 128;
- ALBERT at 6 rps, batch size 4;

with 50% strict / 50% best-effort requests of each workload. Five sharing
schemes are compared: No MPS or MIG, MPS Only, MIG Only, MPS+MIG, and
'Smart' MPS+MIG (the straw-man PROTEAN); all MIG schemes use the (4g, 3g)
geometry. Panels (a) and (b) report each workload's strict requests from
the same combined run.

Expected shape (paper): 'Smart' MPS+MIG achieves the highest compliance
and lowest tail for both workloads; the time-sharing schemes pay heavy
queueing; MPS Only is devastated by interference for ALBERT (its strict
requests share the whole GPU with the heavy DLA stream).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures.common import (
    FigureResult,
    base_config,
    execute_figure_runs,
)
from repro.metrics.breakdown import p99_stacked_breakdown
from repro.metrics.latency import p99
from repro.metrics.slo import slo_compliance_percent
from repro.traces.base import arrival_times, constant_trace
from repro.parallel import RunRequest
from repro.traces.mixing import MixSpec, collapse_to_batches, mix_requests

MOTIVATION_SCHEMES = (
    "no_mps_or_mig",
    "mps_only",
    "mig_only",
    "mps_mig",
    "smart_mps_mig",
)

#: (panel, model, request rate, batch scale factor). Rates are 2× the
#: paper's nominal 500/6 rps: the simulated GPU's absolute capacity is
#: normalized differently from the authors' testbed, and 2× restores the
#: same *relative* pressure (time-sharing saturated, spatial sharing not).
WORKLOADS = (
    ("a:simplified_dla", "simplified_dla", 1000.0, 0.1),
    ("b:albert", "albert", 12.0, 1.0),
)


def _build_specs(config):
    """Merge the DLA and ALBERT request streams into one trace.

    Module-level so it pickles by reference as a ``RunRequest``
    ``specs_builder`` hook; each worker rebuilds the identical merged
    stream from ``config`` alone.
    """
    rng = np.random.default_rng(config.seed)
    specs = []
    for _panel, model, rate, scale in WORKLOADS:
        sub = config.with_overrides(
            strict_model=model, be_pool=(model,), rate=rate, scale=scale
        )
        trace = constant_trace(sub.request_rate(), config.duration)
        arrivals = arrival_times(trace, rng)
        mix = MixSpec(
            strict_model=sub.strict_profile(),
            be_pool=sub.be_profiles(),
            strict_fraction=0.5,
        )
        specs.extend(collapse_to_batches(mix_requests(arrivals, mix, rng)))
    specs.sort(key=lambda s: s.arrival)
    return specs


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 2 (both panels from one combined run per scheme)."""
    config = base_config(
        quick,
        strict_model="simplified_dla",
        be_pool=("simplified_dla", "albert"),  # for container pre-warming
        trace="constant",
        rate=500.0,
        scale=0.1,
        n_nodes=1,
    )
    results = execute_figure_runs(
        [
            RunRequest(
                key=scheme,
                scheme=scheme,
                config=config,
                specs_builder=_build_specs,
            )
            for scheme in MOTIVATION_SCHEMES
        ]
    )
    rows: list[dict] = []
    for scheme in MOTIVATION_SCHEMES:
        result = results[scheme]
        for panel, model, _rate, scale in WORKLOADS:
            name = model  # scaled profiles keep the registry name
            strict = [
                r for r in result.measured if r.strict and r.model == name
            ]
            tail = p99_stacked_breakdown(strict)
            row = {
                "panel": panel,
                "scheme": scheme,
                "slo_%": round(slo_compliance_percent(strict), 2),
                "p99_ms": round(p99(strict) * 1000, 1),
            }
            row.update(
                {
                    f"{component}_ms": round(value * 1000, 1)
                    for component, value in tail.as_dict().items()
                }
            )
            rows.append(row)
    return FigureResult(
        figure="Figure 2: motivation — P99 breakdown vs SLO compliance",
        rows=rows,
        notes=(
            "Expected shape: smart_mps_mig best on both panels; mps_only "
            "worst-hit by interference (especially ALBERT); time-sharing "
            "schemes dominated by queueing."
        ),
    )
