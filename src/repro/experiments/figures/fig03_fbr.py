"""Figure 3 — normalized FBRs of the inference workloads.

The paper plots each model's Fractional Bandwidth Requirement normalized
to the maximum, coloring Low-Interference (LI) and High-Interference (HI)
vision models differently. We additionally *measure* each FBR through the
profiling pipeline (co-location experiments + least squares, Section 3)
to demonstrate that the published methodology recovers the profile values.
"""

from __future__ import annotations

from repro.experiments.figures.common import FigureResult
from repro.workloads import ALL_MODELS, normalized_fbrs
from repro.workloads.profiler import estimate_fbrs


def run(quick: bool = True) -> FigureResult:
    """Regenerate the Figure 3 data (and verify it by measurement)."""
    normalized = normalized_fbrs()
    measure_set = [m for m in ALL_MODELS if m.domain.value == "vision"]
    if quick:
        measure_set = measure_set[:4]
    estimated = estimate_fbrs(measure_set, copies=6)
    rows = []
    for model in ALL_MODELS:
        row = {
            "model": model.display_name,
            "category": model.category.value,
            "fbr": round(model.fbr, 3),
            "normalized_fbr": round(normalized[model.name], 3),
        }
        if model.name in estimated:
            row["measured_fbr"] = round(estimated[model.name], 3)
        rows.append(row)
    return FigureResult(
        figure="Figure 3: normalized FBRs (LI/HI split)",
        rows=rows,
        notes=(
            "measured_fbr columns come from simulated co-location "
            "profiling (Eq. 1 linear systems) and should match fbr."
        ),
    )
