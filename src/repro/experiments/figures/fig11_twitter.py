"""Figure 11 — tail latency breakdown under the erratic Twitter trace.

MobileNet strict requests; Twitter trace scaled so its *peak* hits the
target rate (the mean lands ~35% lower). Expected shape: the sudden
surges find INFless/Llama and Naïve Slicing under-provisioned, adding
queueing to their tails; PROTEAN cuts queueing sharply (paper: ~69% less)
through request reordering and conservative provisioning, reaching ~99.9%
SLO compliance.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    base_config,
    breakdown_columns,
    compare,
)


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 11."""
    config = base_config(
        quick,
        strict_model="mobilenet",
        trace="twitter",
        # Load targets the *peak* for Twitter: at the same nominal level
        # the mean lands ~35% lower than the Wiki experiments.
        offered_load=1.25,
    )
    results = compare(config)
    rows = []
    for scheme, result in results.items():
        row = {
            "scheme": scheme,
            "slo_%": round(result.summary.slo_percent, 2),
            "p99_ms": round(result.summary.strict_p99 * 1000, 1),
        }
        row.update(breakdown_columns(result))
        rows.append(row)
    return FigureResult(
        figure="Figure 11: Twitter (erratic) trace, MobileNet",
        rows=rows,
        notes=(
            "Expected: queueing components visible for infless/naive; "
            "protean's queueing much smaller, compliance near 99.9%."
        ),
    )
