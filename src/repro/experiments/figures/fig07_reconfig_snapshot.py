"""Figure 7 — snapshot of PROTEAN's dynamic geometry selection.

ShuffleNet V2 strict requests with the BE model rotating every ~20 s
through a pool that includes the memory-heavy DPN 92. When DPN 92 enters
rotation its batches no longer fit the (2g, 1g) small slices, spill into
the 4g, and interfere with strict residents; Algorithm 2 then detects the
trend and moves the GPUs to (4g, 3g), dropping the latency back down.

The result carries a per-second strict-latency series and the geometry
change log so the episode can be plotted.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    base_config,
    execute_figure_runs,
)
from repro.metrics.timeline import latency_series
from repro.parallel import RunRequest


def _snapshot_internals(result) -> dict:
    """Worker-side extractor: latency series + geometry change log.

    Runs against the live result (platform attached) before detachment,
    so the per-second series and the reconfigurator's geometry log cross
    the process boundary as plain dicts in ``extras``.
    """
    config = result.config
    records = [r for r in result.collector.records if r.strict]
    series = [
        {"t": t, "p95_ms": round(latency * 1000, 1)}
        for t, latency in latency_series(
            records, bucket_seconds=1.0, percentile=95.0, end=config.duration
        )
    ]
    scheme = result.platform.scheme
    log = [
        {"t": round(t, 1), "node": node, "geometry": repr(geometry)}
        for t, node, geometry in scheme.reconfigurator.geometry_log
    ]
    return {"series": series, "geometry_log": log}


def run(quick: bool = True) -> FigureResult:
    """Regenerate the Figure 7 demonstration."""
    config = base_config(
        quick,
        strict_model="shufflenet_v2",
        be_pool=("dpn92", "mobilenet", "resnet18", "densenet121"),
        trace="constant",
        duration=120.0 if quick else 240.0,
        warmup=0.0,
        rotation_period=20.0,
    )
    result = execute_figure_runs(
        [
            RunRequest(
                key="snapshot",
                scheme="protean",
                config=config,
                postprocess=_snapshot_internals,
            )
        ]
    )["snapshot"]
    series = result.extras["series"]
    log = result.extras["geometry_log"]
    slo_ms = config.strict_profile().slo_target(config.slo_multiplier) * 1000
    return FigureResult(
        figure="Figure 7: dynamic geometry selection snapshot",
        rows=log or [{"t": "-", "node": "-", "geometry": "(no change)"}],
        notes=f"strict SLO = {slo_ms:.0f} ms; latency series in extra['series']",
        extra={
            "series": series,
            "reconfigurations": result.summary.reconfigurations,
            "slo_ms": slo_ms,
        },
    )
