"""Figure 14 — SLO compliance under skewed strictness ratios.

Two scenarios: *Strict-skewed* (75% strict / 25% BE) and *BE-skewed*
(25% / 75%), each for ShuffleNet V2 (LI) and DPN 92 (HI). Expected shape:
PROTEAN wins every cell; in the strict-skewed DPN 92 case the MPS schemes
suffer (strict HI majority interferes with itself); in the BE-skewed
cases every scheme does well for DPN 92 (LI BE majority causes little
interference) while Naïve Slicing stays high for ShuffleNet V2 (it is
barely hurt by resource deficiency).
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    run_grid,
)

SCENARIOS = (("strict_skewed", 0.75), ("be_skewed", 0.25))
MODELS = ("shufflenet_v2", "dpn92")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 14 (both panels)."""
    models = MODELS if not quick else MODELS
    cases = [
        (
            f"{scenario}/{model}",
            base_config(
                quick,
                strict_model=model,
                strict_fraction=fraction,
                trace="wiki",
            ),
        )
        for scenario, fraction in SCENARIOS
        for model in models
    ]
    grid = run_grid(cases)
    rows = []
    for scenario, _fraction in SCENARIOS:
        for model in models:
            results = grid[f"{scenario}/{model}"]
            row: dict = {"scenario": scenario, "model": model}
            for scheme in SCHEMES:
                row[f"{scheme}_slo_%"] = round(
                    results[scheme].summary.slo_percent, 2
                )
            rows.append(row)
    return FigureResult(
        figure="Figure 14: skewed strictness ratios",
        rows=rows,
        notes="Expected: protean >= every other scheme in every row.",
    )
