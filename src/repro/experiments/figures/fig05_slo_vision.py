"""Figure 5 — SLO compliance of all schemes for all vision models.

Wiki trace, 50/50 strict/BE mix, BE from the opposite interference
category. Expected shape: PROTEAN highest everywhere (≥ ~94%), with up to
~62% more compliance than Molecule(beta), up to ~32% more than Naïve
Slicing, and large gaps over INFless/Llama for HI strict models.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    run_grid,
)
from repro.workloads import vision_models

#: Representative quick-mode roster: two HI and two LI models.
QUICK_MODELS = ("resnet50", "vgg19", "shufflenet_v2", "mobilenet")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 5."""
    models = (
        QUICK_MODELS if quick else tuple(m.name for m in vision_models())
    )
    # Work-list: the full model x scheme cross product in one batch.
    grid = run_grid(
        [
            (model, base_config(quick, strict_model=model, trace="wiki"))
            for model in models
        ]
    )
    rows = []
    for model in models:
        results = grid[model]
        row: dict = {"model": model}
        for scheme in SCHEMES:
            row[f"{scheme}_slo_%"] = round(results[scheme].summary.slo_percent, 2)
        rows.append(row)
    return FigureResult(
        figure="Figure 5: SLO compliance, all schemes x vision models",
        rows=rows,
        notes="Expected: protean column dominates every row.",
    )
