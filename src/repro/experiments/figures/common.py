"""Shared plumbing for the per-figure experiment modules.

Every figure module exposes ``run(quick=True) -> FigureResult``. Quick mode
shrinks durations/model rosters so a figure regenerates in seconds (the
benchmark suite runs all of them); full mode matches the paper's breadth.

Figures declare their experiment runs as **work-lists** of
:class:`~repro.parallel.RunRequest` entries (via :func:`compare`,
:func:`run_grid`, or an explicit list through :func:`execute_figure_runs`)
instead of invoking the runner inline. The work-list executes through
:mod:`repro.parallel` — serial by default, fanned across worker processes
under ``--jobs``/``REPRO_JOBS`` — and always hands back *detached*
results: summary + measured records + extras + span log, no live
platform. Figures that need platform internals extract them worker-side
through a module-level ``postprocess`` hook (see Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.breakdown import p99_stacked_breakdown
from repro.metrics.summary import format_table
from repro.parallel import RunRequest, execute_keyed

#: The paper's four cluster-scale comparison schemes, plot order.
SCHEMES = ("molecule", "naive_slicing", "infless_llama", "protean")

#: Default durations (seconds) per mode.
QUICK_DURATION = 60.0
QUICK_WARMUP = 20.0
FULL_DURATION = 240.0
FULL_WARMUP = 60.0


@dataclass
class FigureResult:
    """One regenerated table/figure: rows plus free-form extra series."""

    figure: str
    rows: list[dict]
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def table(self) -> str:
        """Text rendering of the rows."""
        text = format_table(self.rows, title=self.figure)
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def render_extras(self) -> str:
        """ASCII plots of any curve/series data carried in ``extra``.

        Figure 8's CDFs and Figure 7's latency trace become terminal
        plots; returns an empty string when there is nothing plottable.
        """
        from repro.metrics.ascii_plots import ascii_cdf, ascii_series

        parts: list[str] = []
        curves = self.extra.get("curves")
        if curves:
            parts.append(
                ascii_cdf(
                    {
                        name: (curve["latency_ms"], curve["fraction"])
                        for name, curve in curves.items()
                    },
                    slo=self.extra.get("slo_ms"),
                    title="Latency CDF (ms)",
                )
            )
        series = self.extra.get("series")
        if series:
            parts.append(
                ascii_series(
                    [(point["t"], point["p95_ms"]) for point in series],
                    threshold=self.extra.get("slo_ms"),
                    title="Per-second strict P95 latency (ms)",
                )
            )
        return "\n\n".join(parts)


def base_config(quick: bool, **overrides) -> ExperimentConfig:
    """An ExperimentConfig with mode-appropriate duration defaults."""
    defaults = dict(
        duration=QUICK_DURATION if quick else FULL_DURATION,
        warmup=QUICK_WARMUP if quick else FULL_WARMUP,
        drain=120.0 if quick else 240.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def scheme_rows(
    results: dict[str, ExperimentResult], *, extra_columns: dict | None = None
) -> list[dict]:
    """Summary rows (one per scheme) in canonical column order."""
    rows = []
    for name, result in results.items():
        row = result.summary.row()
        if extra_columns:
            for column, getter in extra_columns.items():
                row[column] = getter(result)
        rows.append(row)
    return rows


def compare(
    config: ExperimentConfig, schemes=SCHEMES
) -> dict[str, ExperimentResult]:
    """Run the standard scheme comparison for one workload config.

    Declares one run per scheme and executes the work-list through the
    parallel layer (fan-out width from the ambient ``--jobs`` /
    ``REPRO_JOBS`` setting; serial by default). Results are detached.
    """
    return execute_figure_runs(
        [
            RunRequest(key=str(name), scheme=name, config=config)
            for name in schemes
        ]
    )


def run_grid(
    cases: list[tuple[str, ExperimentConfig]], schemes=SCHEMES
) -> dict[str, dict[str, ExperimentResult]]:
    """Run ``schemes`` over several configs as one flat work-list.

    ``cases`` is ``[(case_key, config), ...]`` — e.g. one entry per model
    or scenario. Submitting the full cross product at once (instead of
    one :func:`compare` batch per case) keeps every worker busy for the
    whole figure. Returns ``{case_key: {scheme: result}}`` in declaration
    order.
    """
    requests = [
        RunRequest(key=f"{case_key}/{scheme}", scheme=scheme, config=config)
        for case_key, config in cases
        for scheme in schemes
    ]
    flat = execute_figure_runs(requests)
    grid: dict[str, dict[str, ExperimentResult]] = {}
    for case_key, _config in cases:
        grid[case_key] = {
            str(scheme): flat[f"{case_key}/{scheme}"] for scheme in schemes
        }
    return grid


def execute_figure_runs(
    requests: list[RunRequest],
) -> dict[str, ExperimentResult]:
    """Execute a figure's declared work-list, keyed by request key.

    Thin wrapper over :func:`repro.parallel.execute_keyed` so figure
    modules depend only on this module for plumbing.
    """
    return execute_keyed(requests)


def breakdown_columns(result: ExperimentResult) -> dict[str, float]:
    """P99-stacked breakdown components in ms (for Figures 2/6/11).

    Components are scaled so they sum to the strict P99 latency, matching
    the paper's stacked-bar presentation.
    """
    strict = [r for r in result.measured if r.strict]
    tail = p99_stacked_breakdown(strict) if strict else result.summary.tail_breakdown
    return {
        f"{name}_ms": round(value * 1000, 1)
        for name, value in tail.as_dict().items()
    }
