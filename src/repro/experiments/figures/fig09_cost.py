"""Figure 9 — normalized dollar cost vs SLO compliance under spot regimes.

Three spot-availability scenarios (high / medium / low, P_rev = 0, 0.354,
0.708). "Other schemes" host on on-demand VMs only; PROTEAN uses the
hybrid spot+on-demand policy; Spot-Only never falls back. Expected shape:

- high availability: PROTEAN ≈ Spot-Only ≈ 70% cheaper than on-demand,
  with unharmed SLO compliance;
- medium/low availability: Spot-Only stays cheapest but its SLO
  compliance collapses (paper: 8.76% and 0.68% for ResNet 50); PROTEAN
  pays more than Spot-Only yet keeps compliance ≈ on-demand levels.
"""

from __future__ import annotations

from repro.cluster.pricing import cost_per_1k_requests, per_scheme_summary
from repro.experiments.figures.common import (
    FigureResult,
    base_config,
    execute_figure_runs,
)
from repro.parallel import RunRequest

SCENARIOS = ("high", "moderate", "low")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 9."""
    variants = (
        ("on_demand_baseline", "protean", "on_demand_only"),
        ("protean_hybrid", "protean", "hybrid"),
        ("spot_only", "protean", "spot_only"),
    )
    requests = [
        RunRequest(
            key=f"{availability}/{label}",
            scheme=scheme,
            config=base_config(
                quick,
                strict_model="resnet50",
                trace="constant",
                procurement=procurement,
                spot_availability=availability,
                spot_check_interval=30.0 if quick else 60.0,
                duration=90.0 if quick else 240.0,
                warmup=20.0 if quick else 60.0,
            ),
        )
        for availability in SCENARIOS
        for label, scheme, procurement in variants
    ]
    results = execute_figure_runs(requests)
    rows = []
    for availability in SCENARIOS:
        # Cost columns come from the shared pricing code path (also used
        # by tab03 and the capacity planner).
        cost_rows = {
            row["scheme"]: row
            for row in per_scheme_summary(
                {
                    label: results[f"{availability}/{label}"].summary
                    for label, _scheme, _procurement in variants
                }
            )
        }
        baseline_cost = None
        for label, _scheme, _procurement in variants:
            result = results[f"{availability}/{label}"]
            cost_row = cost_rows[label]
            cost = result.summary.total_cost
            if baseline_cost is None:
                baseline_cost = cost
            rows.append(
                {
                    "availability": availability,
                    "hosting": label,
                    "slo_%": round(result.summary.slo_percent, 2),
                    "cost_$": cost_row["cost_$"],
                    "normalized_cost": round(cost / baseline_cost, 3),
                    "savings_%": cost_row["savings_%"],
                    "cost_$per_1k": round(
                        cost_per_1k_requests(
                            cost, result.summary.requests_served
                        ),
                        4,
                    ),
                    "evictions": result.extras["evictions"],
                }
            )
    return FigureResult(
        figure="Figure 9: normalized cost vs SLO under spot availability",
        rows=rows,
        notes=(
            "Expected: hybrid ≈ 70% savings at high availability with "
            "on-demand-level SLO; spot_only cheapest but SLO collapses "
            "as availability drops."
        ),
    )
