"""Table 5 — (P50, P99) latency for the 100% best-effort case.

All requests are BE, with models drawn at random from the HI pool. SLO
compliance is undefined here; the paper compares medians and tails:
PROTEAN achieves the best P50 (it packs BE tightly and keeps queues
short) but a *worse* P99 than the strictness-agnostic schemes, because it
deprioritizes BE — many land on small slices and at the back of queues.
Paper values (ms): Molecule (68, 165), Naïve (50, 99), INFless (57, 130),
PROTEAN (35, 138).
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    compare,
)
from repro.workloads import high_interference_models

PAPER_VALUES = {
    "molecule": (68, 165),
    "naive_slicing": (50, 99),
    "infless_llama": (57, 130),
    "protean": (35, 138),
}


def run(quick: bool = True) -> FigureResult:
    """Regenerate Table 5."""
    config = base_config(
        quick,
        strict_model="resnet50",  # unused: no strict traffic
        be_pool=tuple(m.name for m in high_interference_models()),
        strict_fraction=0.0,
        trace="wiki",
        offered_load=0.6,  # BE-only service, moderate pressure
    )
    results = compare(config)
    rows = []
    for scheme in SCHEMES:
        summary = results[scheme].summary
        paper_p50, paper_p99 = PAPER_VALUES[scheme]
        rows.append(
            {
                "scheme": scheme,
                "be_p50_ms": round(summary.be_p50 * 1000, 1),
                "be_p99_ms": round(summary.be_p99 * 1000, 1),
                "paper_p50_ms": paper_p50,
                "paper_p99_ms": paper_p99,
            }
        )
    return FigureResult(
        figure="Table 5: 100% best-effort case (HI pool)",
        rows=rows,
        notes="Expected: protean best P50; its P99 not the best.",
    )
