"""Figure 10 — throughput (DenseNet 121) and utilization (EfficientNet-B0).

(a) Strict requests served per GPU per second: PROTEAN highest (paper: up
to 24% over the others) because its strict batches execute fastest.
(b) GPU utilization (% non-idle) and memory usage: the spatial-sharing
schemes keep the GPU similarly busy with tens of percent memory use;
Molecule(beta) time-shares one batch at a time and uses far less memory.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    run_grid,
)


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 10 (both panels)."""
    panels = (
        ("a:throughput", "densenet121"),
        ("b:utilization", "efficientnet_b0"),
    )
    grid = run_grid(
        [
            (panel, base_config(quick, strict_model=model, trace="wiki"))
            for panel, model in panels
        ]
    )
    rows = []
    for panel, _model in panels:
        for scheme in SCHEMES:
            summary = grid[panel][scheme].summary
            rows.append(
                {
                    "panel": panel,
                    "scheme": scheme,
                    "strict_rps_per_gpu": round(
                        summary.strict_throughput_per_gpu, 2
                    ),
                    "total_rps_per_gpu": round(
                        summary.total_throughput_per_gpu, 2
                    ),
                    "gpu_util_%": round(summary.gpu_any_busy_fraction * 100, 1),
                    "mem_util_%": round(summary.memory_fraction * 100, 1),
                    "slo_%": round(summary.slo_percent, 2),
                }
            )
    return FigureResult(
        figure="Figure 10: throughput and GPU/memory utilization",
        rows=rows,
        notes=(
            "Expected: protean's strict throughput >= others (panel a); "
            "molecule's memory use far below the MPS schemes (panel b)."
        ),
    )
