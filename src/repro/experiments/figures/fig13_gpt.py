"""Figure 13 — SLO compliance for modern generative LLMs (GPT-1/GPT-2).

Strict requests target a GPT model; BE requests rotate through the other
LLMs. GPT FBRs run up to ~42% above the rest, so MPS co-location is
brutal: the paper reports INFless/Llama failing *every* request, while
PROTEAN averages ~90% by co-locating BE (and some strict) on the smaller
slice to shield the majority of strict requests on the large slice(s).
Molecule(beta) does relatively better on GPT-2 (~79%) than GPT-1 (61.45%)
because GPT-2's long execution makes queueing relatively cheaper.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    SCHEMES,
    base_config,
    run_grid,
)

MODELS = ("gpt1", "gpt2")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 13."""
    models = MODELS[:1] if quick else MODELS
    grid = run_grid(
        [
            (
                model,
                base_config(quick, strict_model=model, trace="wiki", scale=1.0),
            )
            for model in models
        ]
    )
    rows = []
    for model in models:
        row: dict = {"model": model}
        for scheme in SCHEMES:
            row[f"{scheme}_slo_%"] = round(
                grid[model][scheme].summary.slo_percent, 2
            )
        rows.append(row)
    return FigureResult(
        figure="Figure 13: SLO compliance, generative LLMs",
        rows=rows,
        notes="Expected: infless_llama near zero; protean the highest.",
    )
