"""Figure 6 — breakdown of job tail (P99) latencies, vision subset.

For each scheme the strict-request P99 is decomposed into min-possible
execution, resource deficiency, interference, queueing, batching wait, and
cold start. Expected shape: INFless/Llama's tail dominated by interference
(~75% for VGG 19 in the paper); Molecule's by queueing; PROTEAN's tail is
the smallest, with interference ~47% below INFless/Llama's for VGG 19.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    FigureResult,
    base_config,
    breakdown_columns,
    run_grid,
)

#: The paper's panels show a subset of the vision models; VGG 19 is (c).
MODELS = ("googlenet", "densenet121", "vgg19")


def run(quick: bool = True) -> FigureResult:
    """Regenerate Figure 6."""
    models = MODELS[-1:] if quick else MODELS
    grid = run_grid(
        [
            (model, base_config(quick, strict_model=model, trace="wiki"))
            for model in models
        ]
    )
    rows = []
    for model in models:
        for scheme, result in grid[model].items():
            row = {
                "model": model,
                "scheme": scheme,
                "p99_ms": round(result.summary.strict_p99 * 1000, 1),
                "slo_%": round(result.summary.slo_percent, 2),
            }
            row.update(breakdown_columns(result))
            rows.append(row)
    return FigureResult(
        figure="Figure 6: P99 latency breakdown (vision subset)",
        rows=rows,
        notes=(
            "Expected: interference dominates infless_llama; queueing "
            "dominates molecule; protean smallest overall."
        ),
    )
