"""Ablation studies of PROTEAN's design choices.

The paper motivates four mechanisms (Section 4); each ablation disables
exactly one and measures what it was buying:

- ``no_reordering``     — FIFO queues instead of strict-first (§4.1);
- ``no_reconfigurator`` — the initial geometry is frozen (§4.4);
- ``no_autoscaler``     — no predictive container pre-warming (§4.2);
- ``static_4g_3g``      — reconfiguration replaced by the paper's
  fallback geometry, isolating the value of *dynamic* selection;
- ``full``              — unmodified PROTEAN, the reference point.

Run :func:`run_ablation_suite` to get one summary row per variant on a
shared request stream.
"""

from __future__ import annotations

from typing import Callable

from repro.core.protean import ProteanScheme
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, build_specs, run_scheme
from repro.gpu.mig import GEOMETRY_4G_3G
from repro.serverless.scheme import Scheme

_VariantFactory = Callable[[], Scheme]

ABLATION_VARIANTS: dict[str, _VariantFactory] = {
    "full": lambda: ProteanScheme(),
    "no_reordering": lambda: ProteanScheme(enable_reordering=False),
    "no_reconfigurator": lambda: ProteanScheme(enable_reconfigurator=False),
    "no_autoscaler": lambda: ProteanScheme(enable_autoscaler=False),
    "static_4g_3g": lambda: ProteanScheme(
        initial_geometry=GEOMETRY_4G_3G, enable_reconfigurator=False
    ),
}


def make_variant(name: str) -> Scheme:
    """Instantiate one ablation variant by name."""
    factory = ABLATION_VARIANTS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown ablation {name!r}; known: {sorted(ABLATION_VARIANTS)}"
        )
    return factory()


def run_ablation(
    name: str, config: ExperimentConfig, *, specs=None
) -> ExperimentResult:
    """Run one ablation variant under ``config``."""
    result = run_scheme(make_variant(name), config, specs=specs)
    result.scheme = name
    return result


def run_ablation_suite(
    config: ExperimentConfig, variants: tuple[str, ...] | None = None
) -> dict[str, ExperimentResult]:
    """Run all (or selected) ablation variants on one request stream."""
    names = tuple(ABLATION_VARIANTS) if variants is None else variants
    specs = build_specs(config)
    return {name: run_ablation(name, config, specs=specs) for name in names}
