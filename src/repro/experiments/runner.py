"""Experiment runner: build, run, and summarize one (scheme, config) pair.

The runner owns all the glue the paper's testbed scripts would: trace
generation, request mixing, platform provisioning (through the
cost-aware procurement layer), container pre-warming, warm-up exclusion,
and metric summarization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.audit import AuditReport, Auditor
from repro.baselines.oracle import GeometryPlan
from repro.cluster.pricing import pricing_for_device
from repro.cluster.spot import AVAILABILITY_LEVELS, SpotMarket
from repro.core.procurement import Procurement, ProcurementConfig, ProcurementMode
from repro.core.reconfigurator import decide_geometry
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.schemes import get_scheme
from repro.faults.injector import FaultInjector
from repro.metrics.breakdown import tail_breakdown
from repro.metrics.latency import latency_cdf, p50, p99
from repro.metrics.pipelines import PipelineReport, pipeline_report
from repro.metrics.records import RecordCollector, RequestRecord
from repro.metrics.slo import slo_compliance
from repro.metrics.streaming import StreamingCollector
from repro.metrics.summary import RunSummary, partition_window
from repro.metrics.tenancy import TenancyReport, tenancy_report
from repro.observability.span import CATEGORY_RUN
from repro.observability.telemetry import TelemetrySampler
from repro.observability.tracer import NULL_TRACER, SimTracer, Tracer
from repro.pipelines.model import compile_pipeline
from repro.pipelines.runtime import PipelineRuntime
from repro.pipelines.workload import PipelineWorkload
from repro.metrics.throughput import (
    cluster_utilization,
    strict_throughput_per_gpu,
    throughput_per_gpu_from_counts,
    total_throughput_per_gpu,
)
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.scheme import Scheme
from repro.simulation.identity import reset_run_ids
from repro.simulation.simulator import Simulator
from repro.tenancy.workload import TenantWorkload
from repro.traces.base import arrival_times, constant_trace
from repro.traces.mixing import (
    MixSpec,
    RequestSpec,
    collapse_to_batches,
    mix_requests,
)
from repro.traces.twitter import twitter_trace
from repro.traces.wiki import wiki_trace


@dataclass
class ExperimentResult:
    """Outcome of one run: summary metrics plus raw material for plots."""

    scheme: str
    config: ExperimentConfig
    summary: RunSummary
    #: The run's record collector. ``None`` on detached results — the
    #: measured window below is all a figure consumes.
    collector: RecordCollector | None
    measured: list[RequestRecord]
    extras: dict = field(default_factory=dict)
    #: The live platform (scheme daemons, cluster, pools) for post-hoc
    #: inspection — e.g. Figure 7 reads the reconfigurator's geometry log.
    #: ``None`` on detached results; figures that need platform internals
    #: extract them worker-side via a ``RunRequest.postprocess`` hook.
    platform: ServerlessPlatform | None = None
    #: The run's tracer when ``config.tracing`` is set; feed it to
    #: :func:`repro.observability.write_chrome_trace` et al. None otherwise.
    #: On detached results this is a
    #: :class:`~repro.observability.spanlog.DetachedTrace` (same exporter
    #: surface, picklable).
    tracer: Tracer | None = None
    #: The run's conservation-audit report when ``config.audit`` is set
    #: (``None`` otherwise). Plain data; survives :meth:`detach`.
    audit: AuditReport | None = None
    #: Per-tenant metrics when ``config.tenants`` is set (``None``
    #: otherwise). Plain data; survives :meth:`detach`.
    tenancy: TenancyReport | None = None
    #: Workflow-level metrics when ``config.pipelines`` is set (``None``
    #: otherwise). Plain data; survives :meth:`detach`.
    pipelines: PipelineReport | None = None

    def cdf(self, *, strict_only: bool = True, points: int = 200):
        """Latency CDF over the measured window (Figure 8)."""
        records = [r for r in self.measured if r.strict] if strict_only else self.measured
        return latency_cdf(records, points)

    @property
    def detached(self) -> bool:
        """Whether this result has been stripped of live platform state."""
        return self.platform is None and self.collector is None

    def detach(self) -> "ExperimentResult":
        """A picklable copy that releases the live platform.

        Carries summary + measured records + extras + (when tracing) the
        exported span log across a process boundary; drops the
        ``ServerlessPlatform``, its collector, and the live tracer, whose
        scheduled closures neither pickle nor free until dropped. This is
        also the memory fix for long suites: once a figure's rows are
        extracted, nothing keeps the whole platform object graph alive.
        """
        trace = None
        if self.tracer is not None and self.tracer.enabled:
            from repro.observability.spanlog import DetachedTrace

            if isinstance(self.tracer, DetachedTrace):
                trace = self.tracer
            else:
                trace = DetachedTrace.from_tracer(self.tracer)
        return ExperimentResult(
            scheme=self.scheme,
            config=self.config,
            summary=self.summary,
            collector=None,
            measured=self.measured,
            extras=dict(self.extras),
            platform=None,
            tracer=trace,
            audit=self.audit,
            tenancy=self.tenancy,
            pipelines=self.pipelines,
        )


def build_specs(config: ExperimentConfig) -> list[RequestSpec]:
    """Generate the run's full request stream from its config.

    With ``config.pipelines`` set the stream holds only *root* stage
    requests (one per workflow arrival); downstream stages are released
    live by the :class:`~repro.pipelines.runtime.PipelineRuntime` as
    their parents complete, so they cannot be pre-generated here.
    """
    if config.pipelines is not None:
        return _build_pipeline_specs(config)
    rng = np.random.default_rng(config.seed)
    rate = config.request_rate()
    if config.trace == "constant":
        trace = constant_trace(rate, config.duration)
    elif config.trace == "wiki":
        trace = wiki_trace(config.duration, rng, mean_rate=rate)
    elif config.trace == "twitter":
        # The paper scales Twitter so its *peak* hits the target rate
        # (the mean then lands ~35% lower, Section 6.2).
        trace = twitter_trace(config.duration, rng, peak_rate=rate)
    else:  # pragma: no cover - guarded by config validation
        raise ConfigurationError(f"unknown trace {config.trace!r}")
    arrivals = arrival_times(trace, rng)
    mix = MixSpec(
        strict_model=config.strict_profile(),
        be_pool=config.be_profiles() if config.strict_fraction < 1.0 else (),
        strict_fraction=config.strict_fraction,
        rotation_period=config.rotation_period,
        slo_multiplier=config.slo_multiplier,
    )
    specs = mix_requests(arrivals, mix, rng)
    if config.tenants is not None:
        # Multiplex before batch collapse so arrivals are aligned to
        # *tenant-homogeneous* batch-formation instants (the batcher
        # never mixes tenants in a batch). The default path takes no
        # extra RNG draws, keeping it bit-identical to pre-tenancy runs.
        specs = TenantWorkload(config.tenants).multiplex(specs, rng)
    if config.batched_arrivals:
        specs = collapse_to_batches(specs)
    return specs


def _build_pipeline_specs(config: ExperimentConfig) -> list[RequestSpec]:
    """Root-stage request stream for a pipeline run.

    Arrival shaping reuses the standard traces, but the rate is *per
    workflow*: ``offered_load`` is converted through the pipeline's total
    per-workflow work (every stage, batch-amortised) so a chain offers
    the same solo-7g work per GPU-second as the equivalent single-stage
    run. ``batched_arrivals`` is not applied — batch collapse rewrites
    specs without workflow lineage, and workflow arrivals are individual
    by nature (each is its own DAG instance).
    """
    assert config.pipelines is not None
    rng = np.random.default_rng(config.seed)
    workload = PipelineWorkload(
        config.pipelines,
        scale=config.scale,
        slo_multiplier=config.slo_multiplier,
        strict_fraction=config.strict_fraction,
    )
    if config.rate is not None:
        rate = config.rate * config.scale
    else:
        rate = workload.workflow_rate(config.offered_load, config.n_nodes)
    if config.trace == "constant":
        trace = constant_trace(rate, config.duration)
    elif config.trace == "wiki":
        trace = wiki_trace(config.duration, rng, mean_rate=rate)
    elif config.trace == "twitter":
        trace = twitter_trace(config.duration, rng, peak_rate=rate)
    else:  # pragma: no cover - guarded by config validation
        raise ConfigurationError(f"unknown trace {config.trace!r}")
    arrivals = arrival_times(trace, rng)
    return workload.root_specs(arrivals, rng)


def build_oracle_plan(
    config: ExperimentConfig,
    specs: list[RequestSpec],
    *,
    monitor_interval: float = 5.0,
) -> GeometryPlan:
    """Derive the Oracle's geometry plan from the *true* request stream.

    For each BE rotation window, the plan applies the same decision rule
    PROTEAN uses online (Algorithm 2), but fed the window's actual BE
    request count and model instead of EWMA predictions.
    """
    windows: dict[int, tuple[int, object]] = {}
    for spec in specs:
        if spec.strict:
            continue
        index = int(spec.arrival // config.rotation_period)
        count, _model = windows.get(index, (0, None))
        windows[index] = (count + 1, spec.model)
    plan = []
    horizon = int(math.ceil(config.duration / config.rotation_period))
    for index in range(horizon):
        count, model = windows.get(index, (0, None))
        per_monitor = count * monitor_interval / config.rotation_period
        plan.append(
            (
                index * config.rotation_period,
                decide_geometry(per_monitor, model),
            )
        )
    return plan


def assemble_platform(
    clock,
    scheme: Scheme,
    config: ExperimentConfig,
    *,
    collector=None,
    tracer: Tracer = NULL_TRACER,
) -> tuple[ServerlessPlatform, SpotMarket, Procurement]:
    """Wire platform + spot market + procurement for one run.

    Shared by :func:`run_scheme` (discrete-event clock) and the live
    serving runtime (:mod:`repro.serving`, wall clock): ``clock`` is any
    :class:`~repro.simulation.clock.Clock` with an ``rng`` registry. The
    construction order — platform, then market (which draws the
    ``"spot"`` RNG stream), then procurement — is part of the default
    path's bit-identity and must not change.
    """
    platform = ServerlessPlatform(
        clock,
        scheme,
        PlatformConfig(
            n_nodes=config.n_nodes,
            cold_start_seconds=config.cold_start_seconds,
            keep_alive_seconds=config.keep_alive_seconds,
            batch_max_wait=config.batch_max_wait,
            reconfig_seconds=config.reconfig_seconds,
            gpu_device=config.gpu_device,
        ),
        collector=collector,
        pricing=pricing_for_device(config.gpu_device),
        tracer=tracer,
        tenancy=config.tenants,
    )
    market = SpotMarket(
        clock,
        clock.rng.stream("spot"),
        AVAILABILITY_LEVELS[config.spot_availability],
        notice_seconds=config.spot_notice_seconds,
        check_interval=config.spot_check_interval,
        tracer=tracer,
    )
    procurement = Procurement(
        platform,
        market,
        ProcurementConfig(
            mode=ProcurementMode(config.procurement),
            provision_seconds=config.provision_seconds,
        ),
    )
    return platform, market, procurement


def run_scheme(
    scheme,
    config: ExperimentConfig,
    *,
    specs: list[RequestSpec] | None = None,
) -> ExperimentResult:
    """Run one scheme under ``config`` and summarize the outcome.

    This is a stable entry point: the two leading parameters are
    positional (``scheme`` then ``config``) and everything else is
    keyword-only. ``scheme`` is a registry name (``"protean"``,
    ``"oracle"``, an alias, ...) or a pre-built
    :class:`~repro.serverless.scheme.Scheme` instance (custom schemes,
    ablation variants).
    """
    if specs is None:
        specs = build_specs(config)
    if isinstance(scheme, Scheme):
        scheme_name = scheme.name
    else:
        oracle_plan = (
            build_oracle_plan(config, specs)
            if scheme.lower().strip() == "oracle"
            else None
        )
        scheme_name = scheme
        scheme = get_scheme(scheme_name, oracle_plan=oracle_plan)

    # Fresh id spaces (nodes, requests, spans, ...) so the run's full
    # output is a pure function of its config — required for the
    # serial/parallel bit-identity guarantee (see repro.parallel).
    reset_run_ids()
    sim = Simulator(config.seed)
    tracer: Tracer = SimTracer(sim) if config.tracing else NULL_TRACER
    # Streaming mode swaps the collector for the bounded-memory one; the
    # default path passes None and gets the plain RecordCollector, so its
    # behaviour (and bit-identity) is untouched.
    collector = (
        StreamingCollector(
            window_start=config.warmup, window_end=config.duration
        )
        if config.streaming_metrics
        else None
    )
    platform, market, procurement = assemble_platform(
        sim, scheme, config, collector=collector, tracer=tracer
    )
    # The pipeline runtime arms *before* the auditor so a root admission
    # registers its workflow before the auditor's admit hook checks it
    # (observers run in append order).
    pipeline_runtime: PipelineRuntime | None = None
    if config.pipelines is not None:
        pipeline_runtime = PipelineRuntime(
            sim,
            platform,
            config.pipelines,
            scale=config.scale,
            base_multiplier=config.slo_multiplier,
        )
        # Bulk-register workflows off the hot path (no-op when tracing;
        # the admission hook then registers them at admission time so
        # the pipeline.admit span keeps its true timestamp).
        pipeline_runtime.seed(specs)
        pipeline_runtime.arm()
    # The auditor is a pure observer (no mutation, no RNG): an audited
    # run's metrics are bit-identical to an unaudited one.
    auditor: Auditor | None = None
    if config.audit:
        auditor = Auditor(
            sim,
            platform,
            interval=config.audit_interval,
            fail_fast=config.audit_fail_fast,
        )
        auditor.arm()
    procurement.provision_initial()
    _prewarm(platform, config)
    platform.inject(specs)
    # Fault injection: armed only for a non-empty plan, so a run with an
    # empty plan is bit-identical to faults disabled (no RNG stream is
    # touched, no events scheduled, no extras keys added).
    injector: FaultInjector | None = None
    if config.fault_plan is not None and config.fault_plan.faults:
        injector = FaultInjector(
            platform,
            procurement,
            config.fault_plan,
            rng=sim.rng.stream("faults"),
            tracer=tracer,
        )
        injector.arm()
    sampler: TelemetrySampler | None = None
    if tracer.enabled:
        tracer.instant(
            "run.start",
            category=CATEGORY_RUN,
            track="run",
            scheme=scheme_name,
            seed=config.seed,
            duration=config.duration,
        )
        sampler = TelemetrySampler(
            sim, tracer.telemetry, interval=config.telemetry_interval
        )
        sampler.start()
    # Snapshot utilization when the trace ends so drain time does not
    # dilute the Figure 10b metrics.
    utilization_box: list = []
    sim.at(
        config.duration,
        lambda: utilization_box.append(cluster_utilization(platform.all_nodes)),
        label="utilization-snapshot",
    )
    sim.run(until=config.duration + config.drain)
    platform.finalize()
    if tracer.enabled:
        if sampler is not None:
            sampler.stop()
        tracer.instant("run.end", category=CATEGORY_RUN, track="run")
        tracer.close_open_spans(reason="run ended")
    utilization = (
        utilization_box[0]
        if utilization_box
        else cluster_utilization(platform.all_nodes)
    )
    result = _summarize(
        scheme_name, config, platform, procurement, specs, utilization
    )
    if injector is not None:
        result.extras.update(injector.stats())
        result.extras["crashes_handled"] = procurement.crashes_handled
    if auditor is not None:
        result.audit = auditor.finalize()
        result.extras["audit_violations"] = len(result.audit.violations)
    if config.tenants is not None:
        # Extras keys and the report exist only when tenancy is active,
        # so the default path's extras dict is unchanged bit for bit.
        if isinstance(platform.collector, StreamingCollector):
            result.tenancy = platform.collector.tenancy_report(
                config.tenants.tenant_set,
                total_cost=platform.meter.total_cost,
            )
        else:
            result.tenancy = tenancy_report(
                config.tenants.tenant_set,
                result.measured,
                platform.collector.rejections,
                total_cost=platform.meter.total_cost,
            )
        result.extras["tenant_rejections"] = platform.gateway.requests_rejected
        result.extras["tenant_fairness"] = result.tenancy.fairness_index
    if pipeline_runtime is not None:
        # Extras keys and the report exist only when pipelines are
        # active, so the default path's extras dict is unchanged.
        result.pipelines = pipeline_report(
            pipeline_runtime,
            platform.collector.records,
            window_start=config.warmup,
            window_end=config.duration,
        )
        result.extras["pipeline_workflows"] = (
            pipeline_runtime.workflows_started
        )
        result.extras["pipeline_rebudgets"] = pipeline_runtime.rebudgets
        result.extras["pipeline_retries"] = pipeline_runtime.stage_retries
    if tracer.enabled:
        result.tracer = tracer
    return result


def run_comparison(
    schemes: list[str] | tuple[str, ...],
    config: ExperimentConfig,
    *,
    jobs: int | None = None,
) -> dict[str, ExperimentResult]:
    """Run several schemes on the *same* request stream.

    Stable entry point: ``(schemes, config)`` positional, the rest
    keyword-only. With ``jobs`` > 1 the runs fan out across worker
    processes through
    :mod:`repro.parallel` and come back *detached* (summary + measured
    records + span log, no live platform); results and ordering are
    bit-identical to the serial path. ``jobs=None`` resolves the ambient
    default (``repro.parallel.using_jobs`` / ``REPRO_JOBS``, else serial),
    and the serial path returns live results exactly as before.
    """
    from repro.parallel import RunRequest, execute_runs, resolve_jobs

    if resolve_jobs(jobs) > 1:
        requests = [
            RunRequest(
                key=name.name if isinstance(name, Scheme) else str(name),
                scheme=name,
                config=config,
            )
            for name in schemes
        ]
        results = execute_runs(requests, jobs=jobs)
        return {
            request.key: result
            for request, result in zip(requests, results)
        }
    specs = build_specs(config)
    return {
        name: run_scheme(name, config, specs=specs) for name in schemes
    }


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _prewarm(platform: ServerlessPlatform, config: ExperimentConfig) -> None:
    if config.prewarm_containers <= 0:
        return
    if config.pipelines is not None:
        compiled = compile_pipeline(config.pipelines, config.scale)
        # Dedupe by name: two stages sharing a model need one warm pool.
        models = list(
            {p.name: p for p in compiled.profiles.values()}.values()
        )
    else:
        models = [config.strict_profile()]
        if config.strict_fraction < 1.0:
            models.extend(config.be_profiles())
    for node in platform.cluster.nodes:
        pool = platform.pool_for(node)
        for model in models:
            for _ in range(config.prewarm_containers):
                pool.prewarm(model.name)


def _summarize(
    scheme_name: str,
    config: ExperimentConfig,
    platform: ServerlessPlatform,
    procurement: Procurement,
    specs: list[RequestSpec],
    utilization,
) -> ExperimentResult:
    window_start, window_end = config.warmup, config.duration
    expected_strict = sum(
        1
        for s in specs
        if s.strict and window_start <= s.arrival < window_end
    )
    window = window_end - window_start
    meter = platform.meter
    if isinstance(platform.collector, StreamingCollector):
        return _summarize_streaming(
            scheme_name,
            config,
            platform,
            procurement,
            utilization,
            expected_strict=expected_strict,
            window=window,
        )
    # Throughput counts requests that both arrived and completed inside
    # the window: an overloaded scheme's completions lag its arrivals
    # (Figure 10a's differentiation), while backlog drained from before
    # the window does not inflate the figure.
    measured, strict, best_effort, completed_in_window = partition_window(
        list(platform.collector.records), window_start, window_end
    )
    dropped_strict = max(0, expected_strict - len(strict))
    summary = RunSummary(
        scheme=scheme_name,
        strict_model=config.strict_model,
        requests_served=len(measured),
        strict_requests=len(strict),
        slo_compliance=slo_compliance(strict, dropped_strict=dropped_strict),
        strict_p50=p50(strict),
        strict_p99=p99(strict),
        be_p50=p50(best_effort),
        be_p99=p99(best_effort),
        tail_breakdown=tail_breakdown(strict),
        strict_throughput_per_gpu=strict_throughput_per_gpu(
            completed_in_window, config.n_nodes, window
        ),
        total_throughput_per_gpu=total_throughput_per_gpu(
            completed_in_window, config.n_nodes, window
        ),
        gpu_busy_fraction=utilization.gpu_busy_fraction,
        gpu_any_busy_fraction=utilization.gpu_any_busy_fraction,
        memory_fraction=utilization.memory_fraction,
        reconfigurations=utilization.reconfigurations,
        total_cost=meter.total_cost,
        cost_savings_fraction=meter.savings_fraction,
        dropped_requests=dropped_strict,
    )
    extras = _runner_extras(platform, procurement)
    return ExperimentResult(
        scheme=scheme_name,
        config=config,
        summary=summary,
        collector=platform.collector,
        measured=measured,
        extras=extras,
        platform=platform,
    )


def _runner_extras(platform: ServerlessPlatform, procurement: Procurement) -> dict:
    return {
        "spot_nodes_built": procurement.spot_nodes_built,
        "on_demand_nodes_built": procurement.on_demand_nodes_built,
        "evictions": procurement.market.evictions,
        "spot_notices": procurement.market.notices_issued,
        "resubmissions": platform.dispatcher.resubmissions,
        "backlog_at_end": platform.dispatcher.backlog_size,
        "cold_starts": platform.total_cold_starts(),
        "nodes_at_end": len(platform.cluster),
    }


def _summarize_streaming(
    scheme_name: str,
    config: ExperimentConfig,
    platform: ServerlessPlatform,
    procurement: Procurement,
    utilization,
    *,
    expected_strict: int,
    window: float,
) -> ExperimentResult:
    """Streaming twin of the record-based summary below.

    Counters, SLO compliance, throughput, and cost match the record path
    exactly; percentiles and the tail breakdown come from the collector's
    sketches with the bounds documented in ``docs/hyperscale.md``. The
    result carries no measured records (``measured == []``) — streaming
    mode exists precisely so they are never materialised.
    """
    collector = platform.collector
    assert isinstance(collector, StreamingCollector)
    dropped_strict = max(0, expected_strict - collector.strict_count)
    meter = platform.meter
    summary = RunSummary(
        scheme=scheme_name,
        strict_model=config.strict_model,
        requests_served=collector.measured_count,
        strict_requests=collector.strict_count,
        slo_compliance=collector.slo_compliance(dropped_strict=dropped_strict),
        strict_p50=collector.strict_percentile(50),
        strict_p99=collector.strict_percentile(99),
        be_p50=collector.be_percentile(50),
        be_p99=collector.be_percentile(99),
        tail_breakdown=collector.tail_breakdown(),
        strict_throughput_per_gpu=throughput_per_gpu_from_counts(
            collector.completed_strict_in_window, config.n_nodes, window
        ),
        total_throughput_per_gpu=throughput_per_gpu_from_counts(
            collector.completed_in_window, config.n_nodes, window
        ),
        gpu_busy_fraction=utilization.gpu_busy_fraction,
        gpu_any_busy_fraction=utilization.gpu_any_busy_fraction,
        memory_fraction=utilization.memory_fraction,
        reconfigurations=utilization.reconfigurations,
        total_cost=meter.total_cost,
        cost_savings_fraction=meter.savings_fraction,
        dropped_requests=dropped_strict,
    )
    extras = _runner_extras(platform, procurement)
    extras["streaming_metrics"] = True
    return ExperimentResult(
        scheme=scheme_name,
        config=config,
        summary=summary,
        collector=collector,
        measured=[],
        extras=extras,
        platform=platform,
    )
