"""Scheme factory: build the evaluated schemes by name.

Names follow the paper's Section 5 (plus the Section 2.2 motivation
schemes). The Oracle needs a geometry plan derived from the concrete
request stream, so its factory takes the plan as an argument — the runner
builds it (see :func:`repro.experiments.runner.build_oracle_plan`).
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.gpulet import GpuletScheme
from repro.baselines.infless_llama import InflessLlamaScheme
from repro.baselines.molecule import MoleculeBetaScheme
from repro.baselines.motivation import (
    MigOnlyScheme,
    MpsMigScheme,
    SmartMpsMigScheme,
)
from repro.baselines.naive_slicing import NaiveSlicingScheme
from repro.baselines.oracle import GeometryPlan, OracleScheme
from repro.core.protean import ProteanScheme
from repro.errors import ConfigurationError
from repro.serverless.scheme import Scheme

_FACTORIES: dict[str, Callable[[], Scheme]] = {
    "protean": ProteanScheme,
    # Paper future work (Table 5): η-balanced BE placement when no strict
    # traffic is present — improves the 100%-BE tail.
    "protean_be_balanced": lambda: ProteanScheme(balance_best_effort=True),
    "infless_llama": InflessLlamaScheme,
    "infless": InflessLlamaScheme,
    "llama": InflessLlamaScheme,
    "molecule": MoleculeBetaScheme,
    "molecule_beta": MoleculeBetaScheme,
    "naive_slicing": NaiveSlicingScheme,
    "naive": NaiveSlicingScheme,
    "gpulet": GpuletScheme,
    # Section 2.2 motivation schemes:
    "no_mps_or_mig": MoleculeBetaScheme,
    "mps_only": InflessLlamaScheme,
    "mig_only": MigOnlyScheme,
    "mps_mig": MpsMigScheme,
    "smart_mps_mig": SmartMpsMigScheme,
}

#: Canonical scheme order used by comparison figures.
COMPARISON_SCHEMES = ("molecule", "naive_slicing", "infless_llama", "protean")


def scheme_names() -> tuple[str, ...]:
    """All accepted scheme names."""
    return tuple(sorted(_FACTORIES) + ["oracle"])


def make_scheme(name: str, *, oracle_plan: GeometryPlan | None = None) -> Scheme:
    """Instantiate a fresh scheme by name.

    ``oracle_plan`` is required (and only used) for ``"oracle"``.
    """
    key = name.lower().strip()
    if key == "oracle":
        if oracle_plan is None:
            raise ConfigurationError(
                "the oracle scheme needs a geometry plan; use "
                "run_experiment which builds it from the request stream"
            )
        return OracleScheme(oracle_plan)
    factory = _FACTORIES.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown scheme {name!r}; known: {', '.join(scheme_names())}"
        )
    return factory()
