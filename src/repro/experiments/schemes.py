"""Scheme registry: resolve evaluated schemes by name.

The registry is the single place where string scheme names (CLI flags,
figure definitions, parallel ``RunRequest``\\ s, tests) map to
:class:`~repro.serverless.scheme.Scheme` factories. Names follow the
paper's Section 5 (plus the Section 2.2 motivation schemes); each
canonical name may carry aliases (e.g. ``"infless"`` → ``"infless_llama"``).

External code can extend the registry::

    from repro.experiments import register_scheme

    register_scheme("my_scheme", MyScheme, aliases=("mine",))
    result = run_scheme("my_scheme", config)

The Oracle needs a geometry plan derived from the concrete request
stream, so :func:`get_scheme` takes it as an argument — the runner builds
it (see :func:`repro.experiments.runner.build_oracle_plan`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.baselines.gpulet import GpuletScheme
from repro.baselines.infless_llama import InflessLlamaScheme
from repro.baselines.molecule import MoleculeBetaScheme
from repro.baselines.motivation import (
    MigOnlyScheme,
    MpsMigScheme,
    SmartMpsMigScheme,
)
from repro.baselines.naive_slicing import NaiveSlicingScheme
from repro.baselines.oracle import GeometryPlan, OracleScheme
from repro.core.protean import ProteanScheme
from repro.errors import ConfigurationError
from repro.serverless.scheme import Scheme

#: Canonical name → factory (None marks the plan-requiring oracle).
_REGISTRY: dict[str, Optional[Callable[[], Scheme]]] = {}
#: Alias → canonical name.
_ALIASES: dict[str, str] = {}


def register_scheme(
    name: str,
    factory: Optional[Callable[[], Scheme]],
    *,
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Register a scheme factory under ``name`` (plus optional aliases).

    ``factory`` is a zero-argument callable returning a fresh
    :class:`Scheme` (a class works). Names are case-insensitive. Clashing
    with an existing name or alias raises :class:`ConfigurationError`
    unless ``replace=True``.
    """
    key = name.lower().strip()
    keys = [key] + [alias.lower().strip() for alias in aliases]
    if not replace:
        for candidate in keys:
            if candidate in _REGISTRY or candidate in _ALIASES:
                raise ConfigurationError(
                    f"scheme name {candidate!r} is already registered"
                )
    _REGISTRY[key] = factory
    for alias in keys[1:]:
        _ALIASES[alias] = key


def available_schemes() -> tuple[str, ...]:
    """Canonical registered scheme names, sorted."""
    return tuple(sorted(_REGISTRY))


def scheme_names() -> tuple[str, ...]:
    """All accepted scheme names (canonical plus aliases), sorted."""
    return tuple(sorted(set(_REGISTRY) | set(_ALIASES)))


def canonical_name(name: str) -> str:
    """Resolve ``name`` (canonical or alias) to its canonical form.

    Raises :class:`ConfigurationError` for unknown names, listing the
    valid choices.
    """
    key = name.lower().strip()
    if key in _REGISTRY:
        return key
    resolved = _ALIASES.get(key)
    if resolved is not None:
        return resolved
    raise ConfigurationError(
        f"unknown scheme {name!r}; available: "
        f"{', '.join(available_schemes())} "
        f"(aliases: {', '.join(sorted(_ALIASES))})"
    )


def get_scheme(name: str, *, oracle_plan: GeometryPlan | None = None) -> Scheme:
    """Instantiate a fresh scheme by (canonical or alias) name.

    ``oracle_plan`` is required (and only used) for ``"oracle"``.
    """
    key = canonical_name(name)
    if key == "oracle":
        if oracle_plan is None:
            raise ConfigurationError(
                "the oracle scheme needs a geometry plan; use "
                "run_scheme which builds it from the request stream"
            )
        return OracleScheme(oracle_plan)
    factory = _REGISTRY[key]
    assert factory is not None  # only oracle registers without a factory
    return factory()


#: Back-compat name for :func:`get_scheme` (pre-registry API).
make_scheme = get_scheme

#: Canonical scheme order used by comparison figures.
COMPARISON_SCHEMES = ("molecule", "naive_slicing", "infless_llama", "protean")


register_scheme("protean", ProteanScheme)
# Paper future work (Table 5): η-balanced BE placement when no strict
# traffic is present — improves the 100%-BE tail.
register_scheme(
    "protean_be_balanced", lambda: ProteanScheme(balance_best_effort=True)
)
# "mps_only" / "no_mps_or_mig" are the Section 2.2 motivation setups,
# which coincide with the INFless/Llama and Molecule(beta) behaviours.
register_scheme(
    "infless_llama", InflessLlamaScheme, aliases=("infless", "llama", "mps_only")
)
register_scheme(
    "molecule", MoleculeBetaScheme, aliases=("molecule_beta", "no_mps_or_mig")
)
register_scheme("naive_slicing", NaiveSlicingScheme, aliases=("naive",))
register_scheme("gpulet", GpuletScheme)
# Remaining Section 2.2 motivation schemes:
register_scheme("mig_only", MigOnlyScheme)
register_scheme("mps_mig", MpsMigScheme)
register_scheme("smart_mps_mig", SmartMpsMigScheme)
# The oracle has no zero-arg factory: it needs the run's geometry plan.
register_scheme("oracle", None)
