"""Experiment harness reproducing the paper's evaluation (Section 6).

Typical use::

    from repro.experiments import ExperimentConfig, run_scheme, run_comparison

    config = ExperimentConfig(strict_model="vgg19", duration=120.0)
    results = run_comparison(["protean", "infless_llama"], config)
    for name, result in results.items():
        print(name, result.summary.slo_percent)

Per-figure experiment definitions live in ``repro.experiments.figures``;
the ``benchmarks/`` directory exposes one pytest-benchmark target per
paper table/figure on top of them.
"""

from repro.experiments.ablations import (
    ABLATION_VARIANTS,
    make_variant,
    run_ablation,
    run_ablation_suite,
)
from repro.experiments.config import CONFIG_SCHEMA_VERSION, ExperimentConfig
from repro.experiments.runner import (
    ExperimentResult,
    build_oracle_plan,
    build_specs,
    run_comparison,
    run_scheme,
)
from repro.experiments.schemes import (
    COMPARISON_SCHEMES,
    available_schemes,
    canonical_name,
    get_scheme,
    make_scheme,
    register_scheme,
    scheme_names,
)

__all__ = [
    "ABLATION_VARIANTS",
    "COMPARISON_SCHEMES",
    "CONFIG_SCHEMA_VERSION",
    "ExperimentConfig",
    "ExperimentResult",
    "available_schemes",
    "build_oracle_plan",
    "build_specs",
    "canonical_name",
    "get_scheme",
    "make_scheme",
    "make_variant",
    "register_scheme",
    "run_ablation",
    "run_ablation_suite",
    "run_comparison",
    "run_scheme",
    "scheme_names",
]
