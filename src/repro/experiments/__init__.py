"""Experiment harness reproducing the paper's evaluation (Section 6).

Typical use::

    from repro.experiments import ExperimentConfig, run_scheme, run_comparison

    config = ExperimentConfig(strict_model="vgg19", duration=120.0)
    results = run_comparison(["protean", "infless_llama"], config)
    for name, result in results.items():
        print(name, result.summary.slo_percent)

Per-figure experiment definitions live in ``repro.experiments.figures``;
the ``benchmarks/`` directory exposes one pytest-benchmark target per
paper table/figure on top of them.
"""

from repro.experiments.ablations import (
    ABLATION_VARIANTS,
    make_variant,
    run_ablation,
    run_ablation_suite,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    ExperimentResult,
    build_oracle_plan,
    build_specs,
    run_comparison,
    run_scheme,
)
from repro.experiments.schemes import COMPARISON_SCHEMES, make_scheme, scheme_names

__all__ = [
    "ABLATION_VARIANTS",
    "COMPARISON_SCHEMES",
    "ExperimentConfig",
    "make_variant",
    "run_ablation",
    "run_ablation_suite",
    "ExperimentResult",
    "build_oracle_plan",
    "build_specs",
    "make_scheme",
    "run_comparison",
    "run_scheme",
    "scheme_names",
]
