"""Run the full reproduction suite and emit a consolidated report.

``run_full_suite`` regenerates every paper artifact (all 15 figures and 3
tables) in one pass and writes the tables to an output directory, plus a
``SUMMARY.txt`` index. Exposed on the CLI as ``python -m repro
reproduce-all``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.figures.common import FigureResult


@dataclass(frozen=True)
class SuiteEntry:
    """One regenerated artifact plus how long it took."""

    figure_id: str
    result: FigureResult
    seconds: float
    error: str | None = None


def run_full_suite(
    *,
    quick: bool = True,
    output_dir: str | Path | None = None,
    only: tuple[str, ...] | None = None,
    progress=None,
) -> list[SuiteEntry]:
    """Regenerate every (or selected) paper artifact.

    Parameters
    ----------
    quick:
        Quick mode (reduced durations/rosters) or the paper's breadth.
    output_dir:
        Where to write ``<figure>.txt`` tables and ``SUMMARY.txt``;
        ``None`` skips writing.
    only:
        Restrict to these figure ids.
    progress:
        Optional callable invoked as ``progress(figure_id)`` before each
        artifact (the CLI prints these).
    """
    entries: list[SuiteEntry] = []
    selected = ALL_FIGURES if only is None else {
        figure_id: ALL_FIGURES[figure_id] for figure_id in only
    }
    for figure_id, module in selected.items():
        if progress is not None:
            progress(figure_id)
        started = time.perf_counter()
        try:
            result = module.run(quick=quick)
            error = None
        except Exception as exc:  # pragma: no cover - surfaced, not hidden
            result = FigureResult(figure=figure_id, rows=[], notes=str(exc))
            error = f"{type(exc).__name__}: {exc}"
        entries.append(
            SuiteEntry(
                figure_id=figure_id,
                result=result,
                seconds=time.perf_counter() - started,
                error=error,
            )
        )
    if output_dir is not None:
        _write(entries, Path(output_dir))
    return entries


def _write(entries: list[SuiteEntry], output_dir: Path) -> None:
    output_dir.mkdir(parents=True, exist_ok=True)
    summary_lines = ["PROTEAN reproduction suite", ""]
    for entry in entries:
        path = output_dir / f"{entry.figure_id}.txt"
        path.write_text(entry.result.table() + "\n")
        status = "ERROR: " + entry.error if entry.error else "ok"
        summary_lines.append(
            f"{entry.figure_id:7s} {entry.seconds:7.1f}s  {status}  "
            f"-> {path.name}"
        )
    (output_dir / "SUMMARY.txt").write_text("\n".join(summary_lines) + "\n")
