"""Run the full reproduction suite and emit a consolidated report.

``run_full_suite`` regenerates every paper artifact (all 15 figures and 3
tables) in one pass and writes the tables to an output directory, plus a
``SUMMARY.txt`` index. Exposed on the CLI as ``python -m repro
reproduce-all``.

With ``jobs > 1`` the suite fans out at *figure* granularity: each worker
process regenerates whole artifacts (looked up by figure id, so only the
id string crosses the process boundary) while the parent streams
completions. Workers pin their own ambient job count to 1, so a figure's
internal work-list never multiplies the fan-out. Entries always come back
in selection order regardless of completion order, and each figure's
result is bit-identical to a serial run (see :mod:`repro.parallel`).
The default is serial — parallelism is strictly opt-in for library
callers; the CLI opts in with the machine's core count.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.figures.common import FigureResult


@dataclass(frozen=True)
class SuiteEntry:
    """One regenerated artifact plus how long it took."""

    figure_id: str
    result: FigureResult
    seconds: float
    error: str | None = None


def _run_one_figure(figure_id: str, quick: bool) -> SuiteEntry:
    """Regenerate one artifact, capturing failures instead of raising.

    Module-level so a pool worker can execute it from just the figure id:
    the module is looked up in the worker, keeping the submission payload
    down to ``(str, bool)``.
    """
    started = time.perf_counter()
    try:
        result = ALL_FIGURES[figure_id].run(quick=quick)
        error = None
    except Exception as exc:  # pragma: no cover - surfaced, not hidden
        result = FigureResult(figure=figure_id, rows=[], notes=str(exc))
        error = f"{type(exc).__name__}: {exc}"
    return SuiteEntry(
        figure_id=figure_id,
        result=result,
        seconds=time.perf_counter() - started,
        error=error,
    )


def run_full_suite(
    *,
    quick: bool = True,
    output_dir: str | Path | None = None,
    only: tuple[str, ...] | None = None,
    progress=None,
    on_complete=None,
    jobs: int | None = None,
) -> list[SuiteEntry]:
    """Regenerate every (or selected) paper artifact.

    Parameters
    ----------
    quick:
        Quick mode (reduced durations/rosters) or the paper's breadth.
    output_dir:
        Where to write ``<figure>.txt`` tables and ``SUMMARY.txt``;
        ``None`` skips writing.
    only:
        Restrict to these figure ids.
    progress:
        Optional callable invoked as ``progress(figure_id)`` when an
        artifact starts (serial) or is submitted (parallel); the CLI
        prints these.
    on_complete:
        Optional callable invoked as ``on_complete(entry)`` when an
        artifact finishes — in completion order under fan-out.
    jobs:
        Worker processes for figure-level fan-out. ``None``/1 runs
        serially in this process (the default for library callers).
    """
    selected = ALL_FIGURES if only is None else {
        figure_id: ALL_FIGURES[figure_id] for figure_id in only
    }
    workers = min(jobs or 1, len(selected))
    if workers > 1:
        entries = _run_parallel(
            tuple(selected), quick, workers, progress, on_complete
        )
    else:
        entries = []
        for figure_id in selected:
            if progress is not None:
                progress(figure_id)
            entry = _run_one_figure(figure_id, quick)
            if on_complete is not None:
                on_complete(entry)
            entries.append(entry)
    if output_dir is not None:
        _write(entries, Path(output_dir))
    return entries


def _run_parallel(
    figure_ids: tuple[str, ...],
    quick: bool,
    workers: int,
    progress,
    on_complete,
) -> list[SuiteEntry]:
    """Fan the selected figures across a worker pool, merge in order."""
    from repro.parallel import mp_context, worker_init

    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        mp_context=mp_context(),
        initializer=worker_init,
    ) as pool:
        futures = []
        for figure_id in figure_ids:
            if progress is not None:
                progress(figure_id)
            futures.append(pool.submit(_run_one_figure, figure_id, quick))
        if on_complete is not None:
            for future in concurrent.futures.as_completed(futures):
                if future.exception() is None:
                    on_complete(future.result())
        # Merge by submission index — completion order never leaks.
        return [future.result() for future in futures]


def _write(entries: list[SuiteEntry], output_dir: Path) -> None:
    output_dir.mkdir(parents=True, exist_ok=True)
    summary_lines = ["PROTEAN reproduction suite", ""]
    for entry in entries:
        path = output_dir / f"{entry.figure_id}.txt"
        path.write_text(entry.result.table() + "\n")
        status = "ERROR: " + entry.error if entry.error else "ok"
        summary_lines.append(
            f"{entry.figure_id:7s} {entry.seconds:7.1f}s  {status}  "
            f"-> {path.name}"
        )
    (output_dir / "SUMMARY.txt").write_text("\n".join(summary_lines) + "\n")
