"""Experiment configuration.

One :class:`ExperimentConfig` describes everything about a run except the
scheme under test: workload mix, trace shape, load level, cluster size,
SLO tightness, spot-market regime, and simulation scale. The same config
run against different schemes produces the comparisons in the paper's
figures.

Load convention: ``offered_load`` expresses the total offered work (in
solo-7g execution seconds per second per GPU) as a fraction of the
cluster's serial capacity. The paper's evaluation operates near
saturation — that is where scheduling policy differentiates (Section 6.1's
throughput discussion only makes sense for throughput-limited systems) —
so the default is 0.95.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.pipelines.model import PipelineSpec
from repro.tenancy.model import TenancySpec
from repro.workloads.profile import InterferenceCategory, ModelProfile
from repro.workloads.registry import get_model, models_by_category, opposite_category
from repro.workloads.scaling import scale_model, scale_models

#: Version stamp of the :meth:`ExperimentConfig.to_dict` wire format.
#: Bump when a field changes meaning (not when one is merely added with a
#: default — old payloads then still parse).
CONFIG_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one experiment run (scheme supplied separately)."""

    # Workload mix
    strict_model: str = "resnet50"
    be_pool: tuple[str, ...] | None = None  # None → opposite category
    strict_fraction: float = 0.5
    slo_multiplier: float = 3.0
    rotation_period: float = 20.0

    # Trace
    trace: str = "wiki"  # "constant" | "wiki" | "twitter"
    offered_load: float = 0.85
    rate: float | None = None  # explicit rps; overrides offered_load
    duration: float = 150.0
    warmup: float = 40.0
    drain: float = 240.0  # extra simulated time to let queues empty

    # Cluster / platform
    n_nodes: int = 8
    gpu_device: str = "a100"  # | "a100-80gb" | "h100"
    scale: float = 0.1  # batch-size (and hence rate) scale factor
    batch_max_wait: float = 0.05
    cold_start_seconds: float = 8.0
    keep_alive_seconds: float = 600.0
    reconfig_seconds: float = 2.0
    prewarm_containers: int = 3

    # Spot market / procurement
    procurement: str = "on_demand_only"  # | "hybrid" | "spot_only"
    spot_availability: str = "high"  # | "moderate" | "low"
    spot_check_interval: float = 60.0
    spot_notice_seconds: float = 30.0
    provision_seconds: float = 30.0

    #: Align request arrivals to batch-formation instants, matching the
    #: paper's latency model (no batch-formation term in Section 4.1).
    batched_arrivals: bool = True

    # Observability. Tracing is an observer: enabling it must leave every
    # metric bit-identical (asserted by the determinism regression test).
    tracing: bool = False
    telemetry_interval: float = 5.0

    #: Fault injection. None (or an empty plan) disables it entirely —
    #: a run with an empty plan is bit-identical to faults disabled
    #: (asserted by the fault determinism regression tests).
    fault_plan: FaultPlan | None = None

    #: Runtime auditing (repro.audit): continuously verify conservation
    #: invariants (request lifecycle, GPU memory, MIG geometry, clock,
    #: spot lifecycle). Like tracing, auditing is a pure observer: an
    #: audited run's metrics are bit-identical to an unaudited one.
    audit: bool = False
    audit_interval: float = 5.0
    #: Raise AuditViolationError at the first violation instead of
    #: collecting them into the run's AuditReport.
    audit_fail_fast: bool = False

    #: Multi-tenancy (repro.tenancy). None — the default — runs the
    #: platform single-tenant and bit-identical to pre-tenancy builds
    #: (asserted by the default-path regression test). A TenancySpec
    #: multiplexes the workload across its tenants, enforces per-tenant
    #: admission quotas at the gateway, and orders batches tenant-fairly
    #: on every node.
    tenants: TenancySpec | None = None

    #: Multi-stage workflows (repro.pipelines). None — the default —
    #: keeps the single-stage request path bit-identical to
    #: pre-pipelines builds (pinned by the default-path regression
    #: test). A PipelineSpec replaces the strict/BE mix entirely: the
    #: workload becomes a stream of workflow arrivals whose root stages
    #: enter at the gateway and whose downstream stages are released
    #: live by the PipelineRuntime as their parents complete, with
    #: per-stage deadlines split from the end-to-end SLO by the spec's
    #: deadline policy.
    pipelines: PipelineSpec | None = None

    #: Streaming metrics (repro.metrics.streaming). False — the default —
    #: collects every RequestRecord as before (exact summaries, O(n)
    #: memory, raw records available to figures). True swaps in the
    #: bounded-memory StreamingCollector: percentile sketches + running
    #: counters, for million-request hyperscale runs. Counters, SLO
    #: compliance, throughput, and cost are exact either way; percentiles
    #: and the tail breakdown carry the documented sketch bounds
    #: (docs/hyperscale.md), and ``ExperimentResult.measured`` is empty.
    streaming_metrics: bool = False

    # Determinism
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not 0.0 <= self.warmup < self.duration:
            raise ConfigurationError("warmup must lie in [0, duration)")
        if self.rate is None and self.offered_load <= 0:
            raise ConfigurationError("offered_load must be positive")
        if self.trace not in ("constant", "wiki", "twitter"):
            raise ConfigurationError(f"unknown trace kind {self.trace!r}")
        if self.procurement not in ("on_demand_only", "hybrid", "spot_only"):
            raise ConfigurationError(
                f"unknown procurement mode {self.procurement!r}"
            )
        if self.telemetry_interval <= 0:
            raise ConfigurationError("telemetry_interval must be positive")
        if self.audit_interval <= 0:
            raise ConfigurationError("audit_interval must be positive")
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise ConfigurationError(
                "fault_plan must be a repro.faults.FaultPlan (or None); "
                f"got {type(self.fault_plan).__name__}"
            )
        if self.tenants is not None and not isinstance(
            self.tenants, TenancySpec
        ):
            raise ConfigurationError(
                "tenants must be a repro.tenancy.TenancySpec (or None); "
                f"got {type(self.tenants).__name__}"
            )
        if self.pipelines is not None and not isinstance(
            self.pipelines, PipelineSpec
        ):
            raise ConfigurationError(
                "pipelines must be a repro.pipelines.PipelineSpec (or "
                f"None); got {type(self.pipelines).__name__}"
            )
        if self.pipelines is not None and self.streaming_metrics:
            raise ConfigurationError(
                "pipelines cannot be combined with streaming_metrics "
                "(per-stage records back the pipeline report)"
            )
        if self.pipelines is not None and self.tenants is not None:
            # Tenant multiplexing rebuilds RequestSpecs without the
            # workflow/stage lineage, which would silently orphan every
            # workflow — refuse the combination outright.
            raise ConfigurationError(
                "pipelines cannot be combined with tenants (the tenant "
                "multiplexer does not preserve workflow lineage)"
            )

    # ------------------------------------------------------------------
    # Derived workload objects
    # ------------------------------------------------------------------
    def strict_profile(self) -> ModelProfile:
        """The (scale-adjusted) strict model profile."""
        return scale_model(get_model(self.strict_model), self.scale)

    def be_profiles(self) -> tuple[ModelProfile, ...]:
        """The (scale-adjusted) BE rotation pool.

        Defaults to the paper's rule: BE models come from the opposite
        interference category of the strict model (LI ↔ HI); VHI strict
        models draw BE from the other VHI models.
        """
        if self.be_pool is not None:
            models = tuple(get_model(name) for name in self.be_pool)
        else:
            strict = get_model(self.strict_model)
            category = opposite_category(strict.category)
            models = tuple(
                m
                for m in models_by_category(category)
                if m.name != strict.name
            )
            if category is InterferenceCategory.VHI:
                # Figure 12/13 setup: BE drawn from the non-generative LLMs.
                models = tuple(m for m in models if not m.generative)
        if not models and self.strict_fraction < 1.0:
            raise ConfigurationError("empty BE pool with BE traffic requested")
        return scale_models(models, self.scale)

    def request_rate(self) -> float:
        """Total request rate (rps) for the run.

        Either the explicit ``rate`` (scaled), or derived from
        ``offered_load`` so the offered solo-7g work per GPU per second
        equals the load target.
        """
        if self.rate is not None:
            return self.rate * self.scale
        strict = self.strict_profile()
        per_request = self.strict_fraction * (
            strict.solo_latency_7g / strict.batch_size
        )
        if self.strict_fraction < 1.0:
            pool = self.be_profiles()
            be_work = float(
                np.mean([m.solo_latency_7g / m.batch_size for m in pool])
            )
            per_request += (1.0 - self.strict_fraction) * be_work
        if per_request <= 0:
            raise ConfigurationError("degenerate workload: zero per-request work")
        return self.offered_load * self.n_nodes / per_request

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """A copy with fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialisation (the one wire format shared by the CLI, fault plans,
    # and parallel RunRequests)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe, versioned representation.

        Round-trips exactly: ``ExperimentConfig.from_dict(cfg.to_dict())
        == cfg`` for every constructible config (property-tested over the
        whole figure suite).
        """
        payload: dict = {"version": CONFIG_SCHEMA_VERSION}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "be_pool":
                value = list(value) if value is not None else None
            elif spec.name in ("fault_plan", "tenants", "pipelines"):
                value = value.to_dict() if value is not None else None
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentConfig":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys.

        The ``version`` key is optional (defaults to the current schema);
        payloads from a *newer* schema are refused rather than silently
        misread.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"config payload must be a dict, got {type(payload).__name__}"
            )
        data = dict(payload)
        version = data.pop("version", CONFIG_SCHEMA_VERSION)
        if version != CONFIG_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported config schema version {version!r}; "
                f"this build reads version {CONFIG_SCHEMA_VERSION}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown config field(s): {', '.join(sorted(unknown))}"
            )
        if data.get("be_pool") is not None:
            data["be_pool"] = tuple(data["be_pool"])
        if data.get("fault_plan") is not None:
            data["fault_plan"] = FaultPlan.from_dict(data["fault_plan"])
        if data.get("tenants") is not None:
            data["tenants"] = TenancySpec.from_dict(data["tenants"])
        if data.get("pipelines") is not None:
            data["pipelines"] = PipelineSpec.from_dict(data["pipelines"])
        return cls(**data)
