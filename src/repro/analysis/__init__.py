"""Analytic models for cross-validating the simulation substrate."""

from repro.analysis.queueing import (
    MG1Prediction,
    MMCPrediction,
    consolidation_breakeven,
    erlang_c,
    mg1,
    mmc,
    mps_effective_capacity,
)

__all__ = [
    "MG1Prediction",
    "MMCPrediction",
    "consolidation_breakeven",
    "erlang_c",
    "mg1",
    "mmc",
    "mps_effective_capacity",
]
