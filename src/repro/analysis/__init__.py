"""Analytic models for cross-validating the simulation substrate."""

from repro.analysis.queueing import (
    MG1Prediction,
    consolidation_breakeven,
    mg1,
    mps_effective_capacity,
)

__all__ = [
    "MG1Prediction",
    "consolidation_breakeven",
    "mg1",
    "mps_effective_capacity",
]
