"""Analytic queueing models for cross-validating the simulator.

Time-sharing schemes (Molecule(beta), "MIG Only") are single-server FIFO
queues, so classical results predict their behaviour in closed form. The
tests compare these predictions against the discrete-event simulator —
an independent check that the substrate's queueing dynamics are right,
not just internally consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulingError


@dataclass(frozen=True)
class MG1Prediction:
    """Steady-state M/G/1 quantities (times in seconds)."""

    utilization: float
    mean_wait: float
    mean_response: float

    def response_percentile(self, q: float) -> float:
        """Approximate response-time percentile.

        Uses the standard exponential-tail approximation for the waiting
        time of a stable M/G/1 (exact for M/M/1): the q-th percentile of
        response ≈ service mean + mean_wait × ln(1/(1−q)) / ρ-correction.
        Good to tens of percent below ρ ≈ 0.9, which is all the
        cross-validation needs.
        """
        if not 0.0 < q < 1.0:
            raise SchedulingError("percentile must lie in (0, 1)")
        if self.utilization >= 1.0:
            return math.inf
        service_mean = self.mean_response - self.mean_wait
        if self.mean_wait <= 0:
            return service_mean
        # P(W > t) ≈ ρ·exp(−t/w̄_cond), with w̄_cond the conditional wait.
        conditional_wait = self.mean_wait / self.utilization
        tail = (1.0 - q) / self.utilization
        if tail >= 1.0:
            return service_mean
        return service_mean + conditional_wait * math.log(1.0 / tail)


def mg1(
    arrival_rate: float, service_mean: float, service_scv: float = 0.0
) -> MG1Prediction:
    """Pollaczek–Khinchine mean-value analysis of an M/G/1 queue.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate (jobs per second).
    service_mean:
        Mean service time, seconds.
    service_scv:
        Squared coefficient of variation of service time (0 for
        deterministic service, 1 for exponential).
    """
    if arrival_rate < 0 or service_mean <= 0 or service_scv < 0:
        raise SchedulingError("invalid M/G/1 parameters")
    rho = arrival_rate * service_mean
    if rho >= 1.0:
        return MG1Prediction(rho, math.inf, math.inf)
    mean_wait = rho * service_mean * (1.0 + service_scv) / (2.0 * (1.0 - rho))
    return MG1Prediction(rho, mean_wait, mean_wait + service_mean)


@dataclass(frozen=True)
class MMCPrediction:
    """Steady-state M/M/c quantities (times in seconds)."""

    servers: int
    utilization: float
    #: Erlang-C probability that an arriving job has to wait.
    wait_probability: float
    mean_wait: float
    mean_response: float
    service_mean: float

    def wait_tail(self, t: float) -> float:
        """``P(W > t)`` — exponential waiting-time tail (exact for M/M/c).

        ``P(W > t) = C(c, a) · exp(−(cμ − λ)·t)``, the standard M/M/c
        waiting-time distribution. This is what the capacity planner uses
        to bound SLO attainment: a request meets a latency target ``T``
        when its wait does not exceed ``T − service``.
        """
        if t < 0:
            raise SchedulingError("wait_tail time must be non-negative")
        if self.utilization >= 1.0:
            return 1.0
        if self.wait_probability <= 0.0:
            return 0.0
        drain = (self.servers - self.servers * self.utilization) / self.service_mean
        return self.wait_probability * math.exp(-drain * t)

    def response_percentile(self, q: float) -> float:
        """Approximate q-th percentile of response time.

        Waiting time is a mixture of an atom at zero (mass ``1 − C``) and
        an exponential; response ≈ service mean + wait quantile, the same
        approximation family as :meth:`MG1Prediction.response_percentile`.
        """
        if not 0.0 < q < 1.0:
            raise SchedulingError("percentile must lie in (0, 1)")
        if self.utilization >= 1.0:
            return math.inf
        tail = 1.0 - q
        if tail >= self.wait_probability:
            return self.service_mean
        drain = (self.servers - self.servers * self.utilization) / self.service_mean
        return self.service_mean + math.log(self.wait_probability / tail) / drain


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C delay probability for ``offered_load = λ/μ`` Erlangs.

    Computed through the numerically-stable Erlang-B recursion
    ``B(0) = 1; B(k) = a·B(k−1) / (k + a·B(k−1))`` and the standard B→C
    conversion — no factorials, safe for hundreds of servers.
    """
    if servers < 1:
        raise SchedulingError("Erlang-C needs at least one server")
    if offered_load < 0:
        raise SchedulingError("offered load must be non-negative")
    if offered_load >= servers:
        return 1.0
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho * (1.0 - blocking))


def erlang_c_batch(servers, offered_load) -> np.ndarray:
    """Erlang-C delay probabilities for whole candidate arrays at once.

    Vectorised twin of :func:`erlang_c`: the same numerically-stable
    Erlang-B recursion, run as masked elementwise numpy updates —
    element ``i`` stops updating once ``k`` exceeds ``servers[i]``.
    Because every arithmetic step is the identical IEEE-754 float64
    operation the scalar loop performs, the result is *bit-identical*
    to calling :func:`erlang_c` per element (the capacity planner's
    vectorised pre-screen relies on this to keep its verdicts exactly
    reproducible against the scalar path). Cost is ``O(max(servers))``
    numpy passes over the array instead of ``O(servers_i)`` Python
    iterations per candidate.
    """
    servers = np.asarray(servers, dtype=np.int64)
    offered = np.asarray(offered_load, dtype=np.float64)
    if servers.shape != offered.shape:
        raise SchedulingError(
            "servers and offered_load must have matching shapes"
        )
    if servers.size == 0:
        return np.zeros_like(offered)
    if np.any(servers < 1):
        raise SchedulingError("Erlang-C needs at least one server")
    if np.any(offered < 0):
        raise SchedulingError("offered load must be non-negative")
    blocking = np.ones_like(offered)
    for k in range(1, int(servers.max()) + 1):
        num = offered * blocking
        with np.errstate(invalid="ignore"):
            step = num / (k + num)
        blocking = np.where(k <= servers, step, blocking)
    servers_f = servers.astype(np.float64)
    rho = offered / servers_f
    with np.errstate(divide="ignore", invalid="ignore"):
        delay = blocking / (1.0 - rho * (1.0 - blocking))
    return np.where(offered >= servers_f, 1.0, delay)


def mmc(arrival_rate: float, service_mean: float, servers: int) -> MMCPrediction:
    """Erlang-C mean-value analysis of an M/M/c queue.

    A multi-replica time-sharing deployment (one FIFO GPU per replica fed
    from a shared dispatch queue) is an M/M/c system; this is the
    analytic model the capacity planner's pre-screen uses to bound a
    candidate cluster's attainment before paying for simulation.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate (jobs per second) over the whole pool.
    service_mean:
        Mean (exponential) service time of one job on one server, seconds.
    servers:
        Number of parallel servers ``c``.
    """
    if arrival_rate < 0 or service_mean <= 0:
        raise SchedulingError("invalid M/M/c parameters")
    if servers < 1:
        raise SchedulingError("M/M/c needs at least one server")
    offered = arrival_rate * service_mean
    rho = offered / servers
    if rho >= 1.0:
        return MMCPrediction(
            servers, rho, 1.0, math.inf, math.inf, service_mean
        )
    delay_probability = erlang_c(servers, offered)
    mean_wait = delay_probability * service_mean / (servers - offered)
    return MMCPrediction(
        servers,
        rho,
        delay_probability,
        mean_wait,
        mean_wait + service_mean,
        service_mean,
    )


def mps_effective_capacity(
    mean_fbr: float, concurrency: float
) -> float:
    """Effective service capacity of an MPS-shared GPU, in solo-work/s.

    With ``concurrency`` co-resident jobs of mean slice-relative FBR
    ``mean_fbr``, each job runs ``max(concurrency × mean_fbr, 1)`` times
    slower (Eq. 1), so the GPU completes
    ``concurrency / max(concurrency × mean_fbr, 1)`` units of solo work
    per second — the quantity that saturates as consolidation deepens
    (the INFless/Llama failure mode).
    """
    if mean_fbr < 0 or concurrency <= 0:
        raise SchedulingError("invalid MPS capacity parameters")
    factor = max(concurrency * mean_fbr, 1.0)
    return concurrency / factor


def consolidation_breakeven(mean_fbr: float) -> float:
    """Concurrency beyond which adding co-residents stops helping.

    For mean FBR ``f``, throughput grows linearly until ``n·f = 1`` and
    is flat at ``1/f`` afterwards; the breakeven is ``1/f``. INFless's
    packing past this point buys latency without throughput — exactly the
    paper's "consolidate excessive workload batches" critique.
    """
    if mean_fbr <= 0:
        return math.inf
    return 1.0 / mean_fbr
