"""Rate traces and arrival-time generation.

A :class:`RateTrace` is a piecewise-constant request-rate curve (requests
per second per interval). Generators in :mod:`repro.traces.wiki` and
:mod:`repro.traces.twitter` produce traces with the statistical shape of
the paper's Wikipedia and Twitter workloads; :func:`arrival_times` turns a
trace into concrete request arrival timestamps (Poisson within each
interval by default, matching real request streams).

The paper scales traces so that the Wiki trace's *mean* and the Twitter
trace's *peak* hit ~5000 rps for vision models (Section 5);
:meth:`RateTrace.scale_to_mean` / :meth:`RateTrace.scale_to_peak`
implement exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True)
class RateTrace:
    """A piecewise-constant arrival-rate curve.

    ``rates[i]`` is the request rate (rps) over
    ``[i * interval, (i+1) * interval)``.
    """

    rates: np.ndarray
    interval: float = 1.0
    name: str = "trace"

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=float)
        object.__setattr__(self, "rates", rates)
        if rates.ndim != 1 or rates.size == 0:
            raise TraceError("a trace needs a non-empty 1-D rate array")
        if (rates < 0).any():
            raise TraceError("rates must be non-negative")
        if self.interval <= 0:
            raise TraceError("interval must be positive")

    # ------------------------------------------------------------------
    # Shape statistics
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Total trace length in seconds."""
        return self.interval * self.rates.size

    @property
    def mean_rate(self) -> float:
        """Time-averaged request rate (rps)."""
        return float(self.rates.mean())

    @property
    def peak_rate(self) -> float:
        """Maximum interval rate (rps)."""
        return float(self.rates.max())

    @property
    def peak_to_mean(self) -> float:
        """Burstiness: peak over mean (Wiki ≈ 1.04, Twitter ≈ 1.54)."""
        mean = self.mean_rate
        if mean == 0:
            raise TraceError("peak_to_mean undefined for an all-zero trace")
        return self.peak_rate / mean

    @property
    def expected_requests(self) -> float:
        """Expected total request count over the trace."""
        return float(self.rates.sum() * self.interval)

    def rate_at(self, time: float) -> float:
        """The rate in force at simulated ``time`` (0 outside the trace)."""
        if time < 0 or time >= self.duration:
            return 0.0
        return float(self.rates[int(time / self.interval)])

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def scale_by(self, factor: float) -> "RateTrace":
        """Return a copy with every rate multiplied by ``factor``."""
        if factor <= 0:
            raise TraceError("scale factor must be positive")
        return RateTrace(self.rates * factor, self.interval, self.name)

    def scale_to_mean(self, target_mean: float) -> "RateTrace":
        """Rescale so the mean rate equals ``target_mean`` (Wiki scaling)."""
        mean = self.mean_rate
        if mean == 0:
            raise TraceError("cannot rescale an all-zero trace")
        return self.scale_by(target_mean / mean)

    def scale_to_peak(self, target_peak: float) -> "RateTrace":
        """Rescale so the peak rate equals ``target_peak`` (Twitter scaling)."""
        peak = self.peak_rate
        if peak == 0:
            raise TraceError("cannot rescale an all-zero trace")
        return self.scale_by(target_peak / peak)


def constant_trace(
    rate: float, duration: float, *, interval: float = 1.0, name: str = "constant"
) -> RateTrace:
    """A flat trace, as used in the Section 2.2 motivation experiment."""
    if duration <= 0:
        raise TraceError("duration must be positive")
    intervals = max(1, int(round(duration / interval)))
    return RateTrace(np.full(intervals, float(rate)), interval, name)


def arrival_times(
    trace: RateTrace, rng: np.random.Generator, *, poisson: bool = True
) -> np.ndarray:
    """Materialize request arrival timestamps from a rate trace.

    With ``poisson=True`` (default) each interval receives a
    Poisson-distributed request count placed uniformly at random within
    the interval — the standard inhomogeneous-Poisson thinning for
    piecewise-constant rates. With ``poisson=False`` counts are
    deterministic (``round(rate × interval)``) and evenly spaced, which is
    useful for exactly-reproducible microbenchmarks.

    Returns a sorted float array of timestamps in ``[0, trace.duration)``.
    """
    chunks: list[np.ndarray] = []
    for i, rate in enumerate(trace.rates):
        expected = rate * trace.interval
        if expected <= 0:
            continue
        start = i * trace.interval
        if poisson:
            count = int(rng.poisson(expected))
            if count == 0:
                continue
            stamps = start + rng.random(count) * trace.interval
            stamps.sort()
        else:
            count = int(round(expected))
            if count == 0:
                continue
            stamps = start + (np.arange(count) + 0.5) * (trace.interval / count)
        chunks.append(stamps)
    if not chunks:
        return np.empty(0, dtype=float)
    return np.concatenate(chunks)
