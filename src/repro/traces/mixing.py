"""Strict/Best-Effort request mixing (paper Section 5).

The paper's experiments use a 50-50 mix of strict and BE requests by
default: strict requests always target one fixed model (an LI or HI one),
while BE requests target a model drawn from the *opposite* interference
category, re-drawn every ~20 seconds. The sensitivity studies vary the
strict fraction (75/25, 25/75, 100/0, 0/100) — all supported here.

The output is a time-ordered list of :class:`RequestSpec`, the input the
serverless gateway consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TraceError
from repro.workloads.profile import ModelProfile

#: How often the BE model rotates (paper: "varies randomly (every ~20s)").
DEFAULT_ROTATION_PERIOD = 20.0


@dataclass(frozen=True, slots=True)
class RequestSpec:
    """One request to be injected into the platform.

    ``slots=True``: a hyperscale trace materialises millions of specs up
    front, so the slotted layout halves the stream's memory footprint.
    """

    arrival: float
    model: ModelProfile
    strict: bool
    slo_multiplier: float = 3.0
    #: Owning tenant; the implicit ``"default"`` tenant unless a
    #: :class:`~repro.tenancy.workload.TenantWorkload` multiplexed the
    #: stream (see repro.tenancy).
    tenant: str = "default"
    #: Owning workflow id and stage name when the spec is one stage of a
    #: multi-stage pipeline (see repro.pipelines); None on the default
    #: single-stage path.
    workflow: str | None = None
    stage: str | None = None

    @property
    def slo_deadline(self) -> float | None:
        """Absolute deadline for strict requests; None for best-effort."""
        if not self.strict:
            return None
        return self.arrival + self.model.slo_target(self.slo_multiplier)


@dataclass(frozen=True)
class MixSpec:
    """Configuration of a strict/BE request mix.

    ``strict_model`` serves every strict request. ``be_pool`` is the set
    the rotating BE model is drawn from; it may be empty only when
    ``strict_fraction == 1``.
    """

    strict_model: ModelProfile
    be_pool: tuple[ModelProfile, ...]
    strict_fraction: float = 0.5
    rotation_period: float = DEFAULT_ROTATION_PERIOD
    #: SLO deadline as a multiple of the 7g batch latency (paper: 3×,
    #: tightened to 2× in the Figure 15 sensitivity study).
    slo_multiplier: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.strict_fraction <= 1.0:
            raise TraceError("strict_fraction must lie in [0, 1]")
        if self.strict_fraction < 1.0 and not self.be_pool:
            raise TraceError("a BE pool is required when strict_fraction < 1")
        if self.rotation_period <= 0:
            raise TraceError("rotation_period must be positive")
        if self.slo_multiplier <= 0:
            raise TraceError("slo_multiplier must be positive")


def _draw_mix_layout(
    stamps: np.ndarray, mix: MixSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray | None]:
    """The shared RNG draw layout of :func:`mix_requests`.

    Draw order is part of the reproducibility contract: first the
    per-request strictness uniforms (``stamps.size`` draws), then — when
    a BE pool exists — one rotation index per ``rotation_period`` window
    up to the **last arrival** (not the nominal trace duration). Both
    :func:`mix_requests` and :func:`be_model_schedule` must consume the
    generator through this one helper; a second, diverging copy of the
    layout is exactly the bug the rotation regression test pins.
    """
    strict_flags = rng.random(stamps.size) < mix.strict_fraction
    if mix.be_pool:
        windows = int(stamps[-1] // mix.rotation_period) + 1 if stamps.size else 0
        rotation = rng.integers(0, len(mix.be_pool), size=max(windows, 1))
    else:
        rotation = None
    return strict_flags, rotation


def mix_requests(
    arrivals: Sequence[float] | np.ndarray,
    mix: MixSpec,
    rng: np.random.Generator,
) -> list[RequestSpec]:
    """Assign strictness and models to raw arrival timestamps.

    Strictness is drawn i.i.d. Bernoulli(``strict_fraction``) per request
    (so a 50-50 mix is statistical, like interleaved user populations).
    The BE model is constant within each ``rotation_period`` window and
    re-drawn uniformly from ``be_pool`` at each boundary.
    """
    stamps = np.sort(np.asarray(arrivals, dtype=float))
    if stamps.size and stamps[0] < 0:
        raise TraceError("arrival timestamps must be non-negative")
    strict_flags, rotation = _draw_mix_layout(stamps, mix, rng)
    requests: list[RequestSpec] = []
    for arrival, strict in zip(stamps.tolist(), strict_flags.tolist()):
        if strict:
            model = mix.strict_model
        else:
            assert rotation is not None
            window = int(arrival // mix.rotation_period)
            model = mix.be_pool[int(rotation[window])]
        requests.append(
            RequestSpec(
                arrival=arrival,
                model=model,
                strict=strict,
                slo_multiplier=mix.slo_multiplier,
            )
        )
    return requests


def collapse_to_batches(specs: Sequence[RequestSpec]) -> list[RequestSpec]:
    """Align request arrivals to batch-formation instants.

    The paper's latency model is ``t = t_cold + t_queue + t_exec``
    (Section 4.1) — there is no batch-formation term, i.e. requests are
    considered to arrive as formed batches. This helper reproduces that:
    within each (model, strictness) class, consecutive requests are
    grouped into batch-size chunks and every member's arrival is set to
    the chunk's completion instant (when the batch exists). SLO deadlines
    are re-anchored accordingly.

    Returns a new time-ordered spec list; the input is not modified.
    """
    by_class: dict[tuple[str, bool, str], list[RequestSpec]] = {}
    for spec in specs:
        by_class.setdefault(
            (spec.model.name, spec.strict, spec.tenant), []
        ).append(spec)
    collapsed: list[RequestSpec] = []
    for class_specs in by_class.values():
        class_specs.sort(key=lambda s: s.arrival)
        batch_size = class_specs[0].model.batch_size
        for start in range(0, len(class_specs), batch_size):
            chunk = class_specs[start : start + batch_size]
            formed_at = chunk[-1].arrival
            for spec in chunk:
                collapsed.append(
                    RequestSpec(
                        arrival=formed_at,
                        model=spec.model,
                        strict=spec.strict,
                        slo_multiplier=spec.slo_multiplier,
                        tenant=spec.tenant,
                    )
                )
    collapsed.sort(key=lambda s: s.arrival)
    return collapsed


def be_model_schedule(
    duration: float,
    mix: MixSpec,
    rng: np.random.Generator,
    *,
    arrivals: Sequence[float] | np.ndarray | None = None,
) -> list[tuple[float, ModelProfile]]:
    """The (window start, BE model) rotation schedule over ``duration``.

    Pass the **same** ``arrivals`` handed to :func:`mix_requests` and an
    ``rng`` in the same state: the schedule then consumes the generator
    through the identical draw layout (strictness uniforms first, then
    one rotation draw per window up to the last arrival) and reproduces
    exactly the models requests will see — the guarantee the Oracle
    baseline and Figure 7's annotations rely on.

    Historical note: this function used to re-derive the window count
    from ``duration`` while :func:`mix_requests` derives it from the last
    arrival stamp, and it skipped the strictness draws entirely — with
    the same rng state the two silently diverged whenever the final
    arrival did not land in ``duration``'s window (or at all, unless the
    caller hand-burned the strictness uniforms). Without ``arrivals`` the
    legacy layout is kept for callers that only want *a* schedule, but it
    must not be used to annotate a generated request stream.

    Windows that start after the last arrival carry no BE requests; they
    are filled by cycling deterministically through ``be_pool`` from the
    last drawn index (annotation-only, consumes no RNG draws).
    """
    if not mix.be_pool:
        return []
    windows = int(duration // mix.rotation_period) + 1
    if arrivals is not None:
        stamps = np.sort(np.asarray(arrivals, dtype=float))
        _, rotation = _draw_mix_layout(stamps, mix, rng)
        assert rotation is not None
    else:
        rotation = rng.integers(0, len(mix.be_pool), size=max(windows, 1))
    schedule: list[tuple[float, ModelProfile]] = []
    for w in range(windows):
        if w < rotation.size:
            index = int(rotation[w])
        else:
            # Past the last arrival: no requests exist to agree with, so
            # extend predictably instead of inventing extra draws that
            # would perturb callers sharing the generator.
            index = (int(rotation[-1]) + (w - rotation.size + 1)) % len(
                mix.be_pool
            )
        schedule.append((w * mix.rotation_period, mix.be_pool[index]))
    return schedule
