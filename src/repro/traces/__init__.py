"""Request trace generation: rate curves, arrivals, and strict/BE mixing."""

from repro.traces.base import RateTrace, arrival_times, constant_trace
from repro.traces.io import (
    load_rate_trace,
    load_request_stream,
    save_rate_trace,
    save_request_stream,
)
from repro.traces.mixing import (
    DEFAULT_ROTATION_PERIOD,
    MixSpec,
    RequestSpec,
    be_model_schedule,
    collapse_to_batches,
    mix_requests,
)
from repro.traces.twitter import TWITTER_PEAK_TO_MEAN, twitter_trace
from repro.traces.wiki import WIKI_PEAK_TO_MEAN, wiki_trace

__all__ = [
    "DEFAULT_ROTATION_PERIOD",
    "MixSpec",
    "RateTrace",
    "RequestSpec",
    "TWITTER_PEAK_TO_MEAN",
    "WIKI_PEAK_TO_MEAN",
    "arrival_times",
    "be_model_schedule",
    "collapse_to_batches",
    "constant_trace",
    "load_rate_trace",
    "load_request_stream",
    "mix_requests",
    "save_rate_trace",
    "save_request_stream",
    "twitter_trace",
    "wiki_trace",
]
