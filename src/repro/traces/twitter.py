"""Twitter-like erratic trace generator.

The paper's Twitter trace "is erratic, and has a large peak-to-mean ratio
(4561:2969)" versus the smooth Wiki trace (Section 5); for the erratic-trace
sensitivity study it is scaled so the *peak* hits ~5000 rps (giving a mean
of ~3000 rps, "35% lower" than the Wiki experiments — Section 6.2).

We synthesize the shape as a noisy baseline overlaid with random surges:
each surge arrives via a Bernoulli draw per interval, lasts a geometric
number of intervals, and multiplies the baseline. Parameters are tuned so
the expected peak:mean ratio lands near the paper's ≈1.54.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.traces.base import RateTrace

#: The paper's reported Twitter peak:mean ratio (4561:2969).
TWITTER_PEAK_TO_MEAN = 4561.0 / 2969.0


def twitter_trace(
    duration: float,
    rng: np.random.Generator,
    *,
    peak_rate: float = 5000.0,
    interval: float = 1.0,
    surge_probability: float = 0.02,
    surge_mean_length: float = 6.0,
    surge_height: float = 0.55,
    noise: float = 0.05,
) -> RateTrace:
    """Generate a Twitter-like bursty trace scaled to ``peak_rate``.

    ``surge_probability`` is the per-interval chance a new surge begins;
    ``surge_mean_length`` its mean duration in intervals (geometric);
    ``surge_height`` the relative rate increase during a surge. Defaults
    produce a peak:mean ratio near the paper's 1.54.
    """
    if duration <= 0:
        raise TraceError("duration must be positive")
    if not 0.0 <= surge_probability <= 1.0:
        raise TraceError("surge_probability must lie in [0, 1]")
    if surge_mean_length < 1.0:
        raise TraceError("surge_mean_length must be >= 1 interval")
    intervals = max(1, int(round(duration / interval)))
    shape = np.clip(rng.normal(1.0, noise, intervals), 0.3, 2.0)
    index = 0
    while index < intervals:
        if rng.random() < surge_probability:
            length = 1 + int(rng.geometric(1.0 / surge_mean_length))
            end = min(intervals, index + length)
            # Ragged surge: ramps up then decays, like retweet cascades.
            ramp = np.linspace(1.0, 0.4, end - index)
            shape[index:end] *= 1.0 + surge_height * ramp
            index = end
        else:
            index += 1
    # Guarantee the trace is genuinely erratic even for short windows:
    # force one full-height surge if none was drawn.
    if shape.max() < 1.0 + 0.8 * surge_height:
        start = int(rng.integers(0, max(1, intervals - 3)))
        shape[start : start + 3] *= 1.0 + surge_height
    trace = RateTrace(np.clip(shape, 1e-9, None), interval, name="twitter")
    return trace.scale_to_peak(peak_rate)
