"""Wikipedia-like diurnal trace generator.

The paper uses real Wikipedia request traces "as they resemble the diurnal
request arrivals of ML inference workloads" (Section 5) and reports a very
smooth peak:mean ratio of 316:303 (≈ 1.043). We synthesize the same shape:
a slow sinusoidal diurnal swing plus mild multiplicative noise, then scale
to the experiment's target mean rate (the paper targets ~5000 rps for
vision models and 128 rps for language models).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.traces.base import RateTrace

#: The paper's reported Wiki peak:mean ratio (316:303).
WIKI_PEAK_TO_MEAN = 316.0 / 303.0

#: Seconds in the diurnal period being compressed into the trace window.
DEFAULT_DIURNAL_PERIOD = 86_400.0


def wiki_trace(
    duration: float,
    rng: np.random.Generator,
    *,
    mean_rate: float = 5000.0,
    interval: float = 1.0,
    diurnal_cycles: float = 1.0,
    noise: float = 0.008,
) -> RateTrace:
    """Generate a Wiki-like diurnal trace.

    Parameters
    ----------
    duration:
        Trace length in seconds (the full window is treated as
        ``diurnal_cycles`` compressed day/night cycles).
    rng:
        Seeded generator for the noise component.
    mean_rate:
        Target mean rate after scaling (paper: ~5000 rps).
    interval:
        Rate-curve resolution in seconds.
    diurnal_cycles:
        How many sinusoidal cycles to fit in the window.
    noise:
        Relative σ of the per-interval multiplicative noise. The default,
        together with the sinusoid amplitude, lands the peak:mean ratio
        near the paper's 1.043.
    """
    if duration <= 0:
        raise TraceError("duration must be positive")
    if noise < 0:
        raise TraceError("noise must be non-negative")
    intervals = max(1, int(round(duration / interval)))
    phase = np.linspace(0.0, 2.0 * np.pi * diurnal_cycles, intervals, endpoint=False)
    # Amplitude tuned so peak/mean ≈ 1.043 once mild noise is added.
    shape = 1.0 + 0.035 * np.sin(phase)
    if noise > 0:
        shape = shape * np.clip(rng.normal(1.0, noise, intervals), 0.5, 1.5)
    shape = np.clip(shape, 1e-9, None)
    trace = RateTrace(shape, interval, name="wiki")
    return trace.scale_to_mean(mean_rate)
