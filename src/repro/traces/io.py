"""Trace persistence: load and save rate traces and request streams.

Users with *real* Wikipedia/Twitter traces (or production request logs)
can feed them in through these loaders instead of the synthetic
generators. Formats are deliberately plain CSV:

- **Rate trace**: ``interval_start_s,rate_rps`` rows (header optional);
  intervals must be uniform.
- **Request stream**: ``arrival_s,model,strict`` rows; ``model`` is any
  registry name, ``strict`` is 0/1.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.errors import TraceError, TraceFormatError
from repro.traces.base import RateTrace
from repro.traces.mixing import RequestSpec
from repro.workloads.registry import get_model


def _is_header(row: list[str], first_data_row: bool) -> bool:
    """Whether ``row`` is the optional leading header line.

    Only the *first* non-blank row may be non-numeric; a non-numeric row
    deeper in the file is corrupt data and must raise, not be skipped
    (silent skipping is how a half-written trace loses rows unnoticed).
    """
    if not first_data_row:
        return False
    try:
        float(row[0])
    except ValueError:
        return True
    return False


def save_rate_trace(trace: RateTrace, path: str | Path) -> None:
    """Write a rate trace as ``interval_start_s,rate_rps`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["interval_start_s", "rate_rps"])
        for index, rate in enumerate(trace.rates):
            writer.writerow([repr(index * trace.interval), repr(float(rate))])


def load_rate_trace(path: str | Path, *, name: str = "") -> RateTrace:
    """Read a rate trace written by :func:`save_rate_trace` (or by hand)."""
    path = Path(path)
    starts: list[float] = []
    rates: list[float] = []
    with path.open(newline="") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row or not row[0].strip():
                continue
            if _is_header(row, first_data_row=not starts):
                continue
            if len(row) != 2:
                raise TraceFormatError(
                    f"{path}:{line_no}: expected 2 columns "
                    f"(interval_start_s,rate_rps), got {len(row)}"
                )
            try:
                start, rate = float(row[0]), float(row[1])
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: non-numeric rate row {row!r}"
                ) from exc
            if starts and start <= starts[-1]:
                raise TraceFormatError(
                    f"{path}:{line_no}: non-monotonic interval start "
                    f"{start} after {starts[-1]}"
                )
            starts.append(start)
            rates.append(rate)
    if len(rates) < 1:
        raise TraceError(f"{path}: no rate rows found")
    if len(starts) >= 2:
        deltas = np.diff(starts)
        if not np.allclose(deltas, deltas[0], rtol=1e-6, atol=1e-9):
            raise TraceError(f"{path}: intervals are not uniform")
        interval = float(deltas[0])
    else:
        interval = 1.0
    return RateTrace(
        np.asarray(rates), interval, name=name or path.stem
    )


def save_request_stream(
    specs: Iterable[RequestSpec], path: str | Path
) -> None:
    """Write request specs as ``arrival_s,model,strict,slo_multiplier``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["arrival_s", "model", "strict", "slo_multiplier"])
        for spec in specs:
            writer.writerow(
                [
                    repr(spec.arrival),
                    spec.model.name,
                    int(spec.strict),
                    f"{spec.slo_multiplier:g}",
                ]
            )


def load_request_stream(path: str | Path) -> list[RequestSpec]:
    """Read a request stream written by :func:`save_request_stream`.

    Model names resolve through the workload registry; unknown names
    raise :class:`repro.errors.UnknownModelError`.
    """
    path = Path(path)
    specs: list[RequestSpec] = []
    with path.open(newline="") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row or not row[0].strip():
                continue
            if _is_header(row, first_data_row=not specs):
                continue
            if not 3 <= len(row) <= 4:
                raise TraceFormatError(
                    f"{path}:{line_no}: expected 3-4 columns "
                    f"(arrival_s,model,strict[,slo_multiplier]), "
                    f"got {len(row)}"
                )
            try:
                arrival = float(row[0])
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: non-numeric arrival {row[0]!r}"
                ) from exc
            if arrival < 0:
                raise TraceError(f"{path}: negative arrival {arrival}")
            model = get_model(row[1])
            if row[2].strip() not in ("0", "1"):
                raise TraceFormatError(
                    f"{path}:{line_no}: strict flag must be 0 or 1, "
                    f"got {row[2]!r}"
                )
            strict = row[2].strip() == "1"
            try:
                multiplier = float(row[3]) if len(row) > 3 else 3.0
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: non-numeric slo_multiplier "
                    f"{row[3]!r}"
                ) from exc
            specs.append(
                RequestSpec(
                    arrival=arrival,
                    model=model,
                    strict=strict,
                    slo_multiplier=multiplier,
                )
            )
    specs.sort(key=lambda s: s.arrival)
    return specs
