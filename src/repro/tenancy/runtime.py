"""The live tenancy state one platform run carries.

A :class:`TenancyRuntime` is constructed by the
:class:`~repro.serverless.platform.ServerlessPlatform` when an
experiment's config declares tenants. It owns the gateway
:class:`~repro.tenancy.admission.AdmissionController`, mints one
:class:`~repro.tenancy.fairness.NodeTenancy` per worker node, and is the
single object the auditor and the metrics layer interrogate for tenant
facts (quotas, exclusivity, billing rates).
"""

from __future__ import annotations

from typing import Callable

from repro.tenancy.admission import AdmissionController
from repro.tenancy.fairness import NodeTenancy
from repro.tenancy.model import TenancySpec, TenantSet


class TenancyRuntime:
    """Everything tenancy-related that lives for one platform run."""

    def __init__(
        self,
        spec: TenancySpec,
        *,
        on_reject: Callable | None = None,
    ) -> None:
        self.spec = spec
        self.admission = AdmissionController(
            spec.tenant_set,
            enforce_quotas=spec.admission,
            on_reject=on_reject,
        )

    @property
    def tenant_set(self) -> TenantSet:
        """The tenants this run serves."""
        return self.spec.tenant_set

    def make_node_policy(self) -> NodeTenancy:
        """A fresh per-node fairness/isolation policy object."""
        return NodeTenancy(self.spec)

    def release_batch(self, batch) -> None:
        """Return every member request's quota slot on batch completion.

        Batches are tenant-homogeneous, so the whole batch decrements one
        counter — this runs once per completed batch on the hot path.
        """
        in_flight = self.admission.in_flight
        count = in_flight.get(batch.tenant, 0)
        in_flight[batch.tenant] = max(0, count - len(batch.requests))
