"""Per-tenant trace composition: the tenant workload multiplexer.

:class:`TenantWorkload` sits *on top of* the existing workload generators
(constant/wiki/twitter traces, strict/BE mixing): given an untagged
time-ordered request stream, it assigns every request an owning tenant —
drawn from the tenant set's traffic shares, modulated by any declared
:class:`~repro.tenancy.model.TenantSurge` windows — and applies the
tenant's SLO class to the request's deadline multiplier. The result is a
stream the platform serves exactly as before, except every request now
carries a tenant id through batching, scheduling, records, and spans.

Assignment is a pure function of (stream, spec, rng state): the same seed
always produces the same tenant labelling, which is what makes tenant
scenarios reproducible and jobs=1 vs jobs=N bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.tenancy.model import TenancySpec
from repro.traces.mixing import RequestSpec


class TenantWorkload:
    """Multiplexes an untagged request stream across a tenant set."""

    def __init__(self, spec: TenancySpec) -> None:
        if not isinstance(spec, TenancySpec):
            raise ConfigurationError(
                f"TenantWorkload needs a TenancySpec, got "
                f"{type(spec).__name__}"
            )
        self.spec = spec
        self.tenant_set = spec.tenant_set
        self._ids = list(self.tenant_set.ids)
        self._base_shares = np.array(
            [t.traffic_share for t in self.tenant_set], dtype=float
        )
        self._slo_factors = {
            t.tenant_id: t.slo_factor for t in self.tenant_set
        }

    def shares_at(self, time: float) -> np.ndarray:
        """Effective (unnormalised) traffic shares at simulated ``time``."""
        shares = self._base_shares.copy()
        for surge in self.spec.surges:
            if surge.active_at(time):
                shares[self._ids.index(surge.tenant_id)] *= surge.multiplier
        return shares

    def multiplex(
        self, specs: list[RequestSpec], rng: np.random.Generator
    ) -> list[RequestSpec]:
        """Tag every request with a tenant and tenant-adjusted deadline.

        One uniform draw per request, mapped through the (possibly
        surge-modulated) share distribution at the request's arrival
        time. Requests already tagged with a non-default tenant are
        validated against the set and passed through unchanged.

        The whole assignment is vectorised (one shares matrix, one
        cumulative sum, one comparison) — per-request numpy calls were
        ~20% of a run's wall clock before this.
        """
        draws = rng.random(len(specs))
        if not specs:
            return []
        if self.spec.surges:
            indices = self._surged_indices(specs, draws)
        else:
            # Constant shares: one cumulative distribution serves every
            # request.
            cumulative = np.cumsum(
                self._base_shares / self._base_shares.sum()
            )
            indices = np.minimum(
                np.searchsorted(cumulative, draws), len(self._ids) - 1
            )
        ids = self._ids
        factors = [self._slo_factors[tenant_id] for tenant_id in ids]
        tagged: list[RequestSpec] = []
        append = tagged.append
        for spec, index in zip(specs, indices.tolist()):
            if spec.tenant != "default":
                # Pre-tagged stream (external trace): ids must be known.
                self.tenant_set.get(spec.tenant)
                append(spec)
                continue
            append(
                RequestSpec(
                    spec.arrival,
                    spec.model,
                    spec.strict,
                    spec.slo_multiplier * factors[index],
                    ids[index],
                )
            )
        return tagged

    def _surged_indices(
        self, specs: list[RequestSpec], draws: np.ndarray
    ) -> np.ndarray:
        """Per-request tenant indices under surge-modulated shares.

        Row r of ``shares`` is the (unnormalised) distribution in effect
        at request r's arrival — base shares scaled by every surge whose
        window covers it.
        """
        arrivals = np.array([s.arrival for s in specs], dtype=float)
        shares = np.broadcast_to(
            self._base_shares, (len(specs), len(self._ids))
        ).copy()
        for surge in self.spec.surges:
            active = (arrivals >= surge.start) & (arrivals < surge.end)
            shares[active, self._ids.index(surge.tenant_id)] *= (
                surge.multiplier
            )
        totals = shares.sum(axis=1)
        if np.any(totals <= 0):
            when = float(arrivals[np.argmax(totals <= 0)])
            raise ConfigurationError(
                f"all tenant traffic shares are zero at t={when:.3f} "
                "(surges multiplied every share away?)"
            )
        cumulative = np.cumsum(shares / totals[:, None], axis=1)
        # Left insertion point of each draw in its row, as searchsorted
        # would give: the count of cumulative cells strictly below it.
        return np.minimum(
            (cumulative < draws[:, None]).sum(axis=1),
            len(self._ids) - 1,
        )
