"""Per-tenant admission control at the gateway.

The :class:`AdmissionController` enforces each tenant's concurrency quota
the way a production API gateway returns 429s: a request whose tenant
already has ``quota`` requests in flight (admitted but not yet completed)
is rejected at the door — it never reaches the batcher, never occupies a
container, and is recorded as a first-class terminal outcome
(:class:`~repro.metrics.records.RejectionRecord`) rather than silently
dropped.

Unknown tenant ids — a trace tagged with a tenant that was never
registered — surface as :class:`~repro.errors.ConfigurationError`
immediately, not as a ``KeyError`` from some downstream dict.
"""

from __future__ import annotations

from typing import Callable

from repro.tenancy.model import Tenant, TenantSet


class AdmissionController:
    """Tracks per-tenant in-flight requests and enforces quotas."""

    def __init__(
        self,
        tenant_set: TenantSet,
        *,
        enforce_quotas: bool = True,
        on_reject: Callable | None = None,
    ) -> None:
        self.tenant_set = tenant_set
        self.enforce_quotas = enforce_quotas
        self.on_reject = on_reject
        self._tenants: dict[str, Tenant] = {
            t.tenant_id: t for t in tenant_set
        }
        # Quota by tenant id, pre-resolved: try_admit runs once per
        # request on the gateway hot path, so it works off plain dicts
        # rather than chasing Tenant attributes. A quota of None (and
        # every quota when enforcement is off) means unlimited.
        self._quotas: dict[str, int | None] = {
            t.tenant_id: (t.quota if enforce_quotas else None)
            for t in tenant_set
        }
        self.in_flight: dict[str, int] = {t: 0 for t in self._tenants}
        self.admitted: dict[str, int] = {t: 0 for t in self._tenants}
        self.rejected: dict[str, int] = {t: 0 for t in self._tenants}

    def try_admit(self, request) -> bool:
        """Admit ``request`` or reject it against its tenant's quota.

        Returns True when the request may proceed into the platform.
        Rejection invokes ``on_reject(request)`` (the platform hooks
        rejection records and ``tenant.reject`` spans there).
        """
        tenant_id = request.tenant
        in_flight = self.in_flight
        count = in_flight.get(tenant_id)
        if count is None:
            # Same normalised path as TenantSet.get — a trace carrying an
            # unregistered tenant id is a configuration bug, not a 429.
            self.tenant_set.get(tenant_id)
        quota = self._quotas[tenant_id]
        if quota is not None and count >= quota:
            self.rejected[tenant_id] += 1
            if self.on_reject is not None:
                self.on_reject(request)
            return False
        in_flight[tenant_id] = count + 1
        self.admitted[tenant_id] += 1
        return True

    def release(self, request) -> None:
        """Return a completed request's slot to its tenant's quota."""
        count = self.in_flight.get(request.tenant, 0)
        if count > 0:
            self.in_flight[request.tenant] = count - 1

    def total_rejected(self) -> int:
        """Rejections across every tenant."""
        return sum(self.rejected.values())
