"""Canonical multi-tenant scenarios: noisy neighbour, flash crowd, quota
exhaustion.

Each scenario is a small, named bundle of experiment runs whose configs
are built by a pure function of (scheme, seed) — the CLI (``python -m
repro tenants <scenario>``) and the regression tests execute exactly the
same configs, so a number quoted from the CLI is the number the test
pins.

**noisy-neighbour** — a victim tenant is sized to run comfortably alone
(its solo attainment is the reference), then an aggressor offering
several times the victim's load joins. The FIFO arm (no fairness, no
admission control) shows the failure mode: the victim's SLO attainment
collapses even though its own traffic never changed. The WFQ arm
(weighted fair queueing + priority + an aggressor concurrency quota)
restores the victim to within a few points of its solo attainment while
the aggressor's excess is shed at the gateway.

**flash-crowd** — two equal tenants; one surges 8× for the middle third
of the run. Shows surge-window modulation and how fairness contains the
blast radius.

**quota-exhaustion** — a capped tenant offers far more traffic than its
concurrency quota admits; the gateway sheds the excess as 429-style
rejections while a steady tenant rides along untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.tenancy.model import Tenant, TenantSet, TenantSurge, TenancySpec

if TYPE_CHECKING:  # pragma: no cover - imported lazily to avoid a cycle
    from repro.experiments.config import ExperimentConfig

#: Scenario names accepted by :func:`run_tenancy_scenario` and the CLI.
SCENARIOS = ("noisy-neighbour", "flash-crowd", "quota-exhaustion")

#: Aggressor offered load as a multiple of the victim's (noisy neighbour).
AGGRESSOR_MULTIPLE = 3.0

#: The victim's comfortable solo operating point (fraction of capacity).
VICTIM_SOLO_LOAD = 0.55

#: Shared run shape: short enough for CI, long enough for stable tails.
_BASE = dict(
    trace="constant",
    duration=60.0,
    warmup=15.0,
    drain=90.0,
    n_nodes=2,
)


def _victim() -> Tenant:
    return Tenant(
        tenant_id="victim",
        slo_class="standard",
        priority=0,
        weight=3.0,
        traffic_share=1.0,
    )


def _aggressor(quota: int | None) -> Tenant:
    return Tenant(
        tenant_id="aggressor",
        slo_class="relaxed",
        priority=1,
        quota=quota,
        weight=1.0,
        traffic_share=AGGRESSOR_MULTIPLE,
    )


def noisy_neighbour_configs(seed: int = 0) -> dict[str, ExperimentConfig]:
    """The three runs of the noisy-neighbour scenario.

    ``solo`` carries only the victim at its comfortable load. ``fifo``
    and ``wfq`` add the aggressor at :data:`AGGRESSOR_MULTIPLE`× the
    victim's load — identical traffic, differing only in policy: FIFO
    with admission off (the no-tenancy failure mode) vs. WFQ with
    priority tiers and an aggressor quota.
    """
    from repro.experiments.config import ExperimentConfig

    solo = ExperimentConfig(
        seed=seed,
        offered_load=VICTIM_SOLO_LOAD,
        tenants=TenancySpec(
            tenant_set=TenantSet((_victim(),)),
            policy="fifo",
            admission=False,
        ),
        **_BASE,
    )
    mixed_load = VICTIM_SOLO_LOAD * (1.0 + AGGRESSOR_MULTIPLE)
    fifo = ExperimentConfig(
        seed=seed,
        offered_load=mixed_load,
        tenants=TenancySpec(
            tenant_set=TenantSet((_victim(), _aggressor(quota=None))),
            policy="fifo",
            admission=False,
        ),
        **_BASE,
    )
    wfq = ExperimentConfig(
        seed=seed,
        offered_load=mixed_load,
        tenants=TenancySpec(
            tenant_set=TenantSet((_victim(), _aggressor(quota=8))),
            policy="wfq",
            admission=True,
        ),
        **_BASE,
    )
    return {"solo": solo, "fifo": fifo, "wfq": wfq}


def flash_crowd_configs(seed: int = 0) -> dict[str, ExperimentConfig]:
    """One run: two equal tenants, one surging 8× mid-run."""
    from repro.experiments.config import ExperimentConfig

    tenants = TenantSet(
        (
            Tenant(tenant_id="steady", priority=0, weight=1.0, quota=None),
            Tenant(tenant_id="burst", priority=1, weight=1.0, quota=24),
        )
    )
    duration = _BASE["duration"]
    spec = TenancySpec(
        tenant_set=tenants,
        policy="wfq",
        admission=True,
        surges=(
            TenantSurge(
                tenant_id="burst",
                start=duration / 3.0,
                end=2.0 * duration / 3.0,
                multiplier=8.0,
            ),
        ),
    )
    config = ExperimentConfig(
        seed=seed, offered_load=0.7, tenants=spec, **_BASE
    )
    return {"flash-crowd": config}


def quota_exhaustion_configs(seed: int = 0) -> dict[str, ExperimentConfig]:
    """One run: a capped tenant offering far beyond its quota."""
    from repro.experiments.config import ExperimentConfig

    tenants = TenantSet(
        (
            Tenant(tenant_id="steady", priority=0, weight=1.0),
            Tenant(
                tenant_id="capped",
                priority=1,
                quota=4,
                weight=1.0,
                traffic_share=3.0,
                slo_class="relaxed",
            ),
        )
    )
    spec = TenancySpec(tenant_set=tenants, policy="wfq", admission=True)
    config = ExperimentConfig(
        seed=seed, offered_load=1.2, tenants=spec, **_BASE
    )
    return {"quota-exhaustion": config}


_BUILDERS = {
    "noisy-neighbour": noisy_neighbour_configs,
    "flash-crowd": flash_crowd_configs,
    "quota-exhaustion": quota_exhaustion_configs,
}


@dataclass
class ScenarioResult:
    """Outcome of one scenario: per-run rows, tenant reports, verdict."""

    name: str
    scheme: str
    #: Run label → ``RunSummary.row()``.
    rows: dict[str, dict] = field(default_factory=dict)
    #: Run label → :meth:`~repro.metrics.tenancy.TenancyReport.to_dict`.
    tenancy: dict[str, dict] = field(default_factory=dict)
    #: Scenario-specific headline facts (attainment deltas, rejections).
    verdict: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe representation (CLI ``--json``, CI artifact)."""
        return {
            "scenario": self.name,
            "scheme": self.scheme,
            "rows": self.rows,
            "tenancy": self.tenancy,
            "verdict": self.verdict,
        }

    def describe(self) -> str:
        """Multi-line text rendering for the CLI."""
        lines = [f"scenario {self.name} (scheme={self.scheme})"]
        for label, report in self.tenancy.items():
            lines.append(f"  run {label}:")
            for outcome in report["outcomes"]:
                attainment = outcome["slo_attainment"]
                shown = (
                    f"{100.0 * attainment:5.1f}%"
                    if attainment == attainment  # not NaN
                    else "  n/a"
                )
                lines.append(
                    f"    {outcome['tenant_id']:<10} slo={shown}  "
                    f"served={outcome['requests']:>5}  "
                    f"rejected={outcome['rejections']:>5}"
                )
            lines.append(
                f"    fairness(Jain)={report['fairness_index']:.3f}  "
                f"revenue={report['total_revenue']:.1f}"
            )
        for key, value in self.verdict.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def scenario_configs(name: str, seed: int = 0) -> dict[str, ExperimentConfig]:
    """The run configs of scenario ``name`` (label → config)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown tenancy scenario {name!r}; known: {list(SCENARIOS)}"
        ) from None
    return builder(seed)


def run_tenancy_scenario(
    name: str,
    *,
    scheme: str = "protean",
    seed: int = 0,
    jobs: int | None = None,
) -> ScenarioResult:
    """Execute scenario ``name`` and assemble its :class:`ScenarioResult`.

    With ``jobs`` > 1 the scenario's runs fan out across processes via
    :mod:`repro.parallel` — results are bit-identical to the serial path.
    """
    from repro.experiments.runner import run_scheme
    from repro.parallel import RunRequest, execute_keyed, resolve_jobs

    configs = scenario_configs(name, seed)
    if resolve_jobs(jobs) > 1 and len(configs) > 1:
        results = execute_keyed(
            [
                RunRequest(key=label, scheme=scheme, config=config)
                for label, config in configs.items()
            ],
            jobs=jobs,
        )
    else:
        results = {
            label: run_scheme(scheme, config)
            for label, config in configs.items()
        }
    outcome = ScenarioResult(name=name, scheme=scheme)
    for label, result in results.items():
        outcome.rows[label] = result.summary.row()
        assert result.tenancy is not None  # every scenario run is tenanted
        outcome.tenancy[label] = result.tenancy.to_dict()
    outcome.verdict = _verdict(name, outcome)
    return outcome


def _attainment(outcome: ScenarioResult, run: str, tenant: str) -> float:
    for row in outcome.tenancy[run]["outcomes"]:
        if row["tenant_id"] == tenant:
            return row["slo_attainment"]
    raise ConfigurationError(
        f"tenant {tenant!r} missing from run {run!r} of {outcome.name}"
    )


def _verdict(name: str, outcome: ScenarioResult) -> dict:
    if name == "noisy-neighbour":
        solo = _attainment(outcome, "solo", "victim")
        fifo = _attainment(outcome, "fifo", "victim")
        wfq = _attainment(outcome, "wfq", "victim")
        return {
            "victim_solo_attainment": solo,
            "victim_fifo_attainment": fifo,
            "victim_wfq_attainment": wfq,
            "fifo_degradation_points": 100.0 * (solo - fifo),
            "wfq_gap_to_solo_points": 100.0 * (solo - wfq),
        }
    if name == "flash-crowd":
        report = outcome.tenancy["flash-crowd"]
        return {
            "steady_attainment": _attainment(
                outcome, "flash-crowd", "steady"
            ),
            "burst_attainment": _attainment(outcome, "flash-crowd", "burst"),
            "fairness_index": report["fairness_index"],
        }
    if name == "quota-exhaustion":
        report = outcome.tenancy["quota-exhaustion"]
        rejections = {
            row["tenant_id"]: row["rejections"]
            for row in report["outcomes"]
        }
        return {
            "capped_rejections": rejections.get("capped", 0),
            "steady_rejections": rejections.get("steady", 0),
            "steady_attainment": _attainment(
                outcome, "quota-exhaustion", "steady"
            ),
        }
    return {}
