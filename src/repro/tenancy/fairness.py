"""Tenant-fair queue ordering and isolation-aware placement.

:class:`NodeTenancy` is the per-node policy object the platform attaches
to every :class:`~repro.serverless.scheduler.NodeScheduler` when tenancy
is active. It contributes two things to the dispatch loop:

1. **Ordering** — under the ``"wfq"`` policy, waiting batches are ordered
   by (priority tier, start-time-fair tag). The tag is classic SFQ
   (start-time fair queueing, the practical WFQ variant): a batch entering
   the queue gets ``start = max(virtual_time, tenant_last_finish)`` and
   ``finish = start + work / weight``; the node's virtual time advances to
   the start tag of each batch it launches. Tenants with twice the weight
   accumulate finish tags half as fast and therefore receive twice the
   service share under contention. Priority tiers sit above the tags:
   tier 0 always drains before tier 1. The scheme's own ordering (e.g.
   PROTEAN's strict-first EDF) is preserved *within* equal (tier, tag)
   pairs because the sort is stable.

2. **Placement guarding** — soft exclusivity (SNIPPETS.md №2): a batch
   belonging to an ``exclusive`` tenant may only start on a GPU slice
   holding no other tenant's work, and no batch may start on a slice
   currently running an exclusive tenant's work. A guarded-out placement
   simply stays queued, exactly like a memory-full slice.

Under the ``"fifo"`` policy ordering is untouched (the no-fairness
baseline the noisy-neighbour scenario compares against); the placement
guard still applies, because exclusivity is an isolation contract, not a
fairness knob.
"""

from __future__ import annotations

from repro.tenancy.model import TenancySpec, Tenant


class NodeTenancy:
    """Per-node tenant fairness state (one instance per scheduler)."""

    def __init__(self, spec: TenancySpec) -> None:
        self.spec = spec
        self._tenants: dict[str, Tenant] = {
            t.tenant_id: t for t in spec.tenant_set
        }
        self._wfq = spec.policy == "wfq"
        #: Virtual time: advances to the start tag of each launched batch.
        self.virtual_time = 0.0
        #: Per-tenant finish tag of the last batch tagged.
        self._last_finish: dict[str, float] = {}
        #: Tags of batches currently queued (batch_id -> start tag).
        self._tags: dict[int, float] = {}
        #: Whether any tenant is exclusive (skip the guard entirely if not).
        self._any_exclusive = any(t.exclusive for t in spec.tenant_set)

    # ------------------------------------------------------------------
    # Ordering (WFQ/SFQ)
    # ------------------------------------------------------------------
    def order(self, queue: list) -> None:
        """Stable-sort ``queue`` by (priority tier, SFQ start tag)."""
        if not self._wfq or len(queue) < 2:
            # FIFO policy: scheme ordering stands. Tags still need
            # assigning under WFQ with one element so later arrivals
            # compare against it.
            if self._wfq:
                for batch in queue:
                    self._tag(batch)
            return
        for batch in queue:
            self._tag(batch)
        queue.sort(
            key=lambda b: (
                self._tenants[b.tenant].priority,
                self._tags[b.batch_id],
            )
        )

    def _tag(self, batch) -> float:
        tag = self._tags.get(batch.batch_id)
        if tag is None:
            tenant = self._tenants[batch.tenant]
            tag = max(
                self.virtual_time,
                self._last_finish.get(batch.tenant, 0.0),
            )
            self._last_finish[batch.tenant] = tag + batch.work / tenant.weight
            self._tags[batch.batch_id] = tag
        return tag

    def on_launch(self, batch) -> None:
        """Advance virtual time past a launched batch and drop its tag."""
        tag = self._tags.pop(batch.batch_id, None)
        if tag is not None and tag > self.virtual_time:
            self.virtual_time = tag

    # ------------------------------------------------------------------
    # Placement guard (soft exclusivity)
    # ------------------------------------------------------------------
    def placement_allowed(self, batch, gpu_slice) -> bool:
        """Whether starting ``batch`` on ``gpu_slice`` honours isolation."""
        if not self._any_exclusive:
            return True
        mine = self._tenants[batch.tenant]
        for job in gpu_slice.running_jobs + gpu_slice.pending_jobs:
            payload = job.payload
            other_id = getattr(payload, "tenant", None)
            if other_id is None or other_id == batch.tenant:
                continue
            if mine.exclusive:
                return False
            other = self._tenants.get(other_id)
            if other is not None and other.exclusive:
                return False
        return True
