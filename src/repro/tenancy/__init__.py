"""Multi-tenancy: per-tenant SLOs, quotas, and fair scheduling.

The serving stack is natively multi-tenant: a
:class:`TenancySpec` on :class:`~repro.experiments.config.ExperimentConfig`
multiplexes the workload across a :class:`TenantSet` (traffic shares,
optional :class:`TenantSurge` windows), enforces per-tenant concurrency
quotas at the gateway (429-style rejections), orders every node's batch
queue tenant-fairly (start-time fair queueing over weights and priority
tiers), and keeps exclusive tenants alone on their GPU slices. Per-tenant
outcomes come back as a :class:`~repro.metrics.tenancy.TenancyReport` on
the run's result.

With ``tenants=None`` (the default) none of this machinery is
constructed and the platform is bit-identical to a single-tenant build —
pinned by the default-path regression test.

Typical use::

    from repro.tenancy import Tenant, TenantSet, TenancySpec

    spec = TenancySpec(
        tenant_set=TenantSet((
            Tenant("gold", slo_class="premium", priority=0, weight=3.0),
            Tenant("bronze", quota=16, traffic_share=2.0),
        )),
    )
    result = run_scheme("protean", ExperimentConfig(tenants=spec))
    print(result.tenancy.attainment_by_tenant())

or from the CLI: ``python -m repro tenants noisy-neighbour``.
"""

from repro.tenancy.admission import AdmissionController
from repro.tenancy.fairness import NodeTenancy
from repro.tenancy.model import (
    DEFAULT_TENANT_ID,
    FAIRNESS_POLICIES,
    SLO_CLASSES,
    TENANCY_SCHEMA_VERSION,
    TenancySpec,
    Tenant,
    TenantSet,
    TenantSurge,
)
from repro.tenancy.runtime import TenancyRuntime
from repro.tenancy.scenarios import (
    SCENARIOS,
    ScenarioResult,
    run_tenancy_scenario,
    scenario_configs,
)
from repro.tenancy.workload import TenantWorkload

__all__ = [
    "AdmissionController",
    "DEFAULT_TENANT_ID",
    "FAIRNESS_POLICIES",
    "NodeTenancy",
    "SCENARIOS",
    "SLO_CLASSES",
    "ScenarioResult",
    "TENANCY_SCHEMA_VERSION",
    "TenancyRuntime",
    "TenancySpec",
    "Tenant",
    "TenantSet",
    "TenantSurge",
    "TenantWorkload",
    "run_tenancy_scenario",
    "scenario_configs",
]
