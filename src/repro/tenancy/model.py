"""The tenant model: who shares the cluster, and on what terms.

A :class:`Tenant` describes one customer of the serving platform: its SLO
class (deadline tightness relative to the run's base multiplier), priority
tier, concurrency quota, fair-share weight, traffic share, isolation mode
(shared vs. exclusive), and billing rate. A :class:`TenantSet` is the
validated collection the platform serves, and a :class:`TenancySpec`
bundles the set with the runtime policies (admission enforcement, fairness
policy, traffic surges) — the one tenancy payload that rides inside
:class:`~repro.experiments.config.ExperimentConfig` and round-trips
through its versioned JSON wire format.

Design follows the production GPU-queue shape (SNIPPETS.md №2): per-tenant
concurrency limits, priority ordering, and *soft* exclusivity — exclusive
tenants are scheduled alone on a slice, enforced by the scheduler rather
than by hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError

#: Version stamp of the tenancy wire format (:meth:`TenancySpec.to_dict`).
TENANCY_SCHEMA_VERSION = 1

#: The implicit tenant every request belongs to when no tenancy is
#: configured. The default path must stay bit-identical to a pre-tenancy
#: build, so this id is also the sentinel that suppresses tenant span
#: attributes and per-tenant accounting.
DEFAULT_TENANT_ID = "default"

#: SLO classes and the factor they apply to the run's base
#: ``slo_multiplier``: premium tenants are promised tighter deadlines,
#: relaxed tenants looser ones.
SLO_CLASSES: dict[str, float] = {
    "premium": 0.75,
    "standard": 1.0,
    "relaxed": 1.5,
}

#: Fairness policies the scheduler understands (see repro.tenancy.fairness).
FAIRNESS_POLICIES = ("fifo", "wfq")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class Tenant:
    """One customer sharing the serving platform."""

    #: Stable identifier; appears on requests, records, spans, and audits.
    tenant_id: str
    #: Deadline tightness class (see :data:`SLO_CLASSES`).
    slo_class: str = "standard"
    #: Priority tier; lower is served first (0 = highest).
    priority: int = 1
    #: Max concurrently admitted (in-flight) requests; ``None`` = unlimited.
    quota: int | None = None
    #: Weighted-fair-queueing weight (share of service under contention).
    weight: float = 1.0
    #: Relative share of the composed arrival stream (see TenantWorkload).
    traffic_share: float = 1.0
    #: Soft exclusivity: never co-located on a slice with other tenants.
    exclusive: bool = False
    #: Revenue per served request (unit-free; feeds revenue-weighted cost).
    billing_rate: float = 1.0

    def __post_init__(self) -> None:
        _require(
            bool(self.tenant_id) and isinstance(self.tenant_id, str),
            "tenant_id must be a non-empty string",
        )
        _require(
            self.slo_class in SLO_CLASSES,
            f"unknown slo_class {self.slo_class!r} for tenant "
            f"{self.tenant_id!r}; known: {sorted(SLO_CLASSES)}",
        )
        _require(
            isinstance(self.priority, int) and self.priority >= 0,
            f"tenant {self.tenant_id!r}: priority must be a non-negative int",
        )
        if self.quota is not None:
            _require(
                isinstance(self.quota, int) and self.quota > 0,
                f"tenant {self.tenant_id!r}: quota must be a positive int "
                f"or None, got {self.quota!r}",
            )
        _require(
            isinstance(self.weight, (int, float))
            and math.isfinite(self.weight)
            and self.weight > 0,
            f"tenant {self.tenant_id!r}: weight must be positive and finite",
        )
        _require(
            isinstance(self.traffic_share, (int, float))
            and math.isfinite(self.traffic_share)
            and self.traffic_share >= 0,
            f"tenant {self.tenant_id!r}: traffic_share must be >= 0",
        )
        _require(
            isinstance(self.billing_rate, (int, float))
            and math.isfinite(self.billing_rate)
            and self.billing_rate >= 0,
            f"tenant {self.tenant_id!r}: billing_rate must be >= 0",
        )

    @property
    def slo_factor(self) -> float:
        """Deadline multiplier factor implied by the SLO class."""
        return SLO_CLASSES[self.slo_class]

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Tenant":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"tenant payload must be a dict, got {type(payload).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown tenant field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class TenantSet:
    """The validated collection of tenants one platform serves."""

    tenants: tuple[Tenant, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        _require(len(self.tenants) > 0, "a TenantSet needs at least one tenant")
        ids = [t.tenant_id for t in self.tenants]
        _require(
            len(set(ids)) == len(ids),
            f"duplicate tenant id(s): "
            f"{sorted({i for i in ids if ids.count(i) > 1})}",
        )
        _require(
            any(t.traffic_share > 0 for t in self.tenants),
            "tenant traffic shares must not all be zero",
        )

    def __iter__(self):
        return iter(self.tenants)

    def __len__(self) -> int:
        return len(self.tenants)

    @property
    def ids(self) -> tuple[str, ...]:
        """Tenant ids in declaration order."""
        return tuple(t.tenant_id for t in self.tenants)

    def get(self, tenant_id: str) -> Tenant:
        """The tenant registered under ``tenant_id``.

        Unknown ids surface as :class:`~repro.errors.ConfigurationError`
        (which is also a ``ValueError``/``KeyError``-free single path for
        trace misconfiguration — satellite of the tenancy issue).
        """
        for tenant in self.tenants:
            if tenant.tenant_id == tenant_id:
                return tenant
        raise ConfigurationError(
            f"unknown tenant id {tenant_id!r}; registered: {list(self.ids)}"
        )

    def __contains__(self, tenant_id: str) -> bool:
        return any(t.tenant_id == tenant_id for t in self.tenants)

    def normalised_shares(self) -> dict[str, float]:
        """Traffic shares scaled to sum to 1.0."""
        total = sum(t.traffic_share for t in self.tenants)
        return {t.tenant_id: t.traffic_share / total for t in self.tenants}

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {"tenants": [t.to_dict() for t in self.tenants]}

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantSet":
        """Parse a :meth:`to_dict` payload."""
        if not isinstance(payload, dict) or "tenants" not in payload:
            raise ConfigurationError(
                "tenant-set payload must be a dict with a 'tenants' list"
            )
        return cls(
            tenants=tuple(Tenant.from_dict(t) for t in payload["tenants"])
        )


@dataclass(frozen=True)
class TenantSurge:
    """A window during which one tenant's traffic share is multiplied.

    Models flash crowds and noisy neighbours declaratively: during
    ``[start, end)`` the tenant's ``traffic_share`` is scaled by
    ``multiplier`` when the workload multiplexer assigns tenants.
    """

    tenant_id: str
    start: float
    end: float
    multiplier: float

    def __post_init__(self) -> None:
        _require(bool(self.tenant_id), "surge tenant_id must be non-empty")
        _require(
            self.start >= 0 and self.end > self.start,
            f"surge window [{self.start}, {self.end}) is empty or negative",
        )
        _require(
            math.isfinite(self.multiplier) and self.multiplier >= 0,
            "surge multiplier must be >= 0 and finite",
        )

    def active_at(self, time: float) -> bool:
        """Whether the surge applies at simulated ``time``."""
        return self.start <= time < self.end

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "tenant_id": self.tenant_id,
            "start": self.start,
            "end": self.end,
            "multiplier": self.multiplier,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantSurge":
        """Parse a :meth:`to_dict` payload."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"surge payload must be a dict, got {type(payload).__name__}"
            )
        known = {"tenant_id", "start", "end", "multiplier"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown surge field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class TenancySpec:
    """Everything tenancy-related one experiment run needs.

    This is the payload carried by ``ExperimentConfig.tenants``; ``None``
    there means tenancy is inactive and the platform behaves (bit for bit)
    like a pre-tenancy build.
    """

    tenant_set: TenantSet
    #: Queue ordering under contention: "fifo" (no fairness) or "wfq"
    #: (start-time-fair queueing over tenant weights + priority tiers).
    policy: str = "wfq"
    #: Enforce per-tenant concurrency quotas at the gateway (429-style
    #: rejections). Registration checks apply regardless.
    admission: bool = True
    #: Declarative traffic surges (flash crowds, noisy neighbours).
    surges: tuple[TenantSurge, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.tenant_set, TenantSet):
            raise ConfigurationError(
                "tenant_set must be a TenantSet, got "
                f"{type(self.tenant_set).__name__}"
            )
        if not isinstance(self.surges, tuple):
            object.__setattr__(self, "surges", tuple(self.surges))
        _require(
            self.policy in FAIRNESS_POLICIES,
            f"unknown fairness policy {self.policy!r}; "
            f"known: {list(FAIRNESS_POLICIES)}",
        )
        for surge in self.surges:
            if not isinstance(surge, TenantSurge):
                raise ConfigurationError(
                    f"surges must be TenantSurge instances, got "
                    f"{type(surge).__name__}"
                )
            # Unknown surge targets fail at construction, not mid-run.
            self.tenant_set.get(surge.tenant_id)

    def to_dict(self) -> dict:
        """JSON-safe, versioned representation."""
        return {
            "version": TENANCY_SCHEMA_VERSION,
            "tenant_set": self.tenant_set.to_dict(),
            "policy": self.policy,
            "admission": self.admission,
            "surges": [s.to_dict() for s in self.surges],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TenancySpec":
        """Parse a :meth:`to_dict` payload, refusing newer schemas."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"tenancy payload must be a dict, got {type(payload).__name__}"
            )
        data = dict(payload)
        version = data.pop("version", TENANCY_SCHEMA_VERSION)
        if version != TENANCY_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported tenancy schema version {version!r}; "
                f"this build reads version {TENANCY_SCHEMA_VERSION}"
            )
        known = {"tenant_set", "policy", "admission", "surges"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown tenancy field(s): {', '.join(sorted(unknown))}"
            )
        if "tenant_set" not in data:
            raise ConfigurationError("tenancy payload needs a 'tenant_set'")
        return cls(
            tenant_set=TenantSet.from_dict(data["tenant_set"]),
            policy=data.get("policy", "wfq"),
            admission=data.get("admission", True),
            surges=tuple(
                TenantSurge.from_dict(s) for s in data.get("surges", ())
            ),
        )
