"""Hyperscale engine: vectorised 1000-node / 100k-rps simulation.

The event-driven core (:mod:`repro.simulation`) dispatches one Python
callback per event — perfect for the paper's 8-node testbed, hours of
wall time for a simulated day at 1000 nodes. This package trades the
per-event generality away: node queue dynamics become integer array
recurrences over (nodes × ticks) epoch blocks, randomness becomes a
counter-based hash RNG (a pure function of ``(seed, node, tick)``, so
results are independent of how nodes are partitioned), and metrics
stream into per-node :class:`~repro.metrics.streaming.QuantileDigest`
sketches.

Sharding (:func:`run_hyperscale` with ``jobs > 1``) partitions nodes
across worker processes behind a conservative synchronised-clock
barrier — every shard finishes epoch *k* before any enters *k+1* — and
merges per-node results in node order, so a sharded run is bit-identical
to the serial one (asserted in CI on the smoke preset).

See ``docs/hyperscale.md`` for the design and its accuracy bounds, and
``benchmarks/bench_hyperscale.py`` for the recorded throughput.
"""

from repro.hyperscale.config import HyperscaleConfig
from repro.hyperscale.engine import ShardResult, run_engine
from repro.hyperscale.hashrng import (
    hash_normal,
    hash_poisson,
    hash_u01,
    hash_u64,
)
from repro.hyperscale.report import HyperscaleReport, build_report
from repro.hyperscale.shard import run_hyperscale, shard_ranges

__all__ = [
    "HyperscaleConfig",
    "HyperscaleReport",
    "ShardResult",
    "build_report",
    "hash_normal",
    "hash_poisson",
    "hash_u01",
    "hash_u64",
    "run_engine",
    "run_hyperscale",
    "shard_ranges",
]
