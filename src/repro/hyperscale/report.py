"""Merging shard results into one deterministic hyperscale report.

The merge is where the bit-identity guarantee gets cashed in: every
per-node quantity (counters and digest centroid runs) is identical
whichever shard computed it, so concatenating shards in node order and
reducing yields the same report as a serial run — byte for byte. The
report carries a SHA-256 ``identity_digest`` over exactly that per-node
state, which is what CI diffs between the serial and ``--jobs 2`` smoke
runs.

Nothing in the report depends on wall time; timings live with the CLI
and the benchmark, never in :meth:`HyperscaleReport.to_dict`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import HyperscaleError
from repro.hyperscale.config import HyperscaleConfig
from repro.hyperscale.engine import ShardResult
from repro.metrics.streaming import QuantileDigest


@dataclass(frozen=True, slots=True)
class HyperscaleReport:
    """Cluster-level summary of one hyperscale run."""

    n_nodes: int
    node_ticks: int
    #: Cluster totals over the horizon.
    total_arrivals: int
    total_served: int
    total_slo_met: int
    final_backlog: int
    #: Fraction of arrivals whose queueing wait met the SLO.
    slo_attainment: float
    #: Cluster latency percentiles (seconds) from the merged sketch.
    latency_p50: float
    latency_p99: float
    #: SHA-256 over the per-node counters and digest states in node
    #: order — the serial-vs-sharded bit-identity fingerprint.
    identity_digest: str
    #: Provenance: the config that produced this report.
    config: dict

    def to_dict(self) -> dict:
        """JSON-safe representation; deterministic (no wall time)."""
        return {
            "n_nodes": self.n_nodes,
            "node_ticks": self.node_ticks,
            "total_arrivals": self.total_arrivals,
            "total_served": self.total_served,
            "total_slo_met": self.total_slo_met,
            "final_backlog": self.final_backlog,
            "slo_attainment": self.slo_attainment,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "identity_digest": self.identity_digest,
            "config": dict(self.config),
        }


def build_report(
    config: HyperscaleConfig, results: Sequence[ShardResult]
) -> HyperscaleReport:
    """Merge shard results (any order) into the canonical report.

    Shards must tile ``[0, config.n_nodes)`` exactly; gaps, overlaps, or
    mismatched tick counts are structural errors, not data.
    """
    if not results:
        raise HyperscaleError("no shard results to merge")
    ordered = sorted(results, key=lambda r: r.node_lo)
    cursor = 0
    for shard in ordered:
        if shard.node_lo != cursor:
            raise HyperscaleError(
                f"shard results do not tile the node range: expected a "
                f"shard starting at node {cursor}, got {shard.node_lo}"
            )
        if shard.node_ticks != ordered[0].node_ticks:
            raise HyperscaleError("shards simulated different horizons")
        cursor = shard.node_hi
    if cursor != config.n_nodes:
        raise HyperscaleError(
            f"shard results cover {cursor} nodes, config has {config.n_nodes}"
        )

    arrivals = np.concatenate([s.arrivals for s in ordered])
    served = np.concatenate([s.served for s in ordered])
    slo_met = np.concatenate([s.slo_met for s in ordered])
    backlog = np.concatenate([s.final_backlog for s in ordered])

    # Merge protocol: absorb per-node centroid runs in node order into a
    # fresh digest. Per-node runs are shard-independent, so this digest —
    # and every quantile read from it — matches the serial run exactly.
    merged = QuantileDigest(config.max_centroids)
    hasher = hashlib.sha256()
    for shard in ordered:
        for i in range(shard.node_hi - shard.node_lo):
            means, weights = shard.digests[i]
            merged.absorb(means, weights)
            hasher.update(np.ascontiguousarray(means, dtype=np.float64))
            hasher.update(np.ascontiguousarray(weights, dtype=np.float64))
    hasher.update(np.ascontiguousarray(arrivals, dtype=np.int64))
    hasher.update(np.ascontiguousarray(served, dtype=np.int64))
    hasher.update(np.ascontiguousarray(slo_met, dtype=np.int64))
    hasher.update(np.ascontiguousarray(backlog, dtype=np.int64))

    total_arrivals = int(arrivals.sum())
    total_slo_met = int(slo_met.sum())
    return HyperscaleReport(
        n_nodes=config.n_nodes,
        node_ticks=int(ordered[0].node_ticks),
        total_arrivals=total_arrivals,
        total_served=int(served.sum()),
        total_slo_met=total_slo_met,
        final_backlog=int(backlog.sum()),
        slo_attainment=(
            total_slo_met / total_arrivals if total_arrivals else 1.0
        ),
        latency_p50=merged.percentile(50.0),
        latency_p99=merged.percentile(99.0),
        identity_digest=hasher.hexdigest(),
        config=config.to_dict(),
    )
