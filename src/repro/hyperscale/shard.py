"""Process-sharded hyperscale runs behind a synchronised-clock barrier.

Nodes are partitioned into contiguous ranges, one worker process per
range (via :func:`repro.parallel.mp_context`). Workers advance in
lockstep: a :class:`multiprocessing.Barrier` fires in every worker's
``epoch_hook``, so all shards finish simulated epoch *k* before any
enters *k + 1* — a conservative synchronised-clock protocol. Today's
node queues are workload-independent, so the barrier is not needed for
*correctness* of the current model; it is the contract that keeps the
sharding bit-identical once cross-node coupling (work stealing, global
admission) lands, and it already bounds shard skew so memory stays one
epoch block per worker.

Bit-identity itself comes from the counter-based RNG (randomness keyed
by absolute node/tick coordinates) plus the node-order merge in
:func:`repro.hyperscale.report.build_report`; CI asserts it by diffing
the serial and ``--jobs 2`` smoke reports.
"""

from __future__ import annotations

import traceback

from repro.errors import HyperscaleError
from repro.hyperscale.config import HyperscaleConfig
from repro.hyperscale.engine import run_engine
from repro.hyperscale.report import HyperscaleReport, build_report
from repro.parallel import mp_context


def shard_ranges(n_nodes: int, jobs: int) -> list[tuple[int, int]]:
    """Partition ``[0, n_nodes)`` into ``jobs`` contiguous ranges.

    Sizes differ by at most one; empty ranges are dropped (asking for
    more jobs than nodes just yields fewer shards).
    """
    if n_nodes < 1:
        raise HyperscaleError("n_nodes must be >= 1")
    if jobs < 1:
        raise HyperscaleError("jobs must be >= 1")
    jobs = min(jobs, n_nodes)
    base, extra = divmod(n_nodes, jobs)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for i in range(jobs):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _shard_worker(config, node_lo, node_hi, barrier, queue) -> None:
    """Run one shard, synchronising with siblings at every epoch edge."""
    try:
        result = run_engine(
            config,
            node_lo,
            node_hi,
            epoch_hook=lambda epoch: barrier.wait(),
        )
        queue.put((node_lo, result))
    except BaseException:
        # Release siblings parked at the barrier, then surface the
        # traceback through the queue so the parent can re-raise.
        barrier.abort()
        queue.put((node_lo, traceback.format_exc()))


def run_hyperscale(
    config: HyperscaleConfig, jobs: int = 1
) -> HyperscaleReport:
    """Run the full cluster, serially or sharded across ``jobs`` workers.

    Whatever ``jobs`` is, the returned report is bit-identical — same
    counters, same percentiles, same ``identity_digest``.
    """
    if jobs < 1:
        raise HyperscaleError("jobs must be >= 1")
    ranges = shard_ranges(config.n_nodes, jobs)
    if len(ranges) == 1:
        return build_report(config, [run_engine(config)])

    ctx = mp_context()
    barrier = ctx.Barrier(len(ranges))
    queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_shard_worker,
            args=(config, lo, hi, barrier, queue),
            daemon=True,
        )
        for lo, hi in ranges
    ]
    for worker in workers:
        worker.start()
    # Drain before join: a worker blocks on queue.put for large payloads
    # until the parent reads them, so joining first would deadlock.
    payloads = [queue.get() for _ in ranges]
    for worker in workers:
        worker.join()
    failures = [p for p in payloads if isinstance(p[1], str)]
    if failures:
        lo, tb = failures[0]
        raise HyperscaleError(
            f"shard starting at node {lo} failed:\n{tb}"
        )
    return build_report(config, [result for _, result in payloads])
