"""The vectorised hyperscale engine: epoch-blocked Lindley recursion.

Each node is an integer single-server queue sampled on the config tick.
Per epoch and per node block the engine draws a full (nodes × ticks)
Poisson arrival grid from the counter-based hash RNG, then solves the
whole backlog trajectory with one closed form instead of a tick loop:

    cser    = q0 + cumsum(arrivals - c)            # unreflected walk
    run_min = minimum.accumulate(min(cser, 0))     # reflection correction
    q       = cser - run_min                       # Lindley backlog

which equals the classic ``q[t] = max(q[t-1] + a[t] - c, 0)`` recursion
(the running minimum is exactly the total reflection absorbed at the
zero boundary so far). Served work then follows by conservation:
``served[t] = q[t-1] + a[t] - q[t]``. Everything is int64, so the audit
invariants hold *exactly*, not within float tolerance.

Latency model: an arrival during tick ``t`` waits behind the backlog
``q[t-1]`` already queued, which drains at ``c`` per tick, then takes
its own service tick — ``latency = (q[t-1] / c + 1) · tick`` seconds.
Its SLO is met when the waiting component ``q[t-1] / c`` is at most
``slo_ticks``. Arrivals within one tick share a latency value, so the
per-node sketch ingests one weighted point per tick.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import AuditViolationError, HyperscaleError
from repro.hyperscale.config import HyperscaleConfig
from repro.hyperscale.hashrng import hash_poisson
from repro.metrics.streaming import QuantileDigest


@dataclass(slots=True)
class ShardResult:
    """Per-node outcome of one engine run over ``[node_lo, node_hi)``.

    Everything is a plain numpy array or list of arrays, so the object
    pickles cheaply across the shard worker queue. Arrays are indexed by
    node-within-shard (``node - node_lo``).
    """

    node_lo: int
    node_hi: int
    #: Simulated ticks covered (same for every node).
    node_ticks: int
    #: Per-node totals over the whole horizon (int64).
    arrivals: np.ndarray
    served: np.ndarray
    slo_met: np.ndarray
    #: Backlog still queued at the horizon (int64).
    final_backlog: np.ndarray
    #: Per-node latency sketches as centroid runs ``(means, weights)``.
    digests: list[tuple[np.ndarray, np.ndarray]]

    def __post_init__(self) -> None:
        n = self.node_hi - self.node_lo
        if n <= 0:
            raise HyperscaleError("ShardResult covers no nodes")
        for name in ("arrivals", "served", "slo_met", "final_backlog"):
            if getattr(self, name).shape != (n,):
                raise HyperscaleError(
                    f"ShardResult.{name} must have shape ({n},)"
                )
        if len(self.digests) != n:
            raise HyperscaleError(f"ShardResult needs {n} digests")


def run_engine(
    config: HyperscaleConfig,
    node_lo: int = 0,
    node_hi: int | None = None,
    *,
    epoch_hook: Callable[[int], None] | None = None,
) -> ShardResult:
    """Simulate nodes ``[node_lo, node_hi)`` over the full horizon.

    ``epoch_hook(epoch_index)`` fires after every completed epoch — the
    shard runner hangs its synchronised-clock barrier on it, so all
    shards finish epoch *k* before any enters *k + 1*. Because the hash
    RNG keys randomness by absolute ``(node, tick)`` coordinates, the
    result for a node is identical whatever range it is computed in.
    """
    if node_hi is None:
        node_hi = config.n_nodes
    if not 0 <= node_lo < node_hi <= config.n_nodes:
        raise HyperscaleError(
            f"invalid node range [{node_lo}, {node_hi}) for "
            f"{config.n_nodes} nodes"
        )

    n_local = node_hi - node_lo
    n_ticks = config.n_ticks
    c = config.capacity_per_tick
    base_lam = config.mean_arrivals_per_node_tick
    slo_wait_ticks = config.slo_ticks

    backlog = np.zeros(n_local, dtype=np.int64)
    arrivals_total = np.zeros(n_local, dtype=np.int64)
    served_total = np.zeros(n_local, dtype=np.int64)
    slo_met_total = np.zeros(n_local, dtype=np.int64)
    digests = [QuantileDigest(config.max_centroids) for _ in range(n_local)]

    for epoch in range(config.n_epochs):
        t0 = epoch * config.epoch_ticks
        t1 = min(t0 + config.epoch_ticks, n_ticks)
        ticks = np.arange(t0, t1, dtype=np.int64)
        # Diurnal modulation is a pure function of absolute tick time, so
        # every shard computes the identical rate profile.
        lam_t = base_lam * (
            1.0
            + config.diurnal_amplitude
            * np.sin(2.0 * math.pi * (ticks * config.tick) / config.diurnal_period)
        )

        for blo in range(0, n_local, config.block_nodes):
            bhi = min(blo + config.block_nodes, n_local)
            nodes = np.arange(node_lo + blo, node_lo + bhi, dtype=np.int64)
            arrivals = hash_poisson(
                lam_t[None, :], config.seed, nodes[:, None], ticks[None, :]
            )

            q0 = backlog[blo:bhi]
            cser = q0[:, None] + np.cumsum(arrivals - c, axis=1)
            run_min = np.minimum.accumulate(np.minimum(cser, 0), axis=1)
            q = cser - run_min
            q_prev = np.concatenate([q0[:, None], q[:, :-1]], axis=1)
            served = q_prev + arrivals - q

            if config.audit:
                _audit_block(nodes, q0, arrivals, q_prev, q, served, c)

            wait_ticks = q_prev.astype(np.float64) / c
            latency = (wait_ticks + 1.0) * config.tick
            met = wait_ticks <= slo_wait_ticks

            arrivals_total[blo:bhi] += arrivals.sum(axis=1)
            served_total[blo:bhi] += served.sum(axis=1)
            slo_met_total[blo:bhi] += np.where(met, arrivals, 0).sum(axis=1)
            backlog[blo:bhi] = q[:, -1]

            for i in range(bhi - blo):
                digests[blo + i].add_many(latency[i], arrivals[i])

        if epoch_hook is not None:
            epoch_hook(epoch)

    return ShardResult(
        node_lo=node_lo,
        node_hi=node_hi,
        node_ticks=n_ticks,
        arrivals=arrivals_total,
        served=served_total,
        slo_met=slo_met_total,
        final_backlog=backlog,
        digests=[d.to_arrays() for d in digests],
    )


def _audit_block(
    nodes: np.ndarray,
    q0: np.ndarray,
    arrivals: np.ndarray,
    q_prev: np.ndarray,
    q: np.ndarray,
    served: np.ndarray,
    c: int,
) -> None:
    """Exact integer conservation checks over one epoch block.

    The recursion is closed-form, so these are genuine invariants — any
    failure means a bug (or bit corruption), never rounding.
    """
    if np.any(q < 0):
        raise AuditViolationError(
            f"negative backlog at node {int(nodes[np.where(q < 0)[0][0]])}"
        )
    if np.any(served < 0):
        raise AuditViolationError(
            f"negative served count at node "
            f"{int(nodes[np.where(served < 0)[0][0]])}"
        )
    if np.any(served > c):
        raise AuditViolationError(
            f"served beyond capacity at node "
            f"{int(nodes[np.where(served > c)[0][0]])}"
        )
    expected = np.minimum(q_prev + arrivals, c)
    if not np.array_equal(served, expected):
        bad = int(nodes[np.where(np.any(served != expected, axis=1))[0][0]])
        raise AuditViolationError(
            f"work-conserving service violated at node {bad}"
        )
    # Flow conservation across the whole block: in = out + queued delta.
    lhs = q0 + arrivals.sum(axis=1)
    rhs = served.sum(axis=1) + q[:, -1]
    if not np.array_equal(lhs, rhs):
        bad = int(nodes[np.where(lhs != rhs)[0][0]])
        raise AuditViolationError(f"flow conservation violated at node {bad}")
