"""Configuration of one hyperscale run.

The hyperscale engine models each node as an integer single-server queue
sampled on a fixed tick: Poisson arrivals (rate shaped by a diurnal
profile), constant integer service capacity per tick, Lindley backlog
recursion, and a waiting-time SLO measured in ticks. That is deliberately
far coarser than the event-driven platform — the point is cluster-scale
queueing behaviour (backlog waves, diurnal SLO erosion, capacity
headroom) at 1000 nodes × 24 h in seconds of wall time, not per-batch
GPU placement (which stays the event core's job).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from repro.errors import ConfigurationError

#: Version stamp of the :meth:`HyperscaleConfig.to_dict` wire format.
HYPERSCALE_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class HyperscaleConfig:
    """Full description of one hyperscale run. Defaults are the ROADMAP's
    north-star scale: 1000 nodes, 100k rps, one simulated day."""

    #: Cluster width. Nodes are independent queues (shard-independent
    #: workload) — exactly the shape the shard barrier keeps bit-identical.
    n_nodes: int = 1000
    #: Aggregate offered request rate (rps) across the cluster at the
    #: diurnal profile's mean.
    rate: float = 100_000.0
    #: Simulated horizon in seconds.
    duration: float = 86_400.0
    #: Queue-sampling resolution in seconds.
    tick: float = 1.0
    #: Ticks per epoch — the vectorisation block and the shard barrier
    #: interval. 3600 ticks × 1 s = hourly barriers on the full preset.
    epoch_ticks: int = 3600
    #: Per-node service capacity as a multiple of the node's mean offered
    #: load (requests/tick). The paper's evaluation runs near saturation;
    #: 1.25 leaves the diurnal peak (1 + amplitude) slightly supercritical.
    capacity_factor: float = 1.25
    #: Waiting-time SLO in ticks: an arrival meets its SLO when the
    #: backlog ahead of it drains within this many ticks.
    slo_ticks: float = 4.0
    #: Diurnal load shape ``1 + amplitude·sin(2π·t/period)``.
    diurnal_amplitude: float = 0.3
    diurnal_period: float = 86_400.0
    #: Root of the counter-based hash RNG (pure function of
    #: ``(seed, node, tick)`` — see :mod:`repro.hyperscale.hashrng`).
    seed: int = 0
    #: Verify conservation invariants on every epoch block (integer
    #: arithmetic makes them exact; see the auditing notes in
    #: ``docs/hyperscale.md``).
    audit: bool = True
    #: Nodes per vectorisation block. Per-node results are independent of
    #: this (asserted by the block-independence regression test); it only
    #: bounds scratch-array size.
    block_nodes: int = 256
    #: Centroid budget of every per-node latency sketch.
    max_centroids: int = 256

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.tick <= 0:
            raise ConfigurationError("tick must be positive")
        if self.epoch_ticks < 1:
            raise ConfigurationError("epoch_ticks must be >= 1")
        if self.capacity_factor <= 0:
            raise ConfigurationError("capacity_factor must be positive")
        if self.slo_ticks < 0:
            raise ConfigurationError("slo_ticks must be non-negative")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError("diurnal_amplitude must lie in [0, 1)")
        if self.diurnal_period <= 0:
            raise ConfigurationError("diurnal_period must be positive")
        if self.block_nodes < 1:
            raise ConfigurationError("block_nodes must be >= 1")
        if self.max_centroids < 2:
            raise ConfigurationError("max_centroids must be >= 2")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n_ticks(self) -> int:
        """Total simulated ticks (ceil — the horizon is fully covered)."""
        return int(math.ceil(self.duration / self.tick))

    @property
    def n_epochs(self) -> int:
        """Epoch count (the final epoch may be short)."""
        return int(math.ceil(self.n_ticks / self.epoch_ticks))

    @property
    def mean_arrivals_per_node_tick(self) -> float:
        """Mean offered load per node per tick (the Poisson base rate)."""
        return self.rate / self.n_nodes * self.tick

    @property
    def capacity_per_tick(self) -> int:
        """Integer per-node service capacity per tick (at least 1)."""
        return max(
            1,
            int(round(self.mean_arrivals_per_node_tick * self.capacity_factor)),
        )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, **overrides) -> "HyperscaleConfig":
        """The north-star scale: 1000 nodes / 100k rps / 24 h."""
        return cls(**overrides)

    @classmethod
    def smoke(cls, **overrides) -> "HyperscaleConfig":
        """A seconds-scale run for CI and the serial-vs-sharded diff."""
        defaults = dict(
            n_nodes=32,
            rate=1_600.0,
            duration=600.0,
            epoch_ticks=120,
            diurnal_period=600.0,
            block_nodes=8,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_overrides(self, **overrides) -> "HyperscaleConfig":
        """A copy with fields replaced (CLI flag plumbing)."""
        return replace(self, **overrides)

    def to_dict(self) -> dict:
        """JSON-safe, versioned representation (report provenance)."""
        payload: dict = {"version": HYPERSCALE_SCHEMA_VERSION}
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "HyperscaleConfig":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"config payload must be a dict, got {type(payload).__name__}"
            )
        data = dict(payload)
        version = data.pop("version", HYPERSCALE_SCHEMA_VERSION)
        if version != HYPERSCALE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported hyperscale schema version {version!r}; "
                f"this build reads version {HYPERSCALE_SCHEMA_VERSION}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown hyperscale config field(s): "
                f"{', '.join(sorted(unknown))}"
            )
        return cls(**data)
