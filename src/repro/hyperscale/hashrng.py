"""Counter-based hash RNG: randomness as a pure function of coordinates.

Sequential generators (`numpy.random.Generator`) tie a value to *how many
draws came before it* — which is exactly what a sharded simulation cannot
afford, because the draw order depends on the node partition. A
counter-based RNG instead derives every variate directly from its
coordinates: ``variate = f(seed, node, tick, stream)``. Any process can
compute any node's randomness without replaying anyone else's, so per-node
results are independent of sharding by construction — the foundation of
the hyperscale engine's serial/sharded bit-identity guarantee.

The mixing function is two rounds of SplitMix64 (Steele et al.,
"Fast Splittable Pseudorandom Number Generators", OOPSLA 2014) over a
combination of the coordinates with distinct large odd constants. That is
far below cryptographic strength but passes the statistical bar a load
simulation needs (the moment tests in ``tests/hyperscale`` hold at 1e6
samples), and it vectorises to pure uint64 numpy arithmetic.

Poisson sampling picks per-element between two classic methods:

- ``lam < 32``: bounded CDF inversion — exact distribution, iteration
  count capped near ``lam + 10·sqrt(lam)``;
- ``lam >= 32``: rounded normal approximation ``max(0, round(N(lam,
  lam)))`` via Box–Muller — error O(1/sqrt(lam)), standard for
  large-rate arrival processes.
"""

from __future__ import annotations

import numpy as np

#: SplitMix64 constants.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: Distinct odd multipliers decorrelating the coordinate axes.
_NODE_SALT = np.uint64(0xA24BAED4963EE407)
_TICK_SALT = np.uint64(0x9FB21C651E98DF25)
_STREAM_SALT = np.uint64(0xD6E8FEB86659FD93)

#: Rate threshold between exact inversion and the normal approximation.
_NORMAL_APPROX_MIN_LAM = 32.0


def splitmix64(state: np.ndarray) -> np.ndarray:
    """One SplitMix64 finalisation round over a uint64 array (wrapping)."""
    # Wraparound is the algorithm; numpy only warns about it for scalar
    # operands, so silence the overflow check explicitly.
    with np.errstate(over="ignore"):
        z = state + _GAMMA
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def hash_u64(
    seed: int,
    node,
    tick,
    stream: int = 0,
) -> np.ndarray:
    """A uint64 hash for every broadcast ``(node, tick)`` coordinate.

    ``node`` and ``tick`` may be scalars or arrays; they broadcast like
    any numpy operands (e.g. ``node[:, None]`` against ``tick[None, :]``
    yields a 2-D grid). Pure function of its arguments.
    """
    node = np.asarray(node, dtype=np.uint64)
    tick = np.asarray(tick, dtype=np.uint64)
    with np.errstate(over="ignore"):
        key = (
            np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
            ^ (node * _NODE_SALT)
            ^ (tick * _TICK_SALT)
            ^ (np.uint64(stream) * _STREAM_SALT)
        )
    return splitmix64(splitmix64(key))


def hash_u01(
    seed: int,
    node,
    tick,
    stream: int = 0,
) -> np.ndarray:
    """Uniform variates in the half-open interval (0, 1].

    The open-at-zero convention keeps ``log(u)`` finite for Box–Muller.
    53-bit resolution (one double mantissa).
    """
    bits = hash_u64(seed, node, tick, stream) >> np.uint64(11)
    return (bits.astype(np.float64) + 1.0) * (2.0**-53)


def hash_normal(
    seed: int,
    node,
    tick,
    stream: int = 0,
) -> np.ndarray:
    """Standard normal variates via Box–Muller over two hash streams."""
    u1 = hash_u01(seed, node, tick, stream)
    u2 = hash_u01(seed, node, tick, stream + 1)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def hash_poisson(
    lam: np.ndarray,
    seed: int,
    node,
    tick,
    stream: int = 0,
) -> np.ndarray:
    """Poisson(``lam``) counts, one per broadcast coordinate (int64).

    Exact CDF inversion below ``lam = 32``; rounded-normal approximation
    above. Both branches consume only hash streams ``stream`` and
    ``stream + 1``, so neighbouring variates never correlate through
    draw-order coupling.
    """
    lam = np.asarray(lam, dtype=np.float64)
    node = np.asarray(node, dtype=np.uint64)
    tick = np.asarray(tick, dtype=np.uint64)
    shape = np.broadcast_shapes(lam.shape, node.shape, tick.shape)
    lam = np.broadcast_to(lam, shape)
    out = np.zeros(shape, dtype=np.int64)
    if lam.size == 0:
        return out
    large = lam >= _NORMAL_APPROX_MIN_LAM
    if np.any(large):
        z = hash_normal(seed, node, tick, stream)
        z = np.broadcast_to(z, shape)
        approx = np.rint(lam + np.sqrt(lam) * z)
        out = np.where(large, np.maximum(approx, 0.0).astype(np.int64), out)
    small = ~large & (lam > 0)
    if np.any(small):
        u = np.broadcast_to(hash_u01(seed, node, tick, stream), shape)
        # Vectorised bounded inversion: walk k upward accumulating the
        # CDF until it passes u everywhere (or the cap, ~lam + 10·sqrt).
        lam_small_max = float(lam[small].max())
        k_max = int(np.ceil(lam_small_max + 10.0 * np.sqrt(lam_small_max) + 16))
        # Zero outside the small mask so the recurrence cannot overflow
        # on large-lam elements it will never use.
        pmf = np.where(small, np.exp(-lam), 0.0)
        cdf = pmf.copy()
        counts = np.zeros(shape, dtype=np.int64)
        pending = small & (u > cdf)
        k = 0
        while np.any(pending) and k < k_max:
            k += 1
            pmf = pmf * lam / k
            cdf = cdf + pmf
            counts = np.where(pending, k, counts)
            pending = pending & (u > cdf)
        out = np.where(small, counts, out)
    return out
