"""The Scheme abstraction: what one evaluated framework contributes.

A scheme bundles everything that distinguishes one evaluated system from
another on the serving path (Section 5's "evaluated schemes"):

- the GPU sharing mode (MPS spatial sharing vs. time sharing);
- the initial MIG geometry (a single 7g for non-MIG schemes);
- the per-node scheduler (ordering + placement policy);
- optional platform-wide daemons (PROTEAN's GPU Reconfigurator).

The platform is scheme-agnostic; experiments pair one scheme with one
procurement policy and a trace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.cluster.node import WorkerNode
from repro.gpu.engine import ShareMode
from repro.gpu.mig import GEOMETRY_FULL, Geometry
from repro.serverless.container import ContainerPool
from repro.serverless.dispatcher import DispatchPolicy
from repro.serverless.scheduler import NodeScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serverless.platform import ServerlessPlatform


class Scheme(ABC):
    """One evaluated request-serving policy bundle."""

    #: Human-readable scheme name (used in reports).
    name: str = "scheme"

    #: How jobs share a slice: spatial (MPS) or temporal.
    share_mode: ShareMode = ShareMode.MPS

    #: How the dispatcher spreads batches across nodes.
    dispatch_policy: DispatchPolicy = DispatchPolicy.LEAST_LOADED

    #: CONSOLIDATE only: batches per node before spilling.
    consolidation_limit: int = 4

    def initial_geometry(self) -> Geometry:
        """MIG geometry each GPU starts with (default: unpartitioned)."""
        return GEOMETRY_FULL

    @abstractmethod
    def create_scheduler(
        self,
        platform: "ServerlessPlatform",
        node: WorkerNode,
        pool: ContainerPool,
    ) -> NodeScheduler:
        """Build the per-node scheduler implementing this scheme."""

    def on_node_added(
        self, platform: "ServerlessPlatform", node: WorkerNode,
        scheduler: NodeScheduler,
    ) -> None:
        """Hook invoked after a node joins (e.g. start per-node daemons)."""

    def on_node_retired(
        self, platform: "ServerlessPlatform", node: WorkerNode
    ) -> None:
        """Hook invoked after a node leaves (stop per-node daemons)."""

    def on_platform_start(self, platform: "ServerlessPlatform") -> None:
        """Hook invoked once, after initial provisioning."""
