"""The serverless platform: wiring of gateway → batcher → dispatcher →
per-node schedulers → GPUs, plus node lifecycle and metrics emission.

This is the scheme-agnostic harness of Figure 4. PROTEAN and every baseline
run on the *same* platform; only the :class:`~repro.serverless.scheme.Scheme`
(scheduling policies) and the procurement policy differ — mirroring the
paper's methodology, where the evaluated schemes are "the request serving
policies of state-of-the-art GPU-enabled serverless frameworks".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.node import WorkerNode
from repro.cluster.pricing import CostMeter, DEFAULT_PRICING, ProviderPricing, VMTier
from repro.cluster.vm import VM, VMState
from repro.errors import ConfigurationError
from repro.gpu.device import GPU
from repro.gpu.device_models import get_device_model
from repro.gpu.engine import JobTiming, ShareMode
from repro.gpu.mig import GEOMETRY_FULL
from repro.metrics.records import RecordCollector, RejectionRecord, RequestRecord
from repro.observability.span import CATEGORY_REQUEST, CATEGORY_TENANT
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.serverless.batcher import DEFAULT_MAX_WAIT, Batcher
from repro.serverless.container import (
    DEFAULT_COLD_START_SECONDS,
    DEFAULT_KEEP_ALIVE_SECONDS,
    ContainerPool,
)
from repro.serverless.dispatcher import Dispatcher, Gateway
from repro.serverless.request import Request, RequestBatch
from repro.serverless.scheme import Scheme
from repro.simulation.simulator import Simulator
from repro.tenancy.model import TenancySpec
from repro.tenancy.runtime import TenancyRuntime
from repro.traces.mixing import RequestSpec


@dataclass(frozen=True)
class PlatformConfig:
    """Knobs of the scheme-agnostic platform machinery."""

    n_nodes: int = 8
    cold_start_seconds: float = DEFAULT_COLD_START_SECONDS
    keep_alive_seconds: float = DEFAULT_KEEP_ALIVE_SECONDS
    batch_max_wait: float = DEFAULT_MAX_WAIT
    reconfig_seconds: float = 2.0
    reconfig_fraction: float = 0.3
    #: GPU part per worker node: "a100" (paper testbed), "a100-80gb",
    #: or "h100" — same MIG shape, different memory capacities.
    gpu_device: str = "a100"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        if self.reconfig_seconds < 0:
            raise ConfigurationError("reconfig_seconds must be non-negative")


class ServerlessPlatform:
    """One running deployment of a scheme on a simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        scheme: Scheme,
        config: PlatformConfig | None = None,
        *,
        collector: RecordCollector | None = None,
        pricing: ProviderPricing = DEFAULT_PRICING,
        tracer: Tracer = NULL_TRACER,
        tenancy: TenancySpec | None = None,
    ) -> None:
        self.sim = sim
        self.scheme = scheme
        self.config = config or PlatformConfig()
        # Identity check, not truthiness: an empty collector is falsy
        # (len() == 0), and a fresh StreamingCollector must not be
        # silently replaced by the record-keeping default.
        self.collector = collector if collector is not None else RecordCollector()
        self.meter = CostMeter(pricing)
        self.tracer = tracer
        self.cluster = Cluster(reconfig_fraction=self.config.reconfig_fraction)
        self.dispatcher = Dispatcher(
            self.cluster,
            policy=scheme.dispatch_policy,
            consolidation_limit=scheme.consolidation_limit,
            tracer=tracer,
        )
        self.batcher = Batcher(
            sim,
            self.dispatcher.route,
            max_wait=self.config.batch_max_wait,
            tracer=tracer,
        )
        telemetry = tracer.telemetry
        self._ctr_admitted = telemetry.counter("gateway.requests_admitted")
        self._ctr_completed = telemetry.counter("requests.completed")
        self._ctr_violations = telemetry.counter("requests.slo_violations")
        self._hist_latency = telemetry.histogram("request.latency_s")
        self._hist_queue_delay = telemetry.histogram("request.queue_delay_s")
        telemetry.register_gauge(
            "dispatch.backlog", lambda: self.dispatcher.backlog_size
        )
        telemetry.register_gauge(
            "batcher.pending", lambda: self.batcher.pending_requests
        )
        telemetry.register_gauge(
            "cluster.active_nodes", lambda: len(self.cluster.active_nodes)
        )
        #: Daemons (reconfigurator, autoscaler) observing the ingest path.
        self.request_observers: list = []
        #: Observers invoked as ``observer(batch, timing)`` on every batch
        #: completion, before records are emitted (the runtime auditor
        #: hooks request-conservation checking here).
        self.completion_observers: list = []
        self.gateway = Gateway(self._ingest, sim=sim)
        #: Live pipeline runtime; None on the default (single-stage) path.
        #: Set by PipelineRuntime.arm() — the platform itself never
        #: branches on it (observers do all the work), but the auditor
        #: reads the armed runtime's compiled DAG from here.
        self.pipelines = None
        #: Live tenancy state; None on the default (single-tenant) path,
        #: where the platform takes zero tenancy branches per request.
        self.tenancy: TenancyRuntime | None = None
        if tenancy is not None:
            self.tenancy = TenancyRuntime(
                tenancy, on_reject=self._on_tenant_reject
            )
            self.gateway.admission = self.tenancy.admission.try_admit
            # The counter exists only when tenancy is active so the
            # default path's telemetry snapshot stays unchanged.
            self._ctr_rejected = telemetry.counter("tenant.rejections")
        #: Fault-injection hook inherited by every container pool (set on
        #: existing pools *and* pools of nodes built while a container
        #: start-failure window is active). See ContainerPool.
        self.container_start_interceptor = None
        self._pools: dict[int, ContainerPool] = {}
        #: Every node ever provisioned (metric rollup spans evictions).
        self.all_nodes: list[WorkerNode] = []
        self._started_at = sim.now

    def _ingest(self, request: Request) -> None:
        self._ctr_admitted.inc()
        if self.tracer.enabled:
            # The tenant attribute appears only for real tenants so the
            # default path's span log stays bit-identical to pre-tenancy
            # builds (pinned by the default-path regression test).
            attrs = {
                "request_id": request.request_id,
                "model": request.model.name,
                "strict": request.strict,
                "deadline": request.deadline,
            }
            if request.tenant != "default":
                attrs["tenant"] = request.tenant
            if request.workflow is not None:
                attrs["workflow"] = request.workflow
                attrs["stage"] = request.stage
            self.tracer.instant(
                "gateway.admit",
                category=CATEGORY_REQUEST,
                track="gateway",
                **attrs,
            )
        for observer in self.request_observers:
            observer(request)
        self.batcher.add(request)

    def _on_tenant_reject(self, request: Request) -> None:
        """Record a 429-style gateway rejection (quota enforcement)."""
        self._ctr_rejected.inc()
        self.collector.add_rejection(
            RejectionRecord(
                tenant=request.tenant,
                model=request.model.name,
                strict=request.strict,
                arrival=request.arrival,
            )
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "tenant.reject",
                category=CATEGORY_TENANT,
                track="tenant",
                request_id=request.request_id,
                tenant=request.tenant,
                model=request.model.name,
            )

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def build_node(self, tier: VMTier) -> WorkerNode:
        """Provision a VM + GPU + scheduler and join it to the cluster."""
        vm = VM(self.sim, tier, self.meter)
        device_model = get_device_model(self.config.gpu_device)
        geometry = self.scheme.initial_geometry()
        mode = self.scheme.share_mode
        if not device_model.partitionable:
            # Non-MIG parts (T4/A10) run one full-GPU slice with replicas
            # time-slicing it — modelled as MPS-style concurrent sharing.
            geometry = GEOMETRY_FULL
            mode = ShareMode.MPS
        gpu = GPU(
            self.sim,
            geometry,
            mode,
            reconfig_seconds=self.config.reconfig_seconds,
            device_model=device_model,
            tracer=self.tracer,
        )
        node = WorkerNode(vm, gpu)
        if self.tracer.enabled:
            self.tracer.instant(
                "node.join",
                track="cluster",
                node=node.name,
                tier=tier.value,
                gpu=gpu.name,
            )
            self.tracer.telemetry.register_gauge(
                f"gpu.occupancy.{node.name}", lambda: node.gpu.occupancy
            )
        pool = ContainerPool(
            self.sim,
            cold_start_seconds=self.config.cold_start_seconds,
            keep_alive_seconds=self.config.keep_alive_seconds,
            tracer=self.tracer,
        )
        pool.start_interceptor = self.container_start_interceptor
        scheduler = self.scheme.create_scheduler(self, node, pool)
        if self.tenancy is not None:
            scheduler.tenant_policy = self.tenancy.make_node_policy()
        self._pools[node.node_id] = pool
        self.cluster.add(node)
        self.all_nodes.append(node)
        self.dispatcher.register(node, scheduler)
        self.scheme.on_node_added(self, node, scheduler)
        return node

    def provision_initial(self, tier: VMTier = VMTier.ON_DEMAND) -> None:
        """Bring up the configured node count and start scheme daemons."""
        for _ in range(self.config.n_nodes):
            self.build_node(tier)
        self.scheme.on_platform_start(self)

    def retire_node(self, node: WorkerNode) -> None:
        """Tear a node down and resubmit everything it still held."""
        scheduler = self.dispatcher.deregister(node)
        unfinished: list[RequestBatch] = []
        if scheduler is not None:
            unfinished.extend(scheduler.collect_unfinished())
        for payload in node.retire():
            if isinstance(payload, RequestBatch):
                unfinished.append(payload)
        pool = self._pools.pop(node.node_id, None)
        if pool is not None:
            pool.stop()
        if node.vm.state is not VMState.TERMINATED:
            node.vm.terminate()
        self.cluster.remove(node)
        self.scheme.on_node_retired(self, node)
        if self.tracer.enabled:
            self.tracer.telemetry.unregister_gauge(f"gpu.occupancy.{node.name}")
            self.tracer.instant(
                "node.retire",
                track="cluster",
                node=node.name,
                resubmitted_batches=len(unfinished),
            )
        for batch in unfinished:
            self.dispatcher.resubmit(batch)

    # ------------------------------------------------------------------
    # Request injection
    # ------------------------------------------------------------------
    def inject(self, specs: Sequence[RequestSpec]) -> None:
        """Schedule trace-generated requests for arrival.

        Arrivals are injected lazily (one pending event at a time) so huge
        traces do not bloat the event heap.
        """
        ordered = sorted(specs, key=lambda s: s.arrival)
        iterator = iter(ordered)

        def admit_next(spec: RequestSpec) -> None:
            self.gateway.admit(Request.from_spec(spec))
            upcoming = next(iterator, None)
            if upcoming is not None:
                self.sim.at(upcoming.arrival, lambda: admit_next(upcoming),
                            label="arrival")

        first = next(iterator, None)
        if first is not None:
            self.sim.at(first.arrival, lambda: admit_next(first), label="arrival")

    # ------------------------------------------------------------------
    # Completion accounting
    # ------------------------------------------------------------------
    def record_batch_completion(self, batch: RequestBatch, timing: JobTiming) -> None:
        """Emit one :class:`RequestRecord` per member request.

        The decomposition is additive: for each request,
        ``batch_wait + cold_start + queue_delay + exec_min + deficiency +
        interference == completion − arrival``.
        """
        queue_delay = max(
            0.0,
            timing.started_at - batch.created_at - batch.cold_start_seconds,
        )
        for observer in self.completion_observers:
            observer(batch, timing)
        if self.tenancy is not None:
            self.tenancy.release_batch(batch)
        self._ctr_completed.inc(len(batch.requests))
        self._hist_queue_delay.observe(queue_delay)
        if self.tracer.enabled:
            self._trace_batch_completion(batch, timing, queue_delay)
        for request in batch.requests:
            self.collector.add(
                RequestRecord(
                    model=batch.model.name,
                    strict=batch.strict,
                    arrival=request.arrival,
                    completion=timing.finished_at,
                    deadline=request.deadline,
                    batch_wait=batch.created_at - request.arrival,
                    cold_start=batch.cold_start_seconds,
                    queue_delay=queue_delay,
                    exec_min=timing.work,
                    deficiency=timing.deficiency_time,
                    interference=timing.interference_time,
                    tenant=batch.tenant,
                    workflow=request.workflow,
                    stage=request.stage,
                )
            )

    def _trace_batch_completion(
        self, batch: RequestBatch, timing: JobTiming, queue_delay: float
    ) -> None:
        """Emit the lifecycle spans of a finished batch and its requests.

        ``queue.wait`` and ``slice.execute`` are recorded retroactively
        from the authoritative :class:`JobTiming` — the engine already
        measured the exact transitions, so live begin/end hooks on the
        execution hot path would only duplicate them.
        """
        request_ids = [r.request_id for r in batch.requests]
        self.tracer.record(
            "queue.wait",
            batch.created_at,
            timing.started_at,
            category=CATEGORY_REQUEST,
            track="queue",
            batch_id=batch.batch_id,
            request_ids=request_ids,
            cold_start_s=batch.cold_start_seconds,
            queue_delay_s=queue_delay,
        )
        execute_attrs = {
            "batch_id": batch.batch_id,
            "request_ids": request_ids,
            "model": batch.model.name,
            "strict": batch.strict,
            "slice": timing.slice_name,
            "work_s": timing.work,
            "deficiency_s": timing.deficiency_time,
            "interference_s": timing.interference_time,
        }
        if batch.tenant != "default":
            execute_attrs["tenant"] = batch.tenant
        self.tracer.record(
            "slice.execute",
            timing.started_at,
            timing.finished_at,
            category=CATEGORY_REQUEST,
            track="execute",
            **execute_attrs,
        )
        for request in batch.requests:
            latency = timing.finished_at - request.arrival
            self._hist_latency.observe(latency)
            violated = (
                request.deadline is not None
                and timing.finished_at > request.deadline
            )
            if violated:
                self._ctr_violations.inc()
            complete_attrs = {
                "request_id": request.request_id,
                "batch_id": batch.batch_id,
                "latency_s": latency,
                "deadline": request.deadline,
            }
            if request.workflow is not None:
                complete_attrs["workflow"] = request.workflow
                complete_attrs["stage"] = request.stage
            self.tracer.instant(
                "slo_violation" if violated else "complete",
                category=CATEGORY_REQUEST,
                track="complete",
                **complete_attrs,
            )

    # ------------------------------------------------------------------
    # Run finalization
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Settle VM billing at the end of a run."""
        for node in self.cluster:
            node.vm.flush_billing()

    def pool_for(self, node: WorkerNode) -> ContainerPool:
        """The container pool attached to ``node``."""
        return self._pools[node.node_id]

    def set_container_start_interceptor(self, interceptor) -> None:
        """Install (or clear, with None) the container start-failure hook
        on every live pool and on pools of nodes built afterwards."""
        self.container_start_interceptor = interceptor
        for pool in self._pools.values():
            pool.start_interceptor = interceptor

    @property
    def elapsed(self) -> float:
        """Seconds since the platform was created."""
        return self.sim.now - self._started_at

    def total_cold_starts(self) -> int:
        """Cold starts across live pools (retired pools keep their stats
        in scheme-level accounting; live total suffices for reporting)."""
        return sum(pool.cold_starts for pool in self._pools.values())
