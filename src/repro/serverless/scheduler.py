"""Per-node batch scheduling: the policy extension point.

A :class:`NodeScheduler` owns one worker node's batch queue. The generic
machinery (container acquisition, queue bookkeeping, job submission,
completion accounting) lives here; schemes differ only in two hooks:

- :meth:`_order_queue` — how waiting batches are ordered (FIFO by default;
  PROTEAN reorders strict-first, Section 4.1);
- :meth:`_place` — which GPU slice a batch goes to and with what
  deficiency/interference parameters (the heart of each scheme).

A batch that cannot be placed right now (no slice has free memory, the GPU
is reconfiguring, ...) stays in the queue; the scheduler re-runs dispatch
whenever state changes (completion, reconfiguration end, new arrival).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster.node import WorkerNode
from repro.gpu.engine import GPUSlice, JobTiming, SliceJob
from repro.serverless.container import Container, ContainerPool
from repro.serverless.request import RequestBatch
from repro.simulation.simulator import Simulator

#: Signature of the platform's completion callback.
CompletionCallback = Callable[[RequestBatch, JobTiming], None]


@dataclass(frozen=True)
class Placement:
    """A scheduling decision for one batch."""

    gpu_slice: GPUSlice
    rdf: float
    fbr: float
    sm_fraction: float = 1.0


class NodeScheduler(ABC):
    """Base class for all per-node scheduling policies."""

    def __init__(
        self,
        sim: Simulator,
        node: WorkerNode,
        pool: ContainerPool,
        on_batch_complete: CompletionCallback,
        on_batch_lost: Callable[[RequestBatch], None] | None = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.pool = pool
        self.on_batch_complete = on_batch_complete
        self.on_batch_lost = on_batch_lost
        self.queue: list[RequestBatch] = []
        self._awaiting_container: dict[int, RequestBatch] = {}
        self._containers: dict[int, Container] = {}
        self.in_flight = 0
        self.batches_completed = 0
        #: When True, dispatch is paused (e.g. draining ahead of a MIG
        #: reconfiguration); queued batches are held until released.
        self.hold = False
        #: Tenant fairness/isolation policy for this node, installed by
        #: the platform when tenancy is active (None otherwise — the
        #: default path takes zero extra branches per batch). See
        #: :class:`repro.tenancy.fairness.NodeTenancy`.
        self.tenant_policy = None
        #: Invoked as ``launch_observer(batch, placement)`` right after a
        #: batch's job is submitted to its slice. None on the default
        #: path (zero overhead); the live serving runtime installs the
        #: executor bridge here (see :mod:`repro.serving.executor`).
        self.launch_observer = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def submit(self, batch: RequestBatch) -> None:
        """Accept a batch routed to this node by the dispatcher.

        Reactive scale-up (Section 4.2): every batch acquires its own
        container — warm if available, else a cold start is paid here.
        """
        self._awaiting_container[batch.batch_id] = batch

        def ready(container: Container, cold_seconds: float) -> None:
            if self._awaiting_container.pop(batch.batch_id, None) is None:
                # The batch was reclaimed (node retired and the platform
                # resubmitted it elsewhere); ignore the late container.
                return
            if self.node.state.value == "retired":
                # Node died while the container booted; hand the batch back.
                self.pool.release(container)
                self._lost(batch)
                return
            batch.ready_at = self.sim.now
            batch.cold_start_seconds += cold_seconds
            self._containers[batch.batch_id] = container
            self.queue.append(batch)
            self.dispatch()

        self.pool.acquire(batch.model.name, ready)

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    #: Stop a dispatch round after this many consecutive placement
    #: failures — under heavy overload the queue can grow to thousands of
    #: batches, and once the GPU is full the rest will fail too.
    _MAX_CONSECUTIVE_FAILURES = 32

    def dispatch(self) -> None:
        """Try to place every queued batch, in policy order."""
        if self.hold or not self.queue:
            return
        self._order_queue(self.queue)
        tenancy = self.tenant_policy
        if tenancy is not None:
            # Tenant-fair ordering (WFQ) sits above the scheme's own
            # ordering: the sort is stable, so the scheme's order holds
            # within equal (priority tier, fair tag) pairs.
            tenancy.order(self.queue)
        remaining: list[RequestBatch] = []
        failures = 0
        for index, batch in enumerate(self.queue):
            if failures >= self._MAX_CONSECUTIVE_FAILURES:
                remaining.extend(self.queue[index:])
                break
            placement = self._place(batch)
            if placement is not None and tenancy is not None and (
                not tenancy.placement_allowed(batch, placement.gpu_slice)
            ):
                # Soft exclusivity: the slice holds (or the batch is)
                # exclusive-tenant work; wait like a memory-full slice.
                placement = None
            if placement is None:
                remaining.append(batch)
                failures += 1
                continue
            failures = 0
            self._launch(batch, placement)
        self.queue = remaining

    def _launch(self, batch: RequestBatch, placement: Placement) -> None:
        if self.tenant_policy is not None:
            self.tenant_policy.on_launch(batch)
        self.in_flight += 1
        job = SliceJob(
            # Workload profiles are calibrated on a full A100-40GB; faster
            # (or slower) parts scale the work, not the profile tables.
            work=batch.work / self.node.gpu.device_model.speed_factor,
            rdf=placement.rdf,
            fbr=placement.fbr,
            memory_gb=batch.memory_gb,
            sm_fraction=placement.sm_fraction,
            payload=batch,
            on_complete=self._on_job_complete,
        )
        placement.gpu_slice.submit(job)
        if self.launch_observer is not None:
            self.launch_observer(batch, placement)

    def _on_job_complete(self, job: SliceJob, timing: JobTiming) -> None:
        batch = job.payload
        assert isinstance(batch, RequestBatch)
        self.in_flight -= 1
        self.batches_completed += 1
        container = self._containers.pop(batch.batch_id, None)
        if container is not None:
            self.pool.release(container)
        self.on_batch_complete(batch, timing)
        self.dispatch()

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def _order_queue(self, queue: list[RequestBatch]) -> None:
        """Order waiting batches in place. Default: FIFO (no-op)."""

    @abstractmethod
    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        """Choose a slice for ``batch`` or return ``None`` to keep waiting."""

    # ------------------------------------------------------------------
    # Placement helpers shared by concrete schedulers
    # ------------------------------------------------------------------
    def standard_placement(
        self, batch: RequestBatch, gpu_slice: GPUSlice
    ) -> Placement:
        """Default MPS placement: full-slice SMs, profile-derived RDF/FBR."""
        model = batch.model
        return Placement(
            gpu_slice=gpu_slice,
            rdf=model.rdf(gpu_slice.profile),
            fbr=model.slice_fbr(gpu_slice.profile),
        )

    @staticmethod
    def fits_now(batch: RequestBatch, gpu_slice: GPUSlice) -> bool:
        """Whether ``batch`` can start on ``gpu_slice`` immediately."""
        return batch.memory_gb <= gpu_slice.memory_free

    # ------------------------------------------------------------------
    # Load & teardown
    # ------------------------------------------------------------------
    def load(self) -> float:
        """Outstanding work estimate for load balancing: seconds of solo-7g
        work attached to this node (queued, booting, and in flight)."""
        queued = sum(b.work for b in self.queue)
        booting = sum(b.work for b in self._awaiting_container.values())
        running = 0.0
        for gpu_slice in self.node.gpu.slices:
            for job in gpu_slice.running_jobs + gpu_slice.pending_jobs:
                running += job.work
        return queued + booting + running

    def outstanding_batches(self) -> int:
        """Count of batches attached to this node in any stage."""
        return len(self.queue) + len(self._awaiting_container) + self.in_flight

    def attached_batches(self) -> tuple[RequestBatch, ...]:
        """Non-destructive snapshot of scheduler-held batches (queued or
        awaiting containers); GPU-resident batches live on the slices."""
        return tuple(self.queue) + tuple(self._awaiting_container.values())

    def collect_unfinished(self) -> list[RequestBatch]:
        """Pull back every batch not yet completed (node retirement).

        GPU-resident jobs are surrendered by ``WorkerNode.retire``; this
        returns the scheduler-held ones (queued or awaiting containers)
        and clears internal state.
        """
        unfinished = list(self.queue) + list(self._awaiting_container.values())
        self.queue.clear()
        self._awaiting_container.clear()
        return unfinished

    def _lost(self, batch: RequestBatch) -> None:
        """Surface a batch orphaned by node death after deregistration.

        The platform wires ``on_batch_lost`` to dispatcher resubmission;
        standalone schedulers (unit tests) simply drop the batch.
        """
        if self.on_batch_lost is not None:
            self.on_batch_lost(batch)

    # ------------------------------------------------------------------
    # Reconfiguration support (used by geometry-changing schemes)
    # ------------------------------------------------------------------
    def gpu_is_quiescent(self) -> bool:
        """True when the GPU holds no running or pending jobs."""
        return self.node.gpu.idle
