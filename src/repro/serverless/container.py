"""Container lifecycle: cold starts, warm reuse, delayed termination.

Implements the paper's autoscaling behaviour (Section 4.2):

- *Reactive scale-up*: one container is provisioned per request batch —
  ``acquire`` hands out an idle warm container when one exists for the
  model, otherwise it spawns a new one and the caller waits out the cold
  start.
- *Delayed termination*: a container that goes idle is kept warm for a
  keep-alive period (~10 minutes in the paper) and only terminated if it
  remains surplus throughout, which the paper reports cuts cold starts by
  up to 98% versus immediate scale-down.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Callable

from repro.errors import ConfigurationError
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.simulation.processes import OneShotTimer
from repro.simulation.simulator import Simulator

#: Default container boot + model load latency, seconds. Real GPU serverless
#: cold starts run seconds to tens of seconds; 8 s models a container boot
#: plus a multi-GB model load.
DEFAULT_COLD_START_SECONDS = 8.0

#: Paper Section 4.2: surplus containers terminate after ~10 minutes.
DEFAULT_KEEP_ALIVE_SECONDS = 600.0

_container_ids = itertools.count()


def reset_ids() -> None:
    """Restart container numbering (fresh id space per experiment run)."""
    global _container_ids
    _container_ids = itertools.count()


class ContainerState(str, Enum):
    """Lifecycle of one container."""

    COLD_STARTING = "cold_starting"
    IDLE = "idle"
    BUSY = "busy"
    TERMINATED = "terminated"


class Container:
    """One GPU-accelerated container serving batches of a single model."""

    def __init__(self, pool: "ContainerPool", model_name: str) -> None:
        self.container_id = next(_container_ids)
        self.pool = pool
        self.model_name = model_name
        self.state = ContainerState.COLD_STARTING
        self.spawned_at = pool.sim.now
        self.batches_served = 0
        self._keep_alive = OneShotTimer(
            pool.sim, self._expire, label=f"keepalive-c{self.container_id}"
        )

    def _expire(self) -> None:
        if self.state is ContainerState.IDLE:
            self.pool._terminate(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Container(#{self.container_id}, {self.model_name}, {self.state.value})"


class ContainerPool:
    """Per-node pool of warm/cold containers, one model per container."""

    def __init__(
        self,
        sim: Simulator,
        *,
        cold_start_seconds: float = DEFAULT_COLD_START_SECONDS,
        keep_alive_seconds: float = DEFAULT_KEEP_ALIVE_SECONDS,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if cold_start_seconds < 0 or keep_alive_seconds < 0:
            raise ConfigurationError("container delays must be non-negative")
        self.sim = sim
        self.cold_start_seconds = cold_start_seconds
        self.keep_alive_seconds = keep_alive_seconds
        self.tracer = tracer
        self._ctr_cold = tracer.telemetry.counter("containers.cold_starts")
        self._ctr_warm = tracer.telemetry.counter("containers.warm_hits")
        self._ctr_prewarm = tracer.telemetry.counter("containers.prewarms")
        self._idle: dict[str, list[Container]] = {}
        self._all: set[Container] = set()
        self.cold_starts = 0
        self.warm_hits = 0
        self._stopped = False
        #: Fault-injection hook: called with this pool's cold-start delay
        #: at every container spawn; returns *extra* boot seconds (0.0 =
        #: the start succeeded first try). None = no faults active.
        self.start_interceptor: Callable[[float], float] | None = None

    def _spawn_delay(self) -> float:
        """Boot delay for a fresh container, including injected failures."""
        if self.start_interceptor is None:
            return self.cold_start_seconds
        return self.cold_start_seconds + self.start_interceptor(
            self.cold_start_seconds
        )

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def acquire(
        self, model_name: str, ready: Callable[[Container, float], None]
    ) -> None:
        """Obtain a container for ``model_name``.

        ``ready(container, cold_start_seconds)`` fires immediately with 0
        cold start when a warm idle container exists, otherwise after the
        cold-start delay of a freshly spawned container.
        """
        if self._stopped:
            raise ConfigurationError("pool is stopped")
        idle = self._idle.get(model_name)
        if idle:
            container = idle.pop()
            container._keep_alive.cancel()
            container.state = ContainerState.BUSY
            self.warm_hits += 1
            self._ctr_warm.inc()
            ready(container, 0.0)
            return
        container = Container(self, model_name)
        self._all.add(container)
        self.cold_starts += 1
        self._ctr_cold.inc()
        delay = self._spawn_delay()

        def booted() -> None:
            if container.state is ContainerState.TERMINATED:
                return  # pool shut down mid-boot
            container.state = ContainerState.BUSY
            ready(container, delay)

        self.sim.after(delay, booted, label="cold-start")

    def release(self, container: Container) -> None:
        """Return a container after its batch completes."""
        if container.state is not ContainerState.BUSY:
            raise ConfigurationError(
                f"release of non-busy container {container!r}"
            )
        container.batches_served += 1
        container.state = ContainerState.IDLE
        self._idle.setdefault(container.model_name, []).append(container)
        container._keep_alive.restart(self.keep_alive_seconds)

    def prewarm(self, model_name: str) -> None:
        """Spawn a container that goes straight to IDLE once booted.

        Used by the autoscaler's conservative provisioning: paying the
        cold start *ahead* of demand so future batches find warm
        containers.
        """
        if self._stopped:
            raise ConfigurationError("pool is stopped")
        container = Container(self, model_name)
        self._all.add(container)
        self.cold_starts += 1
        self._ctr_cold.inc()
        self._ctr_prewarm.inc()

        def booted() -> None:
            if container.state is ContainerState.TERMINATED:
                return
            container.state = ContainerState.IDLE
            self._idle.setdefault(model_name, []).append(container)
            container._keep_alive.restart(self.keep_alive_seconds)

        self.sim.after(self._spawn_delay(), booted, label="prewarm")

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------
    @property
    def total_containers(self) -> int:
        """Live containers (cold-starting, idle, or busy)."""
        return sum(
            1 for c in self._all if c.state is not ContainerState.TERMINATED
        )

    def live_count(self, model_name: str) -> int:
        """Live containers (any non-terminated state) for one model."""
        return sum(
            1
            for c in self._all
            if c.model_name == model_name
            and c.state is not ContainerState.TERMINATED
        )

    def idle_count(self, model_name: str | None = None) -> int:
        """Idle warm containers, optionally filtered by model."""
        if model_name is not None:
            return len(self._idle.get(model_name, []))
        return sum(len(v) for v in self._idle.values())

    def stop(self) -> None:
        """Terminate everything (node retirement)."""
        self._stopped = True
        for container in list(self._all):
            if container.state is not ContainerState.TERMINATED:
                container._keep_alive.cancel()
                container.state = ContainerState.TERMINATED
        self._idle.clear()

    def _terminate(self, container: Container) -> None:
        container.state = ContainerState.TERMINATED
        idle = self._idle.get(container.model_name)
        if idle and container in idle:
            idle.remove(container)
