"""Cluster-level request-batch dispatch (paper Figure 4, component ②).

The Dispatcher load-balances batches across the worker nodes, routing each
to the active node with the least outstanding work. Batches that arrive
while *no* node is active (total spot outage under a Spot-Only policy) are
held in a backlog and flushed the moment a node joins.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

from repro.cluster.cluster import Cluster
from repro.cluster.node import WorkerNode
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.serverless.request import Request, RequestBatch
from repro.serverless.scheduler import NodeScheduler


class DispatchPolicy(str, Enum):
    """How batches spread across worker nodes.

    ``LEAST_LOADED`` balances work (PROTEAN's dispatcher "load-balances
    across the worker nodes", Figure 4). ``CONSOLIDATE`` packs work onto
    as few nodes as possible to maximize per-GPU utilization — the
    INFless/Llama behaviour the paper criticizes for "consolidating
    excessive workload batches on individual GPUs, which leads to high
    job interference" (Section 1): route to the *most*-loaded node whose
    outstanding batch count is below the consolidation limit, spilling to
    the least-loaded node only when every node is full.
    """

    LEAST_LOADED = "least_loaded"
    CONSOLIDATE = "consolidate"


#: Default cap on batches per node before CONSOLIDATE spills over.
DEFAULT_CONSOLIDATION_LIMIT = 4


class Dispatcher:
    """Routes request batches to per-node schedulers."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        policy: DispatchPolicy = DispatchPolicy.LEAST_LOADED,
        consolidation_limit: int = DEFAULT_CONSOLIDATION_LIMIT,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.consolidation_limit = consolidation_limit
        self.tracer = tracer
        self._routed_counter = tracer.telemetry.counter("dispatch.batches_routed")
        self._backlog_counter = tracer.telemetry.counter("dispatch.backlogged")
        self._schedulers: dict[int, NodeScheduler] = {}
        self._backlog: list[RequestBatch] = []
        self.batches_routed = 0
        self.resubmissions = 0
        #: Observers invoked as ``observer(batch)`` on every resubmission
        #: (the pipeline runtime counts stage retries here).
        self.resubmit_observers: list = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, node: WorkerNode, scheduler: NodeScheduler) -> None:
        """Attach a scheduler for a (new) node and drain any backlog."""
        self._schedulers[node.node_id] = scheduler
        if self._backlog and node.accepting:
            backlog, self._backlog = self._backlog, []
            for batch in backlog:
                self.route(batch)

    def deregister(self, node: WorkerNode) -> NodeScheduler | None:
        """Detach a retired node's scheduler."""
        return self._schedulers.pop(node.node_id, None)

    def scheduler_for(self, node: WorkerNode) -> NodeScheduler:
        """The scheduler attached to ``node``."""
        return self._schedulers[node.node_id]

    def try_scheduler_for(self, node: WorkerNode) -> NodeScheduler | None:
        """The scheduler attached to ``node``, or None if deregistered."""
        return self._schedulers.get(node.node_id)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, batch: RequestBatch) -> None:
        """Send ``batch`` to the least-loaded active node (or backlog it)."""
        target = self._pick_node()
        if target is None:
            self._backlog.append(batch)
            self._backlog_counter.inc()
            if self.tracer.enabled:
                self.tracer.instant(
                    "dispatch.backlogged",
                    track="dispatch",
                    batch_id=batch.batch_id,
                )
            return
        self.batches_routed += 1
        self._routed_counter.inc()
        self._schedulers[target.node_id].submit(batch)

    def resubmit(self, batch: RequestBatch) -> None:
        """Re-route a batch recovered from an evicted node."""
        batch.resubmissions += 1
        self.resubmissions += 1
        for observer in self.resubmit_observers:
            observer(batch)
        self.route(batch)

    def _pick_node(self) -> WorkerNode | None:
        candidates: list[tuple[WorkerNode, NodeScheduler]] = []
        for node in self.cluster.active_nodes:
            scheduler = self._schedulers.get(node.node_id)
            if scheduler is not None:
                candidates.append((node, scheduler))
        if not candidates:
            return None
        if self.policy is DispatchPolicy.CONSOLIDATE:
            open_nodes = [
                (node, scheduler)
                for node, scheduler in candidates
                if scheduler.outstanding_batches() < self.consolidation_limit
            ]
            if open_nodes:
                # Pack: most-loaded node that still has headroom.
                return max(
                    open_nodes, key=lambda item: item[1].outstanding_batches()
                )[0]
            # Everything full: fall through to least-loaded spill.
        return min(candidates, key=lambda item: item[1].load())[0]

    @property
    def backlog_size(self) -> int:
        """Batches waiting for any node to become active."""
        return len(self._backlog)

    @property
    def backlog_batches(self) -> tuple[RequestBatch, ...]:
        """Snapshot of backlogged batches (audit residual accounting)."""
        return tuple(self._backlog)

    def schedulers(self) -> tuple[NodeScheduler, ...]:
        """Snapshot of every registered per-node scheduler."""
        return tuple(self._schedulers.values())


class Gateway:
    """Entry point for user requests (paper Figure 4, component ①).

    Feeds admitted requests into the batcher; exists as its own component
    so the platform's ingest path mirrors the paper's architecture and so
    ingestion stats have a home. A fault injector may install a
    ``delay_provider`` to model network jitter on admission: each request
    is then held for the returned delay before entering the batcher.
    """

    def __init__(self, on_request: Callable, *, sim=None) -> None:
        self._on_request = on_request
        self.sim = sim
        self.requests_admitted = 0
        #: Fault-injection hook: returns the admission delay (seconds)
        #: for the next request. None = no network fault active.
        self.delay_provider: Callable[[], float] | None = None
        self.delayed_admissions = 0
        #: Tenancy hook: ``admission(request) -> bool`` decides whether the
        #: request enters the platform at all. A False return is a
        #: 429-style rejection — the request is never counted as admitted
        #: and never reaches the batcher. None = admit everything.
        self.admission: Callable[[Request], bool] | None = None
        self.requests_rejected = 0

    def admit(self, request) -> None:
        """Accept one request into the platform (or reject it outright)."""
        if self.admission is not None and not self.admission(request):
            self.requests_rejected += 1
            return
        self.requests_admitted += 1
        if self.delay_provider is not None and self.sim is not None:
            delay = self.delay_provider()
            if delay > 0.0:
                self.delayed_admissions += 1
                self.sim.after(
                    delay,
                    lambda: self._on_request(request),
                    label="gateway-delay",
                )
                return
        self._on_request(request)
