"""Request batching (paper Section 4.1).

Requests are grouped per (model, strictness, tenant) and flushed as a
:class:`RequestBatch` either when the model's batch size is reached or
when the oldest member has waited ``max_wait`` seconds — whichever comes
first. The timeout keeps low-rate workloads (e.g. ALBERT at 6 rps with
batch size 4) from blowing their SLO budget waiting for a full batch.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigurationError
from repro.observability.span import CATEGORY_REQUEST, Span
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.serverless.request import Request, RequestBatch
from repro.simulation.events import Event
from repro.simulation.simulator import Simulator

#: Default cap on how long the first request of a batch may wait.
DEFAULT_MAX_WAIT = 0.050


class Batcher:
    """Accumulates requests into homogeneous batches."""

    def __init__(
        self,
        sim: Simulator,
        on_batch: Callable[[RequestBatch], None],
        *,
        max_wait: float = DEFAULT_MAX_WAIT,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if max_wait <= 0:
            raise ConfigurationError("max_wait must be positive")
        self.sim = sim
        self.on_batch = on_batch
        self.max_wait = max_wait
        self.tracer = tracer
        self._buffers: dict[tuple[str, bool, str], list[Request]] = {}
        self._timers: dict[tuple[str, bool, str], Event] = {}
        self._form_spans: dict[tuple[str, bool, str], Span] = {}
        self._batch_size_hist = tracer.telemetry.histogram("batch.size")
        self.batches_emitted = 0

    def add(self, request: Request) -> None:
        """Admit one request; may trigger an immediate flush."""
        key = (request.model.name, request.strict, request.tenant)
        buffer = self._buffers.setdefault(key, [])
        buffer.append(request)
        if self.tracer.enabled and len(buffer) == 1:
            # The tenant attribute appears only for real tenants so the
            # default path's span log stays bit-identical to pre-tenancy
            # builds (pinned by the default-path regression test).
            attrs = {"model": request.model.name, "strict": request.strict}
            if request.tenant != "default":
                attrs["tenant"] = request.tenant
            self._form_spans[key] = self.tracer.begin(
                "batch.form",
                category=CATEGORY_REQUEST,
                track="batch",
                **attrs,
            )
        if len(buffer) >= request.model.batch_size:
            self._flush(key)
        elif len(buffer) == 1:
            self._timers[key] = self.sim.after(
                self.max_wait, lambda: self._flush(key), label="batch-timeout"
            )

    def flush_all(self) -> None:
        """Emit every non-empty buffer (end-of-trace cleanup)."""
        for key in list(self._buffers):
            if self._buffers[key]:
                self._flush(key)

    @property
    def pending_requests(self) -> int:
        """Requests currently buffered and not yet batched."""
        return sum(len(buffer) for buffer in self._buffers.values())

    def buffered_requests(self) -> tuple[Request, ...]:
        """Snapshot of buffered requests (audit residual accounting)."""
        return tuple(
            request
            for buffer in self._buffers.values()
            for request in buffer
        )

    def pending_best_effort_memory(self) -> float:
        """Memory the buffered BE requests will need once batched.

        This is the ``BE_mem`` input to PROTEAN's Algorithm 1 — the
        request-reordering module exposes it to the Job Distributor.
        """
        total = 0.0
        for (model_name, strict, _tenant), buffer in self._buffers.items():
            if strict or not buffer:
                continue
            model = buffer[0].model
            total += math.ceil(len(buffer) / model.batch_size) * model.memory_gb
        return total

    def _flush(self, key: tuple[str, bool, str]) -> None:
        buffer = self._buffers.get(key)
        if not buffer:
            return
        timer = self._timers.pop(key, None)
        if timer is not None:
            self.sim.cancel(timer)
        model_name, strict, tenant = key
        batch = RequestBatch(
            buffer[0].model, strict, created_at=self.sim.now, tenant=tenant
        )
        for request in buffer:
            batch.add(request)
        self._buffers[key] = []
        self.batches_emitted += 1
        self._batch_size_hist.observe(len(batch))
        if self.tracer.enabled:
            self.tracer.end(
                self._form_spans.pop(key, None),
                batch_id=batch.batch_id,
                request_ids=[r.request_id for r in batch.requests],
                size=len(batch),
            )
        self.on_batch(batch)
