"""Serverless platform substrate: gateway, batching, containers, dispatch."""

from repro.serverless.batcher import DEFAULT_MAX_WAIT, Batcher
from repro.serverless.container import (
    Container,
    ContainerPool,
    ContainerState,
    DEFAULT_COLD_START_SECONDS,
    DEFAULT_KEEP_ALIVE_SECONDS,
)
from repro.serverless.dispatcher import Dispatcher, Gateway
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.serverless.request import Request, RequestBatch
from repro.serverless.scheduler import NodeScheduler, Placement
from repro.serverless.scheme import Scheme

__all__ = [
    "Batcher",
    "Container",
    "ContainerPool",
    "ContainerState",
    "DEFAULT_COLD_START_SECONDS",
    "DEFAULT_KEEP_ALIVE_SECONDS",
    "DEFAULT_MAX_WAIT",
    "Dispatcher",
    "Gateway",
    "NodeScheduler",
    "Placement",
    "PlatformConfig",
    "Request",
    "RequestBatch",
    "Scheme",
    "ServerlessPlatform",
]
