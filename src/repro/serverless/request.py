"""Requests and request batches flowing through the platform."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.traces.mixing import RequestSpec
from repro.workloads.profile import ModelProfile

_request_ids = itertools.count()
_batch_ids = itertools.count()


def reset_ids() -> None:
    """Restart request/batch numbering (fresh id space per experiment run)."""
    global _request_ids, _batch_ids
    _request_ids = itertools.count()
    _batch_ids = itertools.count()


@dataclass(frozen=True, slots=True)
class Request:
    """One user request as admitted by the gateway.

    ``slots=True``: requests are the most numerous live objects in a run
    (one per in-flight arrival), so the slotted layout matters at
    hyperscale request counts.
    """

    model: ModelProfile
    strict: bool
    arrival: float
    deadline: float | None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Owning tenant (the implicit "default" tenant when tenancy is off).
    tenant: str = "default"
    #: Owning workflow id and stage name for pipeline stage requests
    #: (see repro.pipelines); None on the default single-stage path.
    workflow: str | None = None
    stage: str | None = None

    @classmethod
    def from_spec(cls, spec: RequestSpec) -> "Request":
        """Admit a trace-generated :class:`RequestSpec`."""
        return cls(
            model=spec.model,
            strict=spec.strict,
            arrival=spec.arrival,
            deadline=spec.slo_deadline,
            tenant=spec.tenant,
            workflow=spec.workflow,
            stage=spec.stage,
        )


class RequestBatch:
    """A batch of same-model, same-strictness, same-tenant requests
    served as one job.

    Strict and best-effort requests are never mixed in a batch: the
    schedulers treat strictness per batch (reordering, slice placement),
    which requires homogeneous batches.

    Timing fields are filled in as the batch moves through the platform:
    ``created_at`` (flush from the batcher) → ``ready_at`` (container
    available, cold start paid) → execution timing from the GPU engine.
    """

    __slots__ = (
        "batch_id",
        "model",
        "strict",
        "created_at",
        "tenant",
        "requests",
        "ready_at",
        "cold_start_seconds",
        "resubmissions",
    )

    def __init__(
        self,
        model: ModelProfile,
        strict: bool,
        created_at: float,
        tenant: str = "default",
    ):
        self.batch_id = next(_batch_ids)
        self.model = model
        self.strict = strict
        self.created_at = created_at
        self.tenant = tenant
        self.requests: list[Request] = []
        # Filled by the platform as the batch progresses.
        self.ready_at: float | None = None
        self.cold_start_seconds: float = 0.0
        self.resubmissions: int = 0

    def add(self, request: Request) -> None:
        """Append a request; model/strictness/tenant must match the batch.

        Batches are tenant-homogeneous: fair queueing charges a batch's
        work to exactly one tenant, and exclusive placement isolates at
        batch granularity.
        """
        if (
            request.model.name != self.model.name
            or request.strict != self.strict
            or request.tenant != self.tenant
        ):
            raise ConfigurationError(
                f"request {request.request_id} does not belong in batch "
                f"{self.batch_id} ({self.model.name}, strict={self.strict}, "
                f"tenant={self.tenant!r})"
            )
        self.requests.append(request)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def memory_gb(self) -> float:
        """GPU memory the batch occupies while executing."""
        return self.model.memory_gb

    #: Fraction of the full-batch latency paid even by a near-empty batch
    #: (kernel-launch and framework overheads are occupancy-independent).
    FIXED_OVERHEAD_FRACTION = 0.25

    @property
    def fill(self) -> float:
        """Occupancy of the batch relative to the model's batch size."""
        return min(1.0, len(self.requests) / self.model.batch_size)

    @property
    def work(self) -> float:
        """Solo 7g execution time of the batch (the engine's work unit).

        GPU batch latency is roughly linear in occupancy above a fixed
        overhead: ``solo × (α + (1−α)·fill)`` with α the fixed fraction.
        A full batch costs exactly the profiled solo latency.
        """
        alpha = self.FIXED_OVERHEAD_FRACTION
        return self.model.solo_latency_7g * (alpha + (1.0 - alpha) * self.fill)

    @property
    def earliest_deadline(self) -> float | None:
        """Tightest member deadline (used by strict-first ordering)."""
        deadlines = [r.deadline for r in self.requests if r.deadline is not None]
        return min(deadlines) if deadlines else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "strict" if self.strict else "BE"
        return (
            f"RequestBatch(#{self.batch_id}, {self.model.name}, {kind}, "
            f"n={len(self.requests)})"
        )
