"""Canonical pipeline scenarios: chain, ensemble, branchy.

Each scenario runs the *same* workflow DAG, trace, seed, and cluster
twice — once per deadline-splitting policy (``naive`` vs
``pipeline-aware``) — so the two arms differ in nothing but how the
end-to-end SLO is divided among stages. Both arms buy identical
on-demand capacity (fixed ``n_nodes``), making the comparison equal-cost
by construction; the verdict records both costs so the claim is checked,
not assumed.

**chain** — a three-stage vision chain (detect → classify → caption) at
high load. Naive splitting grants every stage its full ``M×L_s`` budget
regardless of how late the workflow already is, so queueing overshoot in
an early stage silently consumes the end-to-end slack; the aware policy
re-budgets the remaining slack at every release, which tightens the
deadlines of behind-schedule workflows and lets strict-first EDF pull
them forward. The CI smoke run asserts the aware arm's end-to-end
attainment strictly exceeds the naive arm's.

**ensemble** — one preprocessing root fans out to three parallel
classifiers whose votes join in a sink stage (fan-out/fan-in). The join
waits for the *slowest* branch, so the aware policy's per-branch budgets
follow each branch's profiled latency instead of splitting evenly.

**branchy** — an asymmetric DAG: a heavy two-stage branch and a light
one-stage branch from the same root, rejoining at a sink. Stresses
downstream-latency bookkeeping where the critical path runs through only
one branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.pipelines.model import PipelineSpec, StageSpec

if TYPE_CHECKING:  # pragma: no cover - imported lazily to avoid a cycle
    from repro.experiments.config import ExperimentConfig

#: Scenario names accepted by :func:`run_pipeline_scenario` and the CLI.
SCENARIOS = ("chain", "ensemble", "branchy")

#: The two arms every scenario runs (label doubles as the policy name).
POLICY_ARMS = ("naive", "pipeline-aware")

#: Shared run shape: short enough for CI, long enough for stable tails.
#: The load sits near saturation — where deadline policy differentiates.
_BASE = dict(
    trace="constant",
    duration=60.0,
    warmup=15.0,
    drain=90.0,
    n_nodes=2,
    offered_load=1.05,
)


def chain_pipeline(policy: str = "pipeline-aware") -> PipelineSpec:
    """Three-stage vision chain: detect → classify → caption."""
    return PipelineSpec(
        name="chain",
        stages=(
            StageSpec(name="detect", model="resnet50"),
            StageSpec(name="classify", model="densenet121", parents=("detect",)),
            StageSpec(name="caption", model="googlenet", parents=("classify",)),
        ),
        deadline_policy=policy,
    )


def ensemble_pipeline(policy: str = "pipeline-aware") -> PipelineSpec:
    """Fan-out/fan-in: preprocess → {3 classifiers} → vote."""
    return PipelineSpec(
        name="ensemble",
        stages=(
            StageSpec(name="preprocess", model="mobilenet"),
            StageSpec(name="model-a", model="resnet50", parents=("preprocess",)),
            StageSpec(name="model-b", model="densenet121", parents=("preprocess",)),
            StageSpec(name="model-c", model="googlenet", parents=("preprocess",)),
            StageSpec(
                name="vote",
                model="resnet18",
                parents=("model-a", "model-b", "model-c"),
            ),
        ),
        deadline_policy=policy,
    )


def branchy_pipeline(policy: str = "pipeline-aware") -> PipelineSpec:
    """Asymmetric DAG: a heavy 2-stage branch and a light 1-stage branch."""
    return PipelineSpec(
        name="branchy",
        stages=(
            StageSpec(name="ingest", model="mobilenet"),
            StageSpec(name="heavy-a", model="vgg19", parents=("ingest",)),
            StageSpec(name="heavy-b", model="densenet121", parents=("heavy-a",)),
            StageSpec(name="light", model="resnet18", parents=("ingest",)),
            StageSpec(
                name="merge", model="googlenet", parents=("heavy-b", "light")
            ),
        ),
        deadline_policy=policy,
    )


_PIPELINES = {
    "chain": chain_pipeline,
    "ensemble": ensemble_pipeline,
    "branchy": branchy_pipeline,
}


def scenario_configs(name: str, seed: int = 0) -> dict[str, ExperimentConfig]:
    """The run configs of scenario ``name`` (policy label → config).

    Both arms are byte-for-byte identical except for the spec's
    ``deadline_policy`` — same DAG, same trace/seed, same fixed
    on-demand cluster — so any outcome difference is the policy's.
    """
    from repro.experiments.config import ExperimentConfig

    try:
        builder = _PIPELINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pipeline scenario {name!r}; known: {list(SCENARIOS)}"
        ) from None
    base_spec = builder()
    return {
        policy: ExperimentConfig(
            seed=seed,
            pipelines=replace(base_spec, deadline_policy=policy),
            **_BASE,
        )
        for policy in POLICY_ARMS
    }


@dataclass
class ScenarioResult:
    """Outcome of one scenario: per-arm rows, pipeline reports, verdict."""

    name: str
    scheme: str
    #: Policy label → ``RunSummary.row()``.
    rows: dict[str, dict] = field(default_factory=dict)
    #: Policy label → :meth:`~repro.metrics.pipelines.PipelineReport.to_dict`.
    pipelines: dict[str, dict] = field(default_factory=dict)
    #: Headline facts: per-policy attainment, the gap, equal-cost check.
    verdict: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe representation (CLI ``--json``, CI artifact)."""
        return {
            "scenario": self.name,
            "scheme": self.scheme,
            "rows": self.rows,
            "pipelines": self.pipelines,
            "verdict": self.verdict,
        }

    def describe(self) -> str:
        """Multi-line text rendering for the CLI."""
        from repro.metrics.pipelines import PipelineReport, StageOutcome

        lines = [f"scenario {self.name} (scheme={self.scheme})"]
        for label, payload in self.pipelines.items():
            report = PipelineReport(
                pipeline=payload["pipeline"],
                policy=payload["policy"],
                workflows=payload["workflows"],
                strict_workflows=payload["strict_workflows"],
                completed=payload["completed"],
                incomplete=payload["incomplete"],
                e2e_attainment=payload["e2e_attainment"],
                e2e_p50=payload["e2e_p50"],
                e2e_p99=payload["e2e_p99"],
                per_stage=tuple(
                    StageOutcome(**row) for row in payload["per_stage"]
                ),
                stats=payload["stats"],
            )
            lines.append(f"  arm {label}:")
            lines.extend("  " + line for line in report.describe().splitlines())
        for key, value in self.verdict.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def run_pipeline_scenario(
    name: str,
    *,
    scheme: str = "protean",
    seed: int = 0,
    jobs: int | None = None,
) -> ScenarioResult:
    """Execute scenario ``name`` and assemble its :class:`ScenarioResult`.

    With ``jobs`` > 1 the policy arms fan out across processes via
    :mod:`repro.parallel` — results are bit-identical to the serial path.
    """
    from repro.experiments.runner import run_scheme
    from repro.parallel import RunRequest, execute_keyed, resolve_jobs

    configs = scenario_configs(name, seed)
    if resolve_jobs(jobs) > 1 and len(configs) > 1:
        results = execute_keyed(
            [
                RunRequest(key=label, scheme=scheme, config=config)
                for label, config in configs.items()
            ],
            jobs=jobs,
        )
    else:
        results = {
            label: run_scheme(scheme, config)
            for label, config in configs.items()
        }
    outcome = ScenarioResult(name=name, scheme=scheme)
    for label, result in results.items():
        outcome.rows[label] = result.summary.row()
        assert result.pipelines is not None  # every scenario run is piped
        outcome.pipelines[label] = result.pipelines.to_dict()
    outcome.verdict = _verdict(outcome)
    return outcome


def _verdict(outcome: ScenarioResult) -> dict:
    naive = outcome.pipelines["naive"]
    aware = outcome.pipelines["pipeline-aware"]
    naive_cost = outcome.rows["naive"]["cost_$"]
    aware_cost = outcome.rows["pipeline-aware"]["cost_$"]
    return {
        "naive_e2e_attainment": naive["e2e_attainment"],
        "aware_e2e_attainment": aware["e2e_attainment"],
        "attainment_gap_points": 100.0
        * (aware["e2e_attainment"] - naive["e2e_attainment"]),
        "naive_cost": naive_cost,
        "aware_cost": aware_cost,
        "equal_cost": naive_cost == aware_cost,
        "aware_rebudgets": aware["stats"]["rebudgets"],
    }
