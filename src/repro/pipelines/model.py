"""The pipeline model: multi-stage DAG workflows over the 22 profiles.

A :class:`StageSpec` names one inference stage (one model profile) and
the stages whose outputs it consumes; a :class:`PipelineSpec` is the
validated DAG — linear chains (detector → cropper → classifier) and
fan-out/fan-in joins (one root feeding an ensemble that a sink merges) —
plus the workflow-level policies: the deadline-splitting policy and the
inter-stage handoff latency. The spec is the one pipeline payload that
rides inside :class:`~repro.experiments.config.ExperimentConfig` and
round-trips through its versioned JSON wire format.

All misconfiguration — a zero-stage DAG, an unknown model profile, an
unknown or duplicate parent, a cycle — is normalised to
:class:`~repro.errors.ConfigurationError` at construction, so a bad
pipeline never reaches the simulator.

:func:`compile_pipeline` resolves the spec against the profile registry
once per run into a :class:`CompiledPipeline`: scaled profiles, a
topological order, children maps, per-stage *downstream path latency*
(the longest profiled latency path from a stage through its descendants,
inclusive) and the critical-path latency — the quantities the deadline
splitter (:mod:`repro.pipelines.deadlines`) budgets end-to-end slack
with.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigurationError, UnknownModelError
from repro.workloads.profile import ModelProfile
from repro.workloads.registry import get_model
from repro.workloads.scaling import scale_model

#: Version stamp of the pipeline wire format (:meth:`PipelineSpec.to_dict`).
PIPELINE_SCHEMA_VERSION = 1

#: Deadline-splitting policies (see repro.pipelines.deadlines):
#: ``"naive"`` gives every stage its independent per-stage SLO
#: (PROTEAN-as-is); ``"pipeline-aware"`` budgets the workflow's remaining
#: end-to-end slack across the stages still ahead, proportional to their
#: profiled latency, re-budgeted at every stage release.
DEADLINE_POLICIES = ("naive", "pipeline-aware")

#: Default inter-stage handoff latency (seconds): serialising one stage's
#: output and enqueueing the next stage's request.
DEFAULT_HANDOFF_LATENCY = 0.002


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class StageSpec:
    """One stage of a pipeline: a model profile plus its parent stages."""

    #: Stage name, unique within the pipeline.
    name: str
    #: Workload profile served by this stage (registry name).
    model: str
    #: Names of the stages whose completion releases this one. Empty =
    #: a root stage (released on workflow arrival).
    parents: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _require(
            bool(self.name) and isinstance(self.name, str),
            "stage name must be a non-empty string",
        )
        _require(
            bool(self.model) and isinstance(self.model, str),
            f"stage {self.name!r}: model must be a non-empty string",
        )
        object.__setattr__(self, "parents", tuple(self.parents))
        _require(
            all(isinstance(p, str) and p for p in self.parents),
            f"stage {self.name!r}: parents must be non-empty strings",
        )
        _require(
            len(set(self.parents)) == len(self.parents),
            f"stage {self.name!r}: duplicate parent",
        )
        _require(
            self.name not in self.parents,
            f"stage {self.name!r} lists itself as a parent",
        )

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "name": self.name,
            "model": self.model,
            "parents": list(self.parents),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StageSpec":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys."""
        _require(
            isinstance(payload, dict),
            f"stage payload must be a dict, got {type(payload).__name__}",
        )
        data = dict(payload)
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        _require(
            not unknown,
            f"unknown stage field(s): {', '.join(sorted(unknown))}",
        )
        if data.get("parents") is not None:
            data["parents"] = tuple(data["parents"])
        return cls(**data)


@dataclass(frozen=True)
class PipelineSpec:
    """A validated multi-stage workflow DAG plus its runtime policies."""

    #: Pipeline name (appears on spans, reports, and scenario output).
    name: str
    #: The stages; validated into a DAG at construction.
    stages: tuple[StageSpec, ...]
    #: Deadline-splitting policy (see :data:`DEADLINE_POLICIES`).
    deadline_policy: str = "pipeline-aware"
    #: Seconds between a stage completing and its children being admitted.
    handoff_latency: float = DEFAULT_HANDOFF_LATENCY

    def __post_init__(self) -> None:
        _require(
            bool(self.name) and isinstance(self.name, str),
            "pipeline name must be a non-empty string",
        )
        object.__setattr__(self, "stages", tuple(self.stages))
        _require(
            len(self.stages) > 0,
            f"pipeline {self.name!r} has no stages (a zero-stage DAG "
            "serves nothing)",
        )
        names = [stage.name for stage in self.stages]
        _require(
            len(set(names)) == len(names),
            f"pipeline {self.name!r}: duplicate stage name(s): "
            f"{sorted({n for n in names if names.count(n) > 1})}",
        )
        known = set(names)
        for stage in self.stages:
            for parent in stage.parents:
                _require(
                    parent in known,
                    f"pipeline {self.name!r}: stage {stage.name!r} names "
                    f"unknown parent {parent!r}",
                )
        for stage in self.stages:
            try:
                get_model(stage.model)
            except UnknownModelError as exc:
                raise ConfigurationError(
                    f"pipeline {self.name!r}: stage {stage.name!r}: {exc}"
                ) from exc
        self._topological()  # raises on a cycle
        _require(
            self.deadline_policy in DEADLINE_POLICIES,
            f"pipeline {self.name!r}: unknown deadline_policy "
            f"{self.deadline_policy!r}; known: {list(DEADLINE_POLICIES)}",
        )
        _require(
            isinstance(self.handoff_latency, (int, float))
            and self.handoff_latency >= 0,
            f"pipeline {self.name!r}: handoff_latency must be >= 0",
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def stage(self, name: str) -> StageSpec:
        """The stage named ``name``."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ConfigurationError(
            f"pipeline {self.name!r} has no stage {name!r}"
        )

    def children(self) -> dict[str, tuple[str, ...]]:
        """Stage name → names of the stages it feeds."""
        mapping: dict[str, list[str]] = {s.name: [] for s in self.stages}
        for stage in self.stages:
            for parent in stage.parents:
                mapping[parent].append(stage.name)
        return {name: tuple(kids) for name, kids in mapping.items()}

    def roots(self) -> tuple[str, ...]:
        """Stages with no parents (released on workflow arrival)."""
        return tuple(s.name for s in self.stages if not s.parents)

    def sinks(self) -> tuple[str, ...]:
        """Stages no other stage consumes (the workflow's outputs)."""
        children = self.children()
        return tuple(s.name for s in self.stages if not children[s.name])

    def _topological(self) -> tuple[str, ...]:
        """Kahn's algorithm; raises ConfigurationError on a cycle."""
        indegree = {s.name: len(s.parents) for s in self.stages}
        children = self.children()
        ready = [name for name, degree in indegree.items() if degree == 0]
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for child in children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self.stages):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise ConfigurationError(
                f"pipeline {self.name!r} contains a cycle through "
                f"stage(s) {cyclic}"
            )
        return tuple(order)

    def topological(self) -> tuple[str, ...]:
        """Stage names in a parents-first order."""
        return self._topological()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe, versioned representation. Round-trips exactly."""
        return {
            "version": PIPELINE_SCHEMA_VERSION,
            "name": self.name,
            "stages": [stage.to_dict() for stage in self.stages],
            "deadline_policy": self.deadline_policy,
            "handoff_latency": self.handoff_latency,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineSpec":
        """Parse a :meth:`to_dict` payload.

        The ``version`` key is optional (defaults to the current schema);
        payloads from a *newer* schema are refused rather than silently
        misread, and unknown keys are rejected.
        """
        _require(
            isinstance(payload, dict),
            f"pipeline payload must be a dict, got {type(payload).__name__}",
        )
        data = dict(payload)
        version = data.pop("version", PIPELINE_SCHEMA_VERSION)
        if version != PIPELINE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported pipeline schema version {version!r}; "
                f"this build reads version {PIPELINE_SCHEMA_VERSION}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        _require(
            not unknown,
            f"unknown pipeline field(s): {', '.join(sorted(unknown))}",
        )
        stages = data.get("stages")
        _require(
            isinstance(stages, (list, tuple)),
            "pipeline payload needs a 'stages' list",
        )
        data["stages"] = tuple(StageSpec.from_dict(s) for s in stages)
        return cls(**data)


@dataclass(frozen=True)
class CompiledPipeline:
    """A :class:`PipelineSpec` resolved against the profile registry.

    Built once per run by :func:`compile_pipeline`; every latency here is
    the *scaled* profile's full-batch solo 7g latency — the same unit the
    single-stage SLO target (``multiplier × solo_latency_7g``) uses.
    """

    spec: PipelineSpec
    #: Stage name → scaled :class:`ModelProfile`.
    profiles: dict[str, ModelProfile]
    #: Stage name → profiled stage latency (scaled solo 7g seconds).
    latency: dict[str, float]
    #: Stage name → its children's names.
    children: dict[str, tuple[str, ...]]
    #: Stage name → its parents' names.
    parents: dict[str, tuple[str, ...]]
    #: Parents-first stage order.
    order: tuple[str, ...]
    #: Root and sink stage names.
    roots: tuple[str, ...]
    sinks: tuple[str, ...]
    #: Stage name → longest profiled-latency path from the stage through
    #: its descendants, *inclusive of the stage itself*.
    downstream: dict[str, float]
    #: Longest root-to-sink profiled-latency path — the unit the
    #: end-to-end deadline is a multiple of.
    critical_path: float

    def stage_names(self) -> tuple[str, ...]:
        """All stage names, parents-first."""
        return self.order


def compile_pipeline(spec: PipelineSpec, scale: float = 1.0) -> CompiledPipeline:
    """Resolve ``spec`` against the registry at batch-size ``scale``."""
    profiles = {
        stage.name: scale_model(get_model(stage.model), scale)
        for stage in spec.stages
    }
    latency = {
        name: profile.solo_latency_7g for name, profile in profiles.items()
    }
    children = spec.children()
    parents = {stage.name: stage.parents for stage in spec.stages}
    order = spec.topological()
    downstream: dict[str, float] = {}
    for name in reversed(order):
        tail = max(
            (downstream[child] for child in children[name]), default=0.0
        )
        downstream[name] = latency[name] + tail
    roots = spec.roots()
    critical_path = max(downstream[root] for root in roots)
    return CompiledPipeline(
        spec=spec,
        profiles=profiles,
        latency=latency,
        children=children,
        parents=parents,
        order=order,
        roots=roots,
        sinks=spec.sinks(),
        downstream=downstream,
        critical_path=critical_path,
    )
