"""Live workflow state: inter-stage queueing on the simulated platform.

The :class:`PipelineRuntime` is the run-time half of the pipeline
subsystem. It observes the platform through the same cheap hooks the
observability and audit stacks use (``request_observers``,
``completion_observers``, the dispatcher's resubmit observers) and owns
the workflow ledger:

- a *root* stage request arriving at the gateway registers its workflow
  (id, arrival, strictness, end-to-end deadline);
- a stage request completing marks the stage done and **releases** every
  child whose parents are now all complete — after the pipeline's
  handoff latency, as a fresh gateway admission carrying the deadline
  its policy computes *at release time* (see
  :mod:`repro.pipelines.deadlines`);
- the last sink completing finishes the workflow: one
  ``pipeline.complete`` / ``pipeline.violation`` span against the
  end-to-end deadline.

Releasing at completion time is what makes the deadline split *live*:
queueing, stage retries after an eviction, and MIG reconfiguration
downtime all move the release instant, and the pipeline-aware policy
re-budgets the remaining slack at exactly that boundary (counted in
``rebudgets`` and tagged on the ``pipeline.stage.release`` span).

The runtime mutates nothing outside its own ledger and draws no RNG:
with ``config.pipelines`` unset none of it is constructed and the
platform is bit-identical to a pipeline-free build (pinned by the
default-path regression test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.observability.span import CATEGORY_PIPELINE
from repro.pipelines.deadlines import (
    aware_stage_deadline,
    is_rebudget,
    naive_stage_deadline,
)
from repro.pipelines.model import PipelineSpec, compile_pipeline
from repro.serverless.request import Request, RequestBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.engine import JobTiming
    from repro.serverless.platform import ServerlessPlatform
    from repro.simulation.simulator import Simulator

#: Deadline comparison slack (matches RequestRecord.slo_met).
_DEADLINE_EPS = 1e-12


class WorkflowState:
    """Ledger entry for one in-flight (or finished) workflow."""

    __slots__ = (
        "workflow_id",
        "arrival",
        "strict",
        "tenant",
        "deadline",
        "released",
        "completed",
        "pending_sinks",
        "finished_at",
        "violated",
        "retries",
    )

    def __init__(
        self,
        workflow_id: str,
        arrival: float,
        strict: bool,
        tenant: str,
        deadline: float | None,
        pending_sinks: int = 0,
    ) -> None:
        self.workflow_id = workflow_id
        self.arrival = arrival
        self.strict = strict
        self.tenant = tenant
        #: End-to-end deadline (None for best-effort workflows).
        self.deadline = deadline
        #: Stages released (admitted or scheduled for admission).
        self.released: set[str] = set()
        #: Stages whose request completed.
        self.completed: set[str] = set()
        #: Sink stages not yet complete; the workflow finishes at zero.
        self.pending_sinks = pending_sinks
        #: Simulated time the last sink completed; None while in flight.
        self.finished_at: float | None = None
        #: Strict workflow finished past its end-to-end deadline.
        self.violated = False
        #: Stage requests resubmitted (eviction recovery) so far.
        self.retries = 0

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def e2e_latency(self) -> float | None:
        """End-to-end latency once finished; None while in flight."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival


class PipelineRuntime:
    """Inter-stage queueing and deadline splitting for one run."""

    def __init__(
        self,
        sim: "Simulator",
        platform: "ServerlessPlatform",
        spec: PipelineSpec,
        *,
        scale: float = 1.0,
        base_multiplier: float = 3.0,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.spec = spec
        self.compiled = compile_pipeline(spec, scale)
        self.policy = spec.deadline_policy
        self.base_multiplier = base_multiplier
        self.tracer = platform.tracer
        # Hot-path caches: the admission and completion hooks run once
        # per stage request, so topology lookups are hoisted out of the
        # compiled dataclass and the tracer flag is read once (tracing
        # never toggles mid-run).
        self._roots = frozenset(self.compiled.roots)
        self._children = self.compiled.children
        self._parents = self.compiled.parents
        self._n_sinks = len(self.compiled.sinks)
        self._e2e_budget = base_multiplier * self.compiled.critical_path
        self._tracing = self.tracer.enabled
        self.workflows: dict[str, WorkflowState] = {}
        self.workflows_started = 0
        self.workflows_completed = 0
        self.workflows_violated = 0
        self.stages_released = 0
        #: Aware releases whose remaining slack deviated from the nominal
        #: proportional schedule (always 0 under the naive policy).
        self.rebudgets = 0
        self.stage_retries = 0
        self._armed = False
        self._seeded = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def seed(self, specs) -> int:
        """Bulk-register every workflow of a generated root stream.

        The ledger contents are identical to lazy per-admission
        registration (deadline, strictness, and tenant are pure
        functions of the root spec), but seeding happens in one tight
        loop *outside* the event loop, letting :meth:`arm` skip the
        per-admission observer entirely — the measurable cost of the
        pipeline machinery on the hot path (see
        benchmarks/bench_pipelines.py).

        Skipped (returns 0) when tracing is enabled: the lazy hook then
        registers workflows so the ``pipeline.admit`` span fires at the
        true admission instant. Metrics are bit-identical either way;
        only the bookkeeping cost moves.
        """
        if self._armed:
            raise ConfigurationError("seed the pipeline runtime before arming")
        if self._tracing:
            return 0
        workflows = self.workflows
        roots = self._roots
        n_sinks = self._n_sinks
        budget = self._e2e_budget
        count = 0
        for spec in specs:
            workflow_id = spec.workflow
            if workflow_id is None or workflow_id in workflows:
                continue
            # Positional construction: this loop runs once per workflow
            # of the whole trace, and keyword binding costs ~0.4us/call.
            state = WorkflowState(
                workflow_id,
                spec.arrival,
                spec.strict,
                spec.tenant,
                spec.arrival + budget if spec.strict else None,
                n_sinks,
            )
            # Roots are released by the trace itself.
            state.released.update(roots)
            workflows[workflow_id] = state
            count += 1
        self.workflows_started += count
        self._seeded = count > 0
        return count

    def arm(self) -> None:
        """Hook the platform observers and publish ``platform.pipelines``."""
        if self._armed:
            raise ConfigurationError("pipeline runtime already armed")
        self._armed = True
        if not self._seeded:
            self.platform.request_observers.append(self._on_admit)
        self.platform.completion_observers.append(self._on_batch_completion)
        self.platform.dispatcher.resubmit_observers.append(self._on_resubmit)
        self.platform.pipelines = self

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------
    def _on_admit(self, request: Request) -> None:
        workflow_id = request.workflow
        if workflow_id is None:
            return
        state = self.workflows.get(workflow_id)
        if state is None and request.stage in self._roots:
            deadline = None
            if request.strict:
                deadline = request.arrival + self._e2e_budget
            state = WorkflowState(
                workflow_id=workflow_id,
                arrival=request.arrival,
                strict=request.strict,
                tenant=request.tenant,
                deadline=deadline,
                pending_sinks=self._n_sinks,
            )
            self.workflows[workflow_id] = state
            self.workflows_started += 1
            if self._tracing:
                self.tracer.instant(
                    "pipeline.admit",
                    category=CATEGORY_PIPELINE,
                    track="pipeline",
                    workflow=workflow_id,
                    pipeline=self.spec.name,
                    policy=self.policy,
                    strict=request.strict,
                    deadline=deadline,
                )
        if state is not None and request.stage is not None:
            state.released.add(request.stage)

    def _on_batch_completion(
        self, batch: RequestBatch, timing: "JobTiming"
    ) -> None:
        finished_at = timing.finished_at
        stage_completed = self._stage_completed
        for request in batch.requests:
            if request.workflow is not None:
                stage_completed(request, finished_at)

    def _on_resubmit(self, batch: RequestBatch) -> None:
        for request in batch.requests:
            if request.workflow is None:
                continue
            self.stage_retries += 1
            state = self.workflows.get(request.workflow)
            if state is not None:
                state.retries += 1

    # ------------------------------------------------------------------
    # Stage graph walking
    # ------------------------------------------------------------------
    def _stage_completed(self, request: Request, finished_at: float) -> None:
        state = self.workflows.get(request.workflow)
        stage = request.stage
        if state is None or stage is None:
            return
        completed = state.completed
        if stage in completed:
            # A duplicate stage completion is a platform bug; the audit
            # checker (pipeline.double_completion) flags it — the runtime
            # must not walk the graph twice off it.
            return
        completed.add(stage)
        children = self._children[stage]
        if children:
            for child in children:
                if child in state.released:
                    continue
                if all(p in completed for p in self._parents[child]):
                    state.released.add(child)
                    self._schedule_release(state, child)
        else:
            # No children ⇔ a sink stage: count down to the finish line.
            state.pending_sinks -= 1
            if state.pending_sinks == 0 and state.finished_at is None:
                # Inlined workflow finish: this branch fires once per
                # workflow of the whole run.
                state.finished_at = finished_at
                self.workflows_completed += 1
                deadline = state.deadline
                violated = (
                    deadline is not None
                    and finished_at > deadline + _DEADLINE_EPS
                )
                state.violated = violated
                if violated:
                    self.workflows_violated += 1
                if self._tracing:
                    self.tracer.instant(
                        "pipeline.violation" if violated else "pipeline.complete",
                        category=CATEGORY_PIPELINE,
                        track="pipeline",
                        workflow=state.workflow_id,
                        latency_s=finished_at - state.arrival,
                        deadline=deadline,
                    )

    def _schedule_release(self, state: WorkflowState, stage: str) -> None:
        """Admit ``stage`` after the handoff latency, deadline-split live."""

        def admit() -> None:
            now = self.sim.now
            deadline = None
            rebudgeted = False
            if state.strict:
                latency = self.compiled.latency[stage]
                if self.policy == "naive":
                    deadline = naive_stage_deadline(
                        now, latency, self.base_multiplier
                    )
                else:
                    downstream = self.compiled.downstream[stage]
                    assert state.deadline is not None
                    deadline = aware_stage_deadline(
                        now, state.deadline, latency, downstream
                    )
                    rebudgeted = is_rebudget(
                        now, state.deadline, downstream, self.base_multiplier
                    )
                    if rebudgeted:
                        self.rebudgets += 1
            self.stages_released += 1
            if self._tracing:
                self.tracer.instant(
                    "pipeline.stage.release",
                    category=CATEGORY_PIPELINE,
                    track="pipeline",
                    workflow=state.workflow_id,
                    stage=stage,
                    deadline=deadline,
                    rebudgeted=rebudgeted,
                )
            self.platform.gateway.admit(
                Request(
                    model=self.compiled.profiles[stage],
                    strict=state.strict,
                    arrival=now,
                    deadline=deadline,
                    tenant=state.tenant,
                    workflow=state.workflow_id,
                    stage=stage,
                )
            )

        # Always asynchronous — even with zero handoff — so child
        # admission never re-enters the platform mid-completion.
        self.sim.after(
            self.spec.handoff_latency, admit, label="pipeline-handoff"
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Run-level counters (rides in the :class:`PipelineReport`)."""
        return {
            "workflows_started": self.workflows_started,
            "workflows_completed": self.workflows_completed,
            "workflows_violated": self.workflows_violated,
            "stages_released": self.stages_released,
            "rebudgets": self.rebudgets,
            "stage_retries": self.stage_retries,
        }
