"""Deadline splitting: budgeting end-to-end slack across pipeline stages.

Every strict workflow carries one end-to-end deadline

    ``D = arrival + M × critical_path``

where ``M`` is the run's SLO multiplier and ``critical_path`` the longest
profiled root→sink latency path (:class:`~repro.pipelines.model.
CompiledPipeline.critical_path`). The *policy* question is what deadline
each **stage request** carries — that deadline is what PROTEAN's
strict-first EDF reordering and slice placement act on.

**naive** — PROTEAN-as-is: every stage gets its independent single-stage
SLO, ``release + M × L_s``. Each stage may individually meet its deadline
while the workflow misses ``D``: per-stage budgets sum to ``M ×
critical_path`` along the chain, so any handoff latency or accumulated
queueing overshoot lands past the end-to-end deadline, and a workflow
that fell behind gets no scheduling priority to catch up.

**pipeline-aware** — the workflow's *remaining* slack is re-measured at
every stage release and split across the longest remaining path
proportionally to profiled stage latency:

    ``budget_s = (D − release) × L_s / downstream(s)``
    ``deadline_s = release + max(budget_s, L_s)``

with ``downstream(s)`` the longest latency path from ``s`` inclusive.
On-schedule workflows get exactly the naive budgets (the proportional
split telescopes to ``D``); a workflow delayed by queueing, a stage
retry, or a mid-pipeline MIG reconfiguration gets *tighter* stage
deadlines — EDF then serves it earlier, spending the cluster's slack on
the workflows that need it. The ``max(…, L_s)`` floor keeps a hopelessly
late stage schedulable instead of assigning it a deadline in the past.

Re-budgeting is continuous: nothing is ever planned ahead, so every
source of mid-pipeline delay (reconfiguration downtime, resubmission
after eviction, batch queueing) is absorbed at the next release boundary.
"""

from __future__ import annotations

from repro.pipelines.model import CompiledPipeline

#: Tolerance for deciding a release deviates from the nominal plan.
REBUDGET_EPS = 1e-9


def naive_stage_deadline(
    release: float, latency: float, multiplier: float
) -> float:
    """Independent per-stage SLO: ``release + M × L_s``."""
    return release + multiplier * latency


def aware_stage_deadline(
    release: float, end_deadline: float, latency: float, downstream: float
) -> float:
    """Remaining slack split proportional to profiled stage latency."""
    budget = (end_deadline - release) * latency / downstream
    return release + max(budget, latency)


def root_slo_multiplier(
    compiled: CompiledPipeline, stage: str, base_multiplier: float
) -> float:
    """The per-stage multiplier a *root* stage spec carries.

    Root releases coincide with workflow arrival, so both policies reduce
    to a plain ``RequestSpec.slo_multiplier``:

    - naive: ``M`` (the stage's independent SLO);
    - aware: ``(D − arrival) × L_root / downstream(root) / L_root =
      M × critical_path / downstream(root)`` — equal to ``M`` for any
      root on the critical path, looser for roots on shorter branches.
    """
    if compiled.spec.deadline_policy == "naive":
        return base_multiplier
    return base_multiplier * compiled.critical_path / compiled.downstream[stage]


def is_rebudget(
    release: float,
    end_deadline: float,
    downstream: float,
    base_multiplier: float,
) -> bool:
    """Whether an aware release deviates from the nominal schedule.

    On the nominal plan the remaining slack at a stage's release equals
    ``M × downstream(s)`` — the workflow is exactly on its proportional
    schedule and the aware deadline coincides with the naive one. Any
    deviation (the workflow ran early or fell behind) means the split
    just *re-budgeted* the stage, which is what the runtime counts and
    tags on the ``pipeline.stage.release`` span.
    """
    remaining = end_deadline - release
    return abs(remaining - base_multiplier * downstream) > max(
        REBUDGET_EPS, REBUDGET_EPS * abs(remaining)
    )
