"""Workflow generation: turning an arrival stream into pipeline traffic.

A :class:`PipelineWorkload` owns the compiled pipeline for one run and
emits the *root* stage requests: one workflow per trace arrival, a
Bernoulli(``strict_fraction``) strictness draw per workflow (the whole
workflow is strict or best-effort — an end-to-end SLO over a half-strict
workflow is meaningless), and a shared ``workflow_id`` every stage
request of the workflow carries. Non-root stages are *not* materialised
here: the :class:`~repro.pipelines.runtime.PipelineRuntime` releases
them live, when their parents complete — inter-stage queueing is a
simulator phenomenon, not a trace artifact.

Load convention: ``offered_load`` keeps the meaning it has for
single-stage runs — offered solo-7g work per GPU per second as a
fraction of serial capacity — except a *workflow* is the unit of
arrival, so the per-arrival work is the sum of every stage's per-request
work ``L_s / batch_size_s``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.pipelines.deadlines import root_slo_multiplier
from repro.pipelines.model import CompiledPipeline, PipelineSpec, compile_pipeline
from repro.traces.mixing import RequestSpec
from repro.workloads.profile import ModelProfile


class PipelineWorkload:
    """Generator of a pipeline's root request stream for one run."""

    def __init__(
        self,
        spec: PipelineSpec,
        *,
        scale: float = 1.0,
        slo_multiplier: float = 3.0,
        strict_fraction: float = 0.5,
    ) -> None:
        if slo_multiplier <= 0:
            raise ConfigurationError("slo_multiplier must be positive")
        if not 0.0 <= strict_fraction <= 1.0:
            raise ConfigurationError("strict_fraction must lie in [0, 1]")
        self.spec = spec
        self.compiled: CompiledPipeline = compile_pipeline(spec, scale)
        self.slo_multiplier = slo_multiplier
        self.strict_fraction = strict_fraction
        self._root_multipliers = {
            root: root_slo_multiplier(self.compiled, root, slo_multiplier)
            for root in self.compiled.roots
        }

    # ------------------------------------------------------------------
    # Load derivation
    # ------------------------------------------------------------------
    def work_per_workflow(self) -> float:
        """Offered solo-7g seconds one workflow adds across all stages."""
        compiled = self.compiled
        return sum(
            compiled.latency[name] / compiled.profiles[name].batch_size
            for name in compiled.order
        )

    def workflow_rate(self, offered_load: float, n_nodes: int) -> float:
        """Workflow arrivals per second hitting the load target."""
        per_workflow = self.work_per_workflow()
        if per_workflow <= 0:
            raise ConfigurationError(
                "degenerate pipeline: zero per-workflow work"
            )
        return offered_load * n_nodes / per_workflow

    def profiles(self) -> tuple[ModelProfile, ...]:
        """The distinct scaled stage profiles (container prewarming)."""
        seen: dict[str, ModelProfile] = {}
        for name in self.compiled.order:
            profile = self.compiled.profiles[name]
            seen.setdefault(profile.name, profile)
        return tuple(seen.values())

    # ------------------------------------------------------------------
    # Workflow stream
    # ------------------------------------------------------------------
    def end_deadline(self, arrival: float) -> float:
        """The end-to-end deadline of a strict workflow arriving then."""
        return arrival + self.slo_multiplier * self.compiled.critical_path

    def root_specs(
        self,
        arrivals: Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> list[RequestSpec]:
        """One workflow per arrival: the root stage requests to inject.

        Draw order (one strictness uniform per workflow, nothing else) is
        part of the reproducibility contract. Workflow ids are assigned
        in arrival order (``wf0``, ``wf1``, ...) so the stream is a pure
        function of ``(arrivals, rng state)``.
        """
        stamps = np.sort(np.asarray(arrivals, dtype=float))
        if stamps.size and stamps[0] < 0:
            raise ConfigurationError(
                "workflow arrival timestamps must be non-negative"
            )
        strict_flags = rng.random(stamps.size) < self.strict_fraction
        compiled = self.compiled
        # Per-root profile and multiplier are workflow-independent; hoist
        # the lookups out of the per-workflow loop (one iteration per
        # trace arrival).
        root_info = [
            (root, compiled.profiles[root], self._root_multipliers[root])
            for root in compiled.roots
        ]
        specs: list[RequestSpec] = []
        append = specs.append
        for index, (arrival, strict) in enumerate(
            zip(stamps.tolist(), strict_flags.tolist())
        ):
            workflow_id = f"wf{index}"
            for root, profile, multiplier in root_info:
                append(
                    RequestSpec(
                        arrival=arrival,
                        model=profile,
                        strict=strict,
                        slo_multiplier=multiplier,
                        workflow=workflow_id,
                        stage=root,
                    )
                )
        return specs
