"""Multi-stage DAG workflows with end-to-end SLOs.

A :class:`PipelineSpec` on
:class:`~repro.experiments.config.ExperimentConfig` turns the workload
into a stream of *workflow* arrivals: each is one instance of a DAG of
model stages (chains, fan-out/fan-in) whose SLO is promised end to end —
``M ×`` the DAG's profiled critical path. Root stages enter at the
gateway like ordinary requests; the :class:`PipelineRuntime` releases
each downstream stage the moment its parents complete (plus a handoff
latency), assigning the stage's deadline by the spec's splitting policy:
``naive`` gives every stage an independent ``M×L_s`` budget, while
``pipeline-aware`` divides the *remaining* end-to-end slack proportional
to profiled downstream latency, re-budgeting live whenever queueing,
retries, or MIG reconfigurations put a workflow behind schedule.
Workflow-level outcomes come back as a
:class:`~repro.metrics.pipelines.PipelineReport` on the run's result.

With ``pipelines=None`` (the default) none of this machinery is
constructed and the platform is bit-identical to a single-stage build —
pinned by the default-path regression test.

Typical use::

    from repro.pipelines import PipelineSpec, StageSpec

    spec = PipelineSpec(
        name="detect-then-classify",
        stages=(
            StageSpec(name="detect", model="resnet50"),
            StageSpec(name="classify", model="resnet18", parents=("detect",)),
        ),
        deadline_policy="pipeline-aware",
    )
    result = run_scheme("protean", ExperimentConfig(pipelines=spec))
    print(result.pipelines.e2e_attainment)

or from the CLI: ``python -m repro pipelines chain``.
"""

from repro.pipelines.deadlines import (
    REBUDGET_EPS,
    aware_stage_deadline,
    is_rebudget,
    naive_stage_deadline,
    root_slo_multiplier,
)
from repro.pipelines.model import (
    DEADLINE_POLICIES,
    DEFAULT_HANDOFF_LATENCY,
    PIPELINE_SCHEMA_VERSION,
    CompiledPipeline,
    PipelineSpec,
    StageSpec,
    compile_pipeline,
)
from repro.pipelines.runtime import PipelineRuntime, WorkflowState
from repro.pipelines.scenarios import (
    POLICY_ARMS,
    SCENARIOS,
    ScenarioResult,
    run_pipeline_scenario,
    scenario_configs,
)
from repro.pipelines.workload import PipelineWorkload

__all__ = [
    "CompiledPipeline",
    "DEADLINE_POLICIES",
    "DEFAULT_HANDOFF_LATENCY",
    "PIPELINE_SCHEMA_VERSION",
    "POLICY_ARMS",
    "PipelineRuntime",
    "PipelineSpec",
    "PipelineWorkload",
    "REBUDGET_EPS",
    "SCENARIOS",
    "ScenarioResult",
    "StageSpec",
    "WorkflowState",
    "aware_stage_deadline",
    "compile_pipeline",
    "is_rebudget",
    "naive_stage_deadline",
    "root_slo_multiplier",
    "run_pipeline_scenario",
    "scenario_configs",
]
