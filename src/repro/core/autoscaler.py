"""Autoscaling (paper Section 4.2).

Two of the paper's three autoscaling behaviours live in the container pool
itself:

- *reactive scale-up* — ``ContainerPool.acquire`` provisions one container
  per request batch (``n_c = Σ ⌈n_r(m)/batch_size(m)⌉``);
- *delayed termination* — idle containers survive a ~10-minute keep-alive
  before being deemed surplus and terminated.

This module adds the *conservative provisioning* layer: a daemon that
EWMA-predicts each model's per-window request volume and pre-warms enough
containers across the cluster that predicted batches find warm containers
(avoiding cold starts on surges, which is what separates PROTEAN from the
under-provisioned baselines in the Twitter-trace experiment, Figure 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ewma import PerKeyEwma
from repro.errors import ConfigurationError
from repro.serverless.request import Request
from repro.simulation.processes import PeriodicProcess
from repro.workloads.profile import ModelProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serverless.platform import ServerlessPlatform


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tuning of the conservative-provisioning daemon."""

    monitor_interval: float = 5.0
    ewma_alpha: float = 0.3
    #: Headroom multiplier on the predicted batch count ("conservative").
    headroom: float = 1.25

    def __post_init__(self) -> None:
        if self.monitor_interval <= 0:
            raise ConfigurationError("monitor_interval must be positive")
        if self.headroom < 1.0:
            raise ConfigurationError("headroom must be >= 1")


class Autoscaler:
    """Predictive container pre-warmer."""

    def __init__(
        self,
        platform: "ServerlessPlatform",
        config: AutoscalerConfig | None = None,
    ) -> None:
        self.platform = platform
        self.config = config or AutoscalerConfig()
        self.predictor = PerKeyEwma(self.config.ewma_alpha)
        self._window_counts: dict[str, int] = {}
        self._models: dict[str, ModelProfile] = {}
        self.prewarms_issued = 0
        self.tracer = platform.tracer
        self._ctr_prewarms = self.tracer.telemetry.counter("autoscale.prewarms")
        self._process = PeriodicProcess(
            platform.sim,
            self.config.monitor_interval,
            self.on_monitor,
            label="autoscaler",
        )

    def start(self) -> None:
        """Arm the monitoring loop."""
        self._process.start()

    def stop(self) -> None:
        """Disarm the monitoring loop."""
        self._process.stop()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe_request(self, request: Request) -> None:
        """Count one arrival toward the current window."""
        name = request.model.name
        self._window_counts[name] = self._window_counts.get(name, 0) + 1
        self._models[name] = request.model

    # ------------------------------------------------------------------
    # Monitoring tick
    # ------------------------------------------------------------------
    def desired_containers(self, model: ModelProfile) -> int:
        """Cluster-wide warm-container target for ``model``.

        The paper's reactive rule sized to the *predicted* next window:
        ``⌈headroom × pred_requests / batch_size⌉``.
        """
        predicted = self.predictor.predict(model.name)
        if predicted <= 0:
            return 0
        return math.ceil(self.config.headroom * predicted / model.batch_size)

    def on_monitor(self) -> None:
        """Fold the window's counts into the EWMAs and top up pools."""
        for name, model in self._models.items():
            self.predictor.observe(name, self._window_counts.get(name, 0))
        self._window_counts.clear()
        nodes = self.platform.cluster.active_nodes
        if not nodes:
            return
        tick_prewarms = 0
        for name, model in self._models.items():
            desired = self.desired_containers(model)
            if desired == 0:
                continue
            per_node = math.ceil(desired / len(nodes))
            for node in nodes:
                pool = self.platform.pool_for(node)
                deficit = per_node - pool.live_count(name)
                for _ in range(deficit):
                    pool.prewarm(name)
                    self.prewarms_issued += 1
                    tick_prewarms += 1
        if tick_prewarms:
            self._ctr_prewarms.inc(tick_prewarms)
            if self.tracer.enabled:
                self.tracer.instant(
                    "autoscale.prewarm",
                    track="autoscale",
                    containers=tick_prewarms,
                )
