"""Autoscaling (paper Section 4.2).

Two of the paper's three autoscaling behaviours live in the container pool
itself:

- *reactive scale-up* — ``ContainerPool.acquire`` provisions one container
  per request batch (``n_c = Σ ⌈n_r(m)/batch_size(m)⌉``);
- *delayed termination* — idle containers survive a ~10-minute keep-alive
  before being deemed surplus and terminated.

This module adds the *conservative provisioning* layer: a daemon that
EWMA-predicts each model's per-window request volume and pre-warms enough
containers across the cluster that predicted batches find warm containers
(avoiding cold starts on surges, which is what separates PROTEAN from the
under-provisioned baselines in the Twitter-trace experiment, Figure 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ewma import PerKeyEwma
from repro.errors import ConfigurationError
from repro.serverless.request import Request
from repro.simulation.processes import PeriodicProcess
from repro.workloads.profile import ModelProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serverless.platform import ServerlessPlatform


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tuning of the conservative-provisioning daemon."""

    monitor_interval: float = 5.0
    ewma_alpha: float = 0.3
    #: Headroom multiplier on the predicted batch count ("conservative").
    headroom: float = 1.25
    #: EWMA level below which a model counts as retired and is pruned
    #: from the scan set (its predictor is dropped with it).
    prune_threshold: float = 1e-3

    def __post_init__(self) -> None:
        if self.monitor_interval <= 0:
            raise ConfigurationError("monitor_interval must be positive")
        if self.headroom < 1.0:
            raise ConfigurationError("headroom must be >= 1")
        if self.prune_threshold <= 0:
            raise ConfigurationError("prune_threshold must be positive")


class Autoscaler:
    """Predictive container pre-warmer."""

    def __init__(
        self,
        platform: "ServerlessPlatform",
        config: AutoscalerConfig | None = None,
    ) -> None:
        self.platform = platform
        self.config = config or AutoscalerConfig()
        self.predictor = PerKeyEwma(self.config.ewma_alpha)
        self._window_counts: dict[str, int] = {}
        self._models: dict[str, ModelProfile] = {}
        self.prewarms_issued = 0
        self.tracer = platform.tracer
        self._ctr_prewarms = self.tracer.telemetry.counter("autoscale.prewarms")
        self._process = PeriodicProcess(
            platform.sim,
            self.config.monitor_interval,
            self.on_monitor,
            label="autoscaler",
        )

    def start(self) -> None:
        """Arm the monitoring loop."""
        self._process.start()

    def stop(self) -> None:
        """Disarm the monitoring loop."""
        self._process.stop()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe_request(self, request: Request) -> None:
        """Count one arrival toward the current window."""
        name = request.model.name
        self._window_counts[name] = self._window_counts.get(name, 0) + 1
        self._models[name] = request.model

    # ------------------------------------------------------------------
    # Monitoring tick
    # ------------------------------------------------------------------
    def desired_containers(self, model: ModelProfile) -> int:
        """Cluster-wide warm-container target for ``model``.

        The paper's reactive rule sized to the *predicted* next window:
        ``⌈headroom × pred_requests / batch_size⌉``.
        """
        predicted = self.predictor.predict(model.name)
        if predicted <= 0:
            return 0
        return math.ceil(self.config.headroom * predicted / model.batch_size)

    def on_monitor(self) -> None:
        """Fold the window's counts into the EWMAs and top up pools."""
        for name in self._models:
            self.predictor.observe(name, self._window_counts.get(name, 0))
        self._window_counts.clear()
        # Prune retired/idle models: once a model's EWMA has decayed to
        # (effectively) zero it would otherwise be re-scanned every tick
        # forever — the scan set grows monotonically over a long run.
        for name in [
            n
            for n in self._models
            if self.predictor.predict(n) < self.config.prune_threshold
        ]:
            del self._models[name]
            self.predictor.forget(name)
        nodes = self.platform.cluster.active_nodes
        if not nodes:
            return
        tick_prewarms = 0
        for name, model in self._models.items():
            desired = self.desired_containers(model)
            if desired == 0:
                continue
            # Split the cluster-wide target across nodes, spreading the
            # remainder: ceil(desired / n) per node over-prewarms by up
            # to n-1 containers versus the cluster-wide target.
            base, remainder = divmod(desired, len(nodes))
            for index, node in enumerate(nodes):
                target = base + (1 if index < remainder else 0)
                pool = self.platform.pool_for(node)
                deficit = target - pool.live_count(name)
                for _ in range(deficit):
                    pool.prewarm(name)
                    self.prewarms_issued += 1
                    tick_prewarms += 1
        if tick_prewarms:
            self._ctr_prewarms.inc(tick_prewarms)
            if self.tracer.enabled:
                self.tracer.instant(
                    "autoscale.prewarm",
                    track="autoscale",
                    containers=tick_prewarms,
                )
