"""Exponentially-weighted moving average prediction.

Algorithm 2 predicts the number of best-effort requests that will arrive
in the next monitoring window "via the light-weight EWMA model" borrowed
from Atoll. The same predictor also backs the autoscaler's conservative
container pre-provisioning.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class EwmaPredictor:
    """Classic EWMA: ``s ← α·x + (1−α)·s``.

    Until the first observation, :meth:`predict` returns ``initial``
    (default 0.0), which makes cold-start behaviour explicit rather than
    an exception path.
    """

    def __init__(self, alpha: float = 0.3, initial: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must lie in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None
        self._initial = initial
        self.observations = 0

    def observe(self, sample: float) -> None:
        """Fold one window's measurement into the average."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * float(sample) + (1 - self.alpha) * self._value
        self.observations += 1

    def predict(self) -> float:
        """Current estimate of the next window's value."""
        return self._initial if self._value is None else self._value

    def reset(self) -> None:
        """Forget all history."""
        self._value = None
        self.observations = 0


class PerKeyEwma:
    """A family of EWMA predictors keyed by string (e.g. model name)."""

    def __init__(self, alpha: float = 0.3) -> None:
        self.alpha = alpha
        self._predictors: dict[str, EwmaPredictor] = {}

    def observe(self, key: str, sample: float) -> None:
        """Update the predictor for ``key`` with one sample."""
        predictor = self._predictors.get(key)
        if predictor is None:
            predictor = EwmaPredictor(self.alpha)
            self._predictors[key] = predictor
        predictor.observe(sample)

    def predict(self, key: str) -> float:
        """Estimate for ``key`` (0.0 for never-seen keys)."""
        predictor = self._predictors.get(key)
        return 0.0 if predictor is None else predictor.predict()

    def forget(self, key: str) -> None:
        """Drop the predictor for ``key`` (no-op for unknown keys).

        A later observation recreates the key from scratch, so forgetting
        a fully-decayed key is equivalent to never having seen it.
        """
        self._predictors.pop(key, None)

    def keys(self) -> tuple[str, ...]:
        """All keys ever observed."""
        return tuple(self._predictors)
