"""Request reordering (paper Section 4.1).

PROTEAN prioritizes strict batches ahead of best-effort batches before
batch-serving them, reducing the queueing delay of SLO-bound requests —
especially under request surges that find the node under-provisioned.
Within the strict class, batches are served earliest-deadline-first;
within the BE class, FIFO by batch creation time.

The paper reports a total reordering overhead below 1 ms; here it is a
sort over the (small) per-node queue.
"""

from __future__ import annotations

from repro.serverless.request import RequestBatch


def reorder_strict_first(queue: list[RequestBatch]) -> None:
    """Reorder ``queue`` in place: strict EDF first, then BE FIFO.

    The sort is stable, so batches that compare equal keep their arrival
    order.
    """
    queue.sort(key=_priority_key)


def _priority_key(batch: RequestBatch) -> tuple[int, float]:
    if batch.strict:
        deadline = batch.earliest_deadline
        # A strict batch without member deadlines (possible if SLOs are
        # disabled) still outranks BE but falls back to creation order.
        return (0, deadline if deadline is not None else batch.created_at)
    return (1, batch.created_at)


def best_effort_queued_memory(queue: list[RequestBatch]) -> float:
    """Total memory demand of the BE batches waiting in ``queue``.

    This is the ``BE_mem`` input of Algorithm 1 ("from
    request_reordering_module get BE_mem").
    """
    return sum(batch.memory_gb for batch in queue if not batch.strict)
