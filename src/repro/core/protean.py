"""PROTEAN assembled: scheduler + scheme (paper Section 4, Figure 4).

The :class:`ProteanScheduler` combines request reordering (Section 4.1)
with the Job Distribution logic (Algorithm 1, Section 4.3). The
:class:`ProteanScheme` additionally runs the platform-wide daemons: the
GPU Reconfigurator (Algorithm 2, Section 4.4) and the conservative
autoscaler (Section 4.2). Cost-aware procurement (Section 4.5) is supplied
separately by :mod:`repro.core.procurement` so experiments can mix e.g.
PROTEAN scheduling with on-demand-only hosting.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.autoscaler import Autoscaler, AutoscalerConfig
from repro.core.distribution import distribute_batch
from repro.core.reconfigurator import GpuReconfigurator, ReconfiguratorConfig
from repro.core.reordering import best_effort_queued_memory, reorder_strict_first
from repro.gpu.engine import ShareMode
from repro.gpu.mig import GEOMETRY_4G_2G_1G, Geometry
from repro.serverless.request import RequestBatch
from repro.serverless.scheduler import NodeScheduler, Placement
from repro.serverless.scheme import Scheme


class ProteanScheduler(NodeScheduler):
    """Strict-first ordering + Algorithm 1 slice placement."""

    def __init__(
        self,
        sim,
        node,
        pool,
        on_batch_complete,
        on_batch_lost=None,
        *,
        on_quiescent: Optional[Callable[[], None]] = None,
        enable_reordering: bool = True,
        balance_best_effort: bool = False,
    ) -> None:
        super().__init__(sim, node, pool, on_batch_complete, on_batch_lost)
        self._on_quiescent = on_quiescent
        self.enable_reordering = enable_reordering
        self.balance_best_effort = balance_best_effort

    def _order_queue(self, queue: list[RequestBatch]) -> None:
        if self.enable_reordering:
            reorder_strict_first(queue)

    def _strict_present(self) -> bool:
        """Any strict work queued or running on this node's GPU."""
        if any(batch.strict for batch in self.queue):
            return True
        for gpu_slice in self.node.gpu.slices:
            for job in gpu_slice.running_jobs:
                if getattr(job.payload, "strict", False):
                    return True
        return False

    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        gpu = self.node.gpu
        if not gpu.available or not gpu.slices:
            return None  # mid-reconfiguration
        be_mem = best_effort_queued_memory(self.queue)
        chosen = distribute_batch(
            batch,
            gpu.slices,
            be_mem,
            balance_best_effort=self.balance_best_effort,
            strict_present=(
                self._strict_present() if self.balance_best_effort else True
            ),
        )
        if chosen is None:
            return None
        return self.standard_placement(batch, chosen)

    def _on_job_complete(self, job, timing) -> None:
        super()._on_job_complete(job, timing)
        # A held scheduler (pending MIG reconfiguration) signals the
        # reconfigurator the moment its GPU drains.
        if self.hold and self.node.gpu.idle and self._on_quiescent is not None:
            self._on_quiescent()


class ProteanScheme(Scheme):
    """The full PROTEAN policy bundle.

    One scheme instance drives one platform (the daemons hold platform
    references); build a fresh instance per experiment run.
    """

    name = "protean"
    share_mode = ShareMode.MPS

    def __init__(
        self,
        *,
        initial_geometry: Geometry = GEOMETRY_4G_2G_1G,
        reconfigurator_config: ReconfiguratorConfig | None = None,
        autoscaler_config: AutoscalerConfig | None = None,
        enable_reconfigurator: bool = True,
        enable_autoscaler: bool = True,
        enable_reordering: bool = True,
        balance_best_effort: bool = False,
    ) -> None:
        self._initial_geometry = initial_geometry
        self._reconfigurator_config = reconfigurator_config
        self._autoscaler_config = autoscaler_config
        self._enable_reconfigurator = enable_reconfigurator
        self._enable_autoscaler = enable_autoscaler
        self._enable_reordering = enable_reordering
        #: Paper future work (Table 5 discussion): when no strict traffic
        #: is present, place BE batches by η instead of packing them.
        self._balance_best_effort = balance_best_effort
        self.reconfigurator: GpuReconfigurator | None = None
        self.autoscaler: Autoscaler | None = None

    def initial_geometry(self) -> Geometry:
        """Figure 7: PROTEAN's GPUs start at (4g, 2g, 1g)."""
        return self._initial_geometry

    def create_scheduler(self, platform, node, pool) -> ProteanScheduler:
        def quiescent() -> None:
            if self.reconfigurator is not None:
                self.reconfigurator.notify_quiescent(node)

        return ProteanScheduler(
            platform.sim,
            node,
            pool,
            platform.record_batch_completion,
            platform.dispatcher.resubmit,
            on_quiescent=quiescent,
            enable_reordering=self._enable_reordering,
            balance_best_effort=self._balance_best_effort,
        )

    def on_platform_start(self, platform) -> None:
        if self._enable_reconfigurator:
            self.reconfigurator = GpuReconfigurator(
                platform, self._reconfigurator_config
            )
            platform.request_observers.append(self.reconfigurator.observe_request)
            self.reconfigurator.start()
        if self._enable_autoscaler:
            self.autoscaler = Autoscaler(platform, self._autoscaler_config)
            platform.request_observers.append(self.autoscaler.observe_request)
            self.autoscaler.start()

    def on_node_retired(self, platform, node) -> None:
        if self.reconfigurator is not None:
            self.reconfigurator.node_retired(node)
