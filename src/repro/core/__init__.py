"""PROTEAN's core policies (paper Section 4).

- :mod:`repro.core.reordering` — strict-first request reordering (§4.1);
- :mod:`repro.core.autoscaler` — conservative container provisioning and
  delayed termination (§4.2);
- :mod:`repro.core.distribution` — Job Distribution, Algorithm 1 (§4.3);
- :mod:`repro.core.reconfigurator` — GPU Reconfigurator, Algorithm 2 (§4.4);
- :mod:`repro.core.procurement` — cost-aware spot/on-demand hosting (§4.5);
- :mod:`repro.core.protean` — the assembled scheme.
"""

from repro.core.autoscaler import Autoscaler, AutoscalerConfig
from repro.core.distribution import (
    choose_best_effort_slice,
    choose_strict_slice,
    compute_tags,
    distribute_batch,
)
from repro.core.ewma import EwmaPredictor, PerKeyEwma
from repro.core.procurement import Procurement, ProcurementConfig, ProcurementMode
from repro.core.protean import ProteanScheduler, ProteanScheme
from repro.core.reconfigurator import (
    GpuReconfigurator,
    ReconfiguratorConfig,
    SMALL_SLICE_SETS,
    decide_geometry,
    slice_set_memory,
)
from repro.core.reordering import best_effort_queued_memory, reorder_strict_first

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "EwmaPredictor",
    "GpuReconfigurator",
    "PerKeyEwma",
    "Procurement",
    "ProcurementConfig",
    "ProcurementMode",
    "ProteanScheduler",
    "ProteanScheme",
    "ReconfiguratorConfig",
    "SMALL_SLICE_SETS",
    "best_effort_queued_memory",
    "choose_best_effort_slice",
    "choose_strict_slice",
    "compute_tags",
    "decide_geometry",
    "distribute_batch",
    "reorder_strict_first",
    "slice_set_memory",
]
