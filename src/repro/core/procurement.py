"""Cost-aware VM procurement (paper Section 4.5).

PROTEAN hosts its workers on spot VMs whenever the market has capacity and
falls back to reliable on-demand VMs otherwise:

- **ON_DEMAND_ONLY** — what every baseline does (and what PROTEAN offers
  "if the user so desires"): reliable, full price, no evictions.
- **HYBRID** (PROTEAN) — try spot first; on failure, buy on-demand. When a
  spot VM receives its eviction notice, the node drains (running requests
  finish within the ≥30 s warning since GPU serverless jobs run < 1 s) and
  a replacement is requested immediately — spot again, then on-demand.
- **SPOT_ONLY** — the aggressive cost-cutting variant of Figure 9: never
  buys on-demand; when spot capacity is unavailable the cluster simply
  runs short, retrying on a timer (this is what collapses its SLO
  compliance under low spot availability).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.cluster.node import WorkerNode
from repro.cluster.pricing import VMTier
from repro.cluster.spot import SpotMarket
from repro.cluster.vm import VM, VMState
from repro.errors import ConfigurationError
from repro.observability.span import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serverless.platform import ServerlessPlatform


class ProcurementMode(str, Enum):
    """Which VM tiers the platform may buy."""

    ON_DEMAND_ONLY = "on_demand_only"
    HYBRID = "hybrid"
    SPOT_ONLY = "spot_only"


@dataclass(frozen=True)
class ProcurementConfig:
    """Tuning of the procurement layer."""

    mode: ProcurementMode = ProcurementMode.ON_DEMAND_ONLY
    #: Time to spin up a replacement VM once granted.
    provision_seconds: float = 30.0
    #: Spot-Only: how long to wait before retrying a failed spot request.
    retry_interval: float = 30.0

    def __post_init__(self) -> None:
        if self.provision_seconds < 0:
            raise ConfigurationError("provision_seconds must be non-negative")
        if self.retry_interval <= 0:
            raise ConfigurationError("retry_interval must be positive")


class Procurement:
    """Drives node provisioning/replacement against the spot market."""

    def __init__(
        self,
        platform: "ServerlessPlatform",
        market: SpotMarket,
        config: ProcurementConfig | None = None,
    ) -> None:
        self.platform = platform
        self.market = market
        self.config = config or ProcurementConfig()
        self._node_by_vm: dict[int, WorkerNode] = {}
        self.replacements_requested = 0
        self.spot_nodes_built = 0
        self.on_demand_nodes_built = 0
        self.retries_scheduled = 0
        self.crashes_handled = 0
        self.tracer = platform.tracer
        self._ctr_built = self.tracer.telemetry.counter("procure.nodes_built")
        self._ctr_retries = self.tracer.telemetry.counter("procure.retries")
        self._ctr_crashes = self.tracer.telemetry.counter("procure.crashes")
        self._drain_spans: dict[int, Span] = {}

    @property
    def mode(self) -> ProcurementMode:
        return self.config.mode

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def provision_initial(self) -> None:
        """Bring up the platform's configured node count and start daemons.

        Initial provisioning is instantaneous (the cluster exists before
        the experiment's trace starts), matching the paper's setup where
        the 8 workers are already up at t=0.
        """
        for _ in range(self.platform.config.n_nodes):
            self._build_now()
        self.platform.scheme.on_platform_start(self.platform)

    def _choose_tier(self) -> VMTier | None:
        """Pick the tier for the next node; None means "no capacity"."""
        if self.mode is ProcurementMode.ON_DEMAND_ONLY:
            return VMTier.ON_DEMAND
        if self.market.try_acquire_spot():
            return VMTier.SPOT
        if self.mode is ProcurementMode.HYBRID:
            return VMTier.ON_DEMAND
        return None  # SPOT_ONLY and the market said no

    def _build_now(self) -> WorkerNode | None:
        tier = self._choose_tier()
        if tier is None:
            self._schedule_retry()
            return None
        node = self.platform.build_node(tier)
        if tier is VMTier.SPOT:
            self.spot_nodes_built += 1
            self.market.register(node.vm, self._on_notice, self._on_eviction)
        else:
            self.on_demand_nodes_built += 1
        self._node_by_vm[node.vm.vm_id] = node
        self._ctr_built.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "procure.node_built",
                track="procurement",
                node=node.name,
                tier=tier.value,
            )
        return node

    def request_replacement(self) -> None:
        """Ask for one more node after the provisioning delay."""
        self.replacements_requested += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "procure.request",
                track="procurement",
                provision_s=self.config.provision_seconds,
            )
        self.platform.sim.after(
            self.config.provision_seconds, self._build_now, label="provision"
        )

    def _schedule_retry(self) -> None:
        self.retries_scheduled += 1
        self._ctr_retries.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "procure.retry",
                track="procurement",
                retry_in_s=self.config.retry_interval,
            )
        self.platform.sim.after(
            self.config.retry_interval, self._build_now, label="spot-retry"
        )

    # ------------------------------------------------------------------
    # Eviction handling
    # ------------------------------------------------------------------
    def _on_notice(self, vm: VM) -> None:
        """Eviction notice: drain the node, start acquiring a replacement."""
        node = self._node_by_vm.get(vm.vm_id)
        if node is None:  # pragma: no cover - defensive
            return
        if self.tracer.enabled:
            self._drain_spans[vm.vm_id] = self.tracer.begin(
                "spot.drain", track="spot", node=node.name, vm=vm.name
            )
        node.drain()
        self.request_replacement()

    def _on_eviction(self, vm: VM) -> None:
        """The VM is gone; tear the node down (stranded work resubmits)."""
        node = self._node_by_vm.pop(vm.vm_id, None)
        if node is None:  # pragma: no cover - defensive
            return
        self.tracer.end(self._drain_spans.pop(vm.vm_id, None))
        self.platform.retire_node(node)

    # ------------------------------------------------------------------
    # Crash handling (fault injection)
    # ------------------------------------------------------------------
    def handle_crash(self, node: WorkerNode) -> None:
        """A node's VM vanished with *no* notice (unlike a spot eviction).

        There is no drain window: the node is torn down immediately
        (stranded batches resubmit through the platform) and a
        replacement is requested right away — unless the node was already
        draining from an eviction notice, in which case the replacement
        was requested when the notice arrived.
        """
        vm = node.vm
        was_draining = vm.vm_id in self._node_by_vm and not node.accepting
        self._node_by_vm.pop(vm.vm_id, None)
        if vm.tier is VMTier.SPOT:
            # Cancels the revocation watcher and any pending eviction
            # countdown so the market never evicts the dead node again.
            self.market.unregister(vm)
        self.tracer.end(self._drain_spans.pop(vm.vm_id, None), crashed=True)
        if vm.state is not VMState.TERMINATED:
            vm.crash()
        self.crashes_handled += 1
        self._ctr_crashes.inc()
        self.platform.retire_node(node)
        if not was_draining:
            self.request_replacement()
