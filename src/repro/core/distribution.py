"""Job Distribution logic — Algorithm 1 of the paper (Section 4.3).

Given the current geometry and the memory the queued best-effort batches
will need (``BE_mem``, supplied by the request-reordering module), the Job
Distributor:

1. *tags* slices in ascending size order with the fraction of their memory
   BE requests are expected to occupy (``tag_value``), packing BE demand
   onto the fewest, smallest slices (Guideline 1);
2. places *strict* batches on the fitting slice with the minimum slowdown
   factor η (Eq. 2), where η accounts for the RDF of the incoming batch,
   the FBRs of jobs already resident, and the *potential* BE occupancy via
   the slice's tag (Guideline 2);
3. places *best-effort* batches by First-Fit bin packing over ascending
   slice sizes — spilling to larger slices only when the small ones
   cannot hold them (the Figure 7 "spillage" behaviour).
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.engine import GPUSlice
from repro.gpu.slowdown import slowdown_factor
from repro.serverless.request import RequestBatch


def compute_tags(slices: list[GPUSlice], be_mem: float) -> dict[int, float]:
    """Algorithm 1 lines 1–8: tag slices (ascending) with BE occupancy.

    Returns ``{id(slice): tag_value}``; untagged slices default to 0.
    ``tag_value = min(1, BE_mem / slice.available_mem)`` and the remaining
    BE memory decreases by the slice's capacity, so demand is packed onto
    the fewest, smallest slices.
    """
    tags: dict[int, float] = {}
    remaining = max(0.0, be_mem)
    for gpu_slice in sorted(slices, key=lambda s: s.profile.compute_units):
        if remaining <= 0:
            break
        capacity = gpu_slice.profile.memory_gb
        tags[id(gpu_slice)] = min(1.0, remaining / capacity)
        remaining = max(0.0, remaining - capacity)
    return tags


def choose_strict_slice(
    batch: RequestBatch,
    slices: list[GPUSlice],
    tags: dict[int, float],
) -> Optional[GPUSlice]:
    """Algorithm 1's ``choose_strict_slice`` (marker ⑦).

    Candidates are slices that (a) are not expected to be fully occupied
    by BE requests (``tag_value < 1``), (b) can hold the batch's memory
    right now. Among them, pick the minimum slowdown factor

        η = RDF × max{own_fbr + Σ resident_fbr + tag·potential, 1}

    where the tag contributes a bandwidth demand proportional to the BE
    occupancy it predicts (a tag of 1 ≈ a slice-saturating BE load).
    Ties break toward the larger slice, then lower index, keeping the
    decision deterministic.
    """
    model = batch.model
    best: Optional[GPUSlice] = None
    best_key: tuple[float, float, int] | None = None
    for index, gpu_slice in enumerate(slices):
        tag = tags.get(id(gpu_slice), 0.0)
        if tag >= 1.0:
            continue
        if batch.memory_gb > gpu_slice.memory_free:
            continue
        eta = slowdown_factor(
            model.rdf(gpu_slice.profile),
            model.slice_fbr(gpu_slice.profile),
            [*gpu_slice.resident_fbrs(), tag],
        )
        key = (eta, -gpu_slice.profile.compute_units, index)
        if best_key is None or key < best_key:
            best, best_key = gpu_slice, key
    return best


def choose_best_effort_slice(
    batch: RequestBatch, slices: list[GPUSlice]
) -> Optional[GPUSlice]:
    """Algorithm 1's ``choose_best_effort_slice`` (marker ⑧).

    First-Fit bin packing over slices in ascending size order: the first
    slice whose free memory holds the batch wins, so BE load concentrates
    on the smallest slices and spills upward only under pressure.
    """
    ordered = sorted(
        enumerate(slices),
        key=lambda item: (item[1].profile.compute_units, item[0]),
    )
    for _index, gpu_slice in ordered:
        if batch.memory_gb <= gpu_slice.memory_free:
            return gpu_slice
    return None


def choose_balanced_slice(
    batch: RequestBatch, slices: list[GPUSlice]
) -> Optional[GPUSlice]:
    """η-minimizing placement with no tag reservations.

    Used by the ``balance_best_effort`` extension (the paper's stated
    future work for the 100%-BE corner case): when no strict traffic
    needs protecting, BE batches benefit from the same
    deficiency/interference tradeoff strict ones get, instead of being
    packed onto the smallest slices.
    """
    return choose_strict_slice(batch, slices, {})


def distribute_batch(
    batch: RequestBatch,
    slices: list[GPUSlice],
    be_queued_memory: float,
    *,
    balance_best_effort: bool = False,
    strict_present: bool = True,
) -> Optional[GPUSlice]:
    """Algorithm 1's ``Distribute_Jobs`` for one batch.

    ``be_queued_memory`` is the BE_mem figure from the reordering module;
    tags are recomputed per call because queue contents change between
    scheduling rounds. With ``balance_best_effort`` enabled, BE batches
    fall back to η-balanced placement whenever ``strict_present`` is
    False (nothing to isolate them from).
    """
    if batch.strict:
        tags = compute_tags(slices, be_queued_memory)
        chosen = choose_strict_slice(batch, slices, tags)
        if chosen is None:
            # All untagged slices are full; fall back to *any* fitting
            # slice rather than stalling a strict batch behind its own
            # isolation rule.
            chosen = choose_strict_slice(batch, slices, {})
        return chosen
    if balance_best_effort and not strict_present:
        return choose_balanced_slice(batch, slices)
    return choose_best_effort_slice(batch, slices)
